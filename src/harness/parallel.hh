/**
 * @file
 * Thread-pool sweep runner. A paper-scale sweep is thousands of fully
 * independent (benchmark, configuration) simulations; this runs them
 * across worker threads while keeping the observable output exactly what
 * the serial loop produces: results come back in input order, every
 * point's simulation is self-contained (own image copy, own SimOS, own
 * engine), and the shared per-benchmark preparation inside
 * ExperimentRunner is built once under a latch.
 */

#ifndef FGP_HARNESS_PARALLEL_HH
#define FGP_HARNESS_PARALLEL_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace fgp {

namespace metrics { class ProgressSink; }

/** One (benchmark, configuration) cell of a sweep. */
struct SweepPoint
{
    std::string workload;
    MachineConfig config;
};

/**
 * Worker count for sweeps: FGP_JOBS when set to a positive integer,
 * otherwise the hardware concurrency (1 when unknown).
 */
int sweepJobs();

/**
 * Run every point through @p runner using up to @p jobs worker threads
 * (jobs <= 0 means sweepJobs()). Results are returned in input order
 * regardless of completion order, and jobs == 1 degenerates to the plain
 * serial loop with no threads, so anything printed from the results is
 * byte-identical at any job count. The first exception thrown by a point
 * stops the sweep and is rethrown on the calling thread.
 *
 * @p progress (optional) observes points as they complete — in
 * completion order, from worker threads — and never influences the
 * sweep: results are identical with and without a sink attached
 * (asserted by tests/metrics_test.cc).
 */
std::vector<ExperimentResult> runSweep(ExperimentRunner &runner,
                                       const std::vector<SweepPoint> &points,
                                       int jobs = 0,
                                       metrics::ProgressSink *progress =
                                           nullptr);

} // namespace fgp

#endif // FGP_HARNESS_PARALLEL_HH
