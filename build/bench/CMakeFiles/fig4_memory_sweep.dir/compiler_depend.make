# Empty compiler generated dependencies file for fig4_memory_sweep.
# This may be replaced when dependencies are built.
