/**
 * @file
 * Simulator-performance self-check: times a fixed slice of the sweep and
 * emits a machine-readable JSON record (wall time, simulations/second,
 * host nanoseconds per simulated cycle). The slice is a deterministic
 * configuration mix exercising all four disciplines, both cache and flat
 * memory, and every branch mode, so its wall time tracks the hot paths
 * the real figure benches spend their time in.
 *
 * Knobs:
 *   FGP_JOBS         worker threads (default: hardware concurrency)
 *   FGP_SCALE        input scale (default 1.0)
 *   FGP_BENCH_OUT    output path for the JSON record (or --out <path>;
 *                    default BENCH_engine.json in the working directory)
 *   FGP_RUN_MANIFEST write the full fgpsim-run-v1 manifest here
 *                    (or --manifest <path>) for `fgpsim compare`
 *   --append <path>  append this run's fgpsim-run-v1 record to a history
 *                    file (BENCH_history.jsonl) — one line per run, so
 *                    the perf trajectory accumulates across commits
 *   --reduced        quarter-size slice for CI smoke runs
 *
 * Besides timing, this bench enforces the engine's zero-steady-state-
 * allocation contract: a counting global operator new feeds
 * setAllocHook(), and after the timed sweep a repeat simulation on a
 * warmed workspace must report zero cycle-loop allocations
 * (EngineResult::allocCycleLoop; syscall buffering is excluded). The
 * per-run totals land in the manifest registry as engine.alloc.*.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <new>

#include "base/logging.hh"

#include "base/strutil.hh"
#include "bench/fig_common.hh"
#include "engine/engine.hh"
#include "metrics/manifest.hh"

// Counting allocator (same pattern as tests/metrics_test.cc): every
// operator new bumps one relaxed atomic and funnels through malloc so
// the override composes with sanitizers.
static std::atomic<std::uint64_t> g_allocCount{0};

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// Kept out of line: once gcc inlines a delete body at -O2 it pairs the
// raw free() with the replaced operator new and misfires
// -Wmismatched-new-delete, even though every form funnels through
// malloc/free.
[[gnu::noinline]] void operator delete(void *p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void *p) noexcept { std::free(p); }
[[gnu::noinline]] void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
[[gnu::noinline]] void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

static std::uint64_t
allocNow()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

using namespace fgp;
using namespace fgp::bench;

static int
runSelfcheck(int argc, char **argv)
{
    detail::setQuiet(true);

    std::string out_path = "BENCH_engine.json";
    if (const char *env = std::getenv("FGP_BENCH_OUT"))
        out_path = env;
    std::string manifest_path;
    std::string history_path;
    bool reduced = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc)
            manifest_path = argv[++i];
        else if (std::strcmp(argv[i], "--append") == 0 && i + 1 < argc)
            history_path = argv[++i];
        else if (std::strcmp(argv[i], "--reduced") == 0)
            reduced = true;
    }

    const int jobs = sweepJobs();
    const double scale = envScale();
    banner("Perf self-check",
           format("simulator wall-time slice (jobs=%d, scale=%.2f)", jobs,
                  scale));

    // Fixed slice: every discipline x {flat A, cached G} x every branch
    // mode (perfect only where it is defined, i.e. dynamic disciplines).
    std::vector<MachineConfig> configs;
    for (Discipline d : allDisciplines()) {
        for (char mc : {'A', 'G'}) {
            for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged})
                configs.push_back(
                    {d, issueModel(8), memoryConfig(mc), bm});
            if (isDynamic(d) && d != Discipline::Dyn1)
                configs.push_back({d, issueModel(8), memoryConfig(mc),
                                   BranchMode::Perfect});
        }
    }
    if (reduced) {
        // CI smoke slice: drop the slowest discipline and cut the rest.
        std::vector<MachineConfig> cut;
        for (const MachineConfig &c : configs)
            if (c.discipline != Discipline::Dyn256 && c.memory.letter == 'A')
                cut.push_back(c);
        configs = cut;
    }

    // Sample allocations around every simulation (engine.alloc.* in the
    // manifest registry); sampling never changes a schedule.
    setAllocHook(&allocNow);

    ExperimentRunner runner(scale);

    std::vector<SweepPoint> points;
    for (const std::string &workload : workloadNames())
        for (const MachineConfig &config : configs)
            points.push_back({workload, config});

    // Preparation (profile + reference runs) is one-time setup shared by
    // every figure bench; the timed region is the simulations proper.
    for (const std::string &workload : workloadNames())
        runner.referenceNodes(workload);

    // The recorder is created after preparation so its wall clock spans
    // only the timed sweep — the manifest's wall_seconds then gates the
    // same region the printed numbers describe.
    RunRecorder recorder(reduced ? "perf_selfcheck_reduced"
                                 : "perf_selfcheck",
                         &runner);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<ExperimentResult> results =
        runSweep(runner, points, 0, recorder.progress());
    const auto end = std::chrono::steady_clock::now();
    recorder.record(results);

    // Zero-steady-state-allocation contract: once a run has warmed this
    // thread's pooled workspace, a repeat simulation of the same cell
    // must allocate nothing inside the cycle loop. One cell per
    // workload, covering both a static and a deep dynamic window.
    std::uint64_t steady_allocs = 0;
    std::uint64_t steady_sims = 0;
    std::uint64_t arena_node_slots = 0;
    std::uint64_t arena_block_slots = 0;
    std::uint64_t arena_chain_slots = 0;
    std::uint64_t peak_live_nodes = 0;
    for (const std::string &workload : workloadNames()) {
        for (const MachineConfig &config :
             {MachineConfig{Discipline::Static, issueModel(8),
                            memoryConfig('A'), BranchMode::Single},
              MachineConfig{Discipline::Dyn256, issueModel(8),
                            memoryConfig('G'), BranchMode::Single}}) {
            runner.run(workload, config); // warm the workspace
            const ExperimentResult repeat = runner.run(workload, config);
            fgp_assert(repeat.engine.allocSampled,
                       "allocation hook was not sampled");
            if (repeat.engine.allocCycleLoop)
                std::cout << format(
                    "  steady-state leak: %s %s: %llu cycle-loop allocs\n",
                    workload.c_str(), config.name().c_str(),
                    static_cast<unsigned long long>(
                        repeat.engine.allocCycleLoop));
            steady_allocs += repeat.engine.allocCycleLoop;
            ++steady_sims;
            arena_node_slots =
                std::max(arena_node_slots, repeat.engine.arenaNodeSlots);
            arena_block_slots =
                std::max(arena_block_slots, repeat.engine.arenaBlockSlots);
            arena_chain_slots =
                std::max(arena_chain_slots, repeat.engine.arenaChainSlots);
            peak_live_nodes =
                std::max(peak_live_nodes, repeat.engine.peakLiveNodes);
        }
    }
    if (steady_allocs != 0)
        fgp_fatal("engine allocated on a warmed workspace: ",
                  steady_allocs, " cycle-loop allocations across ",
                  steady_sims, " repeat simulations");

    // The interval profiler must honor the same contract: its window,
    // residency and retired-log storage is pooled (clearRetain in
    // beginRun), so a profiled repeat on a warmed workspace also runs
    // the cycle loop allocation-free.
    std::uint64_t profile_steady_allocs = 0;
    std::uint64_t profile_steady_sims = 0;
    {
        ExperimentRunner::EngineTweaks tweaks;
        tweaks.profileWindow = 4096;
        runner.setEngineTweaks(tweaks);
        const MachineConfig config{Discipline::Dyn256, issueModel(8),
                                   memoryConfig('G'), BranchMode::Single};
        for (const std::string &workload : workloadNames()) {
            runner.run(workload, config); // warm the profiler pools
            const ExperimentResult repeat = runner.run(workload, config);
            fgp_assert(repeat.profile.enabled &&
                           repeat.engine.allocSampled,
                       "profiled repeat was not sampled");
            if (repeat.engine.allocCycleLoop)
                std::cout << format(
                    "  profiled steady-state leak: %s: %llu cycle-loop "
                    "allocs\n",
                    workload.c_str(),
                    static_cast<unsigned long long>(
                        repeat.engine.allocCycleLoop));
            profile_steady_allocs += repeat.engine.allocCycleLoop;
            ++profile_steady_sims;
        }
        runner.setEngineTweaks({});
    }
    if (profile_steady_allocs != 0)
        fgp_fatal("interval profiler allocated on a warmed workspace: ",
                  profile_steady_allocs, " cycle-loop allocations across ",
                  profile_steady_sims, " profiled repeat simulations");

    const double wall =
        std::chrono::duration<double>(end - start).count();
    std::uint64_t sim_cycles = 0;
    for (const ExperimentResult &r : results)
        sim_cycles += r.cycles;
    const double sims_per_sec =
        wall > 0.0 ? static_cast<double>(results.size()) / wall : 0.0;
    const double host_ns_per_cycle =
        sim_cycles ? wall * 1e9 / static_cast<double>(sim_cycles) : 0.0;

    std::cout << format("  simulations      : %zu\n", results.size())
              << format("  wall time        : %.3f s\n", wall)
              << format("  sims/second      : %.2f\n", sims_per_sec)
              << format("  simulated cycles : %llu\n",
                        static_cast<unsigned long long>(sim_cycles))
              << format("  host ns/sim cycle: %.1f\n", host_ns_per_cycle)
              << format("  steady-state heap allocations: %llu "
                        "(%llu warmed repeat sims)\n",
                        static_cast<unsigned long long>(steady_allocs),
                        static_cast<unsigned long long>(steady_sims))
              << format("  profiled steady-state allocations: %llu "
                        "(%llu profiled repeat sims)\n",
                        static_cast<unsigned long long>(
                            profile_steady_allocs),
                        static_cast<unsigned long long>(
                            profile_steady_sims))
              << format("  arena occupancy  : %llu node / %llu block / "
                        "%llu chain slots, peak %llu live nodes\n",
                        static_cast<unsigned long long>(arena_node_slots),
                        static_cast<unsigned long long>(arena_block_slots),
                        static_cast<unsigned long long>(arena_chain_slots),
                        static_cast<unsigned long long>(peak_live_nodes));

    const std::int64_t now =
        static_cast<std::int64_t>(std::time(nullptr));
    std::ofstream json(out_path);
    if (!json)
        fgp_fatal("cannot write ", out_path);
    json << "{\n"
         << format("  \"bench\": \"perf_selfcheck%s\",\n",
                   reduced ? "_reduced" : "")
         << format("  \"git\": \"%s\",\n",
                   metrics::jsonEscape(metrics::gitDescribe()).c_str())
         << format("  \"timestamp\": %lld,\n",
                   static_cast<long long>(now))
         << format("  \"iso_time\": \"%s\",\n",
                   metrics::isoTime(now).c_str())
         << format("  \"jobs\": %d,\n", jobs)
         << format("  \"scale\": %.4f,\n", scale)
         << format("  \"sims\": %zu,\n", results.size())
         << format("  \"wall_seconds\": %.4f,\n", wall)
         << format("  \"sims_per_sec\": %.4f,\n", sims_per_sec)
         << format("  \"sim_cycles\": %llu,\n",
                   static_cast<unsigned long long>(sim_cycles))
         << format("  \"host_ns_per_sim_cycle\": %.4f,\n",
                   host_ns_per_cycle)
         << format("  \"steady_state_allocs\": %llu,\n",
                   static_cast<unsigned long long>(steady_allocs))
         << format("  \"steady_state_checked_sims\": %llu,\n",
                   static_cast<unsigned long long>(steady_sims))
         << format("  \"profile_steady_allocs\": %llu,\n",
                   static_cast<unsigned long long>(profile_steady_allocs))
         << format("  \"profile_steady_checked_sims\": %llu,\n",
                   static_cast<unsigned long long>(profile_steady_sims))
         << format("  \"arena_node_slots\": %llu,\n",
                   static_cast<unsigned long long>(arena_node_slots))
         << format("  \"arena_block_slots\": %llu,\n",
                   static_cast<unsigned long long>(arena_block_slots))
         << format("  \"arena_chain_slots\": %llu,\n",
                   static_cast<unsigned long long>(arena_chain_slots))
         << format("  \"peak_live_nodes\": %llu\n",
                   static_cast<unsigned long long>(peak_live_nodes))
         << "}\n";
    std::cout << "\nwrote " << out_path << "\n";

    if (!manifest_path.empty()) {
        std::ofstream manifest(manifest_path);
        if (!manifest)
            fgp_fatal("cannot write ", manifest_path);
        recorder.writeManifest(manifest);
        std::cout << "wrote " << manifest_path << "\n";
    }
    finishRun(recorder); // honors FGP_RUN_MANIFEST
    if (!history_path.empty()) {
        recorder.appendHistory(history_path);
        std::cout << "appended run record to " << history_path << "\n";
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // fgp_fatal throws; without this catch an unwritable --out/--manifest
    // path would std::terminate instead of failing with a diagnostic and
    // a nonzero exit (the contract CI's gates rely on).
    try {
        return runSelfcheck(argc, argv);
    } catch (const fgp::FatalError &err) {
        std::cerr << "perf_selfcheck: " << err.what() << "\n";
        return 1;
    }
}
