#include "ir/cfg.hh"

#include <algorithm>
#include <set>

#include "base/logging.hh"

namespace fgp {

CodeImage
buildCfg(const Program &prog)
{
    validateProgram(prog);

    const auto num_instrs = static_cast<std::int32_t>(prog.instrs.size());
    std::set<std::int32_t> leaders;
    leaders.insert(prog.entry);
    leaders.insert(0);

    for (std::int32_t pc = 0; pc < num_instrs; ++pc) {
        const Node &node = prog.instrs[pc];
        if (!node.isControl())
            continue;
        if (node.target >= 0)
            leaders.insert(node.target);
        if (pc + 1 < num_instrs)
            leaders.insert(pc + 1);
    }

    CodeImage image;
    image.prog = &prog;

    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        const std::int32_t start = *it;
        const auto next_it = std::next(it);
        const std::int32_t limit =
            next_it == leaders.end() ? num_instrs : *next_it;
        fgp_assert(start < limit, "degenerate block at pc ", start);

        ImageBlock block;
        block.id = static_cast<std::int32_t>(image.blocks.size());
        block.entryPc = start;
        for (std::int32_t pc = start; pc < limit; ++pc) {
            Node node = prog.instrs[pc];
            node.origPc = pc;
            if (node.isSys())
                block.hasSyscall = true;
            block.nodes.push_back(node);
        }

        const Node &last = block.nodes.back();
        if (last.isControl()) {
            const bool conditional = isConditionalBranch(last.op);
            block.fallthroughPc =
                conditional && limit < num_instrs ? limit : -1;
            if (conditional && limit >= num_instrs)
                fgp_fatal("conditional branch at program end (pc ",
                          limit - 1, ")");
        } else {
            if (limit >= num_instrs)
                block.fallthroughPc = -1; // must exit via syscall
            else
                block.fallthroughPc = limit;
        }

        image.entryByPc.emplace(start, block.id);
        image.blocks.push_back(std::move(block));
    }

    image.entryBlock = image.blockAtPc(prog.entry);
    validateImage(image);
    return image;
}

} // namespace fgp
