/**
 * @file
 * Profile serialization — the paper's "specified statistics file" that
 * the translating loader and the enlargement-file creator exchange
 * (§3.1). Line-oriented text:
 *
 *     # fgpsim profile v1
 *     branch <pc> <taken> <not-taken>
 *     jump <pc> <count>
 */

#ifndef FGP_VM_PROFILE_IO_HH
#define FGP_VM_PROFILE_IO_HH

#include <string>
#include <string_view>

#include "vm/profile.hh"

namespace fgp {

/** Serialize a profile to the statistics-file text format. */
std::string serializeProfile(const Profile &profile);

/** Parse the text format; throws FatalError with a line diagnostic. */
Profile parseProfile(std::string_view text);

} // namespace fgp

#endif // FGP_VM_PROFILE_IO_HH
