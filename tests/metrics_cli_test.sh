#!/bin/sh
# End-to-end run-level observability: bench/perf_selfcheck emits an
# fgpsim-run-v1 manifest (--manifest / FGP_RUN_MANIFEST) and appends its
# run record to a history file (--append); tools/check_bench.sh
# schema-validates both; `fgpsim compare` joins two real runs and gates.
set -e
PERF="$1"
FGPSIM="$2"
CHECK_BENCH="$3"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Keep the runs small and the output stream-friendly.
FGP_SCALE="${FGP_SCALE:-0.05}"
export FGP_SCALE
export FGP_PROGRESS=0

# Run 1: explicit --manifest + --append.
"$PERF" --reduced --out "$TMP/bench1.json" \
    --manifest "$TMP/run1.jsonl" --append "$TMP/history.jsonl" \
    > "$TMP/perf1.log"
sh "$CHECK_BENCH" --validate-bench "$TMP/bench1.json"
sh "$CHECK_BENCH" --validate-run "$TMP/run1.jsonl"
sh "$CHECK_BENCH" --validate-run "$TMP/history.jsonl"
test "$(wc -l < "$TMP/history.jsonl")" = 1

# The self-check record now carries provenance.
grep -q '"git"' "$TMP/bench1.json"
grep -q '"timestamp"' "$TMP/bench1.json"
grep -q '"iso_time"' "$TMP/bench1.json"

# Run 2: the manifest path can come from the environment instead.
FGP_RUN_MANIFEST="$TMP/run2.jsonl" \
    "$PERF" --reduced --out "$TMP/bench2.json" \
    --append "$TMP/history.jsonl" > "$TMP/perf2.log"
sh "$CHECK_BENCH" --validate-run "$TMP/run2.jsonl"
test "$(wc -l < "$TMP/history.jsonl")" = 2

# Self-comparison is trivially clean.
"$FGPSIM" compare "$TMP/run1.jsonl" "$TMP/run1.jsonl" > /dev/null

# Two runs of the same build: IPC is deterministic, so even a 0.01%
# tolerance holds; wall time is host noise, so it gets a huge allowance.
"$FGPSIM" compare "$TMP/run1.jsonl" "$TMP/run2.jsonl" \
    --tolerance 0.01% --wall-tolerance 100000% > "$TMP/compare.log"
grep -q "compare: ok" "$TMP/compare.log"

echo "metrics cli test ok"
