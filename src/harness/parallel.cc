#include "harness/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "base/logging.hh"
#include "metrics/progress.hh"

namespace fgp {

int
sweepJobs()
{
    if (const char *value = std::getenv("FGP_JOBS")) {
        const int jobs = std::atoi(value);
        if (jobs >= 1)
            return jobs;
        warn("ignoring FGP_JOBS=", value, " (need a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

namespace {

/** Run f(i) for i in [0, count) across up to jobs threads. */
template <typename Fn>
void
forEachIndex(std::size_t count, int jobs, Fn f)
{
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    const auto work = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                f(i);
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t)
        threads.emplace_back(work);
    for (std::thread &t : threads)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

/** "sort dyn4/8A/enlarged" — how progress reporting names a point. */
std::string
pointLabel(const SweepPoint &point)
{
    return point.workload + " " + point.config.name();
}

} // namespace

std::vector<ExperimentResult>
runSweep(ExperimentRunner &runner, const std::vector<SweepPoint> &points,
         int jobs, metrics::ProgressSink *progress)
{
    if (jobs <= 0)
        jobs = sweepJobs();
    if (jobs > static_cast<int>(points.size()))
        jobs = static_cast<int>(points.size());

    if (progress)
        progress->beginSweep(points.size());

    if (jobs <= 1) {
        std::vector<ExperimentResult> results;
        results.reserve(points.size());
        for (const SweepPoint &point : points) {
            results.push_back(runner.run(point.workload, point.config));
            if (progress)
                progress->pointDone(pointLabel(point),
                                    results.back().hostNs,
                                    results.back().cycles);
        }
        if (progress)
            progress->endSweep();
        return results;
    }

    // Warm the per-benchmark caches first, one thread per distinct
    // benchmark. Without this, the whole pool piles onto the first
    // benchmark's one-time preparation latch at startup.
    std::vector<std::string> distinct;
    for (const SweepPoint &point : points) {
        bool seen = false;
        for (const std::string &name : distinct)
            seen = seen || name == point.workload;
        if (!seen)
            distinct.push_back(point.workload);
    }
    forEachIndex(distinct.size(),
                 std::min(jobs, static_cast<int>(distinct.size())),
                 [&](std::size_t i) { runner.referenceNodes(distinct[i]); });

    std::vector<std::optional<ExperimentResult>> slots(points.size());
    forEachIndex(points.size(), jobs, [&](std::size_t i) {
        slots[i] = runner.run(points[i].workload, points[i].config);
        if (progress)
            progress->pointDone(pointLabel(points[i]), slots[i]->hostNs,
                                slots[i]->cycles);
    });
    if (progress)
        progress->endSweep();

    std::vector<ExperimentResult> results;
    results.reserve(points.size());
    for (std::optional<ExperimentResult> &slot : slots) {
        fgp_assert(slot.has_value(), "sweep point left unrun");
        results.push_back(std::move(*slot));
    }
    return results;
}

} // namespace fgp
