# Empty dependencies file for branch_memsys_test.
# This may be replaced when dependencies are built.
