# Empty dependencies file for window_metrics.
# This may be replaced when dependencies are built.
