/**
 * @file
 * Node evaluation semantics shared by the functional interpreter, the
 * atomic runner and the cycle-level engine. Keeping all value semantics in
 * one place guarantees the three executors agree (the golden-model
 * equivalence tests rely on this).
 */

#ifndef FGP_VM_EXEC_HH
#define FGP_VM_EXEC_HH

#include <cstdint>
#include <limits>

#include "base/logging.hh"
#include "ir/node.hh"

namespace fgp {

/** Evaluate an ALU node given its (up to two) source values. */
inline std::uint32_t
evalAlu(const Node &node, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    auto imm_b = [&]() -> std::uint32_t {
        return static_cast<std::uint32_t>(node.imm);
    };
    switch (node.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 31);
      case Opcode::SRL: return a >> (b & 31);
      case Opcode::SRA:
        return static_cast<std::uint32_t>(sa >> (b & 31));
      case Opcode::MUL: return a * b;
      case Opcode::DIV: {
        const auto sb = static_cast<std::int32_t>(b);
        if (sb == 0)
            return 0xffffffffu; // RISC-V-style defined result
        if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1)
            return a;
        return static_cast<std::uint32_t>(sa / sb);
      }
      case Opcode::REM: {
        const auto sb = static_cast<std::int32_t>(b);
        if (sb == 0)
            return a;
        if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1)
            return 0;
        return static_cast<std::uint32_t>(sa % sb);
      }
      case Opcode::SLT:
        return sa < static_cast<std::int32_t>(b) ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::ADDI: return a + imm_b();
      case Opcode::ANDI: return a & imm_b();
      case Opcode::ORI: return a | imm_b();
      case Opcode::XORI: return a ^ imm_b();
      case Opcode::SLLI: return a << (imm_b() & 31);
      case Opcode::SRLI: return a >> (imm_b() & 31);
      case Opcode::SRAI:
        return static_cast<std::uint32_t>(sa >> (imm_b() & 31));
      case Opcode::SLTI:
        return sa < node.imm ? 1 : 0;
      case Opcode::SLTIU: return a < imm_b() ? 1 : 0;
      case Opcode::LUI:
        return static_cast<std::uint32_t>(node.imm) << 16;
      default:
        fgp_panic("evalAlu on non-ALU node ", mnemonic(node.op));
    }
}

/** Branch or fault condition given the two source values. */
inline bool
evalCondition(Opcode op, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case Opcode::BEQ: case Opcode::FEQ: return a == b;
      case Opcode::BNE: case Opcode::FNE: return a != b;
      case Opcode::BLT: case Opcode::FLT: return sa < sb;
      case Opcode::BGE: case Opcode::FGE: return sa >= sb;
      case Opcode::BLTU: case Opcode::FLTU: return a < b;
      case Opcode::BGEU: case Opcode::FGEU: return a >= b;
      default:
        fgp_panic("evalCondition on ", mnemonic(op));
    }
}

/** Effective address of a memory node given its base register value. */
inline std::uint32_t
effectiveAddress(const Node &node, std::uint32_t base)
{
    return base + static_cast<std::uint32_t>(node.imm);
}

/** Access width in bytes of a memory node. */
inline std::uint32_t
accessBytes(Opcode op)
{
    switch (op) {
      case Opcode::LW: case Opcode::SW: return 4;
      case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
      default:
        fgp_panic("accessBytes on ", mnemonic(op));
    }
}

/** Assemble a load result from raw little-endian bytes. */
inline std::uint32_t
loadResult(Opcode op, const std::uint8_t *bytes)
{
    switch (op) {
      case Opcode::LW:
        return static_cast<std::uint32_t>(bytes[0]) |
               (static_cast<std::uint32_t>(bytes[1]) << 8) |
               (static_cast<std::uint32_t>(bytes[2]) << 16) |
               (static_cast<std::uint32_t>(bytes[3]) << 24);
      case Opcode::LB:
        return static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(bytes[0])));
      case Opcode::LBU:
        return bytes[0];
      default:
        fgp_panic("loadResult on ", mnemonic(op));
    }
}

/** Split a store value into raw little-endian bytes; returns byte count. */
inline std::uint32_t
storeBytes(Opcode op, std::uint32_t value, std::uint8_t *bytes)
{
    switch (op) {
      case Opcode::SW:
        bytes[0] = static_cast<std::uint8_t>(value);
        bytes[1] = static_cast<std::uint8_t>(value >> 8);
        bytes[2] = static_cast<std::uint8_t>(value >> 16);
        bytes[3] = static_cast<std::uint8_t>(value >> 24);
        return 4;
      case Opcode::SB:
        bytes[0] = static_cast<std::uint8_t>(value);
        return 1;
      default:
        fgp_panic("storeBytes on ", mnemonic(op));
    }
}

} // namespace fgp

#endif // FGP_VM_EXEC_HH
