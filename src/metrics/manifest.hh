/**
 * @file
 * The `fgpsim-run-v1` run manifest: a self-describing JSONL record of one
 * sweep/bench execution, written by the benches (bench/fig_common.hh via
 * harness/recorder.hh) and read back by `fgpsim compare`.
 *
 * File shape — one JSON object per line:
 *
 *   {"schema":"fgpsim-run-v1","kind":"run","bench":"fig3","git":...,
 *    "timestamp":...,"jobs":...,"scale":...,"sims":...,
 *    "wall_seconds":...,"sim_cycles":...,"host_ns_per_sim_cycle":...,
 *    "workloads":[...],"metrics":{...}}
 *   {"kind":"point","workload":"sort","config":"dyn4/8A/enlarged",
 *    "nodes_per_cycle":...,"cycles":...,"host_ns":...,"stall_*":...}
 *   ... one point line per (workload, configuration) cell ...
 *
 * A BENCH_history.jsonl file is the same format with only "run" lines —
 * one appended per perf_selfcheck execution, so the perf trajectory
 * accumulates instead of overwriting a single snapshot.
 *
 * This module is deliberately self-contained (fgp_base only): src/obs
 * depends on the engine, and the engine depends on this library, so the
 * manifest code cannot reuse obs::JsonWriter.
 */

#ifndef FGP_METRICS_MANIFEST_HH
#define FGP_METRICS_MANIFEST_HH

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fgp::metrics {

/** Schema tag carried by every run header/history record. */
inline constexpr const char *kRunSchema = "fgpsim-run-v1";

/** Escape for use inside a double-quoted JSON string. */
std::string jsonEscape(std::string_view text);

/**
 * Builder for one compact single-line JSON object (the JSONL unit).
 * Key order is emission order; str() closes and returns the object.
 */
class JsonLineWriter
{
  public:
    JsonLineWriter &field(std::string_view key, std::string_view value);
    JsonLineWriter &
    field(std::string_view key, const char *value)
    {
        return field(key, std::string_view(value));
    }
    JsonLineWriter &field(std::string_view key, double value);
    JsonLineWriter &field(std::string_view key, std::uint64_t value);
    JsonLineWriter &field(std::string_view key, std::int64_t value);
    JsonLineWriter &
    field(std::string_view key, int value)
    {
        return field(key, static_cast<std::int64_t>(value));
    }
    /** Pre-rendered JSON value (object, array, number...). */
    JsonLineWriter &raw(std::string_view key, std::string_view json);
    /** Array of strings. */
    JsonLineWriter &strings(std::string_view key,
                            const std::vector<std::string> &values);

    std::string str() const { return "{" + body_ + "}"; }

  private:
    void keyPrefix(std::string_view key);
    std::string body_;
};

/** One parsed "point" line: every numeric field, keyed by name. */
struct RunPoint
{
    std::string workload;
    std::string config;
    std::map<std::string, double> nums;

    /** Numeric field, or @p fallback when absent. */
    double
    num(const std::string &key, double fallback = 0.0) const
    {
        const auto it = nums.find(key);
        return it == nums.end() ? fallback : it->second;
    }
};

/** One parsed "run" header/history line. */
struct RunRecord
{
    std::map<std::string, double> nums;
    std::map<std::string, std::string> strs;
    /** Flattened numeric contents of the "metrics" sub-object. */
    std::map<std::string, double> metrics;

    double
    num(const std::string &key, double fallback = 0.0) const
    {
        const auto it = nums.find(key);
        return it == nums.end() ? fallback : it->second;
    }

    std::string
    str(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = strs.find(key);
        return it == strs.end() ? fallback : it->second;
    }
};

/** A whole parsed manifest / history file. */
struct RunFile
{
    std::vector<RunRecord> runs;
    std::vector<RunPoint> points;
};

/**
 * One schema-agnostic JSONL record: every scalar keyed by name, with
 * one-level sub-objects flattened as "parent.child". Booleans land in
 * nums (0/1), string arrays join with ','. This is how consumers that
 * know their own schema (the `fgpsim diff` stream loader) read the
 * fgpsim-profile-v1 / fgpsim-run-v1 families without this module
 * having to enumerate every record kind.
 */
struct GenericRecord
{
    std::map<std::string, double> nums;
    std::map<std::string, std::string> strs;

    double
    num(const std::string &key, double fallback = 0.0) const
    {
        const auto it = nums.find(key);
        return it == nums.end() ? fallback : it->second;
    }

    std::string
    str(const std::string &key, const std::string &fallback = "") const
    {
        const auto it = strs.find(key);
        return it == strs.end() ? fallback : it->second;
    }

    bool
    has(const std::string &key) const
    {
        return nums.count(key) != 0 || strs.count(key) != 0;
    }
};

/**
 * Parse one JSON object line into a GenericRecord. Throws FatalError
 * (naming @p what) on malformed JSON or a non-object document.
 */
GenericRecord parseJsonRecord(std::string_view line,
                              const std::string &what);

/**
 * Parse an fgpsim-run-v1 JSONL stream. Blank lines and '#' comment
 * lines are skipped. Throws FatalError (naming @p what) on malformed
 * JSON, on an unknown record kind, or when no "run" record carrying the
 * fgpsim-run-v1 schema tag is present.
 */
RunFile parseRunFile(std::istream &in, const std::string &what);

/** `git describe --always --dirty` of the working tree, or "unknown". */
std::string gitDescribe();

/** "<sysname> <machine>" host triple from uname, or "unknown". */
std::string hostInfo();

/** UTC ISO-8601 rendering ("2026-08-05T12:00:00Z") of unix seconds. */
std::string isoTime(std::int64_t unix_seconds);

} // namespace fgp::metrics

#endif // FGP_METRICS_MANIFEST_HH
