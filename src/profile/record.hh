/**
 * @file
 * Plain per-node profiling records shared between the engine workspace
 * and the interval profiler. Kept dependency-free so the workspace can
 * embed the live-node lane without pulling in the profiler proper.
 *
 * Every live node carries one NodeProf record while profiling is
 * enabled (EngineWorkspace::profRec, sized lazily by ensureProfLane so
 * unprofiled runs pay nothing). The engine stamps the four pipeline
 * timestamps as they happen and keeps the *last* enabling dependence
 * edge — the event that actually released the node — so the retired log
 * can reconstruct the executed schedule's dependence chains.
 */

#ifndef FGP_PROFILE_RECORD_HH
#define FGP_PROFILE_RECORD_HH

#include <cstdint>

namespace fgp {
namespace profile {

/** What kind of dependence edge enabled a node (last writer wins). */
enum class EdgeKind : std::uint8_t
{
    None = 0, ///< never profiled (defensive default)
    Fetch,    ///< issued with all operands ready — bound by fetch order
    Branch,   ///< first node fetched after a mispredict/fault redirect
    Data,     ///< last register operand delivered by a producer's wakeup
    Memory,   ///< load parked on disambiguation (unknown store/syscall)
    Forward,  ///< load whose value came from an in-window store forward
};

/** Live-node lane record (SoA ring parallel to the node arenas). */
struct NodeProf
{
    std::uint64_t parentSeq; ///< enabling producer's seq (0: none)
    std::uint32_t issueCycle;
    std::uint32_t readyCycle;    ///< last operand arrived
    std::uint32_t schedCycle;    ///< won a function-unit slot
    std::uint32_t completeCycle; ///< result published
    EdgeKind edge;
};

/** Stable lower-case name ("data", "forward", ...) of one edge kind. */
constexpr const char *
edgeKindName(EdgeKind edge)
{
    switch (edge) {
      case EdgeKind::None:
        return "none";
      case EdgeKind::Fetch:
        return "fetch";
      case EdgeKind::Branch:
        return "branch";
      case EdgeKind::Data:
        return "data";
      case EdgeKind::Memory:
        return "memory";
      case EdgeKind::Forward:
        return "forward";
    }
    return "?";
}

/** One entry of the retired-node log (appended in seq order). */
struct RetiredNode
{
    std::uint64_t seq;
    std::uint64_t parentSeq;
    std::uint32_t issueCycle;
    std::uint32_t readyCycle;
    std::uint32_t schedCycle;
    std::uint32_t completeCycle;
    std::uint32_t block; ///< static image block id
    EdgeKind edge;
};

/** FNV-1a offset basis — the same fingerprint family the engine's
 *  schedule-parity goldens use, so hashes are comparable idiomatically
 *  across the observability surface. */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/** Fold the eight bytes of @p v into the running FNV-1a hash @p h. */
constexpr std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Fold one retired-node record (every field) into @p h. The cumulative
 *  hash over a retired log is the schedule fingerprint `fgpsim diff`
 *  binary-searches to pinpoint the first divergent window and node. */
constexpr std::uint64_t
fnvRetired(std::uint64_t h, const RetiredNode &n)
{
    h = fnvMix(h, n.seq);
    h = fnvMix(h, n.parentSeq);
    h = fnvMix(h, n.issueCycle);
    h = fnvMix(h, n.readyCycle);
    h = fnvMix(h, n.schedCycle);
    h = fnvMix(h, n.completeCycle);
    h = fnvMix(h, n.block);
    h = fnvMix(h, static_cast<std::uint64_t>(n.edge));
    return h;
}

} // namespace profile
} // namespace fgp

#endif // FGP_PROFILE_RECORD_HH
