#include "base/logging.hh"

namespace fgp {
namespace detail {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(msg + " (" + file + ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "info: " << msg << "\n";
}

} // namespace detail
} // namespace fgp
