#include "metrics/manifest.hh"

#include <cmath>
#include <cstdio>
#include <ctime>
#include <utility>

#include <sys/utsname.h>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp::metrics {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

namespace {

/** Finite-only number rendering; JSON has no inf/nan. */
std::string
numberText(double value)
{
    if (!std::isfinite(value))
        return "0";
    return format("%.10g", value);
}

} // namespace

void
JsonLineWriter::keyPrefix(std::string_view key)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += jsonEscape(key);
    body_ += "\":";
}

JsonLineWriter &
JsonLineWriter::field(std::string_view key, std::string_view value)
{
    keyPrefix(key);
    body_ += '"';
    body_ += jsonEscape(value);
    body_ += '"';
    return *this;
}

JsonLineWriter &
JsonLineWriter::field(std::string_view key, double value)
{
    keyPrefix(key);
    body_ += numberText(value);
    return *this;
}

JsonLineWriter &
JsonLineWriter::field(std::string_view key, std::uint64_t value)
{
    keyPrefix(key);
    body_ += format("%llu", static_cast<unsigned long long>(value));
    return *this;
}

JsonLineWriter &
JsonLineWriter::field(std::string_view key, std::int64_t value)
{
    keyPrefix(key);
    body_ += format("%lld", static_cast<long long>(value));
    return *this;
}

JsonLineWriter &
JsonLineWriter::raw(std::string_view key, std::string_view json)
{
    keyPrefix(key);
    body_ += json;
    return *this;
}

JsonLineWriter &
JsonLineWriter::strings(std::string_view key,
                        const std::vector<std::string> &values)
{
    keyPrefix(key);
    body_ += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            body_ += ',';
        body_ += '"';
        body_ += jsonEscape(values[i]);
        body_ += '"';
    }
    body_ += ']';
    return *this;
}

// ---------------------------------------------------------------------------
// Minimal JSON value parser — just enough to read the records this module
// writes (objects, arrays, strings, numbers, booleans, null).

namespace {

struct Value
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;

    const Value *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class Parser
{
  public:
    Parser(std::string_view text, const std::string &what)
        : p_(text.data()), end_(text.data() + text.size()), what_(what)
    {
    }

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (p_ != end_)
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *why)
    {
        fgp_fatal(what_, ": malformed JSON: ", why);
    }

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    char
    peek()
    {
        skipWs();
        if (p_ == end_)
            fail("unexpected end of input");
        return *p_;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++p_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (static_cast<std::size_t>(end_ - p_) < lit.size() ||
            std::string_view(p_, lit.size()) != lit)
            return false;
        p_ += lit.size();
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c == '\\') {
                if (p_ == end_)
                    fail("unterminated escape");
                const char e = *p_++;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (end_ - p_ < 4)
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = *p_++;
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            fail("bad \\u escape digit");
                    }
                    // The writer only emits \u00xx control escapes;
                    // anything wider is preserved as '?' rather than
                    // growing a UTF-8 encoder here.
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default:
                    fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        if (p_ == end_)
            fail("unterminated string");
        ++p_; // closing quote
        return out;
    }

    Value
    parseValue()
    {
        const char c = peek();
        Value v;
        if (c == '{') {
            ++p_;
            v.kind = Value::Kind::Obj;
            if (peek() == '}') {
                ++p_;
                return v;
            }
            for (;;) {
                std::string key = parseString();
                expect(':');
                v.obj.emplace_back(std::move(key), parseValue());
                const char next = peek();
                ++p_;
                if (next == '}')
                    return v;
                if (next != ',')
                    fail("expected ',' or '}' in object");
                skipWs();
            }
        }
        if (c == '[') {
            ++p_;
            v.kind = Value::Kind::Arr;
            if (peek() == ']') {
                ++p_;
                return v;
            }
            for (;;) {
                v.arr.push_back(parseValue());
                const char next = peek();
                ++p_;
                if (next == ']')
                    return v;
                if (next != ',')
                    fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::Str;
            v.str = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            v.kind = Value::Kind::Bool;
            v.b = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.kind = Value::Kind::Bool;
            v.b = false;
            return v;
        }
        if (consumeLiteral("null"))
            return v;

        // Number.
        const char *start = p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+'))
            ++p_;
        while (p_ != end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                *p_ == 'E' || *p_ == '-' || *p_ == '+'))
            ++p_;
        if (p_ == start)
            fail("expected a value");
        v.kind = Value::Kind::Num;
        v.num = std::atof(std::string(start, p_).c_str());
        return v;
    }

    const char *p_;
    const char *end_;
    const std::string &what_;
};

} // namespace

GenericRecord
parseJsonRecord(std::string_view line, const std::string &what)
{
    const Value v = Parser(line, what).parseDocument();
    if (v.kind != Value::Kind::Obj)
        fgp_fatal(what, ": expected a JSON object per line");

    GenericRecord rec;
    const auto fold = [&rec](const std::string &key, const Value &val) {
        switch (val.kind) {
          case Value::Kind::Num:
            rec.nums[key] = val.num;
            break;
          case Value::Kind::Bool:
            rec.nums[key] = val.b ? 1.0 : 0.0;
            break;
          case Value::Kind::Str:
            rec.strs[key] = val.str;
            break;
          case Value::Kind::Arr: {
            std::vector<std::string> items;
            for (const Value &e : val.arr)
                if (e.kind == Value::Kind::Str)
                    items.push_back(e.str);
            rec.strs[key] = join(items, ",");
            break;
          }
          default:
            break;
        }
    };
    for (const auto &[key, val] : v.obj) {
        if (val.kind == Value::Kind::Obj) {
            for (const auto &[sub, sv] : val.obj)
                fold(key + "." + sub, sv);
        } else {
            fold(key, val);
        }
    }
    return rec;
}

RunFile
parseRunFile(std::istream &in, const std::string &what)
{
    RunFile file;
    bool sawSchema = false;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string_view trimmed = trim(line);
        if (trimmed.empty() || trimmed.front() == '#')
            continue;
        const std::string where = format("%s:%zu", what.c_str(), lineno);
        const Value v = Parser(trimmed, where).parseDocument();
        if (v.kind != Value::Kind::Obj)
            fgp_fatal(where, ": expected a JSON object per line");

        const Value *kind = v.find("kind");
        const std::string kindName =
            kind && kind->kind == Value::Kind::Str ? kind->str : "";
        if (kindName == "run") {
            RunRecord rec;
            for (const auto &[key, val] : v.obj) {
                switch (val.kind) {
                  case Value::Kind::Num:
                    rec.nums[key] = val.num;
                    break;
                  case Value::Kind::Bool:
                    rec.nums[key] = val.b ? 1.0 : 0.0;
                    break;
                  case Value::Kind::Str:
                    rec.strs[key] = val.str;
                    break;
                  case Value::Kind::Arr: {
                    std::vector<std::string> items;
                    for (const Value &e : val.arr)
                        if (e.kind == Value::Kind::Str)
                            items.push_back(e.str);
                    rec.strs[key] = join(items, ",");
                    break;
                  }
                  case Value::Kind::Obj:
                    if (key == "metrics")
                        for (const auto &[mk, mv] : val.obj)
                            if (mv.kind == Value::Kind::Num)
                                rec.metrics[mk] = mv.num;
                    break;
                  default:
                    break;
                }
            }
            if (rec.str("schema") != kRunSchema)
                fgp_fatal(where, ": run record is not ", kRunSchema,
                          " (schema '", rec.str("schema"), "')");
            sawSchema = true;
            file.runs.push_back(std::move(rec));
        } else if (kindName == "point" || kindName == "progress" ||
                   kindName == "window") {
            if (kindName == "progress")
                continue; // heartbeats may be interleaved into logs
            if (kindName == "window")
                continue; // interval-profile streams ride along; the
                          // comparer works on point aggregates only
            RunPoint point;
            for (const auto &[key, val] : v.obj) {
                if (val.kind == Value::Kind::Num)
                    point.nums[key] = val.num;
                else if (val.kind == Value::Kind::Bool)
                    point.nums[key] = val.b ? 1.0 : 0.0;
                else if (val.kind == Value::Kind::Str) {
                    if (key == "workload")
                        point.workload = val.str;
                    else if (key == "config")
                        point.config = val.str;
                }
            }
            if (point.workload.empty() || point.config.empty())
                fgp_fatal(where, ": point record needs workload and config");
            file.points.push_back(std::move(point));
        } else {
            fgp_fatal(where, ": unknown record kind '", kindName, "'");
        }
    }
    if (!sawSchema)
        fgp_fatal(what, ": no ", kRunSchema, " run record found");
    return file;
}

std::string
gitDescribe()
{
    if (const char *env = std::getenv("FGP_GIT_DESCRIBE"))
        return env;
    std::string out;
    if (FILE *pipe = popen("git describe --always --dirty 2>/dev/null", "r")) {
        char buf[128];
        while (std::fgets(buf, sizeof buf, pipe))
            out += buf;
        if (pclose(pipe) != 0)
            out.clear();
    }
    const std::string_view trimmed = trim(out);
    return trimmed.empty() ? "unknown" : std::string(trimmed);
}

std::string
hostInfo()
{
    struct utsname info;
    if (uname(&info) != 0)
        return "unknown";
    return std::string(info.sysname) + " " + info.machine;
}

std::string
isoTime(std::int64_t unix_seconds)
{
    const std::time_t t = static_cast<std::time_t>(unix_seconds);
    std::tm tm{};
    if (!gmtime_r(&t, &tm))
        return "unknown";
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

} // namespace fgp::metrics
