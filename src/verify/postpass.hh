/**
 * @file
 * Mandatory post-pass assertions: the enlargement and translation passes
 * hand their results to the verifier before returning, so a transform bug
 * fails fast at the pass that introduced it instead of surfacing as a
 * wrong simulation result.
 *
 * Default: enabled in debug builds (!NDEBUG), disabled in release; the
 * FGP_VERIFY environment variable ("1"/"0") overrides either way.
 * Violations throw FatalError carrying the rendered diagnostics.
 */

#ifndef FGP_VERIFY_POSTPASS_HH
#define FGP_VERIFY_POSTPASS_HH

#include "bbe/plan.hh"
#include "ir/image.hh"

namespace fgp::verify {

/** Whether the passes run their post-pass checks. */
bool postPassChecksEnabled();

/** Force the post-pass checks on or off (tests; overrides FGP_VERIFY). */
void setPostPassChecks(bool enabled);

/** Drop back to the FGP_VERIFY / build-type default. */
void resetPostPassChecks();

/** RAII guard used by tests that must build deliberately broken images. */
class ScopedPostPassChecks
{
  public:
    explicit ScopedPostPassChecks(bool enabled)
    {
        setPostPassChecks(enabled);
    }
    ~ScopedPostPassChecks() { resetPostPassChecks(); }
    ScopedPostPassChecks(const ScopedPostPassChecks &) = delete;
    ScopedPostPassChecks &operator=(const ScopedPostPassChecks &) = delete;
};

/**
 * Post-pass hook of applyEnlargement: structural verification of the
 * enlarged image plus plan-aware enlargement soundness. No-op when
 * checks are disabled; throws FatalError on any error finding.
 */
void postEnlargementCheck(const CodeImage &single, const CodeImage &enlarged,
                          const EnlargePlan &plan, int max_instances);

/**
 * Post-pass hook of translate(): structural verification of the
 * translated image plus per-block soundness against the pre-translation
 * snapshot. No-op when checks are disabled; throws FatalError on any
 * error finding.
 */
void postTranslationCheck(const CodeImage &before, const CodeImage &after);

} // namespace fgp::verify

#endif // FGP_VERIFY_POSTPASS_HH
