/**
 * @file
 * Dynamic critical-path extraction over the executed schedule.
 *
 * The interval profiler's retired-node log records, for every committed
 * node, its pipeline timestamps (issue/ready/schedule/complete) and the
 * dependence edge that enabled it (data wakeup, store-forward /
 * disambiguation, branch redirect, or plain fetch order). Walking that
 * log backward from the last retired node with a monotone time cursor
 * yields the measured critical path: every simulated cycle on the path
 * is attributed to exactly one cause and one static block, the path
 * length can never exceed the run's total cycles, and the path-implied
 * IPC (nodes on the path / path cycles) is at most 1 — hence always at
 * or below the analyzer's staticIpcBound, which the harness
 * cross-checks.
 */

#ifndef FGP_PROFILE_CRITPATH_HH
#define FGP_PROFILE_CRITPATH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "profile/record.hh"

namespace fgp {
namespace profile {

/**
 * Why a cycle sits on the critical path. Dense-indexable so consumers
 * (the profile JSON stream, `fgpsim diff`'s cause-delta tables, the
 * folded flamegraph export) can iterate the attribution uniformly.
 */
enum class CritCause : std::uint8_t
{
    Fetch = 0, ///< waiting on fetch order
    Branch,    ///< redirect after mispredict/fault
    Operand,   ///< register dataflow (Data edges)
    Memory,    ///< disambiguation parking
    Forward,   ///< store-forward dependences
    FuBusy,    ///< ready but no function unit
    Execute,   ///< actually executing
    Retire,    ///< complete-to-commit slack
};

inline constexpr std::size_t kCritCauseCount = 8;

/** Stable lower-case name ("fetch", "fu_busy", ...) of one cause. */
const char *critCauseName(CritCause cause);

/** Measured critical path of one run. */
struct CritPath
{
    std::uint64_t pathCycles = 0; ///< <= the run's total cycles
    std::uint64_t pathNodes = 0;  ///< <= pathCycles

    /** Cycle attribution on the path, indexed by CritCause; the eight
     *  entries sum to pathCycles. */
    std::array<std::uint64_t, kCritCauseCount> causeCycles{};

    /** Cycles on the path per static block (image block id order);
     *  sums to pathCycles — every path cycle has exactly one block. */
    std::vector<std::uint64_t> blockCycles;

    /** Joint block x cause attribution (blockCycles indexing): each
     *  row sums to its blockCycles entry, so the matrix refines both
     *  marginals. This is what the differential folded-stack export
     *  ("block;cause count_a count_b") is built from. */
    std::vector<std::array<std::uint64_t, kCritCauseCount>> blockCauses;

    std::uint64_t
    cause(CritCause c) const
    {
        return causeCycles[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    causeTotal() const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t c : causeCycles)
            total += c;
        return total;
    }

    /** Path-implied IPC: never above 1 by construction. */
    double
    impliedIpc() const
    {
        return pathCycles ? static_cast<double>(pathNodes) /
                                static_cast<double>(pathCycles)
                          : 0.0;
    }
};

/**
 * Extract the critical path from @p log (seq-ascending retired-node
 * entries) of a run that took @p total_cycles; @p num_blocks sizes the
 * per-block attribution. Pure function of its inputs — bit-identical
 * across thread counts and repeat runs.
 */
CritPath extractCriticalPath(const std::vector<RetiredNode> &log,
                             std::uint64_t total_cycles,
                             std::size_t num_blocks);

} // namespace profile
} // namespace fgp

#endif // FGP_PROFILE_CRITPATH_HH
