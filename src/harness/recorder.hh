/**
 * @file
 * RunRecorder — one object per bench/sweep execution that owns the
 * run-level observability surface:
 *
 *  - a metrics::Registry attached to the ExperimentRunner (host phase
 *    timers, harness counters, engine counter folds);
 *  - the stderr progress sink (TTY status line / JSONL heartbeats) to
 *    pass into runSweep();
 *  - the `fgpsim-run-v1` manifest: a header record describing the run
 *    (schema, git describe, host, timestamp, jobs, scale, wall time,
 *    aggregate cycles, registry snapshot) plus one point record per
 *    (workload, configuration) cell, written as JSONL.
 *
 * Every sweep bench constructs one, record()s its results, and calls
 * writeEnvManifest() — so setting FGP_RUN_MANIFEST=path on any bench
 * yields a self-describing, comparable record (`fgpsim compare`).
 * appendHistory() appends just the header record to a history file
 * (BENCH_history.jsonl), giving perf_selfcheck an accumulating
 * trajectory instead of one overwritten snapshot.
 */

#ifndef FGP_HARNESS_RECORDER_HH
#define FGP_HARNESS_RECORDER_HH

#include <chrono>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "metrics/progress.hh"
#include "metrics/registry.hh"

namespace fgp {

class RunRecorder
{
  public:
    /**
     * @param bench name stamped into the manifest ("fig3", ...).
     * @param runner when non-null, gets the recorder's registry attached
     *        (setMetrics) for the recorder's lifetime.
     */
    RunRecorder(std::string bench, ExperimentRunner *runner);
    ~RunRecorder();

    RunRecorder(const RunRecorder &) = delete;
    RunRecorder &operator=(const RunRecorder &) = delete;

    metrics::Registry &registry() { return registry_; }

    /** Stderr progress sink per FGP_PROGRESS/TTY policy; may be null. */
    metrics::ProgressSink *progress() { return progress_.get(); }

    /** Distill sweep results into point records (call once per sweep). */
    void record(const std::vector<ExperimentResult> &results);

    /** Freeze the run's wall clock (idempotent; implied by writers). */
    void finish();

    /** The "run" header record as one JSONL line (no newline). */
    std::string headerLine();

    /** Header plus every recorded point, one JSON object per line. */
    void writeManifest(std::ostream &os);

    /**
     * Write the manifest to $FGP_RUN_MANIFEST when set; returns the
     * path written (empty when the variable is unset).
     */
    std::string writeEnvManifest();

    /** Append the header record to @p path (one line per run). */
    void appendHistory(const std::string &path);

    double wallSeconds();

  private:
    struct PointSummary
    {
        std::string workload;
        std::string config;
        double nodesPerCycle = 0.0;
        double staticIpcBound = 0.0;
        double redundancy = 0.0;
        std::uint64_t cycles = 0;
        std::uint64_t issuedNodes = 0;
        int issueWidth = 0;
        std::uint64_t refNodes = 0;
        std::uint64_t mispredicts = 0;
        std::uint64_t faultsFired = 0;
        std::uint64_t hostNs = 0;
        StallBreakdown stalls;

        /** Static-disambiguation books (all zero when the feature and
         *  its cross-check are off). */
        std::uint64_t disambigFastLoads = 0;
        std::uint64_t disambigProbesEliminated = 0;
        std::uint64_t disambigCheckedPairs = 0;

        /** Interval-profile payload (tweaks_.profileWindow runs only):
         *  the point line always carries crit_path_cycles (0 when
         *  unprofiled), and profiled points additionally emit one
         *  kind:"window" record per closed window after their point
         *  record. */
        bool profiled = false;
        std::uint64_t windowCycles = 0;
        std::uint64_t critPathCycles = 0;
        std::vector<profile::WindowSample> windows;
    };

    std::string pointLine(const PointSummary &point) const;
    std::string windowLine(const PointSummary &point,
                           const profile::WindowSample &win) const;

    std::string bench_;
    ExperimentRunner *runner_;
    metrics::Registry registry_{true};
    std::unique_ptr<metrics::ProgressSink> progress_;
    std::vector<PointSummary> points_;
    std::vector<std::string> workloads_; ///< first-seen order, deduped
    std::chrono::steady_clock::time_point start_;
    std::int64_t timestamp_;
    double wallSeconds_ = -1.0;
};

} // namespace fgp

#endif // FGP_HARNESS_RECORDER_HH
