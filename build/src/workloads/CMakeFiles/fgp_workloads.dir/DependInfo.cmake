
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bench_asm.cc" "src/workloads/CMakeFiles/fgp_workloads.dir/bench_asm.cc.o" "gcc" "src/workloads/CMakeFiles/fgp_workloads.dir/bench_asm.cc.o.d"
  "/root/repo/src/workloads/runtime.cc" "src/workloads/CMakeFiles/fgp_workloads.dir/runtime.cc.o" "gcc" "src/workloads/CMakeFiles/fgp_workloads.dir/runtime.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/fgp_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/fgp_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/fgp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/fgp_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fgp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fgp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
