/**
 * @file
 * Transform-soundness checker: proves, by symbolic-summary comparison,
 * that the per-block optimizer and the basic block enlargement pass
 * preserve program effects.
 *
 * A block summary is computed over a hash-consed expression arena whose
 * canonicalization mirrors the optimizer's own algebra (constant folding
 * through evalAlu, copy collapse, immediate strength reduction, SW->LW
 * forwarding across provably disjoint stores). Two blocks are equivalent
 * when their summaries — live-out architectural registers, the ordered
 * store/syscall effect list, the fault-guard list and the exit transfer —
 * intern to the same expressions.
 *
 * For enlargement, each chain of the plan is replayed over the single
 * image: the primary must equal the composed hot path of its members,
 * every embedded fault guard must be exactly the cold-arc test of its
 * junction, and each companion must equal the composed prefix plus the
 * cold exit, faulting back at the primary (Figure 1's mutual AB/AC
 * edges).
 */

#ifndef FGP_VERIFY_EQUIV_HH
#define FGP_VERIFY_EQUIV_HH

#include "bbe/enlarge.hh"
#include "ir/image.hh"
#include "verify/diag.hh"

namespace fgp::verify {

/**
 * Prove each block of @p after equivalent to its counterpart in
 * @p before (same block ids). Shape differences are EQ005; effect
 * differences are EQ001..EQ004. Blocks with bit-identical node lists
 * are skipped.
 */
void checkTranslationSoundness(const CodeImage &before,
                               const CodeImage &after, Report &report,
                               std::string_view stage = "translated");

/**
 * Prove @p enlarged a sound enlargement of @p single under @p plan:
 * instance caps hold (BBE004), every chain resolves and maps to a
 * matching primary (BBE005), and primaries/companions are symbolically
 * equivalent to their composed chains (EQ001..EQ005).
 */
void checkEnlargementSoundness(const CodeImage &single,
                               const CodeImage &enlarged,
                               const EnlargePlan &plan, Report &report,
                               int max_instances = 16,
                               std::string_view stage = "enlarged");

} // namespace fgp::verify

#endif // FGP_VERIFY_EQUIV_HH
