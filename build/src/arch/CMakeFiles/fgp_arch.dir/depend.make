# Empty dependencies file for fgp_arch.
# This may be replaced when dependencies are built.
