# Empty compiler generated dependencies file for fgp_ir.
# This may be replaced when dependencies are built.
