#include "harness/recorder.hh"

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <fstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "harness/parallel.hh"
#include "metrics/manifest.hh"

namespace fgp {

RunRecorder::RunRecorder(std::string bench, ExperimentRunner *runner)
    : bench_(std::move(bench)), runner_(runner),
      progress_(metrics::makeStderrProgress()),
      start_(std::chrono::steady_clock::now()),
      timestamp_(static_cast<std::int64_t>(std::time(nullptr)))
{
    if (runner_)
        runner_->setMetrics(&registry_);
}

RunRecorder::~RunRecorder()
{
    if (runner_)
        runner_->setMetrics(nullptr);
}

void
RunRecorder::record(const std::vector<ExperimentResult> &results)
{
    points_.reserve(points_.size() + results.size());
    for (const ExperimentResult &r : results) {
        PointSummary point;
        point.workload = r.workload;
        point.config = r.config.name();
        point.nodesPerCycle = r.nodesPerCycle;
        point.staticIpcBound = r.staticIpcBound;
        point.redundancy = r.engine.redundancy();
        point.cycles = r.cycles;
        point.issuedNodes = r.engine.issuedNodes;
        point.issueWidth = r.engine.issueWidth;
        point.refNodes = r.refNodes;
        point.mispredicts = r.engine.mispredicts;
        point.faultsFired = r.engine.faultsFired;
        point.hostNs = r.hostNs;
        point.stalls = r.engine.stalls;
        point.disambigFastLoads = r.engine.disambigFastLoads;
        point.disambigProbesEliminated = r.engine.disambigProbesEliminated;
        point.disambigCheckedPairs = r.engine.disambigCheckedPairs;
        if (r.profile.enabled) {
            point.profiled = true;
            point.windowCycles = r.profile.windowCycles;
            point.critPathCycles = r.profile.critPath.pathCycles;
            point.windows = r.profile.windows;
        }
        points_.push_back(std::move(point));

        if (std::find(workloads_.begin(), workloads_.end(), r.workload) ==
            workloads_.end()) {
            workloads_.push_back(r.workload);
        }
    }
}

void
RunRecorder::finish()
{
    if (wallSeconds_ < 0.0) {
        wallSeconds_ =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
    }
}

double
RunRecorder::wallSeconds()
{
    finish();
    return wallSeconds_;
}

std::string
RunRecorder::headerLine()
{
    finish();

    std::uint64_t sim_cycles = 0;
    std::uint64_t host_ns = 0;
    for (const PointSummary &point : points_) {
        sim_cycles += point.cycles;
        host_ns += point.hostNs;
    }
    const double wall = wallSeconds_;
    const double sims = static_cast<double>(points_.size());

    metrics::JsonLineWriter w;
    w.field("schema", metrics::kRunSchema);
    w.field("kind", "run");
    w.field("bench", bench_);
    w.field("git", metrics::gitDescribe());
    w.field("timestamp", static_cast<std::uint64_t>(timestamp_));
    w.field("iso_time", metrics::isoTime(timestamp_));
    w.field("host", metrics::hostInfo());
    w.field("jobs", sweepJobs());
    w.field("scale", runner_ ? runner_->scale() : 0.0);
    w.field("sims", static_cast<std::uint64_t>(points_.size()));
    w.field("wall_seconds", wall);
    w.field("sims_per_sec", wall > 0.0 ? sims / wall : 0.0);
    w.field("sim_cycles", sim_cycles);
    w.field("host_ns", host_ns);
    w.field("host_ns_per_sim_cycle",
            sim_cycles ? static_cast<double>(host_ns) /
                             static_cast<double>(sim_cycles)
                       : 0.0);
    w.strings("workloads", workloads_);
    const metrics::Snapshot snap = registry_.snapshot();
    if (!snap.empty())
        w.raw("metrics", snap.toJson());
    return w.str();
}

std::string
RunRecorder::pointLine(const PointSummary &point) const
{
    metrics::JsonLineWriter w;
    w.field("kind", "point");
    w.field("workload", point.workload);
    w.field("config", point.config);
    w.field("nodes_per_cycle", point.nodesPerCycle);
    w.field("static_ipc_bound", point.staticIpcBound);
    w.field("redundancy", point.redundancy);
    w.field("cycles", point.cycles);
    w.field("issued_nodes", point.issuedNodes);
    w.field("issue_width", point.issueWidth);
    w.field("ref_nodes", point.refNodes);
    w.field("mispredicts", point.mispredicts);
    w.field("faults_fired", point.faultsFired);
    w.field("host_ns", point.hostNs);
    w.field("stall_fetch_redirect", point.stalls.fetchRedirectSlots);
    w.field("stall_fetch_idle", point.stalls.fetchIdleSlots);
    w.field("stall_window_full", point.stalls.windowFullSlots);
    w.field("stall_short_word", point.stalls.shortWordSlots);
    w.field("stall_drain", point.stalls.drainSlots);
    w.field("stall_operand_wait", point.stalls.operandWaitNodeCycles);
    w.field("stall_memory_wait", point.stalls.memoryWaitNodeCycles);
    w.field("stall_serialize_wait", point.stalls.serializeWaitNodeCycles);
    w.field("stall_fu_busy", point.stalls.fuBusyNodeCycles);
    w.field("crit_path_cycles", point.critPathCycles);
    w.field("disambig_fast_loads", point.disambigFastLoads);
    w.field("disambig_probes_eliminated", point.disambigProbesEliminated);
    w.field("disambig_checked_pairs", point.disambigCheckedPairs);
    return w.str();
}

std::string
RunRecorder::windowLine(const PointSummary &point,
                        const profile::WindowSample &win) const
{
    metrics::JsonLineWriter w;
    w.field("kind", "window");
    w.field("workload", point.workload);
    w.field("config", point.config);
    w.field("index", win.index);
    w.field("start_cycle", win.startCycle);
    w.field("cycles", win.cycles);
    w.field("ipc", win.ipc());
    w.field("issued_nodes", win.issuedNodes);
    w.field("retired_nodes", win.retiredNodes);
    w.field("executed_nodes", win.executedNodes);
    w.field("committed_blocks", win.committedBlocks);
    w.field("squashed_blocks", win.squashedBlocks);
    w.field("mispredicts", win.mispredicts);
    w.field("faults_fired", win.faultsFired);
    w.field("stall_fetch_redirect", win.stalls.fetchRedirectSlots);
    w.field("stall_fetch_idle", win.stalls.fetchIdleSlots);
    w.field("stall_window_full", win.stalls.windowFullSlots);
    w.field("stall_short_word", win.stalls.shortWordSlots);
    w.field("stall_drain", win.stalls.drainSlots);
    w.field("stall_operand_wait", win.stalls.operandWaitNodeCycles);
    w.field("stall_memory_wait", win.stalls.memoryWaitNodeCycles);
    w.field("stall_serialize_wait", win.stalls.serializeWaitNodeCycles);
    w.field("stall_fu_busy", win.stalls.fuBusyNodeCycles);
    w.field("ready_mean",
            win.cycles ? static_cast<double>(win.readySum) /
                             static_cast<double>(win.cycles)
                       : 0.0);
    w.field("ready_max", win.readyMax);
    w.field("live_max", win.liveMax);
    w.field("store_queue_max", win.storeQueueMax);
    w.field("write_buf_max", win.writeBufMax);
    // Hex string, not a number: JSON readers parse numbers as doubles,
    // which cannot hold all 64 fingerprint bits.
    w.field("sched_hash", format("0x%016llx",
                                 static_cast<unsigned long long>(
                                     win.schedHash)));
    return w.str();
}

void
RunRecorder::writeManifest(std::ostream &os)
{
    os << headerLine() << "\n";
    for (const PointSummary &point : points_) {
        os << pointLine(point) << "\n";
        for (const profile::WindowSample &win : point.windows)
            os << windowLine(point, win) << "\n";
    }
}

std::string
RunRecorder::writeEnvManifest()
{
    const char *path = std::getenv("FGP_RUN_MANIFEST");
    if (!path || !*path)
        return "";
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fgp_fatal("cannot write run manifest to ", path);
    writeManifest(out);
    return path;
}

void
RunRecorder::appendHistory(const std::string &path)
{
    std::ofstream out(path, std::ios::app);
    if (!out)
        fgp_fatal("cannot append run history to ", path);
    out << headerLine() << "\n";
}

} // namespace fgp
