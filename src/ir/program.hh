/**
 * @file
 * The flat Program: output of the assembler and input to the functional VM
 * and the translating loader. Code addresses are instruction indices; the
 * data segment is a byte image placed at kDataBase.
 */

#ifndef FGP_IR_PROGRAM_HH
#define FGP_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/node.hh"

namespace fgp {

/** Address-space layout constants (32-bit byte-addressable, little-endian). */
constexpr std::uint32_t kDataBase = 0x10000000;
constexpr std::uint32_t kStackTop = 0x7ffff000;

/** An assembled program. */
struct Program
{
    /** Flat instruction stream; branch/jump targets are indices into it. */
    std::vector<Node> instrs;

    /** Initialized data segment, loaded at kDataBase. */
    std::vector<std::uint8_t> data;

    /** Code labels: name -> instruction index. */
    std::unordered_map<std::string, std::int32_t> codeLabels;

    /** Data labels: name -> absolute address. */
    std::unordered_map<std::string, std::uint32_t> dataLabels;

    /** Entry instruction index (label "main" when present, else 0). */
    std::int32_t entry = 0;

    /** End of static data; initial program break for brk(). */
    std::uint32_t initialBrk() const
    {
        return kDataBase + static_cast<std::uint32_t>(data.size());
    }

    std::size_t size() const { return instrs.size(); }
};

/**
 * Validate internal consistency: register indices in range, scratch
 * registers absent (source programs use r0-r31 only), targets inside the
 * instruction stream, fault nodes absent (they only exist in images).
 * Throws FatalError with a diagnostic on the first violation.
 */
void validateProgram(const Program &prog);

} // namespace fgp

#endif // FGP_IR_PROGRAM_HH
