file(REMOVE_RECURSE
  "CMakeFiles/fgpsim_cli.dir/fgpsim.cc.o"
  "CMakeFiles/fgpsim_cli.dir/fgpsim.cc.o.d"
  "fgpsim"
  "fgpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
