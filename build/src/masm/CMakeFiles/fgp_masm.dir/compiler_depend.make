# Empty compiler generated dependencies file for fgp_masm.
# This may be replaced when dependencies are built.
