file(REMOVE_RECURSE
  "libfgp_branch.a"
)
