file(REMOVE_RECURSE
  "CMakeFiles/ilp_limits.dir/ilp_limits.cc.o"
  "CMakeFiles/ilp_limits.dir/ilp_limits.cc.o.d"
  "ilp_limits"
  "ilp_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
