#include "workloads/workloads.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/strutil.hh"
#include "masm/assembler.hh"
#include "workloads/bench_asm.hh"
#include "workloads/runtime.hh"

namespace fgp {

namespace {

/** Seed base per input set; generators derive their own sub-seeds. */
std::uint64_t
seedFor(InputSet set, std::uint64_t salt)
{
    return 0x5eed0000ULL + static_cast<std::uint64_t>(set) * 0x1000 + salt;
}

const char *const kWordParts[] = {
    "al", "an", "ar", "as", "at", "ba", "be", "ca", "co", "de", "di",
    "do", "ed", "en", "er", "es", "fa", "go", "ha", "he", "hi", "in",
    "is", "it", "la", "le", "lo", "ma", "me", "mi", "na", "ne", "no",
    "on", "or", "ou", "pa", "pe", "ra", "re", "ri", "ro", "sa", "se",
    "si", "so", "ta", "te", "ti", "to", "un", "ve", "vi", "wa", "we",
};
constexpr std::size_t kNumWordParts =
    sizeof(kWordParts) / sizeof(kWordParts[0]);

std::string
randomWord(Rng &rng, int min_parts, int max_parts)
{
    std::string word;
    const int parts = static_cast<int>(rng.range(min_parts, max_parts));
    for (int i = 0; i < parts; ++i)
        word += kWordParts[rng.below(kNumWordParts)];
    return word;
}

std::string
randomLine(Rng &rng, int min_words, int max_words)
{
    std::string line;
    const int words = static_cast<int>(rng.range(min_words, max_words));
    for (int i = 0; i < words; ++i) {
        if (i)
            line += ' ';
        line += randomWord(rng, 1, 4);
    }
    return line;
}

std::string
assembleWith(const char *bench_asm)
{
    return std::string(bench_asm) + "\n" + kRuntimeAsm;
}

int
scaled(double scale, int base, int min_value)
{
    return std::max(min_value, static_cast<int>(base * scale));
}

} // namespace

std::string
genSortInput(InputSet set, double scale)
{
    Rng rng(seedFor(set, 1));
    const int lines = scaled(scale, 72, 4);
    std::string input;
    for (int i = 0; i < lines; ++i) {
        input += randomLine(rng, 1, 5);
        input += '\n';
    }
    return input;
}

std::string
genGrepInput(InputSet set, double scale)
{
    Rng rng(seedFor(set, 2));
    const int lines = scaled(scale, 170, 6);
    // Words containing the fixed pattern "ard" get planted in ~1/7 lines.
    static const char *const kPlants[] = {"wizard", "hazard", "garden",
                                          "orchard", "leopard"};
    std::string input;
    for (int i = 0; i < lines; ++i) {
        std::string line = randomLine(rng, 2, 7);
        if (rng.chance(1, 7)) {
            line += ' ';
            line += kPlants[rng.below(5)];
        }
        input += line;
        input += '\n';
    }
    return input;
}

void
genDiffInputs(InputSet set, double scale, std::string &file_a,
              std::string &file_b)
{
    Rng rng(seedFor(set, 3));
    const int lines = scaled(scale, 46, 4);

    std::vector<std::string> a;
    a.reserve(static_cast<std::size_t>(lines));
    for (int i = 0; i < lines; ++i)
        a.push_back(randomLine(rng, 1, 5));

    // b = a with ~20% random edits (delete / insert / replace).
    std::vector<std::string> b;
    for (const std::string &line : a) {
        const std::uint64_t roll = rng.below(100);
        if (roll < 7)
            continue; // deletion
        if (roll < 14) {
            b.push_back(randomLine(rng, 1, 5)); // replacement
            continue;
        }
        b.push_back(line);
        if (roll >= 93)
            b.push_back(randomLine(rng, 1, 5)); // insertion
    }

    file_a.clear();
    for (const std::string &line : a) {
        file_a += line;
        file_a += '\n';
    }
    file_b.clear();
    for (const std::string &line : b) {
        file_b += line;
        file_b += '\n';
    }
}

std::string
genCppInput(InputSet set, double scale)
{
    Rng rng(seedFor(set, 4));
    const int macros = std::clamp(scaled(scale, 12, 2), 2, 48);
    const int lines = scaled(scale, 90, 4);

    std::vector<std::string> names;
    std::string input;
    for (int i = 0; i < macros; ++i) {
        std::string name = "M" + toUpper(randomWord(rng, 1, 2)) +
                           std::to_string(i);
        names.push_back(name);
        input += "#define " + name + " " + randomLine(rng, 1, 3) + "\n";
    }
    for (int i = 0; i < lines; ++i) {
        std::string line;
        const int tokens = static_cast<int>(rng.range(2, 8));
        for (int t = 0; t < tokens; ++t) {
            if (t)
                line += rng.chance(1, 4) ? "+" : " ";
            if (rng.chance(2, 5))
                line += names[rng.below(names.size())];
            else
                line += randomWord(rng, 1, 3);
        }
        input += line;
        input += '\n';
    }
    return input;
}

std::string
genCompressInput(InputSet set, double scale)
{
    Rng rng(seedFor(set, 5));
    const int bytes = scaled(scale, 2600, 64);
    // Text with repeated phrases so the LZW dictionary earns its keep.
    std::vector<std::string> phrases;
    for (int i = 0; i < 24; ++i)
        phrases.push_back(randomLine(rng, 1, 3));
    std::string input;
    while (static_cast<int>(input.size()) < bytes) {
        if (rng.chance(3, 5))
            input += phrases[rng.below(phrases.size())];
        else
            input += randomWord(rng, 1, 4);
        input += rng.chance(1, 8) ? '\n' : ' ';
    }
    input.resize(static_cast<std::size_t>(bytes));
    return input;
}

Workload::Workload(std::string name, Program program)
    : name_(std::move(name)), program_(std::move(program))
{
}

void
Workload::prepareOs(SimOS &os, InputSet set) const
{
    if (name_ == "sort") {
        os.setStdin(genSortInput(set, scale_));
    } else if (name_ == "grep") {
        os.setStdin(genGrepInput(set, scale_));
    } else if (name_ == "diff") {
        std::string a;
        std::string b;
        genDiffInputs(set, scale_, a, b);
        os.addFile("a.txt", a);
        os.addFile("b.txt", b);
    } else if (name_ == "cpp") {
        os.setStdin(genCppInput(set, scale_));
    } else if (name_ == "compress") {
        os.setStdin(genCompressInput(set, scale_));
    } else {
        fgp_fatal("unknown workload '", name_, "'");
    }
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {"sort", "grep", "diff",
                                                   "cpp", "compress"};
    return names;
}

Workload
makeWorkload(const std::string &name)
{
    const char *source = nullptr;
    if (name == "sort")
        source = kSortAsm;
    else if (name == "grep")
        source = kGrepAsm;
    else if (name == "diff")
        source = kDiffAsm;
    else if (name == "cpp")
        source = kCppAsm;
    else if (name == "compress")
        source = kCompressAsm;
    else
        fgp_fatal("unknown workload '", name, "'");

    return Workload(name, assemble(assembleWith(source), name));
}

std::vector<Workload>
makeAllWorkloads()
{
    std::vector<Workload> all;
    all.reserve(workloadNames().size());
    for (const std::string &name : workloadNames())
        all.push_back(makeWorkload(name));
    return all;
}

} // namespace fgp
