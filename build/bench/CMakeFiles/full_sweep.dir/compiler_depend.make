# Empty compiler generated dependencies file for full_sweep.
# This may be replaced when dependencies are built.
