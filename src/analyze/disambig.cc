#include "analyze/disambig.hh"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "base/logging.hh"
#include "verify/diag.hh"
#include "verify/symexpr.hh"
#include "vm/exec.hh"

namespace fgp::analyze {

namespace {

namespace sym = verify::sym;
using sym::ExprId;

[[maybe_unused]] const bool g_codes_registered = [] {
    verify::registerCodes({
        {verify::Code::NoAliasViolated, {"MD001", "no-alias-violated"}},
        {verify::Code::DisambigFactsStale, {"MD002", "disambig-facts-stale"}},
    });
    return true;
}();

/**
 * True when every node can be evaluated symbolically (known opcode, real
 * registers behind every used field). Blocks failing this are already
 * rejected by the structural verifier; the disambiguator just declines
 * to prove anything about them, which is always sound.
 */
bool
operandsEvaluable(const std::vector<Node> &nodes)
{
    const auto bad = [](std::uint8_t reg) {
        return reg == kRegNone || reg >= kNumRegs;
    };
    for (const Node &node : nodes) {
        if (node.op >= Opcode::NUM_OPCODES)
            return false;
        const OperandUse use = operandUse(opcodeInfo(node.op).form);
        if ((use.rd && bad(node.rd)) || (use.rs1 && bad(node.rs1)) ||
            (use.rs2 && bad(node.rs2)))
            return false;
    }
    return true;
}

/** One memory access with its canonical symbolic address. */
struct MemRef
{
    std::uint16_t node;
    bool isStore;
    ExprId addr;
    std::uint32_t len;
};

/**
 * Symbolic register-state walker: a reduced SymState (verify/equiv.cc)
 * that only needs values, not effect summaries. The store log replays
 * equiv.cc's loadValue rule — forwarding on exact match, version bumps
 * past possible conflicts — so two loads of an unclobbered address
 * intern to the same expression and stay usable as bases.
 */
class AddrWalker
{
  public:
    explicit AddrWalker(sym::Arena &arena) : arena_(arena)
    {
        for (std::uint8_t r = 0; r < kNumRegs; ++r)
            regs_[r] = arena.init(r);
        regs_[kRegZero] = arena.constant(0);
    }

    /** Evaluate node @p i; appends to @p refs when it accesses memory. */
    void
    evalNode(const Node &node, std::uint16_t i, std::vector<MemRef> &refs)
    {
        switch (node.cls()) {
          case NodeClass::IntAlu:
            write(node.dstReg(), aluValue(node));
            return;
          case NodeClass::Mem: {
            const ExprId addr = arena_.makeAlu(
                Opcode::ADD, read(node.rs1),
                arena_.constant(static_cast<std::uint32_t>(node.imm)));
            const std::uint32_t len = accessBytes(node.op);
            refs.push_back({i, node.isStore(), addr, len});
            if (node.isLoad()) {
                write(node.rd, loadValue(node.op, addr));
            } else {
                log_.push_back(
                    {node.op, addr, read(node.rs2), ++memVersion_, false});
            }
            return;
          }
          case NodeClass::Sys:
            write(kRegV0, arena_.opaque(node.origPc, opaqueSerial_++));
            log_.push_back({node.op, -1, -1, ++memVersion_, true});
            return;
          case NodeClass::Fault:
            return; // reads only
          case NodeClass::Control:
            if (node.op == Opcode::JAL)
                write(node.rd,
                      arena_.constant(
                          static_cast<std::uint32_t>(node.origPc + 1)));
            return;
        }
    }

  private:
    ExprId
    read(std::uint8_t reg) const
    {
        fgp_assert(reg != kRegNone && reg < kNumRegs,
                   "symbolic read of bad register");
        return regs_[reg];
    }

    void
    write(std::uint8_t reg, ExprId value)
    {
        if (reg != kRegNone && reg != kRegZero && reg < kNumRegs)
            regs_[reg] = value;
    }

    ExprId
    aluValue(const Node &node)
    {
        switch (opcodeInfo(node.op).form) {
          case OperandForm::RRR:
            return arena_.makeAlu(node.op, read(node.rs1), read(node.rs2));
          case OperandForm::RRI:
            return arena_.makeAlu(
                sym::rriRoot(node.op), read(node.rs1),
                arena_.constant(static_cast<std::uint32_t>(node.imm)));
          case OperandForm::RI: // LUI: value depends only on the immediate
            return arena_.constant(evalAlu(node, 0, 0));
          default:
            fgp_panic("aluValue on ", mnemonic(node.op));
        }
    }

    ExprId
    loadValue(Opcode op, ExprId addr)
    {
        for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
            if (it->barrier)
                return arena_.load(op, addr, it->versionAfter);
            if (it->addr == addr && it->op == Opcode::SW && op == Opcode::LW)
                return it->value; // store-to-load forwarding
            if (sym::definitelyDisjoint(arena_, addr, accessBytes(op),
                                        it->addr, accessBytes(it->op)))
                continue;
            return arena_.load(op, addr, it->versionAfter);
        }
        return arena_.load(op, addr, 0);
    }

    struct StoreRec
    {
        Opcode op;
        ExprId addr;
        ExprId value;
        std::int32_t versionAfter;
        bool barrier;
    };

    sym::Arena &arena_;
    std::array<ExprId, kNumRegs> regs_{};
    std::vector<StoreRec> log_;
    std::int32_t memVersion_ = 0;
    std::uint32_t opaqueSerial_ = 0;
};

} // namespace

std::string_view
aliasClassName(AliasClass cls)
{
    switch (cls) {
      case AliasClass::NoAlias: return "no-alias";
      case AliasClass::MustAlias: return "must-alias";
      case AliasClass::MayAlias: return "may-alias";
    }
    return "?";
}

BlockDisambig
disambigBlock(const ImageBlock &block)
{
    BlockDisambig out;
    out.block = block.id;
    out.entryPc = block.entryPc;
    out.enlarged = block.enlarged;
    out.companion = block.companion;
    out.nodeCount = block.nodes.size();
    out.loadIndependent.assign(block.nodes.size(), 0);

    if (!operandsEvaluable(block.nodes))
        return out; // nothing provable: every pair stays may-alias

    sym::Arena arena;
    AddrWalker walker(arena);
    std::vector<MemRef> refs;
    for (std::size_t i = 0; i < block.nodes.size(); ++i)
        walker.evalNode(block.nodes[i], static_cast<std::uint16_t>(i), refs);

    for (const MemRef &ref : refs)
        ++(ref.isStore ? out.stores : out.loads);

    // Classify every load/store and store/store pair. Disjointness and
    // sameness are properties of the two canonical address expressions
    // alone, so intervening syscalls (which change memory contents, not
    // these addresses) do not weaken the classification.
    std::vector<std::uint8_t> vs_all_stores(block.nodes.size(), 1);
    for (std::size_t a = 0; a < refs.size(); ++a) {
        for (std::size_t b = a + 1; b < refs.size(); ++b) {
            const MemRef &ra = refs[a];
            const MemRef &rb = refs[b];
            if (!ra.isStore && !rb.isStore)
                continue; // loads commute
            AliasClass cls = AliasClass::MayAlias;
            if (sym::definitelySame(ra.addr, ra.len, rb.addr, rb.len))
                cls = AliasClass::MustAlias;
            else if (sym::definitelyDisjoint(arena, ra.addr, ra.len,
                                             rb.addr, rb.len))
                cls = AliasClass::NoAlias;
            out.pairs.push_back(
                {ra.node, rb.node, cls, ra.isStore && rb.isStore});
            switch (cls) {
              case AliasClass::NoAlias:
                ++out.noAlias;
                out.facts.noAliasPairs.push_back(
                    MemDepFacts::packPair(ra.node, rb.node));
                break;
              case AliasClass::MustAlias: ++out.mustAlias; break;
              case AliasClass::MayAlias: ++out.mayAlias; break;
            }
            if (cls != AliasClass::NoAlias) {
                // A load/store pair that is not proven disjoint pins
                // both ends: neither end is independent of all stores.
                if (ra.isStore != rb.isStore) {
                    vs_all_stores[ra.node] = 0;
                    vs_all_stores[rb.node] = 0;
                }
            }
        }
    }
    std::sort(out.facts.noAliasPairs.begin(), out.facts.noAliasPairs.end());

    // A load is independent when it is proven no-alias against every
    // store of the block, in any order — so the claim survives any legal
    // schedule. Blocks with a system call are excluded wholesale: the
    // syscall may write memory the symbolic log cannot see.
    if (!block.hasSyscall) {
        for (const MemRef &ref : refs) {
            if (ref.isStore || !vs_all_stores[ref.node])
                continue;
            out.loadIndependent[ref.node] = 1;
            ++out.independentLoads;
        }
    }

    if (!block.words.empty()) {
        out.issuePos.assign(block.nodes.size(), 0);
        std::uint16_t pos = 0;
        for (const Word &word : block.words)
            for (std::uint16_t idx : word)
                out.issuePos[idx] = pos++;
    }
    return out;
}

DisambigImage
disambigImage(const CodeImage &image)
{
    DisambigImage out;
    out.blocks.reserve(image.blocks.size());
    for (const ImageBlock &block : image.blocks) {
        BlockDisambig b = disambigBlock(block);
        out.pairsTotal += b.pairs.size();
        out.noAliasTotal += b.noAlias;
        out.mustAliasTotal += b.mustAlias;
        out.mayAliasTotal += b.mayAlias;
        out.independentLoadsTotal += b.independentLoads;
        if (b.enlarged)
            out.enlargedNoAlias += b.noAlias;
        out.blocks.push_back(std::move(b));
    }
    return out;
}

bool
staticDisambigEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("FGP_STATIC_DISAMBIG");
        return env != nullptr && env[0] == '1';
    }();
    return enabled;
}

bool
disambigXcheckEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("FGP_DISAMBIG_XCHECK")) {
            if (env[0] == '1')
                return true;
            if (env[0] == '0')
                return false;
        }
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return enabled;
}

std::function<MemDepFacts(const ImageBlock &)>
disambigSchedulingHook()
{
    return [](const ImageBlock &block) {
        return disambigBlock(block).facts;
    };
}

} // namespace fgp::analyze
