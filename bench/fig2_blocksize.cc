/**
 * @file
 * Figure 2: dynamic basic-block size histograms, single vs. enlarged
 * basic blocks, averaged over all five benchmarks. Committed block sizes
 * are collected by the engine at retirement (dyn4, issue model 8,
 * memory A — the histogram is configuration-insensitive).
 */

#include "base/histogram.hh"
#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Figure 2",
           "dynamic basic block size distribution, single vs. enlarged");

    ExperimentRunner runner(envScale());
    const MachineConfig base{Discipline::Dyn4, issueModel(8),
                             memoryConfig('A'), BranchMode::Single};

    Histogram single(4, 32);
    Histogram enlarged(4, 32);
    for (const std::string &workload : workloadNames()) {
        MachineConfig config = base;
        config.branch = BranchMode::Single;
        single.merge(runner.run(workload, config).engine.blockSize);
        config.branch = BranchMode::Enlarged;
        enlarged.merge(runner.run(workload, config).engine.blockSize);
    }

    Table table({"block size (nodes)", "single %", "enlarged %"});
    for (std::size_t b = 0; b < single.numBuckets(); ++b) {
        if (single.bucketCount(b) == 0 && enlarged.bucketCount(b) == 0)
            continue;
        table.addRow({single.bucketLabel(b),
                      format("%.1f", 100.0 * single.bucketFraction(b)),
                      format("%.1f", 100.0 * enlarged.bucketFraction(b))});
    }
    const double single_over =
        100.0 * static_cast<double>(single.overflowCount()) /
        static_cast<double>(single.count());
    const double enl_over =
        100.0 * static_cast<double>(enlarged.overflowCount()) /
        static_cast<double>(enlarged.count());
    table.addRow({"128+", format("%.1f", single_over),
                  format("%.1f", enl_over)});
    table.print(std::cout);

    std::cout << format("\nmean block size: single %.1f nodes, enlarged "
                        "%.1f nodes\n",
                        single.mean(), enlarged.mean());
    std::cout << "Expected shape (paper): over half of single blocks at "
                 "0-4 nodes; the enlarged distribution is much flatter.\n";
    return 0;
}
