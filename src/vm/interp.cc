#include "vm/interp.hh"

#include "base/logging.hh"
#include "vm/exec.hh"

namespace fgp {

RunResult
interpret(const Program &prog, SimOS &os, SparseMemory &mem,
          const InterpOptions &opts)
{
    validateProgram(prog);

    std::uint32_t regs[kNumRegs] = {};
    regs[kRegSp] = kStackTop;

    if (!prog.data.empty())
        mem.writeBytes(kDataBase, prog.data.data(), prog.data.size());
    os.setInitialBrk(prog.initialBrk());

    const MemPorts ports{
        [&](std::uint32_t addr) { return mem.read8(addr); },
        [&](std::uint32_t addr, std::uint8_t value) {
            mem.write8(addr, value);
        },
    };

    RunResult result;
    result.dynamicBlocks = 1;
    std::int32_t pc = prog.entry;
    const auto num_instrs = static_cast<std::int32_t>(prog.instrs.size());

    auto read_reg = [&](std::uint8_t reg) -> std::uint32_t {
        // Unused operand slots carry kRegNone; their value is ignored.
        return reg == kRegZero || reg >= kNumRegs ? 0 : regs[reg];
    };
    auto write_reg = [&](std::uint8_t reg, std::uint32_t value) {
        if (reg != kRegZero && reg != kRegNone)
            regs[reg] = value;
    };

    while (true) {
        if (pc < 0 || pc >= num_instrs)
            fgp_fatal("pc ", pc, " outside program (fell off the end?)");
        const Node &node = prog.instrs[pc];
        ++result.dynamicNodes;
        if (result.dynamicNodes > opts.maxNodes)
            fgp_fatal("node budget exceeded (", opts.maxNodes,
                      "); runaway program?");

        switch (node.cls()) {
          case NodeClass::IntAlu: {
            ++result.aluNodes;
            write_reg(node.rd, evalAlu(node, read_reg(node.rs1),
                                       read_reg(node.rs2)));
            ++pc;
            break;
          }
          case NodeClass::Mem: {
            ++result.memNodes;
            const std::uint32_t addr =
                effectiveAddress(node, read_reg(node.rs1));
            if (node.isLoad()) {
                ++result.loadNodes;
                std::uint8_t bytes[4];
                mem.readBytes(addr, bytes, accessBytes(node.op));
                write_reg(node.rd, loadResult(node.op, bytes));
            } else {
                ++result.storeNodes;
                std::uint8_t bytes[4];
                const std::uint32_t len =
                    storeBytes(node.op, read_reg(node.rs2), bytes);
                mem.writeBytes(addr, bytes, len);
            }
            ++pc;
            break;
          }
          case NodeClass::Control: {
            ++result.controlNodes;
            ++result.dynamicBlocks;
            switch (node.op) {
              case Opcode::J:
                if (opts.profile)
                    opts.profile->recordJump(pc);
                pc = node.target;
                break;
              case Opcode::JAL:
                write_reg(node.rd, static_cast<std::uint32_t>(pc + 1));
                pc = node.target;
                break;
              case Opcode::JR:
                pc = static_cast<std::int32_t>(read_reg(node.rs1));
                break;
              default: { // conditional branch
                const bool taken = evalCondition(node.op, read_reg(node.rs1),
                                                 read_reg(node.rs2));
                if (opts.profile)
                    opts.profile->recordBranch(pc, taken);
                pc = taken ? node.target : pc + 1;
                break;
              }
            }
            break;
          }
          case NodeClass::Sys: {
            ++result.aluNodes;
            const std::uint32_t value =
                os.syscall(read_reg(kRegV0), read_reg(kRegA0),
                           read_reg(kRegA1), read_reg(kRegA2),
                           read_reg(kRegA3), ports);
            if (os.exited()) {
                result.exited = true;
                result.exitCode = os.exitCode();
                return result;
            }
            write_reg(kRegV0, value);
            ++pc;
            break;
          }
          case NodeClass::Fault:
            fgp_fatal("fault node in flat program at pc ", pc);
        }
    }
}

RunResult
interpret(const Program &prog, SimOS &os, const InterpOptions &opts)
{
    SparseMemory mem;
    return interpret(prog, os, mem, opts);
}

} // namespace fgp
