#!/bin/sh
# Compare two BENCH_engine.json records emitted by bench/perf_selfcheck
# and fail when the new wall time regresses by more than the threshold.
#
#   usage: tools/check_bench.sh <previous.json> <current.json> [max_regress_pct]
#
# The default threshold is 20 (percent). A missing previous record is not
# an error — the current record simply becomes the new baseline.
set -eu

prev="${1:?usage: check_bench.sh <previous.json> <current.json> [pct]}"
cur="${2:?usage: check_bench.sh <previous.json> <current.json> [pct]}"
pct="${3:-20}"

field() {
    # Extract a numeric field from the flat one-key-per-line JSON that
    # perf_selfcheck writes.
    awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ \t]/, "", $2); print $2 }' "$1"
}

if [ ! -f "$cur" ]; then
    echo "check_bench: current record $cur missing" >&2
    exit 1
fi
if [ ! -f "$prev" ]; then
    echo "check_bench: no previous record ($prev); accepting $cur as baseline"
    exit 0
fi

prev_wall=$(field "$prev" wall_seconds)
cur_wall=$(field "$cur" wall_seconds)
prev_rate=$(field "$prev" sims_per_sec)
cur_rate=$(field "$cur" sims_per_sec)

if [ -z "$prev_wall" ] || [ -z "$cur_wall" ]; then
    echo "check_bench: malformed record (wall_seconds missing)" >&2
    exit 1
fi

echo "check_bench: wall ${prev_wall}s -> ${cur_wall}s, sims/sec ${prev_rate:-?} -> ${cur_rate:-?}"

awk -v prev="$prev_wall" -v cur="$cur_wall" -v pct="$pct" 'BEGIN {
    if (prev <= 0) exit 0;
    regress = (cur - prev) / prev * 100.0;
    if (regress > pct) {
        printf "check_bench: FAIL — wall time regressed %.1f%% (> %s%% allowed)\n",
               regress, pct;
        exit 1;
    }
    printf "check_bench: OK — wall time change %+.1f%% (<= %s%% allowed)\n",
           regress, pct;
}'
