# Empty compiler generated dependencies file for fig5_benchmarks.
# This may be replaced when dependencies are built.
