#include "engine/store_index.hh"

#include "base/logging.hh"

namespace fgp {

std::size_t
StoreIndex::findExtent(std::uint64_t seq) const
{
    std::size_t lo = 0, hi = extents_.size();
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (extents_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo < extents_.size() && extents_[lo].seq == seq
               ? lo
               : extents_.size();
}

void
StoreIndex::addStore(std::uint64_t seq, std::uint32_t addr,
                     std::uint32_t len, std::uint32_t pos)
{
    // Stores resolve addresses out of order; keep the ring sorted. The
    // insertion point is almost always the back.
    std::size_t at = extents_.size();
    while (at > 0 && extents_[at - 1].seq > seq)
        --at;
    fgp_assert(at == 0 || extents_[at - 1].seq != seq, "store seq ", seq,
               " indexed twice");
    extents_.insert(at, ExtentRec{seq, addr, len});

    for (std::uint32_t b = 0; b < len; ++b) {
        const std::uint32_t idx = allocVer(ByteVer{seq, kNilIndex, pos,
                                                   0, false});
        std::uint32_t &head = byteHeads_.getOrInsert(addr + b, kNilIndex);
        // Chains are seq-ascending; walk to the insertion point (chains
        // are nearly always length 1-2).
        if (head == kNilIndex || vers_[head].seq > seq) {
            vers_[idx].next = head;
            head = idx;
            continue;
        }
        std::uint32_t prev = head;
        while (vers_[prev].next != kNilIndex &&
               vers_[vers_[prev].next].seq < seq)
            prev = vers_[prev].next;
        vers_[idx].next = vers_[prev].next;
        vers_[prev].next = idx;
    }
}

void
StoreIndex::setData(std::uint64_t seq, const std::uint8_t *data)
{
    const std::size_t ext = findExtent(seq);
    fgp_assert(ext != extents_.size(), "setData on unindexed store ", seq);
    const ExtentRec extent = extents_[ext];
    for (std::uint32_t b = 0; b < extent.len; ++b) {
        std::uint32_t *head = byteHeads_.find(extent.addr + b);
        fgp_assert(head, "store byte list lost");
        std::uint32_t idx = *head;
        while (idx != kNilIndex && vers_[idx].seq != seq)
            idx = vers_[idx].next;
        fgp_assert(idx != kNilIndex, "store byte version lost");
        vers_[idx].value = data[b];
        vers_[idx].known = true;
    }
}

void
StoreIndex::removeBytes(std::uint64_t seq, std::uint32_t addr,
                        std::uint32_t len)
{
    for (std::uint32_t b = 0; b < len; ++b) {
        const std::uint32_t byte_addr = addr + b;
        std::uint32_t *head = byteHeads_.find(byte_addr);
        fgp_assert(head, "store byte list lost");
        std::uint32_t idx = *head;
        std::uint32_t prev = kNilIndex;
        while (idx != kNilIndex && vers_[idx].seq != seq) {
            prev = idx;
            idx = vers_[idx].next;
        }
        fgp_assert(idx != kNilIndex, "store byte version lost");
        if (prev == kNilIndex)
            *head = vers_[idx].next;
        else
            vers_[prev].next = vers_[idx].next;
        freeVer(idx);
        if (*head == kNilIndex)
            byteHeads_.erase(byte_addr);
    }
}

void
StoreIndex::erase(std::uint64_t seq)
{
    const std::size_t ext = findExtent(seq);
    fgp_assert(ext != extents_.size(), "erase of unindexed store ", seq);
    removeBytes(seq, extents_[ext].addr, extents_[ext].len);
    extents_.erase(ext);
}

void
StoreIndex::squash(std::uint64_t seq_boundary)
{
    while (!extents_.empty() && extents_.back().seq >= seq_boundary) {
        const ExtentRec victim = extents_.back();
        removeBytes(victim.seq, victim.addr, victim.len);
        extents_.pop_back();
    }
}

StoreIndex::Lookup
StoreIndex::lookup(std::uint32_t byte_addr, std::uint64_t seq_limit) const
{
    Lookup result;
    const std::uint32_t *head = byteHeads_.find(byte_addr);
    if (!head)
        return result;
    // Youngest version older than the probing load: last chain entry
    // with seq < limit (chains are seq-ascending).
    std::uint32_t best = kNilIndex;
    for (std::uint32_t idx = *head;
         idx != kNilIndex && vers_[idx].seq < seq_limit;
         idx = vers_[idx].next)
        best = idx;
    if (best == kNilIndex)
        return result;
    const ByteVer &ver = vers_[best];
    if (!ver.known) {
        result.status = Lookup::Status::NeedData;
        result.blocker = ver.seq;
        result.blockerPos = ver.pos;
        return result;
    }
    result.status = Lookup::Status::Hit;
    result.value = ver.value;
    return result;
}

void
StoreIndex::clearRetain()
{
    byteHeads_.clearRetain();
    vers_.clear();
    freeVer_ = kNilIndex;
    extents_.clearRetain();
}

} // namespace fgp
