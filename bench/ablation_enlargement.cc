/**
 * @file
 * Ablation: sensitivity of the paper's result to the enlargement
 * thresholds (§2.3's "optimal point between the enlargement of basic
 * blocks and the use of dynamic scheduling"). Sweeps the maximum chain
 * length and the dominant-arc ratio threshold on dyn4 / issue 8 /
 * memory A with enlarged blocks, reporting performance, redundancy and
 * fault density.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: enlargement thresholds",
           "dyn4 / issue 8 / memory A, enlarged blocks");

    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('A'), BranchMode::Enlarged};

    Table table({"max_chain", "min_ratio", "nodes/cycle", "redundancy",
                 "mean_chain", "faults/1k nodes"});

    for (int chain : {2, 4, 8, 16}) {
        for (double ratio : {0.60, 0.75, 0.90}) {
            EnlargeOptions opts;
            opts.maxChainLen = chain;
            opts.minArcRatio = ratio;
            ExperimentRunner runner(envScale(), opts);

            double npc = 0.0;
            double red = 0.0;
            double chain_len = 0.0;
            double fault_rate = 0.0;
            for (const std::string &workload : workloadNames()) {
                const ExperimentResult r = runner.run(workload, config);
                npc += r.nodesPerCycle;
                red += r.engine.redundancy();
                chain_len += runner.enlargeStats(workload).meanChainLen;
                fault_rate += 1000.0 *
                              static_cast<double>(r.engine.faultsFired) /
                              static_cast<double>(r.refNodes);
            }
            const double n = static_cast<double>(workloadNames().size());
            table.addRow({std::to_string(chain), format("%.2f", ratio),
                          format("%.3f", npc / n), format("%.3f", red / n),
                          format("%.2f", chain_len / n),
                          format("%.2f", fault_rate / n)});
        }
    }
    table.print(std::cout);
    std::cout << "\nLonger chains raise issue-slot utilization but also "
                 "fault density; lower ratio thresholds fuse colder "
                 "branches (diminishing returns — §2.3).\n";
    return 0;
}
