#include "metrics/progress.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include <unistd.h>

#include "base/strutil.hh"
#include "metrics/manifest.hh"

namespace fgp::metrics {

StreamProgress::StreamProgress(std::ostream &os, Options opts)
    : os_(os), opts_(opts)
{
}

void
StreamProgress::beginSweep(std::size_t total_points)
{
    const std::lock_guard<std::mutex> lock(mu_);
    total_ = total_points;
    done_ = 0;
    simCycles_ = 0;
    hostNs_ = 0;
    slowestNs_ = 0;
    slowestLabel_.clear();
    start_ = Clock::now();
    lastEmit_ = start_;
}

double
StreamProgress::elapsedSeconds() const
{
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

void
StreamProgress::pointDone(std::string_view label, std::uint64_t host_ns,
                          std::uint64_t sim_cycles)
{
    const std::lock_guard<std::mutex> lock(mu_);
    ++done_;
    simCycles_ += sim_cycles;
    hostNs_ += host_ns;
    if (host_ns > slowestNs_) {
        slowestNs_ = host_ns;
        slowestLabel_ = label;
    }

    const bool final = total_ && done_ >= total_;
    const double since =
        std::chrono::duration<double>(Clock::now() - lastEmit_).count();
    const double gate =
        opts_.statusLine ? opts_.minRedrawSeconds : opts_.heartbeatSeconds;
    if (final || since >= gate) {
        render(false);
        lastEmit_ = Clock::now();
    }
}

void
StreamProgress::render(bool final)
{
    const double elapsed = elapsedSeconds();
    const double rate = elapsed > 0.0
                            ? static_cast<double>(done_) / elapsed
                            : 0.0;
    const std::size_t remaining = total_ > done_ ? total_ - done_ : 0;
    const double eta =
        rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
    const double slowest = static_cast<double>(slowestNs_) / 1e9;

    if (opts_.statusLine) {
        std::string line = format(
            "\r[%zu/%zu] %.1f sims/s, eta %.0fs", done_, total_, rate, eta);
        if (!slowestLabel_.empty())
            line += format(", slowest %s (%.2fs)", slowestLabel_.c_str(),
                           slowest);
        // Pad so a shorter redraw fully overwrites the previous one.
        if (line.size() < 78)
            line.append(78 - line.size(), ' ');
        os_ << line;
        if (final)
            os_ << "\n";
        os_.flush();
        return;
    }

    JsonLineWriter json;
    json.field("kind", "progress")
        .field("done", static_cast<std::uint64_t>(done_))
        .field("total", static_cast<std::uint64_t>(total_))
        .field("elapsed_seconds", elapsed)
        .field("sims_per_sec", rate)
        .field("eta_seconds", eta)
        .field("sim_cycles", simCycles_)
        .field("slowest", slowestLabel_)
        .field("slowest_seconds", slowest);
    os_ << json.str() << "\n";
    os_.flush();
}

void
StreamProgress::endSweep()
{
    const std::lock_guard<std::mutex> lock(mu_);
    render(true);
    lastEmit_ = Clock::now();
}

std::unique_ptr<ProgressSink>
makeStderrProgress()
{
    const char *env = std::getenv("FGP_PROGRESS");
    const bool tty = isatty(STDERR_FILENO) != 0;
    const bool on = env ? std::string_view(env) != "0" : tty;
    if (!on)
        return nullptr;
    StreamProgress::Options opts;
    opts.statusLine = tty;
    return std::make_unique<StreamProgress>(std::cerr, opts);
}

} // namespace fgp::metrics
