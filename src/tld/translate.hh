/**
 * @file
 * Top of the translating loader: per-machine-configuration code
 * generation for a CodeImage (optimization + word packing), mirroring the
 * paper's tld, which "does an optimized code generation for a specific
 * machine configuration" (§3.1).
 */

#ifndef FGP_TLD_TRANSLATE_HH
#define FGP_TLD_TRANSLATE_HH

#include <functional>

#include "arch/config.hh"
#include "ir/image.hh"
#include "tld/depgraph.hh"
#include "tld/optimizer.hh"

namespace fgp {

/** Translation knobs. */
struct TranslateOptions
{
    /**
     * Optimize enlarged blocks (re-optimization as a unit, §2.3). Single
     * blocks are translated 1:1 so that the retired node count of a
     * single-block run equals the functional VM's dynamic node count —
     * the paper's "number of nodes retired is the same for a given
     * benchmark on a given set of input data".
     */
    bool optimizeEnlarged = true;

    /** Also optimize original single blocks (ablation only). */
    bool optimizeAll = false;

    OptimizerOptions optimizer = {};

    /**
     * Optional memory-disambiguation hook, invoked per block after
     * optimization and before static scheduling. The returned no-alias
     * facts let the scheduler hoist loads above provably independent
     * stores. Default none: schedules stay bit-identical to the
     * conservative baseline. Installed by the harness when
     * FGP_STATIC_DISAMBIG=1 (analyze::disambigSchedulingHook); tld itself
     * never computes facts, keeping the layering acyclic.
     */
    std::function<MemDepFacts(const ImageBlock &)> disambigHook;

    /**
     * Optional exact-schedule adoption hook, invoked per block after
     * static scheduling with the issue model, hit latency and the same
     * facts the greedy schedule was built with. It may replace
     * block.words with a provably shorter schedule obeying the same
     * packing rules. Default none: schedules stay bit-identical to the
     * greedy baseline. Installed by the harness when FGP_ORACLE_SCHED=1
     * (analyze::oracleAdoptionHook); like the disambig hook, tld never
     * computes the schedules itself, keeping the layering acyclic. The
     * post-translation verifier re-proves adopted images
     * effect-equivalent as for any other translation.
     */
    std::function<void(ImageBlock &, const IssueModel &, int,
                       const MemDepFacts *)>
        oracleHook;
};

/**
 * Optimize (per options) and pack every block of @p image for @p config.
 * Returns the optimizer statistics.
 */
OptimizerStats translate(CodeImage &image, const MachineConfig &config,
                         const TranslateOptions &opts = {});

} // namespace fgp

#endif // FGP_TLD_TRANSLATE_HH
