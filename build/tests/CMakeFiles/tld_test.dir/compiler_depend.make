# Empty compiler generated dependencies file for tld_test.
# This may be replaced when dependencies are built.
