/**
 * @file
 * Shared helpers for the figure-reproduction benches: the ten scheduling
 * disciplines of Figures 3/4/6 and uniform table printing.
 */

#ifndef FGP_BENCH_FIG_COMMON_HH
#define FGP_BENCH_FIG_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/recorder.hh"

namespace fgp::bench {

/** One line of Figures 3/4/6: a discipline plus a branch mode. */
struct Series
{
    Discipline discipline;
    BranchMode branch;

    std::string
    name() const
    {
        return disciplineName(discipline) + "/" + branchModeName(branch);
    }
};

/** The ten series of Figures 3, 4 and 6, in the paper's order. */
inline std::vector<Series>
tenSeries()
{
    std::vector<Series> series;
    for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged})
        for (Discipline d : allDisciplines())
            series.push_back({d, bm});
    for (Discipline d : {Discipline::Dyn4, Discipline::Dyn256})
        series.push_back({d, BranchMode::Perfect});
    return series;
}

/** Input scale from FGP_SCALE (default 1.0 = the paper-sized inputs). */
inline double
envScale()
{
    if (const char *value = std::getenv("FGP_SCALE"))
        return std::max(0.01, std::atof(value));
    return 1.0;
}

/**
 * Run every (benchmark x configuration) point of a figure as one sweep
 * (parallel across FGP_JOBS workers) and reduce each configuration to
 * the mean of @p metric over the five benchmarks. The summation runs in
 * workloadNames() order — the same order the serial
 * ExperimentRunner::meanNodesPerCycle loop used — so the printed tables
 * are byte-identical at any job count.
 *
 * When @p recorder is given it observes the sweep: live progress on
 * stderr and one manifest point per (benchmark, configuration) cell.
 */
template <typename Metric>
inline std::vector<double>
sweepMeans(ExperimentRunner &runner,
           const std::vector<MachineConfig> &configs, Metric metric,
           RunRecorder *recorder = nullptr)
{
    const std::vector<std::string> &workloads = workloadNames();
    std::vector<SweepPoint> points;
    points.reserve(configs.size() * workloads.size());
    for (const MachineConfig &config : configs)
        for (const std::string &workload : workloads)
            points.push_back({workload, config});

    const std::vector<ExperimentResult> results =
        runSweep(runner, points, 0,
                 recorder ? recorder->progress() : nullptr);
    if (recorder)
        recorder->record(results);

    std::vector<double> means;
    means.reserve(configs.size());
    std::size_t i = 0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double sum = 0.0;
        for (std::size_t w = 0; w < workloads.size(); ++w)
            sum += metric(results[i++]);
        means.push_back(sum / static_cast<double>(workloads.size()));
    }
    return means;
}

/**
 * End-of-bench manifest hook: when FGP_RUN_MANIFEST names a file, the
 * recorder's fgpsim-run-v1 manifest is written there (for `fgpsim
 * compare`, CI perf gates, archiving).
 */
inline void
finishRun(RunRecorder &recorder)
{
    const std::string path = recorder.writeEnvManifest();
    if (!path.empty())
        std::cerr << "run manifest written to " << path << "\n";
}

/** Standard header printed by every figure bench. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::cout << "\n=== " << figure << " — " << description << " ===\n"
              << "(Melvin & Patt, ISCA 1991; metric: retired nodes per "
                 "cycle, mean over sort/grep/diff/cpp/compress)\n\n";
}

} // namespace fgp::bench

#endif // FGP_BENCH_FIG_COMMON_HH
