/**
 * @file
 * Fixed-bucket histogram used for basic-block size distributions and window
 * occupancy statistics (Figure 2 of the paper).
 */

#ifndef FGP_BASE_HISTOGRAM_HH
#define FGP_BASE_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fgp {

/**
 * Histogram over non-negative integer samples with uniform bucket width.
 * Out-of-range samples are never clamped or dropped: samples at or above
 * the top bucket land in a sticky overflow bucket, samples below the
 * optional origin land in an underflow bucket, and both counts are
 * reported (overflowCount / underflowCount, and in toJson()).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (>= 1).
     * @param num_buckets  Number of regular buckets (>= 1).
     * @param origin       Lower bound of the first bucket; samples below
     *                     it are recorded as underflow.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets,
              std::uint64_t origin = 0);

    /** Record one sample. */
    void add(std::uint64_t sample, std::uint64_t weight = 1);

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return bucketWidth_; }
    std::uint64_t origin() const { return origin_; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflowCount() const { return overflow_; }
    std::uint64_t underflowCount() const { return underflow_; }

    /** Fraction of samples in bucket i (0 when empty). */
    double bucketFraction(std::size_t i) const;

    /** Label like "0-4" for bucket i. */
    std::string bucketLabel(std::size_t i) const;

    /**
     * Compact JSON object: geometry, summary statistics, the bucket
     * counts, and the underflow/overflow counts. Consumed by the
     * observability exporters (src/obs/) and tools/check_bench.sh.
     */
    std::string toJson() const;

    /** Reset all counters. */
    void clear();

  private:
    std::uint64_t bucketWidth_;
    std::uint64_t origin_ = 0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace fgp

#endif // FGP_BASE_HISTOGRAM_HH
