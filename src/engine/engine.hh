/**
 * @file
 * The cycle-level run-time simulator (the paper's "sim", §3.1).
 *
 * Execution-driven: nodes compute real values on speculative state, so
 * run-time memory disambiguation, wrong-path execution and fault repair
 * behave like the modeled hardware. One simulate() call evaluates one
 * machine configuration on one translated image:
 *
 *  - fetch/issue: one multi-node word per cycle from the current basic
 *    block; entering a new block requires window occupancy below the
 *    discipline's cap; branch prediction (2-bit counter BTB + BTFN, or the
 *    perfect trace) selects the next block;
 *  - dynamic scheduling: register renaming at issue; dataflow wakeup;
 *    oldest-first selection onto the word-shaped function units (M memory
 *    ports, A ALUs, fully pipelined);
 *  - static scheduling: the compiler's words execute strictly in order
 *    with a full interlock (a word waits until every node in it has its
 *    operands);
 *  - loads disambiguate at run time against the in-window store queue
 *    (byte-accurate forwarding); stores commit to the write buffer at
 *    block retirement;
 *  - speculative execution: per-block checkpoint repair — a mispredicted
 *    branch squashes younger blocks, a firing fault node squashes its own
 *    block too and redirects to the fault-to companion.
 */

#ifndef FGP_ENGINE_ENGINE_HH
#define FGP_ENGINE_ENGINE_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "base/histogram.hh"
#include "base/stats.hh"
#include "branch/predictor_opts.hh"
#include "ir/image.hh"
#include "vm/memory.hh"
#include "vm/simos.hh"

namespace fgp {

namespace obs { class EventBus; }
namespace metrics { class Registry; }
namespace profile { class IntervalProfiler; }
namespace analyze { struct DisambigImage; }

struct EngineWorkspace;

/**
 * Allocation observer for the zero-steady-state-allocation self-check
 * (bench/perf_selfcheck.cc). The hook returns a monotone count of heap
 * allocations (typically from a counting operator new); the engine
 * samples it at the cycle-loop boundaries and around each system call,
 * and reports the difference in EngineResult::allocCycleLoop /
 * allocSyscall. Null (the default) disables sampling. Install before
 * spawning simulation threads; the pointer is read with relaxed atomic
 * loads and never changes a schedule.
 */
void setAllocHook(std::uint64_t (*hook)());

/** Options for one simulation. */
struct EngineOptions
{
    MachineConfig config;

    /**
     * Committed-block trace for BranchMode::Perfect (produced by
     * runAtomic with recordTrace on the same image). Ignored otherwise.
     */
    const std::vector<std::int32_t> *perfectTrace = nullptr;

    /** Runaway guard. */
    std::uint64_t maxCycles = 4'000'000'000ULL;

    /** Branch prediction configuration (BTB size, static hints, RAS). */
    PredictorOptions predictor = {};

    /**
     * Extension (paper §3.1 closing remark): predict on faults so that
     * repeated faults cause control transfers to start with an alternate
     * enlarged instance instead of the primary one.
     */
    bool predictFaultTargets = false;

    /** Override the window size in basic blocks (0: per discipline). */
    int windowOverride = 0;

    /**
     * Ablation (§2.1): conservative memory disambiguation — a load waits
     * until every older in-window store has executed, instead of
     * checking addresses at run time.
     */
    bool conservativeLoads = false;

    /**
     * Static memory-disambiguation facts for the simulated image
     * (analyze/disambig.hh), or null — the default, with no effect on
     * the schedule. Consulted only through the two switches below.
     */
    const analyze::DisambigImage *disambig = nullptr;

    /**
     * Consume the facts: a load statically proven no-alias against
     * every store of its block bypasses the store-queue probe entirely
     * (read straight from memory) whenever every older in-flight store
     * belongs to the load's own dynamic block and no older system call
     * is pending. Counted in EngineResult::disambigFastLoads /
     * disambigProbesEliminated and the "disambig.*" stats.
     */
    bool disambigFastPath = false;

    /**
     * Soundness cross-check: at every full block retirement, re-check
     * each statically proven no-alias pair against the byte ranges the
     * run actually computed (MD001 on overlap) and the facts' shape
     * against the image (MD002 when stale). Violations are counted and
     * the first few recorded in EngineResult::disambigViolationLog for
     * the harness to render as verify diagnostics.
     */
    bool disambigXcheck = false;

    /**
     * Cycles lost redirecting fetch after a misprediction or fault
     * (default kRedirectPenalty); higher values model deeper front ends.
     */
    int redirectPenalty = kRedirectPenalty;

    /**
     * Observability event bus (obs/bus.hh). When non-null the engine
     * publishes one typed event per pipeline occurrence (issue,
     * schedule, complete, resolve, squash, retire, load-block/wake,
     * store-forward, assert-fire) to every attached sink. Null (the
     * default) costs nothing on the hot paths, and attaching sinks
     * never changes the schedule. Intended for small programs — the
     * engine emits several events per node.
     */
    obs::EventBus *bus = nullptr;

    /**
     * Run-level metrics registry (metrics/registry.hh). When non-null
     * the finished simulation's headline counters are folded in under
     * "engine.*" names — one batch of adds per simulate() call, nothing
     * on the per-cycle paths, and never any effect on the schedule.
     */
    metrics::Registry *metrics = nullptr;

    /**
     * Interval profiler (profile/profile.hh). When non-null the engine
     * records per-node pipeline timestamps and dependence edges in a
     * workspace lane, folds its counters into per-window samples at
     * configurable simulated-cycle boundaries, and logs every retired
     * node for critical-path extraction. Null (the default) costs one
     * predictable branch on the hot paths; attaching a profiler never
     * changes the schedule.
     */
    profile::IntervalProfiler *profile = nullptr;

    /**
     * Reusable simulation state (engine/workspace.hh): node-record
     * arenas, queues, heaps and the simulated memory, pooled across
     * simulate() calls so repeat runs allocate nothing at steady state.
     * Null (the default) makes the engine use a private workspace —
     * identical schedules either way; the harness passes one workspace
     * per worker thread.
     */
    EngineWorkspace *workspace = nullptr;
};

/**
 * Where the machine's bandwidth went (§2.2's "what limits the window"
 * made first-class). Two orthogonal accountings:
 *
 * Issue slots: every slot of every cycle is either an issued node or is
 * attributed to exactly one cause, so the per-cause counts always sum to
 * cycles * issueWidth - issuedNodes (asserted by tests/obs_test.cc):
 *  - fetchRedirectSlots: front end redirecting after a mispredict/fault;
 *  - fetchIdleSlots: no known next block (unresolved JR, exit path);
 *  - windowFullSlots: window at its basic-block cap;
 *  - shortWordSlots: the fetched word holds fewer nodes than the width
 *    (the compiler could not fill the machine);
 *  - drainSlots: the final partial cycle when the program exits.
 *
 * Node-cycles: each cycle, every issued-but-unscheduled node adds one
 * cycle to the cause it is waiting on:
 *  - operandWaitNodeCycles: a register operand is still being computed;
 *  - memoryWaitNodeCycles: a load parked on disambiguation (older store
 *    address/data unknown, or an older syscall pending);
 *  - serializeWaitNodeCycles: a syscall waiting to become the oldest;
 *  - fuBusyNodeCycles: ready, but no function-unit slot this cycle (on
 *    static machines: ready, but the word interlock is not satisfied).
 */
struct StallBreakdown
{
    std::uint64_t fetchRedirectSlots = 0;
    std::uint64_t fetchIdleSlots = 0;
    std::uint64_t windowFullSlots = 0;
    std::uint64_t shortWordSlots = 0;
    std::uint64_t drainSlots = 0;

    std::uint64_t operandWaitNodeCycles = 0;
    std::uint64_t memoryWaitNodeCycles = 0;
    std::uint64_t serializeWaitNodeCycles = 0;
    std::uint64_t fuBusyNodeCycles = 0;

    /** Total unused issue slots across all causes. */
    std::uint64_t
    totalSlots() const
    {
        return fetchRedirectSlots + fetchIdleSlots + windowFullSlots +
               shortWordSlots + drainSlots;
    }

    void
    mergeFrom(const StallBreakdown &other)
    {
        fetchRedirectSlots += other.fetchRedirectSlots;
        fetchIdleSlots += other.fetchIdleSlots;
        windowFullSlots += other.windowFullSlots;
        shortWordSlots += other.shortWordSlots;
        drainSlots += other.drainSlots;
        operandWaitNodeCycles += other.operandWaitNodeCycles;
        memoryWaitNodeCycles += other.memoryWaitNodeCycles;
        serializeWaitNodeCycles += other.serializeWaitNodeCycles;
        fuBusyNodeCycles += other.fuBusyNodeCycles;
    }
};

/** Per-static-block attribution, indexed by image block id. */
struct BlockStat
{
    std::int32_t entryPc = -1;
    std::uint64_t issuedWords = 0;
    std::uint64_t retiredBlocks = 0;
    std::uint64_t retiredNodes = 0;
    std::uint64_t squashedBlocks = 0;
    std::uint64_t squashedNodes = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t faultsFired = 0;

    bool
    touched() const
    {
        return issuedWords || retiredBlocks || squashedBlocks;
    }
};

/**
 * One retirement-time disambiguation cross-check failure
 * (EngineOptions::disambigXcheck). nodeA/nodeB are image node indices of
 * the offending pair; a staleness failure (facts' shape does not match
 * the simulated image) sets stale and leaves the addresses zero.
 */
struct DisambigViolation
{
    std::int32_t imageId = -1;
    std::int32_t nodeA = -1;
    std::int32_t nodeB = -1;
    std::uint32_t addrA = 0;
    std::uint32_t addrB = 0;
    std::uint32_t lenA = 0;
    std::uint32_t lenB = 0;
    bool stale = false;
};

/** Result of one simulation. */
struct EngineResult
{
    bool exited = false;
    int exitCode = 0;

    std::uint64_t cycles = 0;
    std::uint64_t retiredNodes = 0;   ///< nodes in committed blocks
    std::uint64_t executedNodes = 0;  ///< scheduled on FUs (incl. squashed)
    std::uint64_t issuedNodes = 0;
    std::uint64_t committedBlocks = 0;
    std::uint64_t squashedBlocks = 0;
    std::uint64_t faultsFired = 0;
    std::uint64_t branchesResolved = 0;
    std::uint64_t mispredicts = 0;

    /** Committed basic block sizes (Figure 2). */
    Histogram blockSize{4, 32};

    /** Window occupancy in blocks, sampled each cycle. */
    Histogram windowOccupancy{1, 64};

    /**
     * The paper's three operation-based window measures (§2.2), sampled
     * each cycle: valid = issued but not retired; active = issued but
     * not yet scheduled; ready = active and schedulable.
     */
    Histogram validNodes{16, 64};
    Histogram activeNodes{16, 64};
    Histogram readyNodes{4, 64};

    /** Detailed counters (cache, predictor, issue stalls...). */
    StatGroup stats;

    /** Issue width of the simulated configuration (for slot math). */
    int issueWidth = 0;

    /** Per-cause issue-slot and waiting-node-cycle attribution. */
    StallBreakdown stalls;

    /** Per-static-block attribution (one entry per image block). */
    std::vector<BlockStat> blockStats;

    /**
     * Heap allocations observed via setAllocHook(): inside the cycle
     * loop excluding system-call windows (allocCycleLoop — zero at
     * steady state on a warmed workspace) and inside system calls
     * (allocSyscall — SimOS buffering, excluded from the zero-alloc
     * contract). Host-side observations only: never part of the
     * schedule, deliberately kept out of `stats` so schedule
     * fingerprints stay host-independent.
     */
    std::uint64_t allocCycleLoop = 0;
    std::uint64_t allocSyscall = 0;
    bool allocSampled = false;

    /**
     * Workspace arena occupancy after the run: ring capacities (node and
     * block record rings, pooled chain slots) and the run's peak live
     * node count. Capacities are high-water marks of the pooled
     * workspace — they only grow, and on a warmed workspace they explain
     * why the cycle loop allocates nothing. Host-side observations like
     * the alloc counters: exported as engine.arena.* gauges, never part
     * of `stats` or any schedule fingerprint.
     */
    std::uint64_t arenaNodeSlots = 0;
    std::uint64_t arenaBlockSlots = 0;
    std::uint64_t arenaChainSlots = 0;
    std::uint64_t peakLiveNodes = 0;

    /**
     * Static-disambiguation consumption and cross-check books
     * (EngineOptions::disambig; all zero when no facts are attached).
     * fastLoads counts loads served straight from memory on proven
     * independence; probesEliminated the store-queue byte probes those
     * loads skipped; checkedPairs the no-alias pairs re-verified at
     * retirement. Violations must stay zero on a sound analysis — the
     * first few are detailed in disambigViolationLog.
     */
    std::uint64_t disambigFastLoads = 0;
    std::uint64_t disambigProbesEliminated = 0;
    std::uint64_t disambigCheckedPairs = 0;
    std::uint64_t disambigViolations = 0;
    std::vector<DisambigViolation> disambigViolationLog;

    double
    nodesPerCycle() const
    {
        return cycles ? static_cast<double>(retiredNodes) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of executed nodes that never retired (Figure 6). */
    double
    redundancy() const
    {
        return executedNodes
                   ? 1.0 - static_cast<double>(retiredNodes) /
                               static_cast<double>(executedNodes)
                   : 0.0;
    }
};

/**
 * Simulate @p image (already translated for @p opts.config) against @p os.
 * The image's words must be filled. Architectural results (stdout, exit
 * code, memory) equal the functional VM's — asserted by the test suite.
 */
EngineResult simulate(const CodeImage &image, SimOS &os,
                      const EngineOptions &opts);

} // namespace fgp

#endif // FGP_ENGINE_ENGINE_HH
