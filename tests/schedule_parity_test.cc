/**
 * Schedule-parity goldens for the engine's data layout.
 *
 * The engine's internal representation (SoA node records, arena-backed
 * window, flat waiter tables) is free to change, but the *schedule* it
 * produces — cycles, issue/execute/retire counts, stall attribution,
 * window histograms, every named stat — must stay bit-identical. This
 * test pins a 64-bit fingerprint of the full EngineResult for every
 * (seed workload x issue model) cell, each simulated under three
 * representative configurations (static, small dynamic window with
 * enlargement, big dynamic window), so a layout refactor that perturbs
 * any counter by one is caught against hard-coded goldens.
 *
 * A second test runs the same cells through runSweep() at 1 and 8
 * worker threads and asserts identical fingerprints — the layout
 * (thread-local workspaces included) must not make schedules depend on
 * the worker pool.
 *
 * Regenerate goldens (only when a *schedule-changing* commit intends
 * to): FGP_DUMP_GOLDEN=1 ./schedule_parity_test and paste the table.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstdio>

#include "harness/experiment.hh"
#include "harness/parallel.hh"

namespace fgp {
namespace {

/** Input scale for the goldens: small enough for CI, large enough that
 *  every workload retires through squashes, faults and cache misses. */
constexpr double kScale = 0.05;

const int kIssueModels[] = {1, 2, 5, 8};

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnvHistogram(std::uint64_t h, const Histogram &hist)
{
    h = fnv(h, hist.count());
    h = fnv(h, hist.sum());
    h = fnv(h, hist.min());
    h = fnv(h, hist.max());
    h = fnv(h, hist.underflowCount());
    h = fnv(h, hist.overflowCount());
    for (std::size_t i = 0; i < hist.numBuckets(); ++i)
        h = fnv(h, hist.bucketCount(i));
    return h;
}

/** Fingerprint of everything the schedule determines. */
std::uint64_t
scheduleHash(std::uint64_t h, const EngineResult &r)
{
    h = fnv(h, r.cycles);
    h = fnv(h, r.retiredNodes);
    h = fnv(h, r.executedNodes);
    h = fnv(h, r.issuedNodes);
    h = fnv(h, r.committedBlocks);
    h = fnv(h, r.squashedBlocks);
    h = fnv(h, r.faultsFired);
    h = fnv(h, r.branchesResolved);
    h = fnv(h, r.mispredicts);
    h = fnv(h, r.stalls.fetchRedirectSlots);
    h = fnv(h, r.stalls.fetchIdleSlots);
    h = fnv(h, r.stalls.windowFullSlots);
    h = fnv(h, r.stalls.shortWordSlots);
    h = fnv(h, r.stalls.drainSlots);
    h = fnv(h, r.stalls.operandWaitNodeCycles);
    h = fnv(h, r.stalls.memoryWaitNodeCycles);
    h = fnv(h, r.stalls.serializeWaitNodeCycles);
    h = fnv(h, r.stalls.fuBusyNodeCycles);
    h = fnvHistogram(h, r.blockSize);
    h = fnvHistogram(h, r.windowOccupancy);
    h = fnvHistogram(h, r.validNodes);
    h = fnvHistogram(h, r.activeNodes);
    h = fnvHistogram(h, r.readyNodes);
    for (const auto &[name, value] : r.stats.ints()) {
        for (char c : name)
            h = fnv(h, static_cast<std::uint64_t>(c));
        h = fnv(h, value);
    }
    for (const BlockStat &bs : r.blockStats) {
        h = fnv(h, bs.issuedWords);
        h = fnv(h, bs.retiredBlocks);
        h = fnv(h, bs.retiredNodes);
        h = fnv(h, bs.squashedBlocks);
        h = fnv(h, bs.squashedNodes);
        h = fnv(h, bs.mispredicts);
        h = fnv(h, bs.faultsFired);
    }
    return h;
}

/** The three configurations hashed per (workload, issue model) cell. */
std::vector<MachineConfig>
cellConfigs(int issue_model)
{
    return {
        {Discipline::Static, issueModel(issue_model), memoryConfig('A'),
         BranchMode::Single},
        {Discipline::Dyn4, issueModel(issue_model), memoryConfig('G'),
         BranchMode::Enlarged},
        {Discipline::Dyn256, issueModel(issue_model), memoryConfig('G'),
         BranchMode::Single},
    };
}

std::uint64_t
cellHash(ExperimentRunner &runner, const std::string &workload,
         int issue_model)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const MachineConfig &config : cellConfigs(issue_model))
        h = scheduleHash(h, runner.run(workload, config).engine);
    return h;
}

/**
 * Golden fingerprints, workload-major, one entry per issue model in
 * kIssueModels order. Captured from the pre-overhaul engine (PR 5) and
 * unchanged since: the data-layout rework must reproduce these exactly.
 */
struct GoldenRow
{
    const char *workload;
    std::uint64_t hash[4];
};

const GoldenRow kGolden[] = {
    {"sort", {0xf546825b98b8501bULL, 0xd3794b9f4867b495ULL,
              0x4bff3228e1408e98ULL, 0x4054759f06de4862ULL}},
    {"grep", {0x12aadea33cc4fde2ULL, 0x452dd1733eaecccfULL,
              0xc323dcf5c9c21f63ULL, 0x71d7545391c5a5fcULL}},
    {"diff", {0xf6699fde2ca08949ULL, 0x375753844cf08453ULL,
              0xe986767d93550296ULL, 0xdd0857eef654af1fULL}},
    {"cpp", {0xd05dbbcc0dbf7958ULL, 0x9c65abb0ed8722a9ULL,
             0x8f42ed3dfbb1d26bULL, 0x5b2e4a4e5faa48a7ULL}},
    {"compress", {0x8c153d6cac5e2877ULL, 0x4fbe07e83eed69edULL,
                  0x057ed9b475bb1affULL, 0xafc9981d971a11ffULL}},
};

TEST(ScheduleParity, GoldenHashesPerWorkloadAndIssueModel)
{
    ExperimentRunner runner(kScale);
    const bool dump = std::getenv("FGP_DUMP_GOLDEN") != nullptr;
    for (const GoldenRow &row : kGolden) {
        for (int m = 0; m < 4; ++m) {
            const std::uint64_t h =
                cellHash(runner, row.workload, kIssueModels[m]);
            if (dump) {
                std::fprintf(stderr, "GOLDEN %s im%d 0x%016llxULL\n",
                             row.workload, kIssueModels[m],
                             static_cast<unsigned long long>(h));
                continue;
            }
            EXPECT_EQ(h, row.hash[m])
                << row.workload << " issue model " << kIssueModels[m]
                << ": schedule fingerprint changed — the engine layout "
                   "is no longer schedule-preserving";
        }
    }
}

TEST(ScheduleParity, IdenticalAtOneAndEightJobs)
{
    std::vector<SweepPoint> points;
    for (const GoldenRow &row : kGolden)
        for (int im : kIssueModels)
            for (const MachineConfig &config : cellConfigs(im))
                points.push_back({row.workload, config});

    ExperimentRunner serial(kScale);
    ExperimentRunner threaded(kScale);
    const std::vector<ExperimentResult> a = runSweep(serial, points, 1);
    const std::vector<ExperimentResult> b = runSweep(threaded, points, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::uint64_t ha =
            scheduleHash(0xcbf29ce484222325ULL, a[i].engine);
        const std::uint64_t hb =
            scheduleHash(0xcbf29ce484222325ULL, b[i].engine);
        EXPECT_EQ(ha, hb)
            << points[i].workload << " " << points[i].config.name()
            << ": schedule differs between FGP_JOBS=1 and FGP_JOBS=8";
    }
}

} // namespace
} // namespace fgp
