/**
 * @file
 * CodeImage: the translated form of a program, as produced by the
 * translating loader (and, for enlarged code, the basic block enlargement
 * pass). A CodeImage is a set of (possibly enlarged) basic blocks whose
 * nodes have been packed into multi-node issue words for one machine
 * configuration.
 */

#ifndef FGP_IR_IMAGE_HH
#define FGP_IR_IMAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/node.hh"
#include "ir/program.hh"

namespace fgp {

/** One multi-node issue word: indices into the owning block's node array. */
using Word = std::vector<std::uint16_t>;

/** A (possibly enlarged) basic block in a CodeImage. */
struct ImageBlock
{
    std::int32_t id = -1;

    /** Original instruction index of the block's entry. */
    std::int32_t entryPc = -1;

    /** Nodes in translated order. A terminal control node, if any, is last. */
    std::vector<Node> nodes;

    /**
     * Issue words (filled by the translating loader's scheduler/packer).
     * Every node index appears in exactly one word; words issue one per
     * cycle in order.
     */
    std::vector<Word> words;

    /**
     * Original pc to continue at when the terminal branch is not taken, or
     * when the block has no terminal control node. -1 means falling off the
     * block is impossible (must exit via terminal or fault).
     */
    std::int32_t fallthroughPc = -1;

    /** True when this block was produced by enlargement. */
    bool enlarged = false;

    /** True for companion (fault-target) instances of an enlarged chain. */
    bool companion = false;

    /** Number of original basic blocks fused into this one. */
    std::int32_t chainLen = 1;

    /** True when any node is a system call (such blocks are never fused). */
    bool hasSyscall = false;

    /** Terminal control node, or nullptr for pure fall-through blocks. */
    const Node *
    terminal() const
    {
        if (nodes.empty())
            return nullptr;
        const Node &last = nodes.back();
        return last.isControl() ? &last : nullptr;
    }

    std::size_t size() const { return nodes.size(); }
};

/** A translated program: blocks plus the entry-point map. */
struct CodeImage
{
    std::vector<ImageBlock> blocks;

    /**
     * Original instruction index -> block id of the primary instance to
     * fetch when control reaches that address. In an enlarged image hot
     * entries map to the enlarged primary block ("always execute the
     * initial enlarged basic block first", §3.1); companions are reachable
     * only as fault-to targets.
     */
    std::unordered_map<std::int32_t, std::int32_t> entryByPc;

    /** Block to start execution at. */
    std::int32_t entryBlock = -1;

    /** Source program (borrowed; must outlive the image). */
    const Program *prog = nullptr;

    /** Resolve an original pc to a block id; fatal if unmapped. */
    std::int32_t blockAtPc(std::int32_t pc) const;

    const ImageBlock &
    block(std::int32_t id) const
    {
        if (id < 0 || id >= static_cast<std::int32_t>(blocks.size()))
            blockIdPanic(id);
        return blocks[static_cast<std::size_t>(id)];
    }

    ImageBlock &
    block(std::int32_t id)
    {
        if (id < 0 || id >= static_cast<std::int32_t>(blocks.size()))
            blockIdPanic(id);
        return blocks[static_cast<std::size_t>(id)];
    }

    [[noreturn]] void blockIdPanic(std::int32_t id) const;

    /** Total static node count across blocks. */
    std::size_t totalNodes() const;
};

/**
 * Validate image consistency: block ids match indices, entry map targets
 * exist, fault targets are valid block ids, terminal nodes are last,
 * every word references valid node indices exactly once, register indices
 * within the renamed file. Throws FatalError on violation.
 */
void validateImage(const CodeImage &image);

} // namespace fgp

#endif // FGP_IR_IMAGE_HH
