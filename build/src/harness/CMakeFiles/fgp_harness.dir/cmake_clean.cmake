file(REMOVE_RECURSE
  "CMakeFiles/fgp_harness.dir/experiment.cc.o"
  "CMakeFiles/fgp_harness.dir/experiment.cc.o.d"
  "libfgp_harness.a"
  "libfgp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
