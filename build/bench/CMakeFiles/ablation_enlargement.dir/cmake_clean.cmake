file(REMOVE_RECURSE
  "CMakeFiles/ablation_enlargement.dir/ablation_enlargement.cc.o"
  "CMakeFiles/ablation_enlargement.dir/ablation_enlargement.cc.o.d"
  "ablation_enlargement"
  "ablation_enlargement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enlargement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
