#include "arch/config.hh"

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

const std::vector<Discipline> &
allDisciplines()
{
    static const std::vector<Discipline> all = {
        Discipline::Static, Discipline::Dyn1, Discipline::Dyn4,
        Discipline::Dyn256};
    return all;
}

int
windowBlocks(Discipline d)
{
    switch (d) {
      case Discipline::Static: return 2;
      case Discipline::Dyn1: return 1;
      case Discipline::Dyn4: return 4;
      case Discipline::Dyn256: return 256;
    }
    fgp_panic("bad discipline");
}

bool
isDynamic(Discipline d)
{
    return d != Discipline::Static;
}

std::string
disciplineName(Discipline d)
{
    switch (d) {
      case Discipline::Static: return "static";
      case Discipline::Dyn1: return "dyn1";
      case Discipline::Dyn4: return "dyn4";
      case Discipline::Dyn256: return "dyn256";
    }
    fgp_panic("bad discipline");
}

std::string
IssueModel::name() const
{
    if (sequential)
        return "seq";
    return format("%dM%dA", memSlots, aluSlots);
}

IssueModel
issueModel(int index)
{
    // Paper §3.1: eight issue models; static ALU:MEM ratio of the
    // benchmarks is about 2.5:1, hence the 2:1 and 3:1 shapes.
    switch (index) {
      case 1: return {1, true, 1, 1};
      case 2: return {2, false, 1, 1};
      case 3: return {3, false, 1, 2};
      case 4: return {4, false, 1, 3};
      case 5: return {5, false, 2, 4};
      case 6: return {6, false, 2, 6};
      case 7: return {7, false, 4, 8};
      case 8: return {8, false, 4, 12};
      default:
        fgp_fatal("issue model index must be 1..8, got ", index);
    }
}

IssueModel
customIssue(int mem_slots, int alu_slots)
{
    if (mem_slots < 1 || alu_slots < 1)
        fgp_fatal("custom issue model needs at least one slot of each "
                  "kind");
    return {0, false, mem_slots, alu_slots};
}

const std::vector<IssueModel> &
allIssueModels()
{
    static const std::vector<IssueModel> all = [] {
        std::vector<IssueModel> models;
        for (int i = 1; i <= 8; ++i)
            models.push_back(issueModel(i));
        return models;
    }();
    return all;
}

MemoryConfig
memoryConfig(char letter)
{
    switch (letter) {
      case 'A': return {'A', 1, 1, false, 0};
      case 'B': return {'B', 2, 2, false, 0};
      case 'C': return {'C', 3, 3, false, 0};
      case 'D': return {'D', 1, 10, true, 1024};
      case 'E': return {'E', 1, 10, true, 16 * 1024};
      case 'F': return {'F', 2, 10, true, 1024};
      case 'G': return {'G', 2, 10, true, 16 * 1024};
      default:
        fgp_fatal("memory configuration must be A..G, got '", letter, "'");
    }
}

const std::vector<MemoryConfig> &
allMemoryConfigs()
{
    static const std::vector<MemoryConfig> all = [] {
        std::vector<MemoryConfig> configs;
        for (char c = 'A'; c <= 'G'; ++c)
            configs.push_back(memoryConfig(c));
        return configs;
    }();
    return all;
}

std::string
branchModeName(BranchMode m)
{
    switch (m) {
      case BranchMode::Single: return "single";
      case BranchMode::Enlarged: return "enlarged";
      case BranchMode::Perfect: return "perfect";
    }
    fgp_panic("bad branch mode");
}

std::string
MachineConfig::name() const
{
    return disciplineName(discipline) + "/" + pointCode() + "/" +
           branchModeName(branch);
}

std::string
MachineConfig::pointCode() const
{
    return std::to_string(issue.index) + memory.name();
}

void
parsePointCode(const std::string &code, IssueModel &issue,
               MemoryConfig &memory)
{
    if (code.size() != 2)
        fgp_fatal("point code must look like '5B', got '", code, "'");
    const int idx = code[0] - '0';
    if (idx < 1 || idx > 8)
        fgp_fatal("bad issue model in point code '", code, "'");
    issue = issueModel(idx);
    memory = memoryConfig(static_cast<char>(std::toupper(code[1])));
}

MachineConfig
parseMachineConfig(const std::string &name)
{
    const auto parts = split(name, '/');
    if (parts.size() != 3)
        fgp_fatal("machine config must look like 'dyn4/8A/enlarged', got '",
                  name, "'");
    MachineConfig config;
    bool found = false;
    for (Discipline d : allDisciplines()) {
        if (disciplineName(d) == parts[0]) {
            config.discipline = d;
            found = true;
        }
    }
    if (!found)
        fgp_fatal("unknown discipline '", parts[0],
                  "' (static | dyn1 | dyn4 | dyn256)");
    parsePointCode(parts[1], config.issue, config.memory);
    found = false;
    for (BranchMode m :
         {BranchMode::Single, BranchMode::Enlarged, BranchMode::Perfect}) {
        if (branchModeName(m) == parts[2]) {
            config.branch = m;
            found = true;
        }
    }
    if (!found)
        fgp_fatal("unknown branch mode '", parts[2],
                  "' (single | enlarged | perfect)");
    return config;
}

std::vector<MachineConfig>
fullConfigGrid()
{
    std::vector<MachineConfig> grid;
    for (const auto &mem : allMemoryConfigs()) {
        for (const auto &issue : allIssueModels()) {
            for (Discipline d : allDisciplines()) {
                for (BranchMode mode :
                     {BranchMode::Single, BranchMode::Enlarged}) {
                    grid.push_back({d, issue, mem, mode});
                }
            }
            // Perfect prediction is only run for dynamic windows 4 and 256
            // (paper §3.2).
            for (Discipline d : {Discipline::Dyn4, Discipline::Dyn256})
                grid.push_back({d, issue, mem, BranchMode::Perfect});
        }
    }
    fgp_assert(grid.size() == 560, "grid must have 560 points, has ",
               grid.size());
    return grid;
}

} // namespace fgp
