/**
 * @file
 * Typed simulation events — the engine's observability vocabulary.
 *
 * The engine publishes one SimEvent per pipeline occurrence onto an
 * EventBus (obs/bus.hh); sinks render them as human-readable trace text,
 * JSONL, or a Chrome trace_event file. Events are plain structs carrying
 * borrowed pointers into the CodeImage being simulated — they are only
 * valid for the duration of the EventSink::onEvent call and must not be
 * stored without copying the fields a sink needs.
 *
 * The full schema (field meaning per kind) is documented in
 * docs/OBSERVABILITY.md.
 */

#ifndef FGP_OBS_EVENT_HH
#define FGP_OBS_EVENT_HH

#include <cstdint>

namespace fgp {

struct Node;
struct ImageBlock;

namespace obs {

/** What happened. One enumerator per pipeline occurrence. */
enum class EventKind : std::uint8_t {
    Issue,        ///< one multi-node word entered the window
    Schedule,     ///< a node was placed on a function unit
    Complete,     ///< a node finished and published its result
    Resolve,      ///< a control node compared outcome against prediction
    Squash,       ///< one in-flight block was discarded
    Retire,       ///< the window's oldest block committed
    LoadBlock,    ///< a load failed disambiguation and parked
    LoadWake,     ///< a parked load was released for retry
    StoreForward, ///< a load received bytes from an in-window store
    AssertFire,   ///< an assert (fault) node fired and redirected fetch
};

/** Stable lowercase name ("issue", "assert_fire", ...). */
const char *eventKindName(EventKind kind);

/**
 * One pipeline event. `kind` and `cycle` are always set; the remaining
 * fields are kind-specific (unused ones keep their defaults):
 *
 *   Issue        bseq, imageId, block, wordIdx
 *   Schedule     seq, bseq, node; loads also addr, latency, forwarded
 *   Complete     seq, bseq, node, value
 *   Resolve      seq, bseq, node, taken, mispredict (JR: value = target pc)
 *   Squash       bseq, imageId, count (nodes discarded)
 *   Retire       bseq, imageId, count (nodes committed), partial (exit)
 *   LoadBlock    seq, bseq, node, addr, blocker (seq the load waits on)
 *   LoadWake     seq, bseq
 *   StoreForward seq, bseq, node, addr
 *   AssertFire   seq, bseq, node, target (redirect image block)
 */
struct SimEvent
{
    EventKind kind;
    std::uint64_t cycle = 0;
    std::uint64_t seq = 0;  ///< node instance sequence number (0: n/a)
    std::uint64_t bseq = 0; ///< dynamic block sequence number (0: n/a)
    std::int32_t imageId = -1;          ///< static (image) block id
    const Node *node = nullptr;         ///< borrowed; see file comment
    const ImageBlock *block = nullptr;  ///< Issue: the issuing block
    std::uint32_t value = 0;            ///< Complete: result value
    std::uint32_t addr = 0;             ///< memory events: effective address
    std::int32_t target = -1;           ///< AssertFire: redirect block id
    std::int32_t wordIdx = -1;          ///< Issue: word index in the block
    int latency = 0;                    ///< Schedule: FU latency in cycles
    std::uint32_t count = 0;            ///< Squash/Retire: node count
    std::uint64_t blocker = 0;          ///< LoadBlock: blocking node's seq
    bool taken = false;                 ///< Resolve: branch outcome
    bool mispredict = false;            ///< Resolve: outcome != prediction
    bool forwarded = false;             ///< Schedule(load): bytes forwarded
    bool partial = false;               ///< Retire: partial block at exit
};

} // namespace obs
} // namespace fgp

#endif // FGP_OBS_EVENT_HH
