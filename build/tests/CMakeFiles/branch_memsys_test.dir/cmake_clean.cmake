file(REMOVE_RECURSE
  "CMakeFiles/branch_memsys_test.dir/branch_memsys_test.cc.o"
  "CMakeFiles/branch_memsys_test.dir/branch_memsys_test.cc.o.d"
  "branch_memsys_test"
  "branch_memsys_test.pdb"
  "branch_memsys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_memsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
