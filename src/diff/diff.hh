/**
 * @file
 * Differential observability core: align two loaded streams cell by
 * cell and window by window, and decompose every per-window IPC delta
 * into the PR 2 stall-slot breakdown.
 *
 * The attribution is exact by construction. Each side closes its own
 * slot books per window (issued + sum(slot causes) == cycles * width),
 * so for any aligned window pair the identity
 *
 *   (slots_b - slots_a) == (issued_b - issued_a) + sum_c d_slots[c]
 *
 * holds unconditionally — even across different issue widths — and the
 * residual is zero on every window, which `fgpsim diff --json` emits
 * and check_bench.sh --validate-diff re-derives.
 *
 * Schedule-divergence pinpointing rides on the cumulative FNV-1a
 * fingerprints the profiler stamps at each window close: once two runs
 * diverge, every later window's hash differs too, so the first
 * divergent window is found by binary search, and the exact retired
 * node by a field-wise scan inside that window's slice of the logs.
 */

#ifndef FGP_DIFF_DIFF_HH
#define FGP_DIFF_DIFF_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "diff/stream.hh"

namespace fgp::diff {

/** One aligned window pair (by index) with its exact slot attribution. */
struct WindowDelta
{
    std::uint64_t index = 0;
    std::uint64_t cyclesA = 0, cyclesB = 0;
    std::uint64_t issuedA = 0, issuedB = 0;
    std::uint64_t retiredA = 0, retiredB = 0;
    std::uint64_t slotsA = 0, slotsB = 0; ///< cycles * issue_width
    std::array<std::int64_t, kSlotCauseCount> dSlots{};
    std::array<std::int64_t, kWaitCount> dWaits{};
    double ipcA = 0.0, ipcB = 0.0;

    std::int64_t
    dRetired() const
    {
        return static_cast<std::int64_t>(retiredB) -
               static_cast<std::int64_t>(retiredA);
    }

    /** Slot-closure residual — identically zero (see file comment). */
    std::int64_t
    residual() const
    {
        std::int64_t causes = 0;
        for (const std::int64_t d : dSlots)
            causes += d;
        return (static_cast<std::int64_t>(slotsB) -
                static_cast<std::int64_t>(slotsA)) -
               (static_cast<std::int64_t>(issuedB) -
                static_cast<std::int64_t>(issuedA)) -
               causes;
    }
};

/** Critical-path cause delta (whole-run attribution). */
struct CauseDelta
{
    std::string cause;
    std::uint64_t a = 0, b = 0;

    std::int64_t
    delta() const
    {
        return static_cast<std::int64_t>(b) -
               static_cast<std::int64_t>(a);
    }
};

/** Critical-path block delta — "which blocks paid for the regression". */
struct BlockDelta
{
    std::uint32_t block = 0;
    std::int64_t entryPc = -1;
    std::uint64_t a = 0, b = 0; ///< path cycles per side
    /** Per-cause refinement; valid iff hasCauses (both sides carried
     *  critedge rows). */
    std::array<std::uint64_t, profile::kCritCauseCount> causesA{};
    std::array<std::uint64_t, profile::kCritCauseCount> causesB{};
    bool hasCauses = false;

    std::int64_t
    delta() const
    {
        return static_cast<std::int64_t>(b) -
               static_cast<std::int64_t>(a);
    }

    std::int64_t
    dCause(std::size_t c) const
    {
        return static_cast<std::int64_t>(causesB[c]) -
               static_cast<std::int64_t>(causesA[c]);
    }
};

/** Where two schedules first part ways. */
struct Divergence
{
    enum class Level
    {
        None,      ///< no fingerprints on either stream
        Identical, ///< fingerprints present and equal throughout
        Run,       ///< final hashes differ; no per-window data
        Window,    ///< first divergent window known (binary search)
        Node,      ///< exact first divergent retired node known
    };

    Level level = Level::None;
    std::uint64_t firstWindow = 0; ///< Window/Node levels
    /** True when one stream ended before any hash mismatch — the
     *  divergence is the missing tail, not a differing record. */
    bool truncated = false;

    // Node level only.
    std::uint64_t seq = 0;      ///< seq of the first divergent node
    std::uint64_t logIndex = 0; ///< its index in the retired log
    std::string field;          ///< first differing field name
    std::uint64_t valueA = 0, valueB = 0;
    std::uint64_t hashA = 0, hashB = 0; ///< window hashes that differed

    bool
    diverged() const
    {
        return level == Level::Run || level == Level::Window ||
               level == Level::Node;
    }
};

const char *divergenceLevelName(Divergence::Level level);

/** Full differential report for one (workload, config) cell. */
struct CellDiff
{
    std::string workload;
    std::string config;

    std::uint64_t cyclesA = 0, cyclesB = 0;
    std::uint64_t retiredA = 0, retiredB = 0;
    double ipcA = 0.0, ipcB = 0.0;
    std::uint64_t critPathA = 0, critPathB = 0;

    std::vector<WindowDelta> windows; ///< aligned prefix, by index
    bool windowsTruncated = false;    ///< window counts differed

    std::vector<CauseDelta> causes; ///< canonical CritCause order
    std::vector<BlockDelta> blocks; ///< ranked by |delta|, descending

    Divergence divergence;

    double
    ipcDelta() const
    {
        return ipcB - ipcA;
    }
};

/** Whole-diff result: aligned cells plus the unmatched keys. */
struct DiffResult
{
    std::vector<CellDiff> cells;
    std::vector<std::string> onlyA, onlyB; ///< "workload config" keys

    bool
    anyDivergence() const
    {
        for (const CellDiff &cell : cells)
            if (cell.divergence.diverged())
                return true;
        return false;
    }
};

/** Diff one aligned cell pair. */
CellDiff diffCells(const CellStream &a, const CellStream &b);

/** Align two streams on (workload, config), in A's cell order. */
DiffResult diffStreams(const Stream &a, const Stream &b);

/**
 * A retired-node log cut at window boundaries, with the cumulative
 * FNV-1a fingerprint recomputed at each cut — so perturbed or
 * synthesized logs get honest hashes, independent of what any stream
 * claimed.
 */
struct WindowedLog
{
    const std::vector<profile::RetiredNode> *log = nullptr;
    std::vector<std::size_t> windowEnds;       ///< exclusive log index
    std::vector<std::uint64_t> windowHashes;   ///< cumulative at each end
};

/**
 * Cut @p log at window boundaries given each window's retired-node
 * count (CellWindow::retiredNodes order). An empty @p window_retired
 * treats the whole log as one window.
 */
WindowedLog buildWindowedLog(
    const std::vector<profile::RetiredNode> &log,
    const std::vector<std::uint64_t> &window_retired);

/**
 * Pinpoint the first divergent window (binary search over cumulative
 * window hashes) and retired node (field-wise scan inside it).
 */
Divergence pinpointDivergence(const WindowedLog &a, const WindowedLog &b);

} // namespace fgp::diff

#endif // FGP_DIFF_DIFF_HH
