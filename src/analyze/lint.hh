/**
 * @file
 * Workload lint: flags lost-ILP anti-patterns in a CodeImage before any
 * simulation runs. Findings are verify::Diagnostics in the AN family
 * (registered here via verify::registerCodes — see docs/ANALYZER.md for
 * the catalog):
 *
 *  - AN001 serializing-false-dep: a WAR edge no renamer can kill (read
 *    of a live-in register before its final redefinition) lengthens the
 *    block's dependence height;
 *  - AN002 dead-def-survives: a pure ALU definition overwritten before
 *    any read — wasted issue bandwidth the bbe re-optimizer should have
 *    removed (and never removes in 1:1-translated single blocks);
 *  - AN003 unprofitable-chain: a planned enlargement chain whose fused,
 *    re-optimized height is no shorter than the sum of its members' —
 *    fusion buys atomicity but no dependence-height ILP;
 *  - AN004 forwarding-defeated: a store-load pair that run-time
 *    disambiguation must serialize (may-alias through unknown bases) or
 *    that forwarding cannot fully satisfy (partial overlap);
 *  - AN005 unreachable-block: not reachable from the image entry;
 *  - AN006 unused-label: a source code label no control transfer
 *    targets;
 *  - AN007 high-may-alias-density: most of a block's memory pairs defeat
 *    static disambiguation (analyze/disambig.hh), leaving the run-time
 *    disambiguator to carry the block;
 *  - AN008 packed-disjoint-pair: a store/load pair proven no-alias is
 *    packed into one issue word, so the store-queue probe the hardware
 *    performs for it is provably unnecessary (FGP_STATIC_DISAMBIG
 *    eliminates it);
 *  - AN009 greedy-schedule-gap: the exact-schedule oracle proved the
 *    greedy list schedule of a hot block at least N cycles longer than
 *    optimal (FGP_ORACLE_SCHED adopts the shorter schedule);
 *  - AN010 oracle-budget-exhausted: the oracle's search budget ran out
 *    on a block, so only the certified interval
 *    [critical-path height, greedy length] is known.
 *
 * All AN findings are warnings: they flag performance anti-patterns,
 * never correctness violations (that is src/verify's job).
 */

#ifndef FGP_ANALYZE_LINT_HH
#define FGP_ANALYZE_LINT_HH

#include <string_view>

#include "analyze/analyze.hh"
#include "ir/image.hh"
#include "verify/diag.hh"

namespace fgp::analyze {

struct ImageOracle;

/** Lint knobs and optional cross-stage context. */
struct LintOptions
{
    /** Load latency assumed on dependence heights (AN001/AN003). */
    int memHitLatency = 1;

    /** AN007 fires when may-alias pairs / total pairs reaches this. */
    double mayAliasDensity = 0.5;

    /** AN007 needs at least this many classified pairs (noise floor). */
    std::size_t minMemPairs = 4;

    /**
     * Pre-enlargement image + plan, enabling the chain-profitability
     * audit (AN003). Both null: AN003 is skipped.
     */
    const CodeImage *single = nullptr;
    const EnlargePlan *plan = nullptr;

    /**
     * Exact-schedule oracle results over the *translated* image
     * (analyze/oracle.hh), enabling AN009/AN010. Null: both skipped.
     */
    const ImageOracle *oracle = nullptr;

    /**
     * AN009 fires when a hot block's proven greedy-over-oracle gap
     * reaches this many cycles. Hot: enlarged, or at least
     * oracleHotNodes nodes (a 1:1 single block that large dominates
     * its loop the same way).
     */
    int oracleGapCycles = 2;
    std::size_t oracleHotNodes = 16;
};

/**
 * Run every lint over @p image, appending AN findings tagged with
 * @p stage to @p report. Never mutates the image.
 */
void lintImage(const CodeImage &image, verify::Report &report,
               const LintOptions &opts = {},
               std::string_view stage = "image");

} // namespace fgp::analyze

#endif // FGP_ANALYZE_LINT_HH
