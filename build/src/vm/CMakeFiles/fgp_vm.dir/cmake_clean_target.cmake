file(REMOVE_RECURSE
  "libfgp_vm.a"
)
