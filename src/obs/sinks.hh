/**
 * @file
 * Standard event sinks:
 *
 *  - TextTraceSink: the human-readable per-cycle pipeline trace
 *    ("[cycle] exec   seq=12 lw r2, 0(r1) ...") previously produced by
 *    the engine itself;
 *  - JsonlSink: one JSON object per event, one event per line —
 *    machine-readable, stream-friendly;
 *  - ChromeTraceSink: Chrome trace_event JSON loadable in
 *    chrome://tracing or https://ui.perfetto.dev (1 simulated cycle =
 *    1 µs of trace time; node executions become duration slices on
 *    synthetic function-unit lanes).
 *
 * All sinks write to a caller-owned std::ostream and are intended for
 * small programs — the engine emits several events per node.
 */

#ifndef FGP_OBS_SINKS_HH
#define FGP_OBS_SINKS_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/bus.hh"

namespace fgp::obs {

/** Renders the classic pipeline-trace text (see file comment). */
class TextTraceSink : public EventSink
{
  public:
    explicit TextTraceSink(std::ostream &os) : os_(os) {}

    void onEvent(const SimEvent &event) override;

  private:
    std::ostream &os_;
};

/** One JSON object per event, newline-delimited (JSONL). */
class JsonlSink : public EventSink
{
  public:
    explicit JsonlSink(std::ostream &os) : os_(os) {}

    void onEvent(const SimEvent &event) override;

  private:
    std::ostream &os_;
};

/**
 * Chrome trace_event exporter. Streams the event array; onRunEnd() (or
 * destruction) closes the JSON document. Executions are "X" (complete)
 * slices placed on the first free synthetic lane so concurrent nodes
 * render side by side; squash/retire/mispredict/fault become instant
 * events on lane 0.
 */
class ChromeTraceSink : public EventSink
{
  public:
    /**
     * @param process_name name shown for @p pid in the trace viewer's
     *        process selector (metadata "M" event, emitted up front).
     * @param pid process id events carry; `fgpsim diff --chrome` maps
     *        run A to pid 1 and run B to pid 2 so both runs overlay on
     *        one timeline while staying separately selectable.
     */
    explicit ChromeTraceSink(std::ostream &os,
                             const std::string &process_name = "fgpsim",
                             int pid = 0);
    ~ChromeTraceSink() override;

    void onEvent(const SimEvent &event) override;
    void onRunEnd() override;

    /**
     * Emit a Chrome "C" (counter) sample at simulated cycle @p cycle —
     * rendered as a stacked area track. The interval profiler rides its
     * per-window heatmap counters (IPC, stall shares, occupancy) along
     * this sink; counters and event slices may be freely interleaved.
     */
    void emitCounter(std::uint64_t cycle, const std::string &name,
                     double value);

    /** emitCounter() under an explicit pid (multi-run overlays). */
    void emitCounter(int pid, std::uint64_t cycle,
                     const std::string &name, double value);

    /** Name an additional process (for multi-run overlay traces). */
    void emitProcessName(int pid, const std::string &name);

    /** Name one thread lane of @p pid. */
    void emitThreadName(int pid, int tid, const std::string &name);

  private:
    void emitSlice(const SimEvent &event);
    void emitInstant(const SimEvent &event);

    std::ostream &os_;
    int pid_ = 0;
    std::vector<std::uint64_t> laneFreeAt_; ///< lane -> first free cycle
    bool first_ = true;
    bool closed_ = false;
};

} // namespace fgp::obs

#endif // FGP_OBS_SINKS_HH
