/**
 * @file
 * Textual rendering of nodes, programs and images (disassembly). The
 * program renderer emits text the assembler accepts back (round-trip
 * property, checked by tests).
 */

#ifndef FGP_IR_PRINTER_HH
#define FGP_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/image.hh"
#include "ir/program.hh"

namespace fgp {

/** Render one node. Targets print as ".L<idx>" (or "@<block>" for faults). */
std::string formatNode(const Node &node);

/** Disassemble a whole program with synthesized labels. */
void printProgram(const Program &prog, std::ostream &os);

/** Dump an image: blocks, nodes, issue words. For debugging and examples. */
void printImage(const CodeImage &image, std::ostream &os);

/** Register name ("r7", "sp", "ra", "t3" for scratch). */
std::string regName(std::uint8_t reg);

} // namespace fgp

#endif // FGP_IR_PRINTER_HH
