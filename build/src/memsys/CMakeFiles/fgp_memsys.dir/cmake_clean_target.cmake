file(REMOVE_RECURSE
  "libfgp_memsys.a"
)
