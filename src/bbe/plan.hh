/**
 * @file
 * The basic block enlargement plan — the in-memory form of the paper's
 * "basic block enlargement file" (§3.1): the creator program derives it
 * from the branch-arc statistics of a profiling run, and the translating
 * loader consumes it. A plan is a list of chains, each chain a sequence
 * of original basic-block entry pcs to fuse into one enlarged block.
 *
 * The textual serialization is line oriented:
 *
 *     # fgpsim enlargement plan v1
 *     chain 12 17 23 12 17
 *     chain 40 44
 */

#ifndef FGP_BBE_PLAN_HH
#define FGP_BBE_PLAN_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fgp {

/** One fused chain: original block entry pcs in fusion order. */
struct EnlargeChain
{
    std::vector<std::int32_t> entryPcs;
};

/** A complete enlargement plan. */
struct EnlargePlan
{
    std::vector<EnlargeChain> chains;

    bool empty() const { return chains.empty(); }
};

/** Serialize a plan to the textual enlargement-file format. */
std::string serializePlan(const EnlargePlan &plan);

/**
 * Parse the textual format. Throws FatalError with a line diagnostic on
 * malformed input.
 */
EnlargePlan parsePlan(std::string_view text);

} // namespace fgp

#endif // FGP_BBE_PLAN_HH
