/**
 * @file
 * Machine-readable results dump and human-readable report rendering for
 * one EngineResult. Used by `fgpsim sim --json` and `fgpsim report`.
 */

#ifndef FGP_OBS_REPORT_HH
#define FGP_OBS_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace fgp {

struct EngineResult;

namespace obs {

/** Identifies the run a report describes. */
struct ReportMeta
{
    std::string workload;  ///< workload name (e.g. "qsort")
    std::string config;    ///< MachineConfig::name() (e.g. "dyn32/4M4A/enlarged")
};

/**
 * Dump @p result as one pretty-printed JSON object ("fgpsim-sim-v1"
 * schema): headline counters, the full stall breakdown, histograms,
 * every StatGroup entry, and per-block attribution for touched blocks.
 * Validated by tools/check_bench.sh --validate-sim.
 */
void writeResultJson(std::ostream &os, const EngineResult &result,
                     const ReportMeta &meta);

/**
 * Render a human-readable report: headline numbers, the issue-slot
 * breakdown with percentages, waiting-node-cycle attribution, and the
 * top @p topBlocks static blocks by retired nodes. When
 * @p blockIpcBounds is non-null (one analyzer bound per image block,
 * analyze::analyzeImage) the block table gains an ipc_bound column so
 * each block's static ceiling sits next to its measured stats.
 */
void printReport(std::ostream &os, const EngineResult &result,
                 const ReportMeta &meta, int topBlocks = 10,
                 const std::vector<double> *blockIpcBounds = nullptr);

} // namespace obs
} // namespace fgp

#endif // FGP_OBS_REPORT_HH
