file(REMOVE_RECURSE
  "libfgp_bbe.a"
)
