/**
 * @file
 * Functional interpreter — the golden model. Executes a flat Program one
 * node at a time against a SparseMemory and SimOS, optionally collecting a
 * branch-arc profile and dynamic node statistics.
 */

#ifndef FGP_VM_INTERP_HH
#define FGP_VM_INTERP_HH

#include <cstdint>

#include "ir/program.hh"
#include "vm/memory.hh"
#include "vm/profile.hh"
#include "vm/simos.hh"

namespace fgp {

/** Outcome of a functional run. */
struct RunResult
{
    int exitCode = 0;
    bool exited = false;

    /** Dynamic node count, system-call internals excluded (the SYSCALL
     *  node itself counts as one node, matching the engine). */
    std::uint64_t dynamicNodes = 0;

    std::uint64_t aluNodes = 0;
    std::uint64_t memNodes = 0;
    std::uint64_t controlNodes = 0;
    std::uint64_t loadNodes = 0;
    std::uint64_t storeNodes = 0;
    std::uint64_t dynamicBlocks = 0; ///< taken control transfers + 1
};

/** Functional execution settings. */
struct InterpOptions
{
    /** Abort the run (fatal) after this many nodes — runaway guard. */
    std::uint64_t maxNodes = 2'000'000'000ULL;

    /** Collect branch arcs into this profile when non-null. */
    Profile *profile = nullptr;
};

/**
 * Run @p prog to completion (exit syscall).
 *
 * Loads the data segment at kDataBase, points sp at kStackTop and starts
 * at the program entry. Throws FatalError on invalid execution (falling
 * off the end, bad opcodes); returns the result otherwise.
 */
RunResult interpret(const Program &prog, SimOS &os, SparseMemory &mem,
                    const InterpOptions &opts = {});

/** Convenience: fresh memory, run, return result. */
RunResult interpret(const Program &prog, SimOS &os,
                    const InterpOptions &opts = {});

} // namespace fgp

#endif // FGP_VM_INTERP_HH
