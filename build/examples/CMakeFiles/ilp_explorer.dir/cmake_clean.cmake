file(REMOVE_RECURSE
  "CMakeFiles/ilp_explorer.dir/ilp_explorer.cpp.o"
  "CMakeFiles/ilp_explorer.dir/ilp_explorer.cpp.o.d"
  "ilp_explorer"
  "ilp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
