file(REMOVE_RECURSE
  "libfgp_workloads.a"
)
