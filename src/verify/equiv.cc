#include "verify/equiv.hh"

#include <array>

#include "base/logging.hh"
#include "verify/symexpr.hh"
#include "vm/exec.hh"

namespace fgp::verify {

namespace {

// The expression algebra lives in verify/symexpr.{hh,cc}; the analyzer's
// memory disambiguator shares it, which is what makes its alias facts
// consistent with the equivalence checker's view of addresses.
using sym::Arena;
using sym::ExprId;
using sym::rriRoot;

/** One store or syscall, in program order. */
struct SideEffect
{
    Opcode op;
    ExprId addr = -1;  ///< stores
    ExprId value = -1; ///< stores: the stored value
    std::int32_t sysPc = -1;
    std::array<ExprId, 5> args{-1, -1, -1, -1, -1}; ///< syscall inputs

    bool operator==(const SideEffect &other) const = default;
};

/** One embedded fault node's guard. */
struct Guard
{
    Opcode op;
    ExprId a;
    ExprId b;
    std::int32_t target; ///< fault-to block id
    std::int32_t origPc;
};

/** The block's terminal control transfer. */
struct ExitEffect
{
    enum class Kind : std::uint8_t {
        None,
        Branch,
        Jump,
        JumpLink,
        JumpReg,
    };
    Kind kind = Kind::None;
    Opcode op = Opcode::J;
    ExprId a = -1;        ///< branch operands
    ExprId b = -1;
    ExprId regTarget = -1; ///< JR target value
    std::int32_t targetPc = -1;

    bool operator==(const ExitEffect &other) const = default;
};

/** Symbolic machine state threaded through one block evaluation. */
class SymState
{
  public:
    explicit SymState(Arena &arena) : arena_(arena)
    {
        for (std::uint8_t r = 0; r < kNumRegs; ++r)
            regs_[r] = arena.init(r);
        regs_[kRegZero] = arena.constant(0);
    }

    ExprId
    regValue(std::uint8_t reg) const
    {
        if (reg == kRegNone || reg >= kNumRegs)
            return -1;
        return regs_[reg];
    }

    void
    evalNode(const Node &node)
    {
        switch (node.cls()) {
          case NodeClass::IntAlu:
            write(node.dstReg(), aluValue(node));
            return;
          case NodeClass::Mem:
            evalMem(node);
            return;
          case NodeClass::Sys:
            evalSys(node);
            return;
          case NodeClass::Fault:
            guards_.push_back({node.op, read(node.rs1), read(node.rs2),
                               node.target, node.origPc});
            return;
          case NodeClass::Control:
            evalControl(node);
            return;
        }
    }

    const std::array<ExprId, kNumRegs> &regs() const { return regs_; }
    const std::vector<SideEffect> &effects() const { return effects_; }
    const std::vector<Guard> &guards() const { return guards_; }
    const ExitEffect &exit() const { return exit_; }

  private:
    ExprId
    read(std::uint8_t reg) const
    {
        fgp_assert(reg != kRegNone && reg < kNumRegs,
                   "symbolic read of bad register");
        return regs_[reg];
    }

    void
    write(std::uint8_t reg, ExprId value)
    {
        if (reg != kRegNone && reg != kRegZero && reg < kNumRegs)
            regs_[reg] = value;
    }

    ExprId
    aluValue(const Node &node)
    {
        switch (opcodeInfo(node.op).form) {
          case OperandForm::RRR:
            return arena_.makeAlu(node.op, read(node.rs1), read(node.rs2));
          case OperandForm::RRI:
            return arena_.makeAlu(
                rriRoot(node.op), read(node.rs1),
                arena_.constant(static_cast<std::uint32_t>(node.imm)));
          case OperandForm::RI: // LUI: value depends only on the immediate
            return arena_.constant(evalAlu(node, 0, 0));
          default:
            fgp_panic("aluValue on ", mnemonic(node.op));
        }
    }

    ExprId
    address(const Node &node)
    {
        return arena_.makeAlu(
            Opcode::ADD, read(node.rs1),
            arena_.constant(static_cast<std::uint32_t>(node.imm)));
    }

    ExprId
    loadValue(Opcode op, ExprId addr)
    {
        for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
            if (it->barrier)
                return arena_.load(op, addr, it->versionAfter);
            if (it->addr == addr && it->op == Opcode::SW &&
                op == Opcode::LW)
                return it->value; // store-to-load forwarding
            if (sym::definitelyDisjoint(arena_, addr, accessBytes(op),
                                        it->addr, accessBytes(it->op)))
                continue;
            return arena_.load(op, addr, it->versionAfter);
        }
        return arena_.load(op, addr, 0);
    }

    void
    evalMem(const Node &node)
    {
        const ExprId addr = address(node);
        if (node.isLoad()) {
            write(node.rd, loadValue(node.op, addr));
            return;
        }
        const ExprId value = read(node.rs2);
        SideEffect effect{node.op};
        effect.addr = addr;
        effect.value = value;
        effects_.push_back(effect);
        log_.push_back({node.op, addr, value, ++memVersion_, false});
    }

    void
    evalSys(const Node &node)
    {
        SideEffect effect{node.op};
        effect.sysPc = node.origPc;
        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int s = 0; s < nsrc; ++s)
            effect.args[static_cast<std::size_t>(s)] = read(srcs[s]);
        effects_.push_back(effect);
        write(kRegV0, arena_.opaque(node.origPc, opaqueSerial_++));
        log_.push_back({node.op, -1, -1, ++memVersion_, true});
    }

    void
    evalControl(const Node &node)
    {
        ExitEffect exit;
        exit.op = node.op;
        if (isConditionalBranch(node.op)) {
            exit.kind = ExitEffect::Kind::Branch;
            exit.a = read(node.rs1);
            exit.b = read(node.rs2);
            exit.targetPc = node.target;
        } else if (node.op == Opcode::J) {
            exit.kind = ExitEffect::Kind::Jump;
            exit.targetPc = node.target;
        } else if (node.op == Opcode::JAL) {
            exit.kind = ExitEffect::Kind::JumpLink;
            exit.targetPc = node.target;
            write(node.rd, arena_.constant(
                               static_cast<std::uint32_t>(node.origPc + 1)));
        } else { // JR
            exit.kind = ExitEffect::Kind::JumpReg;
            exit.regTarget = read(node.rs1);
        }
        exit_ = exit;
    }

    struct StoreRec
    {
        Opcode op;
        ExprId addr;
        ExprId value;
        std::int32_t versionAfter;
        bool barrier;
    };

    Arena &arena_;
    std::array<ExprId, kNumRegs> regs_{};
    std::vector<StoreRec> log_;
    std::vector<SideEffect> effects_;
    std::vector<Guard> guards_;
    ExitEffect exit_;
    std::int32_t memVersion_ = 0;
    std::uint32_t opaqueSerial_ = 0;
};

/** Compare the architectural-register summaries (scratch is dead). */
void
compareRegs(const Arena &arena, const SymState &want, const SymState &got,
            Report &report, std::string_view stage, std::int32_t block_id)
{
    for (std::uint8_t r = 0; r < kNumArchRegs; ++r) {
        if (want.regs()[r] == got.regs()[r])
            continue;
        addDiag(report, Code::RegisterEffectMismatch, Severity::Error,
                stage, block_id, -1, -1, "live-out r", static_cast<int>(r),
                " differs: expected ", arena.render(want.regs()[r]),
                ", block computes ", arena.render(got.regs()[r]));
    }
}

void
compareEffects(const Arena &arena, const SymState &want,
               const SymState &got, Report &report, std::string_view stage,
               std::int32_t block_id)
{
    const auto &we = want.effects();
    const auto &ge = got.effects();
    if (we.size() != ge.size()) {
        addDiag(report, Code::MemoryEffectMismatch, Severity::Error, stage,
                block_id, -1, -1, "expected ", we.size(),
                " store/syscall effects, block performs ", ge.size());
        return;
    }
    for (std::size_t i = 0; i < we.size(); ++i) {
        if (we[i] == ge[i])
            continue;
        addDiag(report, Code::MemoryEffectMismatch, Severity::Error, stage,
                block_id, -1, -1, "effect ", i, " differs: expected ",
                mnemonic(we[i].op), " [", arena.render(we[i].addr), "] <- ",
                arena.render(we[i].value), ", block performs ",
                mnemonic(ge[i].op), " [", arena.render(ge[i].addr),
                "] <- ", arena.render(ge[i].value));
    }
}

void
compareExit(const Arena &arena, const ExitEffect &want,
            const ExitEffect &got, Report &report, std::string_view stage,
            std::int32_t block_id)
{
    if (want == got)
        return;
    addDiag(report, Code::ControlEffectMismatch, Severity::Error, stage,
            block_id, -1, -1, "exit transfer differs: expected ",
            mnemonic(want.op), " (target pc ", want.targetPc, ", cond ",
            arena.render(want.a), ", ", arena.render(want.b),
            "), block exits via ", mnemonic(got.op), " (target pc ",
            got.targetPc, ", cond ", arena.render(got.a), ", ",
            arena.render(got.b), ")");
}

/** Exact guard comparison (op, operands, fault-to target). */
void
compareGuards(const Arena &arena, const std::vector<Guard> &want,
              const std::vector<Guard> &got, Report &report,
              std::string_view stage, std::int32_t block_id)
{
    if (want.size() != got.size()) {
        addDiag(report, Code::FaultGuardMismatch, Severity::Error, stage,
                block_id, -1, -1, "expected ", want.size(),
                " fault guards, block carries ", got.size());
        return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
        const Guard &w = want[i];
        const Guard &g = got[i];
        if (w.op == g.op && w.a == g.a && w.b == g.b &&
            w.target == g.target)
            continue;
        addDiag(report, Code::FaultGuardMismatch, Severity::Error, stage,
                block_id, -1, g.origPc, "guard ", i,
                " differs: expected ", mnemonic(w.op), "(",
                arena.render(w.a), ", ", arena.render(w.b),
                ") fault-to block ", w.target, ", block carries ",
                mnemonic(g.op), "(", arena.render(g.a), ", ",
                arena.render(g.b), ") fault-to block ", g.target);
    }
}

SymState
summarize(Arena &arena, const std::vector<Node> &nodes)
{
    SymState state(arena);
    for (const Node &node : nodes)
        state.evalNode(node);
    return state;
}

/**
 * True when every node can be evaluated symbolically: a known opcode and
 * a real register behind every field its operand form uses. Blocks that
 * fail this are already rejected by the structural verifier (IMG009/
 * IMG010); the soundness checker merely refuses to evaluate them instead
 * of tripping over garbage operands.
 */
bool
operandsEvaluable(const std::vector<Node> &nodes)
{
    const auto bad = [](std::uint8_t reg) {
        return reg == kRegNone || reg >= kNumRegs;
    };
    for (const Node &node : nodes) {
        if (node.op >= Opcode::NUM_OPCODES)
            return false;
        const OperandUse use = operandUse(opcodeInfo(node.op).form);
        if ((use.rd && bad(node.rd)) || (use.rs1 && bad(node.rs1)) ||
            (use.rs2 && bad(node.rs2)))
            return false;
    }
    return true;
}

/**
 * Evaluate chain members [0, upto) with their junctions embedded, then
 * member @p upto without its terminal (the shared prefix of the primary
 * and of companion @p upto). Expected guards are recorded against the
 * fault-to targets in @p guard_targets (one per conditional junction, in
 * order). With upto == chain.size()-1 and include_last_terminal, this is
 * the full hot path of the primary.
 */
void
composeChain(const CodeImage &single, const Chain &chain, std::size_t upto,
             bool include_last_terminal,
             const std::vector<std::int32_t> &guard_targets,
             SymState &state, std::vector<Guard> &expected_guards)
{
    std::size_t cond_seen = 0;
    for (std::size_t i = 0; i <= upto; ++i) {
        const ImageBlock &src = single.block(chain[i].blockId);
        const Node *term = src.terminal();
        const std::size_t body =
            term ? src.nodes.size() - 1 : src.nodes.size();
        for (std::size_t k = 0; k < body; ++k)
            state.evalNode(src.nodes[k]);
        if (!term)
            continue;
        if (i == upto) {
            if (include_last_terminal)
                state.evalNode(*term);
            return;
        }
        switch (chain[i].kind) {
          case JunctionKind::Uncond:
          case JunctionKind::FallThrough:
            break; // junction dropped: fall into the next member
          case JunctionKind::CondHotTaken:
          case JunctionKind::CondHotFall: {
            // Fault exactly when the branch would leave the hot path.
            const Opcode fault_op =
                chain[i].kind == JunctionKind::CondHotTaken
                    ? branchToFault(invertCondition(term->op))
                    : branchToFault(term->op);
            const std::int32_t target =
                cond_seen < guard_targets.size()
                    ? guard_targets[cond_seen]
                    : -1;
            expected_guards.push_back({fault_op, state.regValue(term->rs1),
                                       state.regValue(term->rs2), target,
                                       term->origPc});
            ++cond_seen;
            break;
          }
          case JunctionKind::End:
            break;
        }
    }
}

/** Member indices (into the chain) of the conditional junctions. */
std::vector<std::size_t>
condJunctionMembers(const Chain &chain)
{
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i + 1 < chain.size(); ++i)
        if (chain[i].kind == JunctionKind::CondHotTaken ||
            chain[i].kind == JunctionKind::CondHotFall)
            members.push_back(i);
    return members;
}

void
checkCompanion(const CodeImage &single, const CodeImage &enlarged,
               const Chain &chain, std::size_t member,
               std::size_t guard_index,
               const std::vector<std::int32_t> &guard_targets,
               std::int32_t primary_id, Arena &arena, Report &report,
               std::string_view stage)
{
    const std::int32_t comp_id = guard_targets[guard_index];
    const ImageBlock &primary = enlarged.block(primary_id);
    if (comp_id < 0 ||
        comp_id >= static_cast<std::int32_t>(enlarged.blocks.size())) {
        addDiag(report, Code::FaultGuardMismatch, Severity::Error, stage,
                primary_id, -1, -1, "guard ", guard_index,
                " faults to nonexistent block ", comp_id);
        return;
    }
    const ImageBlock &comp = enlarged.block(comp_id);
    if (!comp.companion || !comp.enlarged ||
        comp.entryPc != primary.entryPc ||
        comp.chainLen != static_cast<std::int32_t>(member + 1)) {
        addDiag(report, Code::FaultGuardMismatch, Severity::Error, stage,
                primary_id, -1, -1, "guard ", guard_index,
                " faults to block ", comp_id,
                " which is not the matching companion (companion=",
                comp.companion, ", entry pc ", comp.entryPc, ", chain len ",
                comp.chainLen, ")");
        return;
    }

    if (!operandsEvaluable(comp.nodes)) {
        addDiag(report, Code::ImageShapeMismatch, Severity::Error, stage,
                comp_id, -1, -1,
                "companion contains unevaluable operands; "
                "soundness not provable");
        return;
    }

    const ImageBlock &src = single.block(chain[member].blockId);
    const Node *junction = src.terminal();
    fgp_assert(junction && isConditionalBranch(junction->op),
               "conditional junction without branch terminal");

    // Expected: shared prefix, then the cold-direction exit. The
    // companion's own guard on this junction points back at the primary
    // (the mutual AB/AC fault edges of Figure 1).
    SymState want(arena);
    std::vector<Guard> want_guards;
    composeChain(single, chain, member, /*include_last_terminal=*/false,
                 guard_targets, want, want_guards);
    want_guards.push_back(
        {chain[member].kind == JunctionKind::CondHotTaken
             ? branchToFault(junction->op)
             : branchToFault(invertCondition(junction->op)),
         want.regValue(junction->rs1), want.regValue(junction->rs2),
         primary_id, junction->origPc});
    ExitEffect want_exit;
    want_exit.kind = ExitEffect::Kind::Jump;
    want_exit.op = Opcode::J;
    want_exit.targetPc = chain[member].kind == JunctionKind::CondHotTaken
                             ? src.fallthroughPc
                             : junction->target;

    const SymState got = summarize(arena, comp.nodes);
    compareRegs(arena, want, got, report, stage, comp_id);
    compareEffects(arena, want, got, report, stage, comp_id);
    compareGuards(arena, want_guards, got.guards(), report, stage, comp_id);
    compareExit(arena, want_exit, got.exit(), report, stage, comp_id);
    if (comp.fallthroughPc != -1)
        addDiag(report, Code::ControlEffectMismatch, Severity::Error, stage,
                comp_id, -1, -1,
                "companion must not fall through (fall-through pc ",
                comp.fallthroughPc, ")");
}

void
checkChain(const CodeImage &single, const CodeImage &enlarged,
           const Chain &chain, Report &report, std::string_view stage)
{
    const ImageBlock &head = single.block(chain.front().blockId);
    const auto it = enlarged.entryByPc.find(head.entryPc);
    if (it == enlarged.entryByPc.end()) {
        addDiag(report, Code::ChainPlanBroken, Severity::Error, stage, -1,
                -1, head.entryPc, "chain head pc ", head.entryPc,
                " is not mapped in the enlarged image");
        return;
    }
    const std::int32_t primary_id = it->second;
    const ImageBlock &primary = enlarged.block(primary_id);
    if (!primary.enlarged || primary.companion ||
        primary.chainLen != static_cast<std::int32_t>(chain.size()) ||
        primary.entryPc != head.entryPc) {
        addDiag(report, Code::ChainPlanBroken, Severity::Error, stage,
                primary_id, -1, head.entryPc, "chain head pc ",
                head.entryPc,
                " does not map to a primary of chain length ",
                chain.size(), " (enlarged=", primary.enlarged,
                ", companion=", primary.companion, ", chain len ",
                primary.chainLen, ")");
        return;
    }

    if (!operandsEvaluable(primary.nodes)) {
        addDiag(report, Code::ImageShapeMismatch, Severity::Error, stage,
                primary_id, -1, head.entryPc,
                "primary contains unevaluable operands; "
                "soundness not provable");
        return;
    }
    for (const ChainLink &link : chain) {
        if (!operandsEvaluable(single.block(link.blockId).nodes)) {
            addDiag(report, Code::ImageShapeMismatch, Severity::Error,
                    stage, link.blockId, -1, -1,
                    "chain member contains unevaluable operands; "
                    "soundness not provable");
            return;
        }
    }

    Arena arena;
    const SymState got = summarize(arena, primary.nodes);

    // The primary's own fault targets tell us which block serves each
    // conditional junction; their shape and content are then proven
    // against the composition, so a wrong target cannot hide.
    std::vector<std::int32_t> guard_targets;
    guard_targets.reserve(got.guards().size());
    for (const Guard &guard : got.guards())
        guard_targets.push_back(guard.target);

    SymState want(arena);
    std::vector<Guard> want_guards;
    composeChain(single, chain, chain.size() - 1,
                 /*include_last_terminal=*/true, guard_targets, want,
                 want_guards);

    compareRegs(arena, want, got, report, stage, primary_id);
    compareEffects(arena, want, got, report, stage, primary_id);
    compareGuards(arena, want_guards, got.guards(), report, stage,
                  primary_id);
    compareExit(arena, want.exit(), got.exit(), report, stage, primary_id);

    const std::int32_t want_fall =
        single.block(chain.back().blockId).fallthroughPc;
    if (primary.fallthroughPc != want_fall)
        addDiag(report, Code::ControlEffectMismatch, Severity::Error, stage,
                primary_id, -1, -1, "primary fall-through pc ",
                primary.fallthroughPc, " differs from the chain tail's ",
                want_fall);

    const std::vector<std::size_t> cond_members = condJunctionMembers(chain);
    if (cond_members.size() != guard_targets.size())
        return; // guard-count mismatch already reported
    for (std::size_t k = 0; k < cond_members.size(); ++k)
        checkCompanion(single, enlarged, chain, cond_members[k], k,
                       guard_targets, primary_id, arena, report, stage);
}

} // namespace

void
checkTranslationSoundness(const CodeImage &before, const CodeImage &after,
                          Report &report, std::string_view stage)
{
    if (before.blocks.size() != after.blocks.size()) {
        addDiag(report, Code::ImageShapeMismatch, Severity::Error, stage,
                -1, -1, -1, "block count changed from ",
                before.blocks.size(), " to ", after.blocks.size());
        return;
    }
    for (std::size_t i = 0; i < before.blocks.size(); ++i) {
        const ImageBlock &b = before.blocks[i];
        const ImageBlock &a = after.blocks[i];
        if (b.entryPc != a.entryPc || b.fallthroughPc != a.fallthroughPc ||
            b.enlarged != a.enlarged || b.companion != a.companion ||
            b.hasSyscall != a.hasSyscall || b.chainLen != a.chainLen) {
            addDiag(report, Code::ImageShapeMismatch, Severity::Error,
                    stage, b.id, -1, b.entryPc,
                    "block metadata changed across translation");
            continue;
        }
        if (b.nodes == a.nodes)
            continue;
        if (!operandsEvaluable(b.nodes) || !operandsEvaluable(a.nodes)) {
            addDiag(report, Code::ImageShapeMismatch, Severity::Error,
                    stage, b.id, -1, b.entryPc,
                    "block contains unevaluable operands; "
                    "soundness not provable");
            continue;
        }

        Arena arena;
        const SymState want = summarize(arena, b.nodes);
        const SymState got = summarize(arena, a.nodes);
        compareRegs(arena, want, got, report, stage, b.id);
        compareEffects(arena, want, got, report, stage, b.id);
        compareGuards(arena, want.guards(), got.guards(), report, stage,
                      b.id);
        compareExit(arena, want.exit(), got.exit(), report, stage, b.id);
    }
}

void
checkEnlargementSoundness(const CodeImage &single, const CodeImage &enlarged,
                          const EnlargePlan &plan, Report &report,
                          int max_instances, std::string_view stage)
{
    std::vector<Chain> chains;
    chains.reserve(plan.chains.size());
    for (std::size_t c = 0; c < plan.chains.size(); ++c) {
        try {
            chains.push_back(resolveChain(single, plan.chains[c]));
        } catch (const FatalError &err) {
            addDiag(report, Code::ChainPlanBroken, Severity::Error, stage,
                    -1, -1, -1, "plan chain ", c,
                    " cannot be replayed against the single image: ",
                    err.what());
            chains.emplace_back();
        }
    }

    // Exact replication of the planner's instance accounting (§3.1: at
    // most 16 copies of any original block).
    std::unordered_map<std::int32_t, int> instances;
    for (const Chain &chain : chains)
        for (std::size_t j = 0; j < chain.size(); ++j)
            instances[chain[j].blockId] += 1 + condJunctionsFrom(chain, j);
    for (const auto &[block_id, copies] : instances)
        if (copies > max_instances)
            addDiag(report, Code::InstanceCapExceeded, Severity::Error,
                    stage, block_id, -1, single.block(block_id).entryPc,
                    "plan creates ", copies, " instances of block ",
                    block_id, " (cap ", max_instances, ")");

    for (const Chain &chain : chains)
        if (!chain.empty())
            checkChain(single, enlarged, chain, report, stage);
}

} // namespace fgp::verify
