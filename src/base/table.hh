/**
 * @file
 * Console table / CSV writer used by the figure benches to print the
 * paper's series in aligned rows.
 */

#ifndef FGP_BASE_TABLE_HH
#define FGP_BASE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fgp {

/** Column-aligned table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Add a fully-formed row; must match header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: row of label + numeric cells at fixed precision. */
    void addNumericRow(const std::string &label,
                       const std::vector<double> &values, int precision = 3);

    /** Render aligned with two-space gutters. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fgp

#endif // FGP_BASE_TABLE_HH
