/**
 * @file
 * Intra-block dependence DAG used by the static list scheduler and by
 * property tests. Edges:
 *
 *  - true (RAW) register dependencies;
 *  - WAR/WAW register dependencies (the static machine has no renaming
 *    hardware; the local renaming pass removes most of these first);
 *  - memory ordering between possibly-aliasing accesses, using the static
 *    disambiguation rule from §2.1: accesses with the same base register
 *    value and non-overlapping constant offsets provably do not alias;
 *    everything else is assumed to conflict;
 *  - full barriers around system calls.
 */

#ifndef FGP_TLD_DEPGRAPH_HH
#define FGP_TLD_DEPGRAPH_HH

#include <cstdint>
#include <vector>

#include "ir/image.hh"

namespace fgp {

/** Dependence DAG over the nodes of one block. */
struct DepGraph
{
    /** preds[i] — indices of nodes that must execute before node i. */
    std::vector<std::vector<std::uint16_t>> preds;
    /** succs[i] — inverse adjacency. */
    std::vector<std::vector<std::uint16_t>> succs;

    std::size_t size() const { return preds.size(); }
};

/**
 * Build the dependence DAG for @p block.
 *
 * @param with_antideps include WAR/WAW register edges (true for the static
 *        machine; the dynamic machine renames in hardware).
 */
DepGraph buildDepGraph(const ImageBlock &block, bool with_antideps);

/**
 * True when two memory nodes may reference overlapping bytes, using only
 * compile-time information. @p same_base_value tells whether the base
 * registers are known to hold the same value.
 */
bool mayAlias(const Node &a, const Node &b, bool same_base_value);

} // namespace fgp

#endif // FGP_TLD_DEPGRAPH_HH
