# Empty dependencies file for fig2_blocksize.
# This may be replaced when dependencies are built.
