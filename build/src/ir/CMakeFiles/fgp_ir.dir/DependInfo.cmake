
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cfg.cc" "src/ir/CMakeFiles/fgp_ir.dir/cfg.cc.o" "gcc" "src/ir/CMakeFiles/fgp_ir.dir/cfg.cc.o.d"
  "/root/repo/src/ir/image.cc" "src/ir/CMakeFiles/fgp_ir.dir/image.cc.o" "gcc" "src/ir/CMakeFiles/fgp_ir.dir/image.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/ir/CMakeFiles/fgp_ir.dir/opcode.cc.o" "gcc" "src/ir/CMakeFiles/fgp_ir.dir/opcode.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/fgp_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/fgp_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/fgp_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/fgp_ir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/fgp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
