/**
 * @file
 * Memory-system timing model (§3.1): perfect memory at a flat latency
 * (configs A-C), or a two-way set-associative write-back cache with 16-byte
 * lines behind a small fully associative write buffer (configs D-G). The
 * write buffer holds committed store lines in front of the cache, raising
 * hit ratios exactly as the paper notes. The memory system is fully
 * pipelined: the engine may start one access per port per cycle; this
 * model only decides each access's latency and tracks hit statistics.
 *
 * Data is NOT held here — the simulator keeps one authoritative functional
 * memory image; cache and write buffer track line presence for timing only.
 */

#ifndef FGP_MEMSYS_MEMSYS_HH
#define FGP_MEMSYS_MEMSYS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/config.hh"
#include "base/stats.hh"

namespace fgp {

/** Generic set-associative cache directory (tags only) with LRU. */
class CacheDirectory
{
  public:
    CacheDirectory(std::uint32_t bytes, int assoc, int line_bytes);

    /**
     * Look up the line containing @p addr; allocate it on miss when
     * @p allocate. Returns true on hit. LRU updated on hit and fill.
     */
    bool access(std::uint32_t addr, bool allocate);

    /** True when the line is currently present (no LRU update). */
    bool contains(std::uint32_t addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    int numSets() const { return static_cast<int>(sets_.size()); }

  private:
    struct Line
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t lineFor(std::uint32_t addr) const;

    int assoc_;
    int lineShift_;
    std::uint32_t setMask_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Small fully associative line buffer for committed stores. */
class WriteBuffer
{
  public:
    explicit WriteBuffer(int lines, int line_bytes);

    /** True when the buffer holds the line of @p addr (LRU refresh). */
    bool contains(std::uint32_t addr);

    /**
     * Insert the line of @p addr; when the buffer is full the LRU line is
     * evicted and returned (so the caller can push it into the cache).
     * Returns -1 when nothing was evicted.
     */
    std::int64_t insert(std::uint32_t addr);

    std::uint64_t hits() const { return hits_; }

    /** Lines currently buffered (occupancy gauge for the profiler). */
    int size() const { return static_cast<int>(lru_.size()); }

  private:
    // Move-to-front vector rather than a linked list: the buffer holds a
    // handful of lines, so the scan is one cache line, and a reserved
    // vector never allocates after construction (the engine's
    // zero-steady-state-allocation contract covers commitStore).
    int capacity_;
    int lineShift_;
    std::vector<std::uint32_t> lru_; ///< front = most recent; values are lines
    std::uint64_t hits_ = 0;
};

/** Latency/statistics model for one memory configuration. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &config);

    /**
     * Latency in cycles of a load beginning now at @p addr. Updates cache
     * state (allocates on miss). @p forwarded should be true when the
     * value came from the store queue — such accesses cost the hit
     * latency and do not touch the cache.
     */
    int loadLatency(std::uint32_t addr, bool forwarded);

    /** Account a committed store of @p len bytes at @p addr. */
    void commitStore(std::uint32_t addr, std::uint32_t len);

    const MemoryConfig &config() const { return config_; }

    std::uint64_t loads() const { return loads_; }
    std::uint64_t loadMisses() const { return loadMisses_; }
    double hitRatio() const;

    /** Write-buffer occupancy in lines (profiler gauge). */
    int writeBufferLines() const { return writeBuffer_.size(); }

    void exportStats(StatGroup &stats, const std::string &prefix) const;

  private:
    MemoryConfig config_;
    CacheDirectory cache_;
    WriteBuffer writeBuffer_;
    std::uint64_t loads_ = 0;
    std::uint64_t loadMisses_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace fgp

#endif // FGP_MEMSYS_MEMSYS_HH
