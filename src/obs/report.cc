#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <ostream>
#include <vector>

#include "base/table.hh"
#include "engine/engine.hh"
#include "obs/json.hh"

namespace fgp::obs {

namespace {

std::string
fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string
percentOf(std::uint64_t part, std::uint64_t whole)
{
    if (whole == 0)
        return "-";
    return fixed(100.0 * static_cast<double>(part) /
                     static_cast<double>(whole),
                 1) +
           "%";
}

} // namespace

void
writeResultJson(std::ostream &os, const EngineResult &result,
                const ReportMeta &meta)
{
    const StallBreakdown &st = result.stalls;
    const std::uint64_t totalSlots =
        result.cycles * static_cast<std::uint64_t>(result.issueWidth);

    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "fgpsim-sim-v1");
    w.field("workload", meta.workload);
    w.field("config", meta.config);
    w.field("exited", result.exited);
    w.field("exit_code", result.exitCode);
    w.field("cycles", result.cycles);
    w.field("issue_width", result.issueWidth);
    w.field("retired_nodes", result.retiredNodes);
    w.field("executed_nodes", result.executedNodes);
    w.field("issued_nodes", result.issuedNodes);
    w.field("committed_blocks", result.committedBlocks);
    w.field("squashed_blocks", result.squashedBlocks);
    w.field("faults_fired", result.faultsFired);
    w.field("branches_resolved", result.branchesResolved);
    w.field("mispredicts", result.mispredicts);
    w.field("nodes_per_cycle", result.nodesPerCycle());
    w.field("redundancy", result.redundancy());

    w.beginObject("stalls");
    w.beginObject("issue_slots");
    w.field("total", totalSlots);
    w.field("issued_nodes", result.issuedNodes);
    w.field("fetch_redirect", st.fetchRedirectSlots);
    w.field("fetch_idle", st.fetchIdleSlots);
    w.field("window_full", st.windowFullSlots);
    w.field("short_word", st.shortWordSlots);
    w.field("drain", st.drainSlots);
    w.endObject();
    w.beginObject("node_cycles");
    w.field("operand_wait", st.operandWaitNodeCycles);
    w.field("memory_wait", st.memoryWaitNodeCycles);
    w.field("serialize_wait", st.serializeWaitNodeCycles);
    w.field("fu_busy", st.fuBusyNodeCycles);
    w.endObject();
    w.endObject();

    w.beginObject("histograms");
    w.rawField("block_size", result.blockSize.toJson());
    w.rawField("window_occupancy", result.windowOccupancy.toJson());
    w.rawField("valid_nodes", result.validNodes.toJson());
    w.rawField("active_nodes", result.activeNodes.toJson());
    w.rawField("ready_nodes", result.readyNodes.toJson());
    w.endObject();

    w.beginObject("stats");
    for (const auto &[name, value] : result.stats.ints())
        w.field(name, value);
    for (const auto &[name, value] : result.stats.reals())
        w.field(name, value);
    w.endObject();

    w.beginArray("blocks");
    for (std::size_t i = 0; i < result.blockStats.size(); ++i) {
        const BlockStat &bs = result.blockStats[i];
        if (!bs.touched())
            continue;
        w.beginObject();
        w.field("block", static_cast<std::uint64_t>(i));
        w.field("entry_pc", static_cast<std::int64_t>(bs.entryPc));
        w.field("issued_words", bs.issuedWords);
        w.field("retired_blocks", bs.retiredBlocks);
        w.field("retired_nodes", bs.retiredNodes);
        w.field("squashed_blocks", bs.squashedBlocks);
        w.field("squashed_nodes", bs.squashedNodes);
        w.field("mispredicts", bs.mispredicts);
        w.field("faults_fired", bs.faultsFired);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    os << '\n';
}

void
printReport(std::ostream &os, const EngineResult &result,
            const ReportMeta &meta, int topBlocks,
            const std::vector<double> *blockIpcBounds)
{
    const StallBreakdown &st = result.stalls;
    const std::uint64_t totalSlots =
        result.cycles * static_cast<std::uint64_t>(result.issueWidth);

    os << "== fgpsim report: " << meta.workload << " on " << meta.config
       << " ==\n\n";
    os << "cycles            " << result.cycles << '\n';
    os << "retired nodes     " << result.retiredNodes << '\n';
    os << "nodes/cycle       " << fixed(result.nodesPerCycle(), 3) << '\n';
    os << "executed nodes    " << result.executedNodes << " (redundancy "
       << fixed(result.redundancy(), 3) << ")\n";
    os << "committed blocks  " << result.committedBlocks << '\n';
    os << "squashed blocks   " << result.squashedBlocks << '\n';
    os << "mispredicts       " << result.mispredicts << " / "
       << result.branchesResolved << " resolved branches\n";
    os << "faults fired      " << result.faultsFired << '\n';

    os << "\nIssue slots (" << totalSlots << " = " << result.cycles
       << " cycles x width " << result.issueWidth << "):\n";
    Table slots({"cause", "slots", "share"});
    slots.addRow({"issued nodes", std::to_string(result.issuedNodes),
                  percentOf(result.issuedNodes, totalSlots)});
    slots.addRow({"fetch redirect", std::to_string(st.fetchRedirectSlots),
                  percentOf(st.fetchRedirectSlots, totalSlots)});
    slots.addRow({"fetch idle", std::to_string(st.fetchIdleSlots),
                  percentOf(st.fetchIdleSlots, totalSlots)});
    slots.addRow({"window full", std::to_string(st.windowFullSlots),
                  percentOf(st.windowFullSlots, totalSlots)});
    slots.addRow({"short word", std::to_string(st.shortWordSlots),
                  percentOf(st.shortWordSlots, totalSlots)});
    slots.addRow({"drain", std::to_string(st.drainSlots),
                  percentOf(st.drainSlots, totalSlots)});
    slots.print(os);

    const std::uint64_t totalWait =
        st.operandWaitNodeCycles + st.memoryWaitNodeCycles +
        st.serializeWaitNodeCycles + st.fuBusyNodeCycles;
    os << "\nWaiting node-cycles (" << totalWait << " total):\n";
    Table waits({"cause", "node-cycles", "share"});
    waits.addRow({"operand wait", std::to_string(st.operandWaitNodeCycles),
                  percentOf(st.operandWaitNodeCycles, totalWait)});
    waits.addRow({"memory wait", std::to_string(st.memoryWaitNodeCycles),
                  percentOf(st.memoryWaitNodeCycles, totalWait)});
    waits.addRow({"serialize wait",
                  std::to_string(st.serializeWaitNodeCycles),
                  percentOf(st.serializeWaitNodeCycles, totalWait)});
    waits.addRow({"fu busy", std::to_string(st.fuBusyNodeCycles),
                  percentOf(st.fuBusyNodeCycles, totalWait)});
    waits.print(os);

    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < result.blockStats.size(); ++i)
        if (result.blockStats[i].touched())
            order.push_back(i);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const BlockStat &x = result.blockStats[a];
        const BlockStat &y = result.blockStats[b];
        if (x.retiredNodes != y.retiredNodes)
            return x.retiredNodes > y.retiredNodes;
        return a < b;
    });
    if (order.size() > static_cast<std::size_t>(std::max(topBlocks, 0)))
        order.resize(static_cast<std::size_t>(std::max(topBlocks, 0)));

    os << "\nTop " << order.size() << " static blocks by retired nodes ("
       << std::accumulate(result.blockStats.begin(), result.blockStats.end(),
                          std::uint64_t{0},
                          [](std::uint64_t acc, const BlockStat &bs) {
                              return acc + (bs.touched() ? 1 : 0);
                          })
       << " touched):\n";
    std::vector<std::string> heads = {"block",    "entry_pc", "retired",
                                      "ret_nodes", "squashed", "mispred",
                                      "faults"};
    if (blockIpcBounds)
        heads.push_back("ipc_bound");
    Table blocks(heads);
    for (std::size_t i : order) {
        const BlockStat &bs = result.blockStats[i];
        std::vector<std::string> row = {
            std::to_string(i),           std::to_string(bs.entryPc),
            std::to_string(bs.retiredBlocks),
            std::to_string(bs.retiredNodes),
            std::to_string(bs.squashedBlocks),
            std::to_string(bs.mispredicts),
            std::to_string(bs.faultsFired)};
        if (blockIpcBounds)
            row.push_back(i < blockIpcBounds->size()
                              ? fixed((*blockIpcBounds)[i], 3)
                              : "-");
        blocks.addRow(std::move(row));
    }
    blocks.print(os);
}

} // namespace fgp::obs
