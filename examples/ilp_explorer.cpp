/**
 * @file
 * ILP explorer: run any of the five paper benchmarks on any machine
 * configuration and print the full statistics block.
 *
 *   usage: ilp_explorer [benchmark] [discipline] [pointcode] [branchmode]
 *     benchmark   sort | grep | diff | cpp | compress   (default grep)
 *     discipline  static | dyn1 | dyn4 | dyn256         (default dyn4)
 *     pointcode   issue model 1-8 + memory A-G, e.g. 8A (default 8A)
 *     branchmode  single | enlarged | perfect           (default enlarged)
 *
 *   $ ./build/examples/ilp_explorer compress dyn256 8G enlarged
 */

#include <iostream>
#include <string>

#include "base/logging.hh"
#include "harness/experiment.hh"

using namespace fgp;

namespace {

Discipline
parseDiscipline(const std::string &text)
{
    for (Discipline d : allDisciplines())
        if (disciplineName(d) == text)
            return d;
    fgp_fatal("unknown discipline '", text,
              "' (static | dyn1 | dyn4 | dyn256)");
}

BranchMode
parseBranchMode(const std::string &text)
{
    for (BranchMode m :
         {BranchMode::Single, BranchMode::Enlarged, BranchMode::Perfect})
        if (branchModeName(m) == text)
            return m;
    fgp_fatal("unknown branch mode '", text,
              "' (single | enlarged | perfect)");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const std::string workload = argc > 1 ? argv[1] : "grep";
        MachineConfig config;
        config.discipline =
            parseDiscipline(argc > 2 ? argv[2] : "dyn4");
        parsePointCode(argc > 3 ? argv[3] : "8A", config.issue,
                       config.memory);
        config.branch = parseBranchMode(argc > 4 ? argv[4] : "enlarged");

        ExperimentRunner runner;
        const ExperimentResult r = runner.run(workload, config);
        const EnlargeStats &en = runner.enlargeStats(workload);

        std::cout << "benchmark            " << workload << "\n"
                  << "configuration        " << config.name() << "\n"
                  << "reference nodes      " << r.refNodes << "\n"
                  << "cycles               " << r.cycles << "\n"
                  << "nodes per cycle      " << r.nodesPerCycle << "\n"
                  << "raw retired nodes    " << r.engine.retiredNodes
                  << "\n"
                  << "executed nodes       " << r.engine.executedNodes
                  << "\n"
                  << "redundancy           " << r.engine.redundancy()
                  << "\n"
                  << "committed blocks     " << r.engine.committedBlocks
                  << "\n"
                  << "squashed blocks      " << r.engine.squashedBlocks
                  << "\n"
                  << "mean block size      " << r.engine.blockSize.mean()
                  << " nodes\n"
                  << "branches resolved    " << r.engine.branchesResolved
                  << "\n"
                  << "mispredicts          " << r.engine.mispredicts << "\n"
                  << "faults fired         " << r.engine.faultsFired << "\n"
                  << "mean window (blocks) "
                  << r.engine.windowOccupancy.mean() << "\n";
        if (config.branch != BranchMode::Single) {
            std::cout << "enlargement          " << en.chains
                      << " chains, " << en.companions << " companions, "
                      << "mean length " << en.meanChainLen << "\n";
        }
        std::cout << "\ndetailed counters:\n";
        r.engine.stats.print(std::cout, "  ");
        return 0;
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
