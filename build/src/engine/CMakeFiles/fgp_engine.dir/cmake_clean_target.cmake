file(REMOVE_RECURSE
  "libfgp_engine.a"
)
