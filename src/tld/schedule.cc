#include "tld/schedule.hh"

#include <algorithm>

#include "base/logging.hh"
#include "tld/depgraph.hh"

namespace fgp {

void
scheduleStatic(ImageBlock &block, const IssueModel &issue,
               int mem_hit_latency, const MemDepFacts *facts)
{
    const std::size_t n = block.nodes.size();
    block.words.clear();
    if (n == 0)
        return;

    const DepGraph graph =
        buildDepGraph(block, /*with_antideps=*/true, facts);

    // Critical-path heights (latency-weighted longest path to a leaf).
    // Dependence edges always point forward in index order, so a reverse
    // sweep is a reverse-topological traversal.
    std::vector<int> height(n, 0);
    for (std::size_t i = n; i-- > 0;) {
        const int lat =
            nodeLatency(block.nodes[i], mem_hit_latency);
        for (std::uint16_t succ : graph.succs[i])
            height[i] = std::max(height[i], lat + height[succ]);
        height[i] = std::max(height[i], lat);
    }

    // Earliest cycle each node may schedule at, updated as preds schedule.
    std::vector<int> earliest(n, 0);
    std::vector<int> preds_left(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        preds_left[i] = static_cast<int>(graph.preds[i].size());

    std::vector<std::uint16_t> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (preds_left[i] == 0)
            ready.push_back(static_cast<std::uint16_t>(i));

    // Cycle keys are dense and start at 0, so a flat vector indexed by
    // cycle replaces the former ordered map; cycles that issue nothing
    // stay empty and are skipped when flattening into block.words.
    std::vector<Word> schedule;
    std::size_t scheduled = 0;
    int cycle = 0;

    while (scheduled < n) {
        // Candidates ready at this cycle, by height then program order.
        std::vector<std::uint16_t> avail;
        for (std::uint16_t idx : ready)
            if (earliest[idx] <= cycle)
                avail.push_back(idx);
        std::sort(avail.begin(), avail.end(),
                  [&](std::uint16_t a, std::uint16_t b) {
                      if (height[a] != height[b])
                          return height[a] > height[b];
                      return a < b;
                  });

        int mem_free = issue.sequential ? 1 : issue.memSlots;
        int alu_free = issue.sequential ? 1 : issue.aluSlots;
        int total_free = issue.sequential ? 1 : mem_free + alu_free;

        Word word;
        for (std::uint16_t idx : avail) {
            if (total_free == 0)
                break;
            const bool is_mem = block.nodes[idx].isMem();
            if (issue.sequential) {
                // any single node
            } else if (is_mem) {
                if (mem_free == 0)
                    continue;
                --mem_free;
            } else {
                if (alu_free == 0)
                    continue;
                --alu_free;
            }
            --total_free;
            word.push_back(idx);

            ready.erase(std::find(ready.begin(), ready.end(), idx));
            ++scheduled;
            const int finish =
                cycle + nodeLatency(block.nodes[idx], mem_hit_latency);
            for (std::uint16_t succ : graph.succs[idx]) {
                earliest[succ] = std::max(earliest[succ], finish);
                if (--preds_left[succ] == 0)
                    ready.push_back(succ);
            }
        }

        if (!word.empty()) {
            std::sort(word.begin(), word.end());
            schedule.resize(static_cast<std::size_t>(cycle) + 1);
            schedule[static_cast<std::size_t>(cycle)] = std::move(word);
        }
        ++cycle;
        fgp_assert(cycle < static_cast<int>(4 * n + 64),
                   "static scheduler failed to converge");
    }

    for (Word &word : schedule)
        if (!word.empty())
            block.words.push_back(std::move(word));
}

void
packDynamic(ImageBlock &block, const IssueModel &issue)
{
    block.words.clear();
    Word word;
    int mem_free = issue.sequential ? 1 : issue.memSlots;
    int alu_free = issue.sequential ? 1 : issue.aluSlots;
    int total_free = issue.sequential ? 1 : mem_free + alu_free;

    auto flush = [&]() {
        if (!word.empty())
            block.words.push_back(std::move(word));
        word.clear();
        mem_free = issue.sequential ? 1 : issue.memSlots;
        alu_free = issue.sequential ? 1 : issue.aluSlots;
        total_free = issue.sequential ? 1 : mem_free + alu_free;
    };

    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        const bool is_mem = block.nodes[i].isMem();
        bool fits = total_free > 0;
        if (fits && !issue.sequential)
            fits = is_mem ? mem_free > 0 : alu_free > 0;
        if (!fits)
            flush();
        if (!issue.sequential) {
            if (is_mem)
                --mem_free;
            else
                --alu_free;
        }
        --total_free;
        word.push_back(static_cast<std::uint16_t>(i));
    }
    flush();
}

bool
wordsRespectModel(const ImageBlock &block, const IssueModel &issue,
                  const MemDepFacts *facts)
{
    std::vector<int> word_of(block.nodes.size(), -1);
    for (std::size_t w = 0; w < block.words.size(); ++w) {
        int mem = 0;
        int alu = 0;
        for (std::uint16_t idx : block.words[w]) {
            if (idx >= block.nodes.size() || word_of[idx] != -1)
                return false;
            word_of[idx] = static_cast<int>(w);
            if (block.nodes[idx].isMem())
                ++mem;
            else
                ++alu;
        }
        if (issue.sequential) {
            if (mem + alu > 1)
                return false;
        } else if (mem > issue.memSlots || alu > issue.aluSlots) {
            return false;
        }
    }
    for (int w : word_of)
        if (w == -1)
            return false;

    // Dependence edges must never point backwards across words.
    const DepGraph graph =
        buildDepGraph(block, /*with_antideps=*/false, facts);
    for (std::size_t i = 0; i < graph.size(); ++i)
        for (std::uint16_t succ : graph.succs[i])
            if (word_of[succ] < word_of[i])
                return false;
    return true;
}

} // namespace fgp
