/**
 * @file
 * Interval profiler: per-window telemetry folded out of the engine's
 * existing counters, plus the retired-node log the critical-path
 * extractor (profile/critpath.hh) walks afterwards.
 *
 * Zero-cost-when-off, like the obs event bus and the metrics registry:
 * the engine holds one nullable pointer (EngineOptions::profile) and
 * every hook is guarded by a single branch. When attached, the engine
 * calls noteCycle() once per cycle (four gauge updates), closeWindow()
 * once per window boundary (a counter snapshot diffed against the
 * previous one — per-window values are exact telescoping deltas, so the
 * PR 2 slot-closure invariant holds *per window*, not just globally),
 * and appendRetired() once per retired node. Profiling never changes a
 * schedule.
 *
 * All storage follows the workspace clearRetain idiom: beginRun() resets
 * logical contents without freeing capacity, so a warmed profiler keeps
 * the engine's zero-steady-state-allocation contract
 * (EngineResult::allocCycleLoop == 0 on repeat runs — enforced by
 * bench/perf_selfcheck.cc with profiling enabled).
 */

#ifndef FGP_PROFILE_PROFILE_HH
#define FGP_PROFILE_PROFILE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "engine/engine.hh"
#include "profile/critpath.hh"
#include "profile/record.hh"

namespace fgp {
namespace profile {

/** Default window length in simulated cycles. */
constexpr std::uint64_t kDefaultWindowCycles = 10'000;

/**
 * Monotone counter snapshot the engine hands to closeWindow(). Cycle
 * counters (fetchRedirectCycles...) are in cycles; the profiler scales
 * them to issue slots when building the per-window StallBreakdown.
 */
struct CounterSnapshot
{
    std::uint64_t issuedNodes = 0;
    std::uint64_t retiredNodes = 0;
    std::uint64_t executedNodes = 0;
    std::uint64_t committedBlocks = 0;
    std::uint64_t squashedBlocks = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t faultsFired = 0;

    std::uint64_t fetchRedirectCycles = 0;
    std::uint64_t fetchIdleCycles = 0;
    std::uint64_t windowFullCycles = 0;
    std::uint64_t shortWordSlots = 0;

    std::uint64_t operandWaitNodeCycles = 0;
    std::uint64_t memoryWaitNodeCycles = 0;
    std::uint64_t serializeWaitNodeCycles = 0;
    std::uint64_t fuBusyNodeCycles = 0;
};

/** Per-block retired nodes inside one window (sparse: touched only). */
struct ResidencyEntry
{
    std::uint32_t block = 0;
    std::uint64_t retiredNodes = 0;
};

/** One closed window: exact deltas of every engine counter. */
struct WindowSample
{
    std::uint64_t index = 0;
    std::uint64_t startCycle = 0;
    std::uint64_t cycles = 0;

    std::uint64_t issuedNodes = 0;
    std::uint64_t retiredNodes = 0;
    std::uint64_t executedNodes = 0;
    std::uint64_t committedBlocks = 0;
    std::uint64_t squashedBlocks = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t faultsFired = 0;

    /** Slot + node-cycle attribution for this window alone. The slot
     *  causes close exactly: totalSlots() == cycles * width -
     *  issuedNodes, with drainSlots zero everywhere but the final
     *  window (issue accounts a full width every non-exit cycle). */
    StallBreakdown stalls;

    // Per-cycle gauges sampled at the engine's histogram point.
    std::uint64_t readySum = 0;  ///< mean ready-queue depth = sum/cycles
    std::uint64_t readyMax = 0;
    std::uint64_t liveMax = 0;       ///< live-node high-water mark
    std::uint64_t storeQueueMax = 0; ///< store-buffer occupancy peak
    std::uint64_t writeBufMax = 0;   ///< write-buffer lines peak

    /** Slice of IntervalProfiler::residency() for this window. */
    std::uint32_t residencyOffset = 0;
    std::uint32_t residencyCount = 0;

    /** Cumulative FNV-1a fingerprint of the retired-node log at this
     *  window's close (fnvRetired over every entry so far). Cumulative
     *  on purpose: once two runs diverge, every later window's hash
     *  differs too, so the first divergent window is binary-searchable. */
    std::uint64_t schedHash = kFnvOffsetBasis;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retiredNodes) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class IntervalProfiler
{
  public:
    /** Window length in simulated cycles (>= 1; 0 keeps the default). */
    void
    setWindowCycles(std::uint64_t cycles)
    {
        windowCycles_ = cycles ? cycles : kDefaultWindowCycles;
    }

    std::uint64_t windowCycles() const { return windowCycles_; }

    /** Reset for a new run; retains all capacity (clearRetain idiom). */
    void beginRun(int issue_width, std::size_t num_blocks);

    // ---- engine hot-path hooks --------------------------------------
    /** Once per cycle, at the engine's histogram sampling point. */
    void
    noteCycle(std::uint64_t ready, std::uint64_t live,
              std::uint64_t store_queue, std::uint64_t write_buf)
    {
        readySum_ += ready;
        readyMax_ = std::max(readyMax_, ready);
        liveMax_ = std::max(liveMax_, live);
        storeQueueMax_ = std::max(storeQueueMax_, store_queue);
        writeBufMax_ = std::max(writeBufMax_, write_buf);
    }

    /** True when @p cycle is the last cycle of the current window. */
    bool
    windowBoundary(std::uint64_t cycle) const
    {
        return (cycle + 1) % windowCycles_ == 0;
    }

    /**
     * Close the window ending at @p end_cycle (exclusive). @p counters
     * is the engine's monotone totals at this point; @p block_retired
     * the per-block retired-node totals (result_.blockStats order).
     * The final, possibly partial window passes final = true.
     */
    void closeWindow(std::uint64_t end_cycle,
                     const CounterSnapshot &counters,
                     const std::vector<BlockStat> &block_stats, bool final);

    /** Log one retired node (called in retirement = seq order). The
     *  timestamps are normalized monotone: ready >= issue, sched >=
     *  ready, complete >= sched + 1 — nodes whose completion event
     *  never fired (the exit syscall) still get a well-formed span. */
    void
    appendRetired(std::uint64_t seq, const NodeProf &prof,
                  std::uint32_t block)
    {
        RetiredNode entry;
        entry.seq = seq;
        entry.parentSeq = prof.parentSeq;
        entry.issueCycle = prof.issueCycle;
        entry.readyCycle = std::max(prof.readyCycle, entry.issueCycle);
        entry.schedCycle = std::max(prof.schedCycle, entry.readyCycle);
        entry.completeCycle =
            std::max(prof.completeCycle, entry.schedCycle + 1);
        entry.block = block;
        entry.edge = prof.edge;
        schedHash_ = fnvRetired(schedHash_, entry);
        retired_.push_back(entry);
    }

    // ---- results ----------------------------------------------------
    int issueWidth() const { return issueWidth_; }
    const std::vector<WindowSample> &windows() const { return windows_; }
    const std::vector<ResidencyEntry> &residency() const
    {
        return residency_;
    }
    const std::vector<RetiredNode> &retiredLog() const { return retired_; }

    /** Cumulative schedule fingerprint over the whole retired log. */
    std::uint64_t schedHash() const { return schedHash_; }

  private:
    std::uint64_t windowCycles_ = kDefaultWindowCycles;
    int issueWidth_ = 0;

    std::vector<WindowSample> windows_;
    std::vector<ResidencyEntry> residency_;
    std::vector<RetiredNode> retired_;
    std::uint64_t schedHash_ = kFnvOffsetBasis;

    /** Previous window's counter snapshot (deltas telescope). */
    CounterSnapshot prev_;
    std::uint64_t windowStart_ = 0;

    /** Per-block retired-node totals at the previous window boundary. */
    std::vector<std::uint64_t> prevBlockRetired_;

    // Current-window gauges, reset at each close.
    std::uint64_t readySum_ = 0;
    std::uint64_t readyMax_ = 0;
    std::uint64_t liveMax_ = 0;
    std::uint64_t storeQueueMax_ = 0;
    std::uint64_t writeBufMax_ = 0;
};

/**
 * Copy-out of one profiled run, carried on ExperimentResult so sweep
 * consumers (recorder, CSV, tests) never hold the live profiler.
 */
struct RunProfile
{
    bool enabled = false;
    std::uint64_t windowCycles = 0;
    int issueWidth = 0;
    std::vector<WindowSample> windows;
    std::vector<ResidencyEntry> residency;

    /** Measured dynamic critical path (profile/critpath.hh). */
    CritPath critPath;
};

} // namespace profile
} // namespace fgp

#endif // FGP_PROFILE_PROFILE_HH
