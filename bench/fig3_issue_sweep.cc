/**
 * @file
 * Figure 3: performance as a function of the issue model (instruction
 * word width) for all ten scheduling disciplines, memory configuration A
 * (constant 1-cycle memory).
 */

#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Figure 3", "nodes/cycle vs. issue model, memory config A");

    ExperimentRunner runner(envScale());
    RunRecorder recorder("fig3", &runner);
    const MemoryConfig mem = memoryConfig('A');

    std::vector<std::string> header = {"series"};
    for (const IssueModel &im : allIssueModels())
        header.push_back(im.name());
    Table table(std::move(header));

    std::vector<MachineConfig> configs;
    for (const Series &series : tenSeries())
        for (const IssueModel &im : allIssueModels())
            configs.push_back({series.discipline, im, mem, series.branch});
    const std::vector<double> means = sweepMeans(
        runner, configs,
        [](const ExperimentResult &r) { return r.nodesPerCycle; },
        &recorder);

    std::size_t at = 0;
    for (const Series &series : tenSeries()) {
        const std::vector<double> row(
            means.begin() + static_cast<std::ptrdiff_t>(at),
            means.begin() +
                static_cast<std::ptrdiff_t>(at + allIssueModels().size()));
        at += allIssueModels().size();
        table.addNumericRow(series.name(), row);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): little spread at narrow words;"
                 "\n  wide words separate the schemes; dyn1 ~ static;"
                 "\n  dyn4 ~ dyn256; enlarged > single; perfect on top.\n";
    finishRun(recorder);
    return 0;
}
