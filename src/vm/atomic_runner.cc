#include "vm/atomic_runner.hh"

#include <cstring>

#include "base/logging.hh"
#include "vm/exec.hh"

namespace fgp {

namespace {

/** Byte-granular store buffer for one block attempt. */
class StoreBuffer
{
  public:
    void
    clear()
    {
        entries_.clear();
    }

    void
    store(std::uint32_t addr, const std::uint8_t *bytes, std::uint32_t len)
    {
        for (std::uint32_t i = 0; i < len; ++i)
            entries_.push_back({addr + i, bytes[i]});
    }

    /** Merge buffered bytes over the committed value. */
    std::uint8_t
    load(std::uint32_t addr, const SparseMemory &mem) const
    {
        for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
            if (it->addr == addr)
                return it->value;
        return mem.read8(addr);
    }

    void
    commit(SparseMemory &mem) const
    {
        for (const auto &entry : entries_)
            mem.write8(entry.addr, entry.value);
    }

  private:
    struct Entry
    {
        std::uint32_t addr;
        std::uint8_t value;
    };
    std::vector<Entry> entries_;
};

} // namespace

AtomicRunResult
runAtomic(const CodeImage &image, SimOS &os, SparseMemory &mem,
          const AtomicRunOptions &opts)
{
    validateImage(image);
    const Program &prog = *image.prog;

    std::uint32_t regs[kNumRegs] = {};
    regs[kRegSp] = kStackTop;
    if (!prog.data.empty())
        mem.writeBytes(kDataBase, prog.data.data(), prog.data.size());
    os.setInitialBrk(prog.initialBrk());

    AtomicRunResult result;
    StoreBuffer stores;

    const MemPorts ports{
        [&](std::uint32_t addr) { return stores.load(addr, mem); },
        [&](std::uint32_t addr, std::uint8_t value) {
            mem.write8(addr, value);
        },
    };

    auto read_reg = [&](std::uint8_t reg) -> std::uint32_t {
        // Unused operand slots carry kRegNone; their value is ignored.
        return reg == kRegZero || reg >= kNumRegs ? 0 : regs[reg];
    };
    auto write_reg = [&](std::uint8_t reg, std::uint32_t value) {
        if (reg != kRegZero && reg != kRegNone)
            regs[reg] = value;
    };

    std::int32_t block_id = image.entryBlock;

    while (true) {
        const ImageBlock &block = image.block(block_id);
        fgp_assert(!(block.hasSyscall && block.enlarged),
                   "enlarged block ", block.id, " contains a system call");

        std::uint32_t checkpoint[kNumRegs];
        std::memcpy(checkpoint, regs, sizeof(checkpoint));
        stores.clear();

        std::int32_t next_pc = -2; // -2: undecided
        std::int32_t next_block = -1;
        bool faulted = false;
        std::size_t executed_here = 0;

        for (std::size_t i = 0; i < block.nodes.size(); ++i) {
            const Node &node = block.nodes[i];
            ++executed_here;
            ++result.executedNodes;
            if (result.executedNodes > opts.maxNodes)
                fgp_fatal("atomic node budget exceeded");

            switch (node.cls()) {
              case NodeClass::IntAlu:
                write_reg(node.rd, evalAlu(node, read_reg(node.rs1),
                                           read_reg(node.rs2)));
                break;
              case NodeClass::Mem: {
                const std::uint32_t addr =
                    effectiveAddress(node, read_reg(node.rs1));
                std::uint8_t bytes[4];
                if (node.isLoad()) {
                    const std::uint32_t len = accessBytes(node.op);
                    for (std::uint32_t b = 0; b < len; ++b)
                        bytes[b] = stores.load(addr + b, mem);
                    write_reg(node.rd, loadResult(node.op, bytes));
                } else {
                    const std::uint32_t len =
                        storeBytes(node.op, read_reg(node.rs2), bytes);
                    stores.store(addr, bytes, len);
                }
                break;
              }
              case NodeClass::Fault: {
                if (evalCondition(node.op, read_reg(node.rs1),
                                  read_reg(node.rs2))) {
                    faulted = true;
                    next_block = node.target;
                }
                break;
              }
              case NodeClass::Sys: {
                const std::uint32_t value =
                    os.syscall(read_reg(kRegV0), read_reg(kRegA0),
                               read_reg(kRegA1), read_reg(kRegA2),
                               read_reg(kRegA3), ports);
                if (os.exited()) {
                    // Partial block commits up to and including the exit.
                    stores.commit(mem);
                    result.retiredNodes += executed_here;
                    ++result.committedBlocks;
                    if (opts.recordTrace)
                        result.blockTrace.push_back(block.id);
                    result.exited = true;
                    result.exitCode = os.exitCode();
                    return result;
                }
                write_reg(kRegV0, value);
                break;
              }
              case NodeClass::Control: {
                fgp_assert(i + 1 == block.nodes.size(),
                           "control node not terminal");
                switch (node.op) {
                  case Opcode::J:
                    next_pc = node.target;
                    break;
                  case Opcode::JAL:
                    write_reg(node.rd,
                              static_cast<std::uint32_t>(node.origPc + 1));
                    next_pc = node.target;
                    break;
                  case Opcode::JR:
                    next_pc =
                        static_cast<std::int32_t>(read_reg(node.rs1));
                    break;
                  default:
                    next_pc = evalCondition(node.op, read_reg(node.rs1),
                                            read_reg(node.rs2))
                                  ? node.target
                                  : block.fallthroughPc;
                    break;
                }
                break;
              }
            }
            if (faulted)
                break;
        }

        if (faulted) {
            // Discard: restore registers, drop buffered stores.
            std::memcpy(regs, checkpoint, sizeof(checkpoint));
            result.discardedNodes += executed_here;
            ++result.faults;
            block_id = next_block;
            continue;
        }

        stores.commit(mem);
        result.retiredNodes += block.nodes.size();
        ++result.committedBlocks;
        if (opts.recordTrace)
            result.blockTrace.push_back(block.id);

        if (next_pc == -2)
            next_pc = block.fallthroughPc;
        if (next_pc < 0)
            fgp_fatal("block ", block.id,
                      " fell through with no successor (missing exit?)");
        block_id = image.blockAtPc(next_pc);
    }
}

AtomicRunResult
runAtomic(const CodeImage &image, SimOS &os, const AtomicRunOptions &opts)
{
    SparseMemory mem;
    return runAtomic(image, os, mem, opts);
}

} // namespace fgp
