/**
 * @file
 * Address-indexed view of the in-flight store queue.
 *
 * The engine's speculative load path must find, for every byte of a
 * load, the youngest older store whose resolved address covers that
 * byte (§2.1 run-time memory disambiguation). Scanning the store queue
 * newest-to-oldest per byte is O(len x queue) per attempt, which
 * dominates simulation time for large windows (dyn256 keeps hundreds of
 * stores in flight). The index maintains, per byte address, the set of
 * resolved stores covering it, sorted by sequence number, so one lookup
 * is a flat-map probe plus a walk of a (nearly always tiny) pooled
 * version chain.
 *
 * Internals are allocation-free at steady state: an open-addressing
 * FlatHashMap32 keyed by byte address whose values head intrusive
 * version chains in a ChainPool-style arena, plus a seq-sorted ring of
 * extents (inserted near the back, retired from the front, squashed
 * from the back). clearRetain() resets contents without freeing, so a
 * pooled workspace reuses the capacity across simulations.
 *
 * Lifecycle mirrors the store queue:
 *  - addStore()  when a store's address resolves (agen);
 *  - setData()   when the store's data operand arrives;
 *  - erase()     when the store commits at block retirement;
 *  - squash()    drops every store at or above a squash boundary.
 *
 * Stores with unresolved addresses are *not* in the index; the engine
 * gates loads on those separately (they could alias anything).
 */

#ifndef FGP_ENGINE_STORE_INDEX_HH
#define FGP_ENGINE_STORE_INDEX_HH

#include <cstdint>

#include "engine/containers.hh"

namespace fgp {

class StoreIndex
{
  public:
    /** Outcome of a one-byte probe. */
    struct Lookup
    {
        enum class Status : std::uint8_t {
            Miss,     ///< no older store covers the byte; read memory
            NeedData, ///< covered by a store whose data is unresolved
            Hit,      ///< forwarded from the youngest covering store
        };
        Status status = Status::Miss;
        std::uint8_t value = 0;      ///< forwarded byte (Hit only)
        std::uint64_t blocker = 0;   ///< blocking store seq (NeedData only)
        std::uint32_t blockerPos = 0; ///< blocking store's node slot
    };

    /**
     * Register a store whose address just resolved. Data may follow.
     * @p pos is the store's engine node slot, handed back through
     * Lookup::blockerPos so the engine can park a blocked load on the
     * store's wait chain without a seq lookup.
     */
    void addStore(std::uint64_t seq, std::uint32_t addr, std::uint32_t len,
                  std::uint32_t pos = 0);

    /** Attach the store's data bytes (exactly the addStore length). */
    void setData(std::uint64_t seq, const std::uint8_t *data);

    /** Remove one store (block retirement commits it to memory). */
    void erase(std::uint64_t seq);

    /** Remove every store with seq >= @p seq_boundary (squash repair). */
    void squash(std::uint64_t seq_boundary);

    /**
     * Youngest store with seq < @p seq_limit covering @p byte_addr, or
     * Miss. The engine must have gated out older unresolved-address
     * stores before trusting a Miss.
     */
    Lookup lookup(std::uint32_t byte_addr, std::uint64_t seq_limit) const;

    bool empty() const { return extents_.empty(); }
    std::size_t size() const { return extents_.size(); }

    /** Drop contents; keep every array and pool (zero-alloc reuse). */
    void clearRetain();

  private:
    /** One resolved store's contribution to a single byte address,
     *  linked into that address's seq-ascending chain. */
    struct ByteVer
    {
        std::uint64_t seq;
        std::uint32_t next; ///< kNilIndex terminates
        std::uint32_t pos;  ///< engine node slot of the store
        std::uint8_t value;
        bool known;
    };

    struct ExtentRec
    {
        std::uint64_t seq;
        std::uint32_t addr;
        std::uint32_t len;
    };

    void removeBytes(std::uint64_t seq, std::uint32_t addr,
                     std::uint32_t len);

    std::uint32_t
    allocVer(const ByteVer &ver)
    {
        if (freeVer_ != kNilIndex) {
            const std::uint32_t idx = freeVer_;
            freeVer_ = vers_[idx].next;
            vers_[idx] = ver;
            return idx;
        }
        vers_.push_back(ver);
        return static_cast<std::uint32_t>(vers_.size() - 1);
    }

    void
    freeVer(std::uint32_t idx)
    {
        vers_[idx].next = freeVer_;
        freeVer_ = idx;
    }

    /** Logical index of @p seq in the sorted extent ring (binary
     *  search); extents_.size() when absent. */
    std::size_t findExtent(std::uint64_t seq) const;

    /** Byte address -> head of the covering-version chain. */
    FlatHashMap32<std::uint32_t> byteHeads_;

    /** Version-chain arena with freelist. */
    std::vector<ByteVer> vers_;
    std::uint32_t freeVer_ = kNilIndex;

    /** Resolved stores sorted by seq (squash pops the back, retirement
     *  the front; out-of-order address resolution inserts near the
     *  back). */
    RingBuffer<ExtentRec> extents_;
};

} // namespace fgp

#endif // FGP_ENGINE_STORE_INDEX_HH
