#include "tld/optimizer.hh"

#include <algorithm>
#include <optional>

#include "base/logging.hh"
#include "vm/exec.hh"

namespace fgp {

namespace {

constexpr std::int32_t kLiveIn = -1;

bool
isPure(const Node &node)
{
    // Nodes whose only effect is writing their destination register.
    return node.cls() == NodeClass::IntAlu || node.isLoad();
}

/** Commutative/immediate strength reduction target for an RRR opcode. */
std::optional<Opcode>
immediateForm(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return Opcode::ADDI;
      case Opcode::AND: return Opcode::ANDI;
      case Opcode::OR: return Opcode::ORI;
      case Opcode::XOR: return Opcode::XORI;
      case Opcode::SLL: return Opcode::SLLI;
      case Opcode::SRL: return Opcode::SRLI;
      case Opcode::SRA: return Opcode::SRAI;
      case Opcode::SLT: return Opcode::SLTI;
      case Opcode::SLTU: return Opcode::SLTIU;
      default: return std::nullopt;
    }
}

bool
isCommutative(Opcode op)
{
    return op == Opcode::ADD || op == Opcode::AND || op == Opcode::OR ||
           op == Opcode::XOR;
}

/** Replacement load-immediate node preserving destination and origin. */
Node
makeConst(const Node &orig, std::uint32_t value)
{
    Node out;
    out.op = Opcode::ADDI;
    out.rd = orig.rd;
    out.rs1 = kRegZero;
    out.imm = static_cast<std::int32_t>(value);
    out.origPc = orig.origPc;
    return out;
}

/** Copy / constant propagation plus constant folding. */
std::uint64_t
propagatePass(ImageBlock &block)
{
    std::uint64_t changed = 0;

    struct RegState
    {
        std::optional<std::uint32_t> constant;
        std::uint8_t copyOf = kRegNone; ///< root register this one copies
    };
    RegState state[kNumRegs];
    state[kRegZero].constant = 0;

    auto invalidate_copies_of = [&](std::uint8_t reg) {
        for (auto &entry : state)
            if (entry.copyOf == reg)
                entry.copyOf = kRegNone;
    };
    auto def = [&](std::uint8_t reg, RegState value) {
        if (reg == kRegNone || reg == kRegZero)
            return;
        invalidate_copies_of(reg);
        state[reg] = value;
    };
    auto subst = [&](std::uint8_t &reg) {
        if (reg == kRegNone || reg == kRegZero)
            return;
        if (state[reg].copyOf != kRegNone && state[reg].copyOf != reg) {
            reg = state[reg].copyOf;
            ++changed;
        }
    };
    auto const_of = [&](std::uint8_t reg) -> std::optional<std::uint32_t> {
        if (reg == kRegZero)
            return 0u;
        if (reg == kRegNone)
            return std::nullopt;
        return state[reg].constant;
    };

    for (Node &node : block.nodes) {
        // Substitute copy roots into the sources.
        switch (opcodeInfo(node.op).form) {
          case OperandForm::RRR:
          case OperandForm::Branch:
          case OperandForm::FaultF:
          case OperandForm::Store:
            subst(node.rs1);
            subst(node.rs2);
            break;
          case OperandForm::RRI:
          case OperandForm::Load:
          case OperandForm::JumpReg:
            subst(node.rs1);
            break;
          default:
            break;
        }

        if (node.cls() == NodeClass::IntAlu) {
            const auto form = opcodeInfo(node.op).form;
            const auto c1 = const_of(node.rs1);
            const auto c2 = const_of(node.rs2);

            // Fold fully-constant ALU nodes into load-immediates.
            bool folded = false;
            if (form == OperandForm::RRR && c1 && c2) {
                node = makeConst(node, evalAlu(node, *c1, *c2));
                ++changed;
                folded = true;
            } else if (form == OperandForm::RRI && c1 &&
                       !(node.op == Opcode::ADDI && node.rs1 == kRegZero)) {
                node = makeConst(node, evalAlu(node, *c1, 0));
                ++changed;
                folded = true;
            } else if (form == OperandForm::RI) {
                node = makeConst(node, evalAlu(node, 0, 0));
                ++changed;
                folded = true;
            }

            // Strength-reduce one constant operand into immediate form.
            if (!folded && form == OperandForm::RRR) {
                auto imm_op = immediateForm(node.op);
                if (imm_op && c2) {
                    node.op = *imm_op;
                    node.imm = static_cast<std::int32_t>(*c2);
                    node.rs2 = kRegNone;
                    ++changed;
                } else if (imm_op && c1 && isCommutative(node.op)) {
                    node.op = *imm_op;
                    node.imm = static_cast<std::int32_t>(*c1);
                    node.rs1 = node.rs2;
                    node.rs2 = kRegNone;
                    ++changed;
                } else if (node.op == Opcode::SUB && c2) {
                    node.op = Opcode::ADDI;
                    node.imm = -static_cast<std::int32_t>(*c2);
                    node.rs2 = kRegNone;
                    ++changed;
                }
            }

            // Track the destination's new state.
            RegState out;
            if (node.op == Opcode::ADDI && node.rs1 == kRegZero) {
                out.constant = static_cast<std::uint32_t>(node.imm);
            } else if (node.op == Opcode::ADDI && node.imm == 0) {
                const std::uint8_t src = node.rs1;
                out.copyOf = state[src].copyOf != kRegNone
                                 ? state[src].copyOf
                                 : src;
                out.constant = const_of(src);
            } else if (const auto cc1 = const_of(node.rs1)) {
                const auto form2 = opcodeInfo(node.op).form;
                if (form2 == OperandForm::RRI)
                    out.constant = evalAlu(node, *cc1, 0);
                else if (form2 == OperandForm::RRR) {
                    if (const auto cc2 = const_of(node.rs2))
                        out.constant = evalAlu(node, *cc1, *cc2);
                }
            }
            def(node.dstReg(), out);
        } else {
            // Loads, control, faults, stores, syscalls.
            def(node.dstReg(), RegState{});
        }
    }
    return changed;
}

/** Redundant load elimination with store-to-load forwarding. */
std::uint64_t
loadElimPass(ImageBlock &block)
{
    std::uint64_t eliminated = 0;

    std::int32_t version[kNumRegs];
    std::fill(std::begin(version), std::end(version), kLiveIn);
    version[kRegZero] = -2; // constant; never changes

    struct Avail
    {
        std::uint8_t base;
        std::int32_t baseVersion;
        std::int32_t offset;
        Opcode op;          ///< the load opcode this entry satisfies
        std::uint8_t value; ///< register holding the value
        std::int32_t valueVersion;
    };
    std::vector<Avail> avail;

    auto overlap = [](std::int32_t off_a, std::uint32_t len_a,
                      std::int32_t off_b, std::uint32_t len_b) {
        return off_a < off_b + static_cast<std::int32_t>(len_b) &&
               off_b < off_a + static_cast<std::int32_t>(len_a);
    };

    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        Node &node = block.nodes[i];

        if (node.isLoad()) {
            bool replaced = false;
            for (const Avail &entry : avail) {
                if (entry.base == node.rs1 &&
                    entry.baseVersion == version[node.rs1] &&
                    entry.offset == node.imm && entry.op == node.op &&
                    entry.valueVersion == version[entry.value]) {
                    // Same address, same width: reuse the register value.
                    Node copy;
                    copy.op = Opcode::ADDI;
                    copy.rd = node.rd;
                    copy.rs1 = entry.value;
                    copy.imm = 0;
                    copy.origPc = node.origPc;
                    node = copy;
                    ++eliminated;
                    replaced = true;
                    break;
                }
            }
            if (!replaced) {
                avail.push_back({node.rs1, version[node.rs1], node.imm,
                                 node.op, node.rd,
                                 static_cast<std::int32_t>(i)});
            }
        } else if (node.isStore()) {
            const std::uint32_t len = accessBytes(node.op);
            std::erase_if(avail, [&](const Avail &entry) {
                if (entry.base == node.rs1 &&
                    entry.baseVersion == version[node.rs1]) {
                    // Same base value: aliasing decidable by offsets.
                    return overlap(entry.offset, accessBytes(entry.op),
                                   node.imm, len);
                }
                return true; // different base: may alias, be conservative
            });
            if (node.op == Opcode::SW) {
                // The stored register now satisfies word loads from here.
                avail.push_back({node.rs1, version[node.rs1], node.imm,
                                 Opcode::LW, node.rs2, version[node.rs2]});
            }
        } else if (node.isSys()) {
            avail.clear(); // system calls may write any memory
        }

        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero)
            version[dst] = static_cast<std::int32_t>(i);
    }
    return eliminated;
}

/**
 * Rename all-but-last definitions of each architectural register onto
 * scratch registers, eliminating intra-block WAW/WAR dependencies.
 * Skipped for blocks with system calls (they read argument registers
 * implicitly and are never enlarged anyway).
 */
std::uint64_t
renamePass(ImageBlock &block)
{
    if (block.hasSyscall)
        return 0;

    std::uint64_t renamed = 0;

    // Last definition index per architectural register.
    std::int32_t last_def[kNumArchRegs];
    std::fill(std::begin(last_def), std::end(last_def), kLiveIn);
    bool scratch_used[kNumScratchRegs] = {};
    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        const std::uint8_t dst = block.nodes[i].dstReg();
        if (dst != kRegNone && dst < kNumArchRegs && dst != kRegZero)
            last_def[dst] = static_cast<std::int32_t>(i);
        for (std::uint8_t reg :
             {block.nodes[i].rs1, block.nodes[i].rs2, dst})
            if (reg != kRegNone && reg >= kNumArchRegs)
                scratch_used[reg - kNumArchRegs] = true;
    }

    auto alloc_scratch = [&]() -> std::uint8_t {
        for (std::uint8_t s = 0; s < kNumScratchRegs; ++s) {
            if (!scratch_used[s]) {
                scratch_used[s] = true;
                return static_cast<std::uint8_t>(kNumArchRegs + s);
            }
        }
        return kRegNone;
    };

    std::uint8_t current[kNumArchRegs];
    for (std::uint8_t r = 0; r < kNumArchRegs; ++r)
        current[r] = r;

    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        Node &node = block.nodes[i];

        auto rewrite_use = [&](std::uint8_t &reg) {
            if (reg != kRegNone && reg < kNumArchRegs)
                reg = current[reg];
        };
        // Sources first (they read the previous name).
        switch (opcodeInfo(node.op).form) {
          case OperandForm::RRR:
          case OperandForm::Branch:
          case OperandForm::FaultF:
          case OperandForm::Store:
            rewrite_use(node.rs1);
            rewrite_use(node.rs2);
            break;
          case OperandForm::RRI:
          case OperandForm::Load:
          case OperandForm::JumpReg:
            rewrite_use(node.rs1);
            break;
          default:
            break;
        }

        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst < kNumArchRegs && dst != kRegZero) {
            if (static_cast<std::int32_t>(i) != last_def[dst]) {
                const std::uint8_t scratch = alloc_scratch();
                if (scratch != kRegNone) {
                    node.rd = scratch;
                    current[dst] = scratch;
                    ++renamed;
                } else {
                    current[dst] = dst; // pool exhausted; keep arch name
                }
            } else {
                current[dst] = dst; // final def restores the arch name
            }
        }
    }
    return renamed;
}

/** Backward dead-definition elimination. */
std::uint64_t
deadCodePass(ImageBlock &block)
{
    bool live[kNumRegs] = {};
    // All architectural registers are live-out of a block; translator
    // scratch registers are dead by contract.
    for (std::uint8_t r = 0; r < kNumArchRegs; ++r)
        live[r] = true;

    std::vector<bool> keep(block.nodes.size(), true);
    std::uint64_t removed = 0;

    for (std::size_t idx = block.nodes.size(); idx-- > 0;) {
        Node &node = block.nodes[idx];
        const std::uint8_t dst = node.dstReg();
        const bool dead_dst =
            dst != kRegNone && dst != kRegZero && !live[dst];

        if (dead_dst && isPure(node)) {
            keep[idx] = false;
            ++removed;
            continue;
        }
        if (dst != kRegNone && dst != kRegZero)
            live[dst] = false;
        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int s = 0; s < nsrc; ++s)
            if (srcs[s] != kRegNone)
                live[srcs[s]] = true;
    }

    if (removed) {
        std::vector<Node> kept;
        kept.reserve(block.nodes.size() - removed);
        for (std::size_t i = 0; i < block.nodes.size(); ++i)
            if (keep[i])
                kept.push_back(block.nodes[i]);
        block.nodes = std::move(kept);
    }
    return removed;
}

} // namespace

OptimizerStats
optimizeBlock(ImageBlock &block, const OptimizerOptions &opts)
{
    OptimizerStats stats;
    if (opts.propagate)
        stats.propagated += propagatePass(block);
    if (opts.eliminateLoads) {
        stats.loadsEliminated += loadElimPass(block);
        if (opts.propagate)
            stats.propagated += propagatePass(block);
    }
    if (opts.rename)
        stats.renamed += renamePass(block);
    if (opts.eliminateDead)
        stats.deadRemoved += deadCodePass(block);
    return stats;
}

OptimizerStats
optimizeImage(CodeImage &image, const OptimizerOptions &opts)
{
    OptimizerStats stats;
    for (ImageBlock &block : image.blocks)
        stats.mergeFrom(optimizeBlock(block, opts));
    return stats;
}

} // namespace fgp
