#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace fgp {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    fgp_assert(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fgp_assert(cells.size() == header_.size(),
               "row arity ", cells.size(), " != header arity ",
               header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addNumericRow(const std::string &label,
                     const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << v;
        cells.push_back(os.str());
    }
    addRow(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    emit(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c) {
        rule += std::string(width[c], '-');
        if (c + 1 < header_.size())
            rule += "  ";
    }
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace fgp
