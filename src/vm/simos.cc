#include "vm/simos.hh"

#include "base/logging.hh"

namespace fgp {

SimOS::SimOS()
{
    // fds 0/1/2 are stdin/stdout/stderr.
    fds_.resize(3);
    fds_[0] = {"<stdin>", 0, false, true};
    fds_[1] = {"<stdout>", 0, true, true};
    fds_[2] = {"<stderr>", 0, true, true};
}

void
SimOS::addFile(const std::string &name, std::vector<std::uint8_t> bytes)
{
    files_[name] = std::move(bytes);
}

void
SimOS::addFile(const std::string &name, const std::string &text)
{
    files_[name].assign(text.begin(), text.end());
}

void
SimOS::setStdin(const std::string &text)
{
    stdin_.assign(text.begin(), text.end());
    stdinPos_ = 0;
}

void
SimOS::setStdin(std::vector<std::uint8_t> bytes)
{
    stdin_ = std::move(bytes);
    stdinPos_ = 0;
}

std::string
SimOS::stdoutText() const
{
    return std::string(stdout_.begin(), stdout_.end());
}

std::string
SimOS::stderrText() const
{
    return std::string(stderr_.begin(), stderr_.end());
}

std::optional<std::string>
SimOS::fileText(const std::string &name) const
{
    const auto it = files_.find(name);
    if (it == files_.end())
        return std::nullopt;
    return std::string(it->second.begin(), it->second.end());
}

std::uint32_t
SimOS::doOpen(const std::string &path, std::uint32_t flags)
{
    const bool writable = flags & 1;
    if (!writable && !files_.count(path))
        return static_cast<std::uint32_t>(-1);
    if (writable)
        files_[path].clear();

    for (std::size_t fd = 3; fd < fds_.size(); ++fd) {
        if (!fds_[fd].open) {
            fds_[fd] = {path, 0, writable, true};
            return static_cast<std::uint32_t>(fd);
        }
    }
    fds_.push_back({path, 0, writable, true});
    return static_cast<std::uint32_t>(fds_.size() - 1);
}

std::uint32_t
SimOS::doRead(std::uint32_t fd, std::uint32_t buf, std::uint32_t len,
              const MemPorts &mem)
{
    if (fd >= fds_.size() || !fds_[fd].open || fds_[fd].writable)
        return static_cast<std::uint32_t>(-1);

    const std::vector<std::uint8_t> *src;
    std::size_t *pos;
    if (fd == 0) {
        src = &stdin_;
        pos = &stdinPos_;
    } else {
        src = &files_.at(fds_[fd].name);
        pos = &fds_[fd].pos;
    }

    std::uint32_t done = 0;
    while (done < len && *pos < src->size()) {
        mem.store(buf + done, (*src)[*pos]);
        ++done;
        ++*pos;
    }
    return done;
}

std::uint32_t
SimOS::doWrite(std::uint32_t fd, std::uint32_t buf, std::uint32_t len,
               const MemPorts &mem)
{
    std::vector<std::uint8_t> *dst;
    if (fd == 1) {
        dst = &stdout_;
    } else if (fd == 2) {
        dst = &stderr_;
    } else if (fd < fds_.size() && fds_[fd].open && fds_[fd].writable) {
        dst = &files_[fds_[fd].name];
    } else {
        return static_cast<std::uint32_t>(-1);
    }

    for (std::uint32_t i = 0; i < len; ++i)
        dst->push_back(mem.load(buf + i));
    return len;
}

std::uint32_t
SimOS::syscall(std::uint32_t v0, std::uint32_t a0, std::uint32_t a1,
               std::uint32_t a2, std::uint32_t /*a3*/, const MemPorts &mem)
{
    ++syscallCount_;
    switch (static_cast<Sys>(v0)) {
      case Sys::Exit:
        exited_ = true;
        exitCode_ = static_cast<int>(a0);
        return 0;
      case Sys::Open: {
        std::string path;
        for (std::uint32_t i = 0; i < 4096; ++i) {
            const char ch = static_cast<char>(mem.load(a0 + i));
            if (!ch)
                break;
            path.push_back(ch);
        }
        return doOpen(path, a1);
      }
      case Sys::Close:
        if (a0 < 3 || a0 >= fds_.size() || !fds_[a0].open)
            return static_cast<std::uint32_t>(-1);
        fds_[a0].open = false;
        return 0;
      case Sys::Read:
        return doRead(a0, a1, a2, mem);
      case Sys::Write:
        return doWrite(a0, a1, a2, mem);
      case Sys::Brk:
        if (a0 != 0) {
            if (a0 < brk_ || a0 >= kStackTop)
                return brk_; // refuse unreasonable moves
            brk_ = a0;
        }
        return brk_;
    }
    fgp_fatal("unknown system call ", v0);
}

} // namespace fgp
