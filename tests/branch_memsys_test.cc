/** Branch predictor and memory system unit tests. */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include "branch/predictor.hh"
#include "memsys/memsys.hh"

namespace fgp {
namespace {

TEST(Predictor, TwoBitCounterAutomaton)
{
    BranchPredictor bp(16, false);
    const std::int32_t pc = 3;

    // Cold: no supplement -> predict not taken; allocate on update.
    EXPECT_FALSE(bp.predictConditional(pc, 100));
    bp.updateConditional(pc, true); // counter starts at 2 (weak taken)
    EXPECT_TRUE(bp.predictConditional(pc, 100));
    bp.updateConditional(pc, true); // 3 (strong taken)
    bp.updateConditional(pc, false); // 2
    EXPECT_TRUE(bp.predictConditional(pc, 100)); // hysteresis
    bp.updateConditional(pc, false); // 1
    EXPECT_FALSE(bp.predictConditional(pc, 100));
    bp.updateConditional(pc, false); // 0 (strong not-taken)
    bp.updateConditional(pc, true);  // 1
    EXPECT_FALSE(bp.predictConditional(pc, 100)); // hysteresis again
}

TEST(Predictor, StaticSupplementIsBtfn)
{
    BranchPredictor bp(16, true);
    EXPECT_TRUE(bp.predictConditional(50, 10));  // backward: taken
    EXPECT_FALSE(bp.predictConditional(51, 90)); // forward: not taken
    EXPECT_EQ(bp.coldLookups(), 2u);
}

TEST(Predictor, SupplementOnlyUntilTrained)
{
    BranchPredictor bp(16, true);
    const std::int32_t pc = 50;
    EXPECT_TRUE(bp.predictConditional(pc, 10)); // BTFN says taken
    bp.updateConditional(pc, false);            // actually not taken
    EXPECT_FALSE(bp.predictConditional(pc, 10)); // counter wins now
}

TEST(Predictor, BtbAliasingEvicts)
{
    BranchPredictor bp(4, false);
    bp.updateConditional(1, true);
    EXPECT_TRUE(bp.predictConditional(1, 0));
    bp.updateConditional(5, false); // same set (5 % 4 == 1), different tag
    EXPECT_EQ(bp.predictConditional(1, 100), false); // cold again (miss)
}

TEST(Predictor, IndirectTargets)
{
    BranchPredictor bp(16, true);
    EXPECT_EQ(bp.predictIndirect(7), -1);
    bp.updateIndirect(7, 1234);
    EXPECT_EQ(bp.predictIndirect(7), 1234);
    bp.updateIndirect(7, 99);
    EXPECT_EQ(bp.predictIndirect(7), 99);
}

TEST(Predictor, AccuracyAccounting)
{
    BranchPredictor bp(16, true);
    bp.recordOutcome(true);
    bp.recordOutcome(true);
    bp.recordOutcome(false);
    EXPECT_EQ(bp.resolved(), 3u);
    EXPECT_EQ(bp.mispredicts(), 1u);
    EXPECT_NEAR(bp.accuracy(), 2.0 / 3.0, 1e-9);

    StatGroup stats;
    bp.exportStats(stats, "bp.");
    EXPECT_EQ(stats.get("bp.mispredicts"), 1u);
}

TEST(Cache, HitAfterFill)
{
    CacheDirectory cache(1024, 2, 16);
    EXPECT_FALSE(cache.access(0x100, true));
    EXPECT_TRUE(cache.access(0x100, true));
    EXPECT_TRUE(cache.access(0x10f, true)); // same 16-byte line
    EXPECT_FALSE(cache.access(0x110, true)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, TwoWayLruEviction)
{
    // 1 KiB, 2-way, 16 B lines -> 32 sets; addresses 512 bytes apart
    // share a set.
    CacheDirectory cache(1024, 2, 16);
    const std::uint32_t a = 0x0;
    const std::uint32_t b = 0x200;
    const std::uint32_t c = 0x400;
    cache.access(a, true);
    cache.access(b, true);
    EXPECT_TRUE(cache.access(a, true)); // refresh a's LRU position
    cache.access(c, true);              // evicts b (least recent)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, SixteenKGeometry)
{
    CacheDirectory cache(16 * 1024, 2, 16);
    EXPECT_EQ(cache.numSets(), 512);
}

TEST(WriteBuffer, LruAndEviction)
{
    WriteBuffer wb(2, 16);
    EXPECT_EQ(wb.insert(0x00), -1);
    EXPECT_EQ(wb.insert(0x10), -1);
    EXPECT_TRUE(wb.contains(0x04)); // same line as 0x00, refreshes LRU
    const std::int64_t evicted = wb.insert(0x20); // evicts line of 0x10
    EXPECT_EQ(evicted, 0x10 >> 4);
    EXPECT_TRUE(wb.contains(0x00));
    EXPECT_FALSE(wb.contains(0x10));
}

TEST(MemSys, PerfectConfigsFlatLatency)
{
    for (char letter : {'A', 'B', 'C'}) {
        MemorySystem ms(memoryConfig(letter));
        const int expect = memoryConfig(letter).hitLatency;
        for (std::uint32_t addr = 0; addr < 4096; addr += 64)
            EXPECT_EQ(ms.loadLatency(addr, false), expect);
    }
}

TEST(MemSys, CacheConfigMissThenHit)
{
    MemorySystem ms(memoryConfig('D')); // 1 cycle hit, 10 miss, 1K
    EXPECT_EQ(ms.loadLatency(0x5000, false), 10);
    EXPECT_EQ(ms.loadLatency(0x5000, false), 1);
    EXPECT_EQ(ms.loadLatency(0x5004, false), 1); // same line
    EXPECT_EQ(ms.loadMisses(), 1u);
}

TEST(MemSys, ForwardedLoadsCostHitAndSkipCache)
{
    MemorySystem ms(memoryConfig('D'));
    EXPECT_EQ(ms.loadLatency(0x9000, true), 1);
    // The cache was not filled by the forwarded access.
    EXPECT_EQ(ms.loadLatency(0x9000, false), 10);
}

TEST(MemSys, WriteBufferServicesRecentStores)
{
    MemorySystem ms(memoryConfig('D'));
    ms.commitStore(0x7000, 4);
    EXPECT_EQ(ms.loadLatency(0x7000, false), 1); // write-buffer hit
}

TEST(MemSys, WriteBufferDrainFillsCache)
{
    MemorySystem ms(memoryConfig('D'));
    // Fill the write buffer past capacity; the first line drains into
    // the cache and should then hit there.
    for (int i = 0; i <= kWriteBufferLines; ++i)
        ms.commitStore(0x8000 + static_cast<std::uint32_t>(i) * 16, 4);
    EXPECT_EQ(ms.loadLatency(0x8000, false), 1);
}

TEST(MemSys, TwoCycleCacheConfigs)
{
    MemorySystem ms(memoryConfig('F'));
    EXPECT_EQ(ms.loadLatency(0x1000, false), 10);
    EXPECT_EQ(ms.loadLatency(0x1000, false), 2);
}

TEST(MemSys, HitRatioStat)
{
    MemorySystem ms(memoryConfig('E'));
    ms.loadLatency(0x100, false);
    ms.loadLatency(0x100, false);
    ms.loadLatency(0x100, false);
    ms.loadLatency(0x100, false);
    EXPECT_DOUBLE_EQ(ms.hitRatio(), 0.75);
    StatGroup stats;
    ms.exportStats(stats, "m.");
    EXPECT_EQ(stats.get("m.loads"), 4u);
    EXPECT_EQ(stats.get("m.load_misses"), 1u);
}

TEST(ArchConfig, IssueModelTable)
{
    EXPECT_TRUE(issueModel(1).sequential);
    EXPECT_EQ(issueModel(2).memSlots, 1);
    EXPECT_EQ(issueModel(2).aluSlots, 1);
    EXPECT_EQ(issueModel(8).memSlots, 4);
    EXPECT_EQ(issueModel(8).aluSlots, 12);
    EXPECT_EQ(issueModel(8).width(), 16);
    EXPECT_EQ(issueModel(1).width(), 1);
    EXPECT_THROW(issueModel(0), FatalError);
    EXPECT_THROW(issueModel(9), FatalError);
}

TEST(ArchConfig, MemoryConfigTable)
{
    EXPECT_FALSE(memoryConfig('A').hasCache);
    EXPECT_EQ(memoryConfig('C').hitLatency, 3);
    EXPECT_EQ(memoryConfig('D').cacheBytes, 1024u);
    EXPECT_EQ(memoryConfig('G').cacheBytes, 16u * 1024);
    EXPECT_EQ(memoryConfig('G').hitLatency, 2);
    EXPECT_EQ(memoryConfig('F').missLatency, 10);
    EXPECT_THROW(memoryConfig('H'), FatalError);
}

TEST(ArchConfig, PointCodes)
{
    IssueModel im;
    MemoryConfig mc;
    parsePointCode("5B", im, mc);
    EXPECT_EQ(im.index, 5);
    EXPECT_EQ(mc.letter, 'B');
    parsePointCode("8g", im, mc);
    EXPECT_EQ(mc.letter, 'G');
    EXPECT_THROW(parsePointCode("9A", im, mc), FatalError);
    EXPECT_THROW(parsePointCode("5", im, mc), FatalError);

    MachineConfig config{Discipline::Dyn4, issueModel(5), memoryConfig('B'),
                         BranchMode::Enlarged};
    EXPECT_EQ(config.pointCode(), "5B");
    EXPECT_EQ(config.name(), "dyn4/5B/enlarged");
}

TEST(ArchConfig, FullGridHas560Points)
{
    const auto grid = fullConfigGrid();
    EXPECT_EQ(grid.size(), 560u);
    int perfect = 0;
    for (const auto &config : grid) {
        if (config.branch == BranchMode::Perfect) {
            ++perfect;
            EXPECT_TRUE(config.discipline == Discipline::Dyn4 ||
                        config.discipline == Discipline::Dyn256);
        }
    }
    EXPECT_EQ(perfect, 2 * 8 * 7);
}

TEST(ArchConfig, WindowSizes)
{
    EXPECT_EQ(windowBlocks(Discipline::Dyn1), 1);
    EXPECT_EQ(windowBlocks(Discipline::Dyn4), 4);
    EXPECT_EQ(windowBlocks(Discipline::Dyn256), 256);
    EXPECT_EQ(windowBlocks(Discipline::Static), 2);
    EXPECT_FALSE(isDynamic(Discipline::Static));
    EXPECT_TRUE(isDynamic(Discipline::Dyn256));
}

} // namespace
} // namespace fgp
