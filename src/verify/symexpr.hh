/**
 * @file
 * Hash-consed symbolic value expressions shared by the verifier's
 * equivalence checker (verify/equiv.cc) and the static memory
 * disambiguator (analyze/disambig.cc). The canonicalization mirrors the
 * tld optimizer's algebra — full constant folding, SUB-by-constant as
 * ADD of the negation, ADD-zero collapse, commutative operand ordering —
 * so that an optimized block interns to the same expressions as its
 * source, and two addresses that the optimizer would treat as equal
 * intern to the same id.
 */

#ifndef FGP_VERIFY_SYMEXPR_HH
#define FGP_VERIFY_SYMEXPR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/node.hh"

namespace fgp::verify::sym {

using ExprId = std::int32_t;

enum class Kind : std::uint8_t {
    Init,   ///< live-in value of a register (value = register index)
    Const,  ///< known 32-bit constant (value)
    Alu,    ///< op(a, b) with op in register-register root form
    Load,   ///< load of width op from address a at memory version aux
    Opaque, ///< syscall result (aux = origPc, value = per-state serial)
};

struct Expr
{
    Kind kind;
    Opcode op = Opcode::ADD;
    std::uint32_t value = 0;
    ExprId a = -1;
    ExprId b = -1;
    std::int32_t aux = 0;

    bool operator==(const Expr &other) const = default;
};

struct ExprHash
{
    std::size_t
    operator()(const Expr &expr) const
    {
        std::size_t h = static_cast<std::size_t>(expr.kind);
        auto mix = [&h](std::size_t v) { h = h * 1000003u ^ v; };
        mix(static_cast<std::size_t>(expr.op));
        mix(expr.value);
        mix(static_cast<std::size_t>(expr.a + 1));
        mix(static_cast<std::size_t>(expr.b + 1) << 4);
        mix(static_cast<std::size_t>(expr.aux));
        return h;
    }
};

/** Register-register root of a register-immediate ALU opcode. */
Opcode rriRoot(Opcode op);

bool isCommutativeRoot(Opcode op);

/** Hash-consing arena over canonicalized expressions. */
class Arena
{
  public:
    ExprId intern(const Expr &expr);

    Expr at(ExprId id) const { return exprs_[static_cast<std::size_t>(id)]; }

    ExprId constant(std::uint32_t value);
    ExprId init(std::uint8_t reg);
    ExprId load(Opcode op, ExprId addr, std::int32_t mem_version);
    ExprId opaque(std::int32_t orig_pc, std::uint32_t serial);
    ExprId makeAlu(Opcode root, ExprId a, ExprId b);

    /** Compact rendering for diagnostics, depth-capped. */
    std::string render(ExprId id, int depth = 4) const;

  private:
    std::vector<Expr> exprs_;
    std::unordered_map<Expr, ExprId, ExprHash> ids_;
};

/** An address split into a symbolic base and a constant byte offset. */
struct AddrParts
{
    ExprId base; ///< -1 for absolute (constant) addresses
    std::int32_t off;
};

/**
 * Split @p addr into base + constant offset: a constant address has no
 * base, an ADD with one constant operand splits at that constant, and
 * anything else is its own base at offset 0.
 */
AddrParts decompose(const Arena &arena, ExprId addr);

/**
 * True when two accesses provably touch disjoint bytes: same symbolic
 * base, non-overlapping offset ranges (exactly the aliasing rule the
 * optimizer's load elimination uses).
 */
bool definitelyDisjoint(const Arena &arena, ExprId addr_a,
                        std::uint32_t len_a, ExprId addr_b,
                        std::uint32_t len_b);

/**
 * True when the two accesses provably touch the very same bytes: equal
 * canonical address expressions and equal widths.
 */
bool definitelySame(ExprId addr_a, std::uint32_t len_a, ExprId addr_b,
                    std::uint32_t len_b);

} // namespace fgp::verify::sym

#endif // FGP_VERIFY_SYMEXPR_HH
