file(REMOVE_RECURSE
  "CMakeFiles/fig5_benchmarks.dir/fig5_benchmarks.cc.o"
  "CMakeFiles/fig5_benchmarks.dir/fig5_benchmarks.cc.o.d"
  "fig5_benchmarks"
  "fig5_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
