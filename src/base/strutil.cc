#include "base/strutil.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace fgp {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (auto &ch : out)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

std::string
toUpper(std::string_view text)
{
    std::string out(text);
    for (auto &ch : out)
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    return out;
}

std::optional<std::int64_t>
parseInt(std::string_view text)
{
    text = trim(text);
    if (text.empty())
        return std::nullopt;

    bool negative = false;
    if (text.front() == '-' || text.front() == '+') {
        negative = text.front() == '-';
        text.remove_prefix(1);
        if (text.empty())
            return std::nullopt;
    }

    int base = 10;
    if (startsWith(text, "0x") || startsWith(text, "0X")) {
        base = 16;
        text.remove_prefix(2);
    } else if (startsWith(text, "0b") || startsWith(text, "0B")) {
        base = 2;
        text.remove_prefix(2);
    }
    if (text.empty())
        return std::nullopt;

    std::uint64_t value = 0;
    for (char ch : text) {
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else if (ch >= 'A' && ch <= 'F')
            digit = ch - 'A' + 10;
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        const std::uint64_t next =
            value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
        if (next < value)
            return std::nullopt; // overflow
        value = next;
    }

    if (!negative && value > 0x7fffffffffffffffULL)
        return std::nullopt;
    if (negative && value > 0x8000000000000000ULL)
        return std::nullopt;
    // Negate in unsigned space: INT64_MIN has no positive counterpart.
    return negative ? static_cast<std::int64_t>(0ULL - value)
                    : static_cast<std::int64_t>(value);
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    va_end(args);
    return out;
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace fgp
