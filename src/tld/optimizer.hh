/**
 * @file
 * Local (intra-block) optimizer of the translating loader.
 *
 * Because blocks commit atomically (speculative execution with backup
 * state), only values live at block exit matter; faults discard the whole
 * block. That licence enables the re-optimization the paper performs when
 * basic blocks are combined (§2.3): copy/constant propagation, redundant
 * load elimination, local renaming of all-but-last definitions onto the
 * translator scratch registers (killing artificial WAW/WAR and the paper's
 * "R0" artificial flow dependency), and dead definition elimination.
 *
 * The optimizer never reorders or removes fault, store, control or system
 * nodes, so block-level control semantics are untouched.
 */

#ifndef FGP_TLD_OPTIMIZER_HH
#define FGP_TLD_OPTIMIZER_HH

#include "ir/image.hh"

namespace fgp {

/** Per-pass knobs, mainly for ablation benchmarks. */
struct OptimizerOptions
{
    bool propagate = true;       ///< copy + constant propagation
    bool eliminateLoads = true;  ///< redundant load elimination
    bool rename = true;          ///< local renaming onto scratch registers
    bool eliminateDead = true;   ///< dead definition elimination
};

/** Statistics from optimizing one block or image. */
struct OptimizerStats
{
    std::uint64_t propagated = 0;
    std::uint64_t loadsEliminated = 0;
    std::uint64_t renamed = 0;
    std::uint64_t deadRemoved = 0;

    void
    mergeFrom(const OptimizerStats &other)
    {
        propagated += other.propagated;
        loadsEliminated += other.loadsEliminated;
        renamed += other.renamed;
        deadRemoved += other.deadRemoved;
    }
};

/** Optimize one block in place. */
OptimizerStats optimizeBlock(ImageBlock &block,
                             const OptimizerOptions &opts = {});

/** Optimize every block of an image in place. */
OptimizerStats optimizeImage(CodeImage &image,
                             const OptimizerOptions &opts = {});

} // namespace fgp

#endif // FGP_TLD_OPTIMIZER_HH
