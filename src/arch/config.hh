/**
 * @file
 * Abstract processor model parameters — the four dimensions of the paper's
 * simulation study (§3.1): scheduling discipline, issue model, memory
 * configuration and branch handling.
 */

#ifndef FGP_ARCH_CONFIG_HH
#define FGP_ARCH_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fgp {

/** Scheduling discipline (window size measured in active basic blocks). */
enum class Discipline : std::uint8_t {
    Static,   ///< in-order execution of the compiler's word schedule
    Dyn1,     ///< dynamic scheduling, window = 1 basic block
    Dyn4,     ///< dynamic scheduling, window = 4 basic blocks
    Dyn256,   ///< dynamic scheduling, window = 256 basic blocks
};

/** All disciplines in the paper's presentation order. */
const std::vector<Discipline> &allDisciplines();

/** Window size in basic blocks for a discipline (static machines use 2:
 *  the block in execution plus the block being fetched). */
int windowBlocks(Discipline d);

bool isDynamic(Discipline d);

std::string disciplineName(Discipline d);

/** Issue models 1..8 from the paper. */
struct IssueModel
{
    int index = 1;       ///< paper's model number, 1..8
    bool sequential = false; ///< model 1: one node of any kind per cycle
    int memSlots = 0;    ///< memory nodes per word (and memory ports)
    int aluSlots = 0;    ///< ALU nodes per word (and ALUs)

    /** Total issue slots per cycle. */
    int width() const { return sequential ? 1 : memSlots + aluSlots; }

    std::string name() const;
};

/** Lookup issue model by paper index (1..8). */
IssueModel issueModel(int index);

/**
 * Custom issue shape outside the paper's table (index 0), e.g. for
 * slot-mix studies or ILP-limit configurations.
 */
IssueModel customIssue(int mem_slots, int alu_slots);

/** All eight issue models. */
const std::vector<IssueModel> &allIssueModels();

/** Memory configurations A..G from the paper. */
struct MemoryConfig
{
    char letter = 'A';
    int hitLatency = 1;     ///< cycles for a cache hit (or flat latency)
    int missLatency = 10;   ///< total cycles for a miss
    bool hasCache = false;  ///< false: perfect memory at hitLatency
    std::uint32_t cacheBytes = 0; ///< 1K or 16K when hasCache

    std::string name() const { return std::string(1, letter); }
};

/** Lookup by letter 'A'..'G'. */
MemoryConfig memoryConfig(char letter);

/** All seven memory configurations. */
const std::vector<MemoryConfig> &allMemoryConfigs();

/** Branch-handling mode. */
enum class BranchMode : std::uint8_t {
    Single,   ///< original single basic blocks, 2-bit counter prediction
    Enlarged, ///< enlarged basic blocks, 2-bit counter prediction
    Perfect,  ///< enlarged basic blocks, oracle prediction (upper bound)
};

std::string branchModeName(BranchMode m);

/** Cache geometry constants fixed by the paper. */
constexpr int kCacheAssoc = 2;
constexpr int kCacheLineBytes = 16;
/** Write-buffer entries (fully associative line buffer before the cache). */
constexpr int kWriteBufferLines = 8;
/** Branch target buffer entries (direct mapped, tagged). */
constexpr int kBtbEntries = 512;
/** Cycles lost re-directing fetch on a misprediction or fault. */
constexpr int kRedirectPenalty = 1;

/** A full machine configuration (one simulation data point). */
struct MachineConfig
{
    Discipline discipline = Discipline::Dyn4;
    IssueModel issue = issueModel(8);
    MemoryConfig memory = memoryConfig('A');
    BranchMode branch = BranchMode::Single;

    /** Short id like "dyn4/8A/enlarged". */
    std::string name() const;

    /** Composite "5B"-style issue+memory code. */
    std::string pointCode() const;
};

/**
 * Parse a composite "<issue><memory>" code such as "5B" into issue model
 * and memory config. Throws FatalError on malformed codes.
 */
void parsePointCode(const std::string &code, IssueModel &issue,
                    MemoryConfig &memory);

/**
 * Parse a full "discipline/pointcode/branchmode" name (the format
 * MachineConfig::name() prints), e.g. "dyn4/8A/enlarged". Throws
 * FatalError on malformed names.
 */
MachineConfig parseMachineConfig(const std::string &name);

/**
 * The 560-points-per-benchmark grid of §3.2: (4 disciplines x 2 branch
 * modes + 2 dynamic disciplines x perfect) x 8 issue models x 7 memory
 * configurations.
 */
std::vector<MachineConfig> fullConfigGrid();

} // namespace fgp

#endif // FGP_ARCH_CONFIG_HH
