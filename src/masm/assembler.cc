#include "masm/assembler.hh"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

namespace {

/** Register alias table. */
std::optional<std::uint8_t>
parseRegister(std::string_view text)
{
    static const std::unordered_map<std::string, std::uint8_t> aliases = {
        {"zero", kRegZero}, {"v0", kRegV0}, {"v1", kRegV1},
        {"a0", kRegA0},     {"a1", kRegA1}, {"a2", kRegA2},
        {"a3", kRegA3},     {"sp", kRegSp}, {"fp", kRegFp},
        {"ra", kRegRa},
    };
    const std::string lowered = toLower(text);
    if (auto it = aliases.find(lowered); it != aliases.end())
        return it->second;
    if (lowered.size() >= 2 && lowered[0] == 'r') {
        const auto num = parseInt(lowered.substr(1));
        if (num && *num >= 0 && *num < kNumArchRegs)
            return static_cast<std::uint8_t>(*num);
    }
    return std::nullopt;
}

/** One operand token. */
struct Token
{
    std::string text;
};

/** A parsed source statement (post label-stripping). */
struct Statement
{
    int line = 0;
    std::string mnemonic;       // lower-cased
    std::vector<Token> operands;
};

bool
isIdentChar(char ch)
{
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == '.' || ch == '$';
}

/** Decode escapes inside a quoted string literal body. */
std::string
decodeEscapes(std::string_view body, int line)
{
    std::string out;
    for (std::size_t i = 0; i < body.size(); ++i) {
        char ch = body[i];
        if (ch != '\\') {
            out.push_back(ch);
            continue;
        }
        if (++i >= body.size())
            fgp_fatal("line ", line, ": dangling escape in string");
        switch (body[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '0': out.push_back('\0'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          case '\'': out.push_back('\''); break;
          default:
            fgp_fatal("line ", line, ": unknown escape \\", body[i]);
        }
    }
    return out;
}

/** Split a statement body into operand tokens (commas / whitespace). */
std::vector<Token>
tokenizeOperands(std::string_view text, int line)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        const char ch = text[i];
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
            ++i;
            continue;
        }
        if (ch == '"') {
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '"') {
                if (text[j] == '\\')
                    ++j;
                ++j;
            }
            if (j >= text.size())
                fgp_fatal("line ", line, ": unterminated string literal");
            tokens.push_back({std::string(text.substr(i, j - i + 1))});
            i = j + 1;
            continue;
        }
        if (ch == '\'') {
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '\'') {
                if (text[j] == '\\')
                    ++j;
                ++j;
            }
            if (j >= text.size())
                fgp_fatal("line ", line, ": unterminated char literal");
            tokens.push_back({std::string(text.substr(i, j - i + 1))});
            i = j + 1;
            continue;
        }
        // A run up to the next comma/whitespace; parens stay inside the
        // token so "8(sp)" is a single token.
        std::size_t j = i;
        while (j < text.size() && text[j] != ',' &&
               !std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        tokens.push_back({std::string(text.substr(i, j - i))});
        i = j;
    }
    return tokens;
}

/** Assembler working state. */
class Assembler
{
  public:
    explicit Assembler(std::string_view name) : name_(name) {}

    Program run(std::string_view source);

  private:
    enum class Segment { Text, Data };

    void parseLine(std::string_view raw, int line);
    void handleDirective(const Statement &stmt);
    void handleInstruction(const Statement &stmt);
    void defineLabel(const std::string &label, int line);

    /** Resolve label references and finish the program. */
    void resolve();

    std::int64_t immOf(const Token &token, int line) const;
    std::uint8_t regOf(const Token &token, int line) const;

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fgp_fatal(name_, ": line ", line, ": ", msg);
    }

    struct PendingInstr
    {
        Node node;
        int line = 0;
        std::string labelRef; // unresolved branch/jump target, if any
        std::string immRef;   // unresolved data-label immediate, if any
        std::int64_t immOffset = 0;
    };

    std::string name_;
    Segment segment_ = Segment::Text;
    std::vector<PendingInstr> instrs_;
    Program prog_;
};

std::int64_t
parseCharLiteral(std::string_view token, int line, std::string_view name)
{
    // token includes the surrounding quotes
    const std::string body =
        decodeEscapes(token.substr(1, token.size() - 2), line);
    if (body.size() != 1)
        fgp_fatal(name, ": line ", line, ": char literal must be one byte");
    return static_cast<unsigned char>(body[0]);
}

std::int64_t
Assembler::immOf(const Token &token, int line) const
{
    const std::string_view text = token.text;
    if (!text.empty() && text.front() == '\'')
        return parseCharLiteral(text, line, name_);

    // label or label+offset (data labels resolve immediately: data is laid
    // out before use because immediates referencing data labels may only
    // appear after the .data block textually... to lift that restriction,
    // immOf is only called during resolve() for label-bearing operands).
    if (auto value = parseInt(text))
        return *value;

    std::string label(text);
    std::int64_t offset = 0;
    const std::size_t plus = label.find('+');
    if (plus != std::string::npos) {
        const auto off = parseInt(label.substr(plus + 1));
        if (!off)
            err(line, "bad offset in '" + label + "'");
        offset = *off;
        label = label.substr(0, plus);
    }
    if (auto it = prog_.dataLabels.find(label); it != prog_.dataLabels.end())
        return static_cast<std::int64_t>(it->second) + offset;
    err(line, "unknown immediate or data label '" + std::string(text) + "'");
}

std::uint8_t
Assembler::regOf(const Token &token, int line) const
{
    const auto reg = parseRegister(token.text);
    if (!reg)
        err(line, "expected register, got '" + token.text + "'");
    return *reg;
}

void
Assembler::defineLabel(const std::string &label, int line)
{
    if (prog_.codeLabels.count(label) || prog_.dataLabels.count(label))
        err(line, "duplicate label '" + label + "'");
    if (segment_ == Segment::Text) {
        prog_.codeLabels[label] = static_cast<std::int32_t>(instrs_.size());
    } else {
        prog_.dataLabels[label] =
            kDataBase + static_cast<std::uint32_t>(prog_.data.size());
    }
}

void
Assembler::handleDirective(const Statement &stmt)
{
    const std::string &d = stmt.mnemonic;
    const int line = stmt.line;

    if (d == ".text") {
        segment_ = Segment::Text;
        return;
    }
    if (d == ".data") {
        segment_ = Segment::Data;
        return;
    }
    if (d == ".global" || d == ".globl") {
        return; // accepted and ignored; everything is visible
    }

    if (segment_ != Segment::Data)
        err(line, "directive " + d + " only valid in .data");

    if (d == ".word") {
        for (const Token &token : stmt.operands) {
            const std::int64_t value = immOf(token, line);
            for (int b = 0; b < 4; ++b)
                prog_.data.push_back(
                    static_cast<std::uint8_t>((value >> (8 * b)) & 0xff));
        }
    } else if (d == ".byte") {
        for (const Token &token : stmt.operands)
            prog_.data.push_back(
                static_cast<std::uint8_t>(immOf(token, line) & 0xff));
    } else if (d == ".asciiz" || d == ".ascii") {
        if (stmt.operands.size() != 1 || stmt.operands[0].text.size() < 2 ||
            stmt.operands[0].text.front() != '"')
            err(line, d + " expects one string literal");
        const std::string_view tok = stmt.operands[0].text;
        const std::string body =
            decodeEscapes(tok.substr(1, tok.size() - 2), line);
        for (char ch : body)
            prog_.data.push_back(static_cast<std::uint8_t>(ch));
        if (d == ".asciiz")
            prog_.data.push_back(0);
    } else if (d == ".space") {
        if (stmt.operands.size() != 1)
            err(line, ".space expects a size");
        const std::int64_t size = immOf(stmt.operands[0], line);
        if (size < 0 || size > (64 << 20))
            err(line, "unreasonable .space size");
        prog_.data.insert(prog_.data.end(), static_cast<std::size_t>(size),
                          0);
    } else if (d == ".align") {
        if (stmt.operands.size() != 1)
            err(line, ".align expects an alignment");
        const std::int64_t align = immOf(stmt.operands[0], line);
        if (align <= 0 || (align & (align - 1)))
            err(line, ".align expects a power of two");
        while (prog_.data.size() % static_cast<std::size_t>(align))
            prog_.data.push_back(0);
    } else {
        err(line, "unknown directive " + d);
    }
}

void
Assembler::handleInstruction(const Statement &stmt)
{
    const int line = stmt.line;
    const std::string &mn = stmt.mnemonic;
    const auto &ops = stmt.operands;

    auto expect = [&](std::size_t n) {
        if (ops.size() != n)
            err(line, mn + " expects " + std::to_string(n) + " operands, " +
                          "got " + std::to_string(ops.size()));
    };

    PendingInstr pending;
    pending.line = line;
    Node &node = pending.node;

    auto emit = [&]() { instrs_.push_back(std::move(pending)); };

    /**
     * Immediate operand inside an instruction: either a literal value or a
     * (possibly forward) data-label reference, resolved in resolve().
     */
    auto immediateOperand = [&](const Token &token) -> std::int32_t {
        const std::string_view text = token.text;
        if (!text.empty() && text.front() == '\'')
            return static_cast<std::int32_t>(
                parseCharLiteral(text, line, name_));
        if (auto value = parseInt(text))
            return static_cast<std::int32_t>(*value);
        std::string label(text);
        std::int64_t offset = 0;
        if (const std::size_t plus = label.find('+');
            plus != std::string::npos) {
            const auto off = parseInt(label.substr(plus + 1));
            if (!off)
                err(line, "bad offset in '" + label + "'");
            offset = *off;
            label = label.substr(0, plus);
        }
        pending.immRef = label;
        pending.immOffset = offset;
        return 0;
    };

    /** Parse "imm(reg)" memory operand. */
    auto memOperand = [&](const Token &token, std::uint8_t &base,
                          std::int32_t &offset) {
        const std::string &text = token.text;
        const std::size_t open = text.find('(');
        if (open == std::string::npos || text.back() != ')')
            err(line, "expected imm(reg), got '" + text + "'");
        const std::string imm_part = text.substr(0, open);
        const std::string reg_part =
            text.substr(open + 1, text.size() - open - 2);
        const auto reg = parseRegister(reg_part);
        if (!reg)
            err(line, "bad base register '" + reg_part + "'");
        base = *reg;
        if (imm_part.empty())
            offset = 0;
        else
            offset = immediateOperand(Token{imm_part});
    };

    // ---- pseudo-instructions (each expands to exactly one node) ----
    if (mn == "li" || mn == "la") {
        expect(2);
        node.op = Opcode::ADDI;
        node.rd = regOf(ops[0], line);
        node.rs1 = kRegZero;
        node.imm = immediateOperand(ops[1]);
        emit();
        return;
    }
    if (mn == "mov" || mn == "move") {
        expect(2);
        node.op = Opcode::ADDI;
        node.rd = regOf(ops[0], line);
        node.rs1 = regOf(ops[1], line);
        node.imm = 0;
        emit();
        return;
    }
    if (mn == "nop") {
        expect(0);
        node.op = Opcode::ADDI;
        node.rd = kRegZero;
        node.rs1 = kRegZero;
        node.imm = 0;
        emit();
        return;
    }
    if (mn == "not") {
        expect(2);
        node.op = Opcode::XORI;
        node.rd = regOf(ops[0], line);
        node.rs1 = regOf(ops[1], line);
        node.imm = -1;
        emit();
        return;
    }
    if (mn == "neg") {
        expect(2);
        node.op = Opcode::SUB;
        node.rd = regOf(ops[0], line);
        node.rs1 = kRegZero;
        node.rs2 = regOf(ops[1], line);
        emit();
        return;
    }
    if (mn == "b") {
        expect(1);
        node.op = Opcode::J;
        pending.labelRef = ops[0].text;
        emit();
        return;
    }
    if (mn == "call") {
        expect(1);
        node.op = Opcode::JAL;
        node.rd = kRegRa;
        pending.labelRef = ops[0].text;
        emit();
        return;
    }
    if (mn == "ret") {
        expect(0);
        node.op = Opcode::JR;
        node.rs1 = kRegRa;
        emit();
        return;
    }
    if (mn == "beqz" || mn == "bnez" || mn == "bltz" || mn == "bgez") {
        expect(2);
        node.op = mn == "beqz"   ? Opcode::BEQ
                  : mn == "bnez" ? Opcode::BNE
                  : mn == "bltz" ? Opcode::BLT
                                 : Opcode::BGE;
        node.rs1 = regOf(ops[0], line);
        node.rs2 = kRegZero;
        pending.labelRef = ops[1].text;
        emit();
        return;
    }
    if (mn == "blez" || mn == "bgtz") {
        expect(2);
        // rs <= 0  <=>  0 >= rs;  rs > 0  <=>  0 < rs
        node.op = mn == "blez" ? Opcode::BGE : Opcode::BLT;
        node.rs1 = kRegZero;
        node.rs2 = regOf(ops[0], line);
        pending.labelRef = ops[1].text;
        emit();
        return;
    }
    if (mn == "bgt" || mn == "ble" || mn == "bgtu" || mn == "bleu") {
        expect(3);
        node.op = mn == "bgt"    ? Opcode::BLT
                  : mn == "ble"  ? Opcode::BGE
                  : mn == "bgtu" ? Opcode::BLTU
                                 : Opcode::BGEU;
        // swapped operand order implements > and <= via < and >=
        node.rs1 = regOf(ops[1], line);
        node.rs2 = regOf(ops[0], line);
        pending.labelRef = ops[2].text;
        emit();
        return;
    }

    // ---- real opcodes ----
    const auto op = opcodeFromMnemonic(mn);
    if (!op)
        err(line, "unknown mnemonic '" + mn + "'");
    node.op = *op;

    if (node.isFault())
        err(line, "fault nodes cannot be written in source programs");

    switch (opcodeInfo(*op).form) {
      case OperandForm::RRR:
        expect(3);
        node.rd = regOf(ops[0], line);
        node.rs1 = regOf(ops[1], line);
        node.rs2 = regOf(ops[2], line);
        break;
      case OperandForm::RRI:
        expect(3);
        node.rd = regOf(ops[0], line);
        node.rs1 = regOf(ops[1], line);
        node.imm = immediateOperand(ops[2]);
        break;
      case OperandForm::RI:
        expect(2);
        node.rd = regOf(ops[0], line);
        node.imm = immediateOperand(ops[1]);
        break;
      case OperandForm::Load:
        expect(2);
        node.rd = regOf(ops[0], line);
        memOperand(ops[1], node.rs1, node.imm);
        break;
      case OperandForm::Store:
        expect(2);
        node.rs2 = regOf(ops[0], line);
        memOperand(ops[1], node.rs1, node.imm);
        break;
      case OperandForm::Branch:
        expect(3);
        node.rs1 = regOf(ops[0], line);
        node.rs2 = regOf(ops[1], line);
        pending.labelRef = ops[2].text;
        break;
      case OperandForm::Jump:
        expect(1);
        pending.labelRef = ops[0].text;
        break;
      case OperandForm::JumpLink:
        expect(1);
        node.rd = kRegRa;
        pending.labelRef = ops[0].text;
        break;
      case OperandForm::JumpReg:
        expect(1);
        node.rs1 = regOf(ops[0], line);
        break;
      case OperandForm::System:
        expect(0);
        break;
      case OperandForm::FaultF:
        err(line, "fault nodes cannot be written in source programs");
    }
    emit();
}

void
Assembler::parseLine(std::string_view raw, int line)
{
    // Strip comments ('#' or ';' outside string literals).
    std::string text;
    bool in_string = false;
    char quote = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char ch = raw[i];
        if (in_string) {
            text.push_back(ch);
            if (ch == '\\' && i + 1 < raw.size()) {
                text.push_back(raw[++i]);
            } else if (ch == quote) {
                in_string = false;
            }
            continue;
        }
        if (ch == '"' || ch == '\'') {
            in_string = true;
            quote = ch;
            text.push_back(ch);
            continue;
        }
        if (ch == '#' || ch == ';')
            break;
        text.push_back(ch);
    }

    std::string_view rest = trim(text);

    // Leading labels ("name:"), possibly several on one line.
    while (true) {
        std::size_t i = 0;
        while (i < rest.size() && isIdentChar(rest[i]))
            ++i;
        if (i == 0 || i >= rest.size() || rest[i] != ':')
            break;
        defineLabel(std::string(rest.substr(0, i)), line);
        rest = trim(rest.substr(i + 1));
    }
    if (rest.empty())
        return;

    Statement stmt;
    stmt.line = line;
    std::size_t i = 0;
    while (i < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[i])))
        ++i;
    stmt.mnemonic = toLower(rest.substr(0, i));
    stmt.operands = tokenizeOperands(rest.substr(i), line);

    if (stmt.mnemonic.front() == '.')
        handleDirective(stmt);
    else
        handleInstruction(stmt);
}

void
Assembler::resolve()
{
    prog_.instrs.reserve(instrs_.size());
    for (PendingInstr &pending : instrs_) {
        Node node = pending.node;
        if (!pending.immRef.empty()) {
            const auto it = prog_.dataLabels.find(pending.immRef);
            if (it == prog_.dataLabels.end())
                err(pending.line,
                    "undefined data label '" + pending.immRef + "'");
            node.imm = static_cast<std::int32_t>(
                static_cast<std::int64_t>(it->second) + pending.immOffset);
        }
        if (!pending.labelRef.empty()) {
            const auto it = prog_.codeLabels.find(pending.labelRef);
            if (it == prog_.codeLabels.end())
                err(pending.line,
                    "undefined code label '" + pending.labelRef + "'");
            node.target = it->second;
        }
        prog_.instrs.push_back(node);
    }

    if (auto it = prog_.codeLabels.find("main"); it != prog_.codeLabels.end())
        prog_.entry = it->second;
    else
        prog_.entry = 0;
}

Program
Assembler::run(std::string_view source)
{
    int line = 1;
    std::size_t start = 0;
    while (start <= source.size()) {
        std::size_t end = source.find('\n', start);
        if (end == std::string_view::npos)
            end = source.size();
        parseLine(source.substr(start, end - start), line);
        start = end + 1;
        ++line;
    }
    resolve();
    validateProgram(prog_);
    return std::move(prog_);
}

} // namespace

Program
assemble(std::string_view source, std::string_view name)
{
    Assembler assembler{name};
    return assembler.run(source);
}

} // namespace fgp
