#include "workloads/runtime.hh"

namespace fgp {

const char *const kRuntimeAsm = R"ASM(
# ======================================================================
# fgpsim benchmark runtime
#   out_line(a0=cstr)          append string + '\n' to the output buffer
#   out_str(a0=ptr, a1=len)    append raw bytes
#   out_char(a0=byte)          append one byte
#   out_flush()                write(1, obuf, len), reset buffer
#   read_all()                 slurp stdin; sets input_ptr/input_len
#   read_file(a0=path)         slurp a file; v0=ptr, v1=len
#   strlen(a0) -> v0
#   strcmp(a0,a1) -> v0
#   hash_str(a0) -> v0         djb2 of a NUL-terminated string
#   alloc(a0=bytes) -> v0      brk bump allocator (4-byte aligned)
# ======================================================================
        .data
input_ptr:  .word 0
input_len:  .word 0
obuf_len:   .word 0
obuf:       .space 131072
        .text

out_line:
        la   r8, obuf_len
        lw   r9, 0(r8)
        la   r10, obuf
        add  r10, r10, r9
rt_ol_loop:
        lbu  r11, 0(a0)
        beqz r11, rt_ol_end
        sb   r11, 0(r10)
        addi r10, r10, 1
        addi a0, a0, 1
        addi r9, r9, 1
        j    rt_ol_loop
rt_ol_end:
        li   r11, 10
        sb   r11, 0(r10)
        addi r9, r9, 1
        sw   r9, 0(r8)
        ret

out_cstr:
        la   r8, obuf_len
        lw   r9, 0(r8)
        la   r10, obuf
        add  r10, r10, r9
rt_oc_loop:
        lbu  r11, 0(a0)
        beqz r11, rt_oc_end
        sb   r11, 0(r10)
        addi r10, r10, 1
        addi a0, a0, 1
        addi r9, r9, 1
        j    rt_oc_loop
rt_oc_end:
        sw   r9, 0(r8)
        ret

out_str:
        la   r8, obuf_len
        lw   r9, 0(r8)
        la   r10, obuf
        add  r10, r10, r9
        add  r9, r9, a1
        sw   r9, 0(r8)
rt_os_loop:
        blez a1, rt_os_done
        lbu  r11, 0(a0)
        sb   r11, 0(r10)
        addi a0, a0, 1
        addi r10, r10, 1
        addi a1, a1, -1
        j    rt_os_loop
rt_os_done:
        ret

out_char:
        la   r8, obuf_len
        lw   r9, 0(r8)
        la   r10, obuf
        add  r10, r10, r9
        sb   a0, 0(r10)
        addi r9, r9, 1
        sw   r9, 0(r8)
        ret

out_flush:
        la   r8, obuf_len
        lw   a2, 0(r8)
        beqz a2, rt_of_done
        li   v0, 4
        li   a0, 1
        la   a1, obuf
        syscall
        la   r8, obuf_len
        sw   zero, 0(r8)
rt_of_done:
        ret

read_all:
        li   v0, 5
        li   a0, 0
        syscall                 # v0 = current brk
        la   r8, input_ptr
        sw   v0, 0(r8)
        mov  r9, v0             # write cursor
rt_ra_loop:
        addi a0, r9, 4096
        li   v0, 5
        syscall                 # grow heap
        li   v0, 3
        li   a0, 0
        mov  a1, r9
        li   a2, 4096
        syscall                 # read(0, cursor, 4096)
        beqz v0, rt_ra_done
        add  r9, r9, v0
        j    rt_ra_loop
rt_ra_done:
        la   r8, input_ptr
        lw   r10, 0(r8)
        sub  r11, r9, r10
        la   r8, input_len
        sw   r11, 0(r8)
        sb   zero, 0(r9)        # NUL terminator
        addi a0, r9, 4
        li   v0, 5
        syscall
        ret

read_file:
        mov  r12, a0
        li   v0, 5
        li   a0, 0
        syscall
        mov  r13, v0            # base
        mov  r9, v0             # cursor
        li   v0, 1
        mov  a0, r12
        li   a1, 0
        syscall                 # open(path, O_RDONLY)
        mov  r14, v0
rt_rf_loop:
        addi a0, r9, 4096
        li   v0, 5
        syscall
        li   v0, 3
        mov  a0, r14
        mov  a1, r9
        li   a2, 4096
        syscall
        beqz v0, rt_rf_done
        add  r9, r9, v0
        j    rt_rf_loop
rt_rf_done:
        li   v0, 2
        mov  a0, r14
        syscall                 # close
        sb   zero, 0(r9)
        addi a0, r9, 4
        li   v0, 5
        syscall
        mov  v0, r13
        sub  v1, r9, r13
        ret

strlen:
        mov  v0, a0
rt_sl_loop:
        lbu  r8, 0(v0)
        beqz r8, rt_sl_done
        addi v0, v0, 1
        j    rt_sl_loop
rt_sl_done:
        sub  v0, v0, a0
        ret

strcmp:
rt_sc_loop:
        lbu  r8, 0(a0)
        lbu  r9, 0(a1)
        bne  r8, r9, rt_sc_diff
        beqz r8, rt_sc_eq
        addi a0, a0, 1
        addi a1, a1, 1
        j    rt_sc_loop
rt_sc_eq:
        li   v0, 0
        ret
rt_sc_diff:
        sub  v0, r8, r9
        ret

hash_str:
        li   v0, 5381
rt_hs_loop:
        lbu  r8, 0(a0)
        beqz r8, rt_hs_done
        slli r9, v0, 5
        add  v0, v0, r9         # h = h*33
        add  v0, v0, r8
        addi a0, a0, 1
        j    rt_hs_loop
rt_hs_done:
        ret

alloc:
        mov  r8, a0
        li   v0, 5
        li   a0, 0
        syscall
        mov  r9, v0
        add  a0, v0, r8
        addi a0, a0, 3
        li   r10, -4
        and  a0, a0, r10
        li   v0, 5
        syscall
        mov  v0, r9
        ret
)ASM";

} // namespace fgp
