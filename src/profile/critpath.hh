/**
 * @file
 * Dynamic critical-path extraction over the executed schedule.
 *
 * The interval profiler's retired-node log records, for every committed
 * node, its pipeline timestamps (issue/ready/schedule/complete) and the
 * dependence edge that enabled it (data wakeup, store-forward /
 * disambiguation, branch redirect, or plain fetch order). Walking that
 * log backward from the last retired node with a monotone time cursor
 * yields the measured critical path: every simulated cycle on the path
 * is attributed to exactly one cause and one static block, the path
 * length can never exceed the run's total cycles, and the path-implied
 * IPC (nodes on the path / path cycles) is at most 1 — hence always at
 * or below the analyzer's staticIpcBound, which the harness
 * cross-checks.
 */

#ifndef FGP_PROFILE_CRITPATH_HH
#define FGP_PROFILE_CRITPATH_HH

#include <cstdint>
#include <vector>

#include "profile/record.hh"

namespace fgp {
namespace profile {

/** Measured critical path of one run. */
struct CritPath
{
    std::uint64_t pathCycles = 0; ///< <= the run's total cycles
    std::uint64_t pathNodes = 0;  ///< <= pathCycles

    // Cycle attribution on the path; the causes sum to pathCycles.
    std::uint64_t fetchCycles = 0;   ///< waiting on fetch order
    std::uint64_t branchCycles = 0;  ///< redirect after mispredict/fault
    std::uint64_t operandCycles = 0; ///< register dataflow (Data edges)
    std::uint64_t memoryCycles = 0;  ///< disambiguation parking
    std::uint64_t forwardCycles = 0; ///< store-forward dependences
    std::uint64_t fuBusyCycles = 0;  ///< ready but no function unit
    std::uint64_t executeCycles = 0; ///< actually executing
    std::uint64_t retireCycles = 0;  ///< complete-to-commit slack

    /** Cycles on the path per static block (image block id order). */
    std::vector<std::uint64_t> blockCycles;

    std::uint64_t
    causeTotal() const
    {
        return fetchCycles + branchCycles + operandCycles + memoryCycles +
               forwardCycles + fuBusyCycles + executeCycles + retireCycles;
    }

    /** Path-implied IPC: never above 1 by construction. */
    double
    impliedIpc() const
    {
        return pathCycles ? static_cast<double>(pathNodes) /
                                static_cast<double>(pathCycles)
                          : 0.0;
    }
};

/**
 * Extract the critical path from @p log (seq-ascending retired-node
 * entries) of a run that took @p total_cycles; @p num_blocks sizes the
 * per-block attribution. Pure function of its inputs — bit-identical
 * across thread counts and repeat runs.
 */
CritPath extractCriticalPath(const std::vector<RetiredNode> &log,
                             std::uint64_t total_cycles,
                             std::size_t num_blocks);

} // namespace profile
} // namespace fgp

#endif // FGP_PROFILE_CRITPATH_HH
