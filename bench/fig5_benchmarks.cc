/**
 * @file
 * Figure 5: per-benchmark performance across 14 composite configurations
 * slicing diagonally through the 8x7 issue-model x memory-configuration
 * matrix; scheduling discipline fixed at dynamic/window-4 with enlarged
 * basic blocks. The paper does not list its 14 composites; this slice
 * includes the 5B -> 5D adjacency the text calls out (several benchmarks
 * dip there due to low memory locality).
 */

#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Figure 5",
           "per-benchmark nodes/cycle over 14 composite configurations "
           "(dyn4 + enlarged)");

    const std::vector<std::string> composites = {
        "1A", "2A", "3A", "3B", "4B", "5B", "5D",
        "5E", "6E", "6F", "7F", "7G", "8G", "8E"};

    ExperimentRunner runner(envScale());
    RunRecorder recorder("fig5", &runner);

    std::vector<std::string> header = {"benchmark"};
    for (const std::string &code : composites)
        header.push_back(code);
    Table table(std::move(header));

    std::vector<SweepPoint> points;
    for (const std::string &workload : workloadNames()) {
        for (const std::string &code : composites) {
            IssueModel issue;
            MemoryConfig mem;
            parsePointCode(code, issue, mem);
            points.push_back({workload, MachineConfig{Discipline::Dyn4,
                                                      issue, mem,
                                                      BranchMode::Enlarged}});
        }
    }
    const std::vector<ExperimentResult> results =
        runSweep(runner, points, 0, recorder.progress());
    recorder.record(results);

    std::size_t at = 0;
    for (const std::string &workload : workloadNames()) {
        std::vector<double> row;
        for (std::size_t c = 0; c < composites.size(); ++c)
            row.push_back(results[at++].nodesPerCycle);
        table.addNumericRow(workload, row);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): spread between benchmarks "
                 "grows with word width; low-locality benchmarks dip from "
                 "5B to 5D.\n";
    finishRun(recorder);
    return 0;
}
