/**
 * @file
 * Small deterministic PRNG (xoshiro256**). Used for workload input
 * generation and property tests; the simulator itself is deterministic and
 * takes no random input. A private generator (rather than <random>) pins the
 * stream across standard libraries so that experiment inputs are
 * reproducible byte-for-byte.
 */

#ifndef FGP_BASE_RNG_HH
#define FGP_BASE_RNG_HH

#include <cstdint>

namespace fgp {

/** Deterministic 64-bit PRNG with an explicit seed. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed (splitmix64 expansion). */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace fgp

#endif // FGP_BASE_RNG_HH
