file(REMOVE_RECURSE
  "CMakeFiles/fgp_base.dir/histogram.cc.o"
  "CMakeFiles/fgp_base.dir/histogram.cc.o.d"
  "CMakeFiles/fgp_base.dir/logging.cc.o"
  "CMakeFiles/fgp_base.dir/logging.cc.o.d"
  "CMakeFiles/fgp_base.dir/stats.cc.o"
  "CMakeFiles/fgp_base.dir/stats.cc.o.d"
  "CMakeFiles/fgp_base.dir/strutil.cc.o"
  "CMakeFiles/fgp_base.dir/strutil.cc.o.d"
  "CMakeFiles/fgp_base.dir/table.cc.o"
  "CMakeFiles/fgp_base.dir/table.cc.o.d"
  "libfgp_base.a"
  "libfgp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
