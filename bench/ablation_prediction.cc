/**
 * @file
 * Ablation: the paper's first "unexplored avenue" — better branch
 * prediction. Compares the 1991 baseline (2-bit counter BTB + BTFN
 * static supplement, last-target JR prediction) against profile-derived
 * static hints, a return-address stack, and fault-target prediction
 * ("repeated faults cause branches to start with other basic blocks",
 * §3.1). dyn4 and dyn256, issue model 8, memory A, enlarged blocks.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: branch prediction",
           "issue model 8 / memory A / enlarged blocks");

    struct Setting
    {
        const char *name;
        ExperimentRunner::EngineTweaks tweaks;
    };
    const std::vector<Setting> settings = {
        {"baseline (BTFN + last-target)", {}},
        {"+ profile static hints",
         {StaticHint::Profile, 0, false, 0, false}},
        {"+ return-address stack (8)",
         {StaticHint::Btfn, 8, false, 0, false}},
        {"+ fault-target prediction",
         {StaticHint::Btfn, 0, true, 0, false}},
        {"+ gshare (4k entries)",
         {StaticHint::Btfn, 0, false, 0, false,
          DirectionPredictor::Gshare}},
        {"all four",
         {StaticHint::Profile, 8, true, 0, false,
          DirectionPredictor::Gshare}},
    };

    for (Discipline d : {Discipline::Dyn4, Discipline::Dyn256}) {
        const MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                   BranchMode::Enlarged};
        Table table({"prediction", "nodes/cycle", "redundancy",
                     "mispredicts/1k", "faults/1k"});
        for (const Setting &setting : settings) {
            ExperimentRunner runner(envScale());
            runner.setEngineTweaks(setting.tweaks);
            double npc = 0.0;
            double red = 0.0;
            double mp = 0.0;
            double fl = 0.0;
            for (const std::string &workload : workloadNames()) {
                const ExperimentResult r = runner.run(workload, config);
                npc += r.nodesPerCycle;
                red += r.engine.redundancy();
                mp += 1000.0 * static_cast<double>(r.engine.mispredicts) /
                      static_cast<double>(r.refNodes);
                fl += 1000.0 * static_cast<double>(r.engine.faultsFired) /
                      static_cast<double>(r.refNodes);
            }
            const double n = static_cast<double>(workloadNames().size());
            table.addRow({setting.name, format("%.3f", npc / n),
                          format("%.3f", red / n), format("%.2f", mp / n),
                          format("%.2f", fl / n)});
        }
        std::cout << disciplineName(d) << ":\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "The paper's conjecture: its realistic numbers are a "
                 "LOWER bound, with better prediction pushing higher.\n";
    return 0;
}
