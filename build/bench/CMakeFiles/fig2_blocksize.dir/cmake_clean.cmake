file(REMOVE_RECURSE
  "CMakeFiles/fig2_blocksize.dir/fig2_blocksize.cc.o"
  "CMakeFiles/fig2_blocksize.dir/fig2_blocksize.cc.o.d"
  "fig2_blocksize"
  "fig2_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
