file(REMOVE_RECURSE
  "libfgp_tld.a"
)
