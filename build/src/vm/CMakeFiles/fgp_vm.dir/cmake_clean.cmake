file(REMOVE_RECURSE
  "CMakeFiles/fgp_vm.dir/atomic_runner.cc.o"
  "CMakeFiles/fgp_vm.dir/atomic_runner.cc.o.d"
  "CMakeFiles/fgp_vm.dir/interp.cc.o"
  "CMakeFiles/fgp_vm.dir/interp.cc.o.d"
  "CMakeFiles/fgp_vm.dir/profile_io.cc.o"
  "CMakeFiles/fgp_vm.dir/profile_io.cc.o.d"
  "CMakeFiles/fgp_vm.dir/simos.cc.o"
  "CMakeFiles/fgp_vm.dir/simos.cc.o.d"
  "libfgp_vm.a"
  "libfgp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
