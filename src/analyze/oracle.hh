/**
 * @file
 * Exact-schedule oracle: minimum-makespan block scheduling over the tld
 * dependence DAG (ROADMAP item 5(b)).
 *
 * The greedy list scheduler (tld/scheduleStatic) and the bbe enlargement
 * planner are heuristics; nothing else in the repo says how much schedule
 * length they leave on the table. The oracle answers that exactly:
 * branch-and-bound over per-cycle issue words, with memoized dominance
 * pruning over (scheduled-set, cycle, in-flight latency) states, under
 * the *same* resource model the greedy scheduler obeys — the IssueModel
 * word-packing rules (sequential = one node per word, else memSlots /
 * aluSlots class caps), the shared nodeLatency() model from
 * tld/depgraph.hh, and the same MemDepFacts edge drops.
 *
 * Every block result is a certified interval [lowerBound, upperBound]:
 *
 *  - when the search completes within budget, lowerBound == upperBound ==
 *    the optimal makespan (exact == true);
 *  - when the node or state budget is exhausted, the interval degrades to
 *    [max(critical-path height, resource floor), greedy length] — still
 *    sound on both sides, just not tight (lint AN010).
 *
 * The soundness sandwich `height <= oracle <= greedy` holds on every
 * block by construction and is asserted across all five workloads in
 * tests/analyze_test.cc and by `check_bench.sh --validate-oracle`.
 *
 * Consumers:
 *  - `fgpsim analyze --oracle`: per-block optimal/greedy lengths and the
 *    gap (human table + fgpsim-analyze-v1 extension, --strict gating);
 *  - lint AN009 (greedy gap on a hot block) and AN010 (budget exhausted)
 *    through the verify::diag registry;
 *  - an opt-in translation hook (TranslateOptions::oracleHook, installed
 *    by the harness under FGP_ORACLE_SCHED=1, default off) that adopts
 *    provably shorter oracle schedules for small blocks — re-proven
 *    effect-equivalent by verify::postTranslationCheck like any other
 *    translation;
 *  - a bbe plan-audit hook ranking chains by oracle-measured makespan
 *    reduction, comparable against analyze::heightRankingHook.
 */

#ifndef FGP_ANALYZE_ORACLE_HH
#define FGP_ANALYZE_ORACLE_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "bbe/enlarge.hh"
#include "ir/image.hh"
#include "tld/depgraph.hh"

namespace fgp::analyze {

/** Search budget and adoption knobs. */
struct OracleOptions
{
    /**
     * Maximum branch-and-bound states expanded per block before the
     * search gives up and certifies the fallback interval instead.
     */
    std::size_t maxStates = 250000;

    /**
     * Blocks with more nodes than this skip the search entirely (the
     * scheduled-set bitmask holds 64 nodes; larger blocks would not
     * finish anyway) and report the fallback interval.
     */
    std::size_t maxNodes = 64;

    /**
     * Adoption hook only: blocks larger than this keep the greedy
     * schedule even when the oracle found a shorter one (adopting huge
     * re-ordered blocks buys little and costs search time per translate).
     */
    std::size_t adoptMaxNodes = 32;
};

/** Certified schedule-length interval of one block. */
struct BlockOracle
{
    std::int32_t block = -1;
    std::int32_t entryPc = -1;
    bool enlarged = false;

    std::size_t nodes = 0;

    /** Latency-weighted critical-path height (dependence lower bound). */
    int height = 0;

    /**
     * Makespan of the greedy scheduleStatic() schedule in cycles: every
     * word issues in order at the earliest cycle its operands allow, and
     * the makespan counts the last node's latency — the same completion
     * metric the oracle minimizes, so the two are directly comparable.
     */
    int greedyLength = 0;

    /** Certified bounds on the optimal makespan (see file comment). */
    int lowerBound = 0;
    int upperBound = 0;

    /** True when lowerBound == upperBound == optimal (search completed). */
    bool exact = false;

    /** Branch-and-bound states expanded (0 when the search was skipped). */
    std::size_t statesExplored = 0;

    /**
     * Proven greedy overshoot: greedyLength - upperBound. Zero when the
     * greedy schedule is optimal or when only the fallback interval is
     * known (upperBound == greedyLength then).
     */
    int gap() const { return greedyLength - upperBound; }

    /**
     * The optimal schedule's words (flattened, empty cycles dropped),
     * filled only when exact and strictly shorter than greedy — what the
     * adoption hook installs. Empty otherwise.
     */
    std::vector<Word> words;
};

/** Whole-image oracle summary. */
struct ImageOracle
{
    std::vector<BlockOracle> blocks; ///< indexed by block id

    std::size_t exactBlocks = 0;     ///< blocks solved to optimality
    std::size_t exhaustedBlocks = 0; ///< blocks on the fallback interval
    long long greedyCycles = 0;      ///< sum of greedy makespans
    long long oracleCycles = 0;      ///< sum of certified upper bounds
    int maxGap = 0;                  ///< largest proven per-block gap
};

/**
 * Engine-semantics makespan of @p block's current words: each word
 * issues in order at the earliest cycle >= previous + 1 at which all its
 * operands have finished; the makespan is the maximum node finish time.
 * Returns 0 for blocks without words.
 */
int packedMakespan(const ImageBlock &block, int mem_hit_latency,
                   const MemDepFacts *facts = nullptr);

/**
 * Solve one block. @p facts must be the same no-alias facts (or null)
 * the greedy schedule was built with, so both sides of the gap obey one
 * dependence lattice. The greedy baseline is always a fresh
 * scheduleStatic() run on a copy — for statically scheduled images that
 * reproduces the existing words bit-identically, and for dynamically
 * packed images it is the only baseline the static oracle is comparable
 * against (packDynamic words rely on intra-word forwarding).
 */
BlockOracle oracleBlock(const ImageBlock &block, const IssueModel &issue,
                        int mem_hit_latency,
                        const OracleOptions &opts = {},
                        const MemDepFacts *facts = nullptr);

/** Solve every block of a translated @p image. */
ImageOracle oracleImage(const CodeImage &image, const MachineConfig &config,
                        const OracleOptions &opts = {});

/**
 * Whether translation adopts oracle schedules (FGP_ORACLE_SCHED=1;
 * default off — schedules stay bit-identical to the greedy baseline).
 */
bool oracleSchedEnabled();

/**
 * Adapter for TranslateOptions::oracleHook: re-schedules a freshly
 * greedy-scheduled block with the oracle and adopts the result when the
 * search proved a strictly shorter makespan on a small block
 * (opts.adoptMaxNodes). The adopted words respect the same IssueModel
 * packing rules, and the translation pipeline's postTranslationCheck
 * re-proves effect-equivalence as for any schedule.
 */
std::function<void(ImageBlock &, const IssueModel &, int,
                   const MemDepFacts *)>
oracleAdoptionHook(const OracleOptions &opts = {});

/**
 * A bbe plan-audit hook (EnlargeOptions::auditHook) reordering planned
 * chains by oracle-measured makespan reduction — the exact counterpart
 * of analyze::heightRankingHook, which ranks by predicted dependence-
 * height reduction only. Fused blocks beyond the oracle budget fall back
 * to their certified upper bound, so the ranking is always defined.
 */
PlanAuditHook oracleRankingHook(const IssueModel &issue,
                                int mem_hit_latency,
                                const OracleOptions &opts = {});

} // namespace fgp::analyze

#endif // FGP_ANALYZE_ORACLE_HH
