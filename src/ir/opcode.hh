/**
 * @file
 * Micro-operation opcode set and static metadata.
 *
 * One node (the paper's term for a micro-operation) corresponds to one
 * opcode instance. The set is deliberately RISC-like and fully decoded: the
 * translating loader stores programs one node per operation, exactly as the
 * paper's tld does (§3.1).
 */

#ifndef FGP_IR_OPCODE_HH
#define FGP_IR_OPCODE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace fgp {

/** Node opcodes. FEQ..FGEU are assert (fault) nodes created by enlargement. */
enum class Opcode : std::uint8_t {
    // ALU, register-register
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL, DIV, REM, SLT, SLTU,
    // ALU, register-immediate
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU, LUI,
    // Memory
    LW, LB, LBU, SW, SB,
    // Control (always terminate a basic block)
    BEQ, BNE, BLT, BGE, BLTU, BGEU, J, JAL, JR,
    // System call (not a terminator; serializing at execution)
    SYSCALL,
    // Assert nodes: fault when the condition holds (enlarged blocks only)
    FEQ, FNE, FLT, FGE, FLTU, FGEU,
    NUM_OPCODES,
};

/** Broad node classification used for issue slots and function units. */
enum class NodeClass : std::uint8_t {
    IntAlu,  ///< ALU operations (occupy an ALU slot)
    Mem,     ///< Loads and stores (occupy a memory slot)
    Control, ///< Branches and jumps (ALU slot; terminate blocks)
    Fault,   ///< Assert nodes inside enlarged blocks (ALU slot)
    Sys,     ///< System calls (ALU slot; serializing)
};

/** Operand layout of an opcode. */
enum class OperandForm : std::uint8_t {
    RRR,    ///< rd, rs1, rs2
    RRI,    ///< rd, rs1, imm
    RI,     ///< rd, imm (LUI)
    Load,   ///< rd, imm(rs1)
    Store,  ///< rs2, imm(rs1)
    Branch, ///< rs1, rs2, target
    Jump,   ///< target
    JumpLink, ///< rd, target
    JumpReg,  ///< rs1
    System, ///< implicit registers
    FaultF, ///< rs1, rs2, fault-to target
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    NodeClass cls;
    OperandForm form;
    bool isLoad;
    bool isStore;
};

/**
 * Which Node fields an operand form gives meaning to. Fields outside the
 * form must stay at their neutral values (kRegNone / imm 0 / target -1);
 * the verifier enforces this so that stray bits in an image cannot be
 * silently ignored by one executor and honored by another.
 */
struct OperandUse
{
    bool rd;
    bool rs1;
    bool rs2;
    bool imm;
    bool target;
};

constexpr OperandUse
operandUse(OperandForm form)
{
    switch (form) {
        //                        rd     rs1    rs2    imm    target
      case OperandForm::RRR:
        return {true,  true,  true,  false, false};
      case OperandForm::RRI:
        return {true,  true,  false, true,  false};
      case OperandForm::RI:
        return {true,  false, false, true,  false};
      case OperandForm::Load:
        return {true,  true,  false, true,  false};
      case OperandForm::Store:
        return {false, true,  true,  true,  false};
      case OperandForm::Branch:
        return {false, true,  true,  false, true};
      case OperandForm::Jump:
        return {false, false, false, false, true};
      case OperandForm::JumpLink:
        return {true,  false, false, false, true};
      case OperandForm::JumpReg:
        return {false, true,  false, false, false};
      case OperandForm::System:
        return {false, false, false, false, false};
      case OperandForm::FaultF:
        return {false, true,  true,  false, true};
    }
    return {false, false, false, false, false};
}

namespace detail {

inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NUM_OPCODES);

inline constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeInfo = {{
    // mnemonic  class              form                  load   store
    {"add",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sub",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"and",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"or",    NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"xor",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sll",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"srl",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sra",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"mul",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"div",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"rem",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"slt",   NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"sltu",  NodeClass::IntAlu, OperandForm::RRR,      false, false},
    {"addi",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"andi",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"ori",   NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"xori",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"slli",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"srli",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"srai",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"slti",  NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"sltiu", NodeClass::IntAlu, OperandForm::RRI,      false, false},
    {"lui",   NodeClass::IntAlu, OperandForm::RI,       false, false},
    {"lw",    NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"lb",    NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"lbu",   NodeClass::Mem,    OperandForm::Load,     true,  false},
    {"sw",    NodeClass::Mem,    OperandForm::Store,    false, true},
    {"sb",    NodeClass::Mem,    OperandForm::Store,    false, true},
    {"beq",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bne",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"blt",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bge",   NodeClass::Control, OperandForm::Branch,  false, false},
    {"bltu",  NodeClass::Control, OperandForm::Branch,  false, false},
    {"bgeu",  NodeClass::Control, OperandForm::Branch,  false, false},
    {"j",     NodeClass::Control, OperandForm::Jump,    false, false},
    {"jal",   NodeClass::Control, OperandForm::JumpLink, false, false},
    {"jr",    NodeClass::Control, OperandForm::JumpReg, false, false},
    {"syscall", NodeClass::Sys,  OperandForm::System,   false, false},
    {"feq",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fne",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"flt",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fge",   NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fltu",  NodeClass::Fault,  OperandForm::FaultF,   false, false},
    {"fgeu",  NodeClass::Fault,  OperandForm::FaultF,   false, false},
}};

} // namespace detail

/**
 * Metadata lookup. Inline constexpr-table access: this sits on the
 * simulator's hottest paths (every readiness/class test of every node
 * instance), so there is deliberately no bounds check here — opcodes
 * reaching it come from validated images.
 */
inline const OpcodeInfo &
opcodeInfo(Opcode op)
{
    return detail::kOpcodeInfo[static_cast<std::size_t>(op)];
}

/** Mnemonic for an opcode. */
inline std::string_view
mnemonic(Opcode op)
{
    return opcodeInfo(op).mnemonic;
}

/** Reverse lookup by mnemonic (case-insensitive); nullopt when unknown. */
std::optional<Opcode> opcodeFromMnemonic(std::string_view text);

inline NodeClass
nodeClass(Opcode op)
{
    return opcodeInfo(op).cls;
}

inline bool
isLoad(Opcode op)
{
    return opcodeInfo(op).isLoad;
}

inline bool
isStore(Opcode op)
{
    return opcodeInfo(op).isStore;
}

inline bool
isMem(Opcode op)
{
    return nodeClass(op) == NodeClass::Mem;
}

inline bool
isControl(Opcode op)
{
    return nodeClass(op) == NodeClass::Control;
}

inline bool
isFault(Opcode op)
{
    return nodeClass(op) == NodeClass::Fault;
}

inline bool
isConditionalBranch(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BGEU;
}

/** Map a conditional branch to the fault node with the same condition. */
Opcode branchToFault(Opcode op);

/** Map a fault node back to the branch with the same condition. */
Opcode faultToBranch(Opcode op);

/** Invert the condition sense (BEQ<->BNE, BLT<->BGE, ...). */
Opcode invertCondition(Opcode op);

} // namespace fgp

#endif // FGP_IR_OPCODE_HH
