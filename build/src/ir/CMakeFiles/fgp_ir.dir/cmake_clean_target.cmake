file(REMOVE_RECURSE
  "libfgp_ir.a"
)
