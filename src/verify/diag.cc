#include "verify/diag.hh"

#include <sstream>

namespace fgp::verify {

namespace {

struct CodeInfo
{
    std::string_view id;
    std::string_view name;
};

CodeInfo
codeInfo(Code code)
{
    switch (code) {
      case Code::BlockIdMismatch:
        return {"IMG001", "block-id-mismatch"};
      case Code::EmptyBlock:
        return {"IMG002", "empty-block"};
      case Code::EntryMapBroken:
        return {"IMG003", "entry-map-broken"};
      case Code::NonTerminalControl:
        return {"IMG004", "non-terminal-control"};
      case Code::BadTerminator:
        return {"IMG005", "bad-terminator"};
      case Code::DanglingBranchTarget:
        return {"IMG006", "dangling-branch-target"};
      case Code::DanglingFallthrough:
        return {"IMG007", "dangling-fallthrough"};
      case Code::BadFaultTarget:
        return {"IMG008", "bad-fault-target"};
      case Code::RegisterOutOfRange:
        return {"IMG009", "register-out-of-range"};
      case Code::OperandFormViolation:
        return {"IMG010", "operand-form-violation"};
      case Code::WordPackingBroken:
        return {"IMG011", "word-packing-broken"};
      case Code::NoExitPath:
        return {"IMG012", "no-exit-path"};
      case Code::BlockFlagMismatch:
        return {"IMG013", "block-flag-mismatch"};
      case Code::ScratchReadBeforeWrite:
        return {"DF001", "scratch-read-before-write"};
      case Code::MaybeUninitRead:
        return {"DF002", "maybe-uninit-read"};
      case Code::FaultOutsideEnlarged:
        return {"BBE001", "fault-outside-enlarged"};
      case Code::CompanionEntryReachable:
        return {"BBE002", "companion-entry-reachable"};
      case Code::CompanionFaultNotMutual:
        return {"BBE003", "companion-fault-not-mutual"};
      case Code::InstanceCapExceeded:
        return {"BBE004", "instance-cap-exceeded"};
      case Code::ChainPlanBroken:
        return {"BBE005", "chain-plan-broken"};
      case Code::RegisterEffectMismatch:
        return {"EQ001", "register-effect-mismatch"};
      case Code::MemoryEffectMismatch:
        return {"EQ002", "memory-effect-mismatch"};
      case Code::ControlEffectMismatch:
        return {"EQ003", "control-effect-mismatch"};
      case Code::FaultGuardMismatch:
        return {"EQ004", "fault-guard-mismatch"};
      case Code::ImageShapeMismatch:
        return {"EQ005", "image-shape-mismatch"};
    }
    return {"???", "unknown"};
}

} // namespace

std::string_view
codeId(Code code)
{
    return codeInfo(code).id;
}

std::string_view
codeName(Code code)
{
    return codeInfo(code).name;
}

std::string_view
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << codeId(code) << " " << severityName(severity);
    if (!stage.empty())
        os << " [" << stage << "]";
    if (block >= 0)
        os << " block " << block;
    if (node >= 0)
        os << " node " << node;
    if (origPc >= 0)
        os << " (pc " << origPc << ")";
    os << ": " << message;
    return os.str();
}

std::size_t
Report::errorCount() const
{
    std::size_t count = 0;
    for (const Diagnostic &diag : diags_)
        count += diag.severity == Severity::Error;
    return count;
}

std::size_t
Report::warningCount() const
{
    return diags_.size() - errorCount();
}

std::size_t
Report::countOf(Code code) const
{
    std::size_t count = 0;
    for (const Diagnostic &diag : diags_)
        count += diag.code == code;
    return count;
}

std::string
Report::renderText() const
{
    std::string out;
    for (const Diagnostic &diag : diags_) {
        out += diag.render();
        out += '\n';
    }
    return out;
}

} // namespace fgp::verify
