#include "analyze/analyze.hh"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "arch/config.hh"
#include "base/logging.hh"
#include "bbe/enlarge.hh"
#include "tld/depgraph.hh"
#include "tld/optimizer.hh"

namespace fgp::analyze {

namespace {

// nodeLatency comes from tld/depgraph.hh: one latency model shared with
// the greedy scheduler and the exact-schedule oracle.

/** Latency-weighted critical path (max finish time) of @p graph. */
int
criticalPath(const ImageBlock &block, const DepGraph &graph,
             int mem_hit_latency)
{
    int longest = 0;
    std::vector<int> finish(graph.size(), 0);
    // Nodes are in translated order, so every edge points forward and a
    // single left-to-right sweep visits predecessors first.
    for (std::size_t i = 0; i < graph.size(); ++i) {
        int start = 0;
        for (std::uint16_t p : graph.preds[i])
            start = std::max(start, finish[p]);
        finish[i] = start + nodeLatency(block.nodes[i], mem_hit_latency);
        longest = std::max(longest, finish[i]);
    }
    return longest;
}

/** Add the renamer-proof WAR edges of residualWars() to @p graph. */
void
addResidualAntideps(const ImageBlock &block, DepGraph &graph)
{
    for (const ResidualWar &war : residualWars(block)) {
        auto &preds = graph.preds[war.def];
        if (std::find(preds.begin(), preds.end(), war.reader) ==
            preds.end()) {
            preds.push_back(war.reader);
            graph.succs[war.reader].push_back(war.def);
        }
    }
}

int
ceilDiv(std::size_t num, int den)
{
    return den > 0 ? static_cast<int>((num + static_cast<std::size_t>(den) -
                                       1) /
                                      static_cast<std::size_t>(den))
                   : 0;
}

/** Minimum cycles block @p b needs under issue shape @p issue. */
int
resourceCycles(const BlockBounds &b, const IssueModel &issue)
{
    int cycles = b.critPath;
    if (issue.sequential) {
        cycles = std::max(cycles, static_cast<int>(b.nodes));
    } else {
        cycles = std::max(cycles, ceilDiv(b.memNodes, issue.memSlots));
        cycles = std::max(cycles, ceilDiv(b.aluNodes, issue.aluSlots));
        cycles = std::max(cycles, ceilDiv(b.nodes, issue.width()));
    }
    return cycles;
}

} // namespace

int
dependenceHeight(const ImageBlock &block, int mem_hit_latency)
{
    return criticalPath(block, buildDepGraph(block, /*with_antideps=*/false),
                        mem_hit_latency);
}

int
residualHeight(const ImageBlock &block, int mem_hit_latency)
{
    DepGraph graph = buildDepGraph(block, /*with_antideps=*/false);
    addResidualAntideps(block, graph);
    return criticalPath(block, graph, mem_hit_latency);
}

std::vector<ResidualWar>
residualWars(const ImageBlock &block)
{
    // A WAR edge survives both hardware renaming and tld local renaming
    // (which renames all-but-last definitions onto scratch) only when it
    // runs from a read of the live-in register value to that register's
    // final in-block definition.
    std::array<std::int32_t, kNumRegs> first_def;
    std::array<std::int32_t, kNumRegs> last_def;
    first_def.fill(-1);
    last_def.fill(-1);
    std::vector<std::vector<std::uint16_t>> livein_readers(kNumRegs);

    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        const Node &node = block.nodes[i];
        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int s = 0; s < nsrc; ++s) {
            const std::uint8_t reg = srcs[s];
            if (reg == kRegNone || reg == kRegZero)
                continue;
            if (first_def[reg] < 0)
                livein_readers[reg].push_back(static_cast<std::uint16_t>(i));
        }
        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero) {
            if (first_def[dst] < 0)
                first_def[dst] = static_cast<std::int32_t>(i);
            last_def[dst] = static_cast<std::int32_t>(i);
        }
    }

    std::vector<ResidualWar> wars;
    for (std::size_t reg = 0; reg < kNumRegs; ++reg) {
        if (last_def[reg] < 0)
            continue;
        const auto def = static_cast<std::uint16_t>(last_def[reg]);
        for (std::uint16_t reader : livein_readers[reg]) {
            if (reader == def)
                continue;
            wars.push_back({static_cast<std::uint8_t>(reg), reader, def});
        }
    }
    return wars;
}

ImageAnalysis
analyzeImage(const CodeImage &image, int mem_hit_latency)
{
    ImageAnalysis out;
    out.blocks.reserve(image.blocks.size());

    long long height_sum = 0;
    for (const ImageBlock &block : image.blocks) {
        BlockBounds b;
        b.block = block.id;
        b.entryPc = block.entryPc;
        b.enlarged = block.enlarged;
        b.companion = block.companion;
        b.chainLen = block.chainLen;
        b.nodes = block.nodes.size();
        for (const Node &node : block.nodes) {
            if (node.isMem())
                ++b.memNodes;
            else
                ++b.aluNodes;
        }

        DepGraph graph = buildDepGraph(block, /*with_antideps=*/false);
        b.critPath = criticalPath(block, graph, mem_hit_latency);
        addResidualAntideps(block, graph);
        b.critPathResidual = criticalPath(block, graph, mem_hit_latency);
        b.dataflowBound =
            b.critPath > 0 ? static_cast<double>(b.nodes) /
                                 static_cast<double>(b.critPath)
                           : 0.0;
        b.words = block.words.size();
        b.packedBound =
            b.words > 0 ? static_cast<double>(b.nodes) /
                              static_cast<double>(b.words)
                        : 0.0;

        out.totalNodes += b.nodes;
        out.enlargedBlocks += block.enlarged && !block.companion;
        out.companionBlocks += block.companion;
        out.heightHist.add(static_cast<std::uint64_t>(b.critPath));
        height_sum += b.critPath;
        out.critPathMax = std::max(out.critPathMax, b.critPath);
        out.dataflowBound = std::max(out.dataflowBound, b.dataflowBound);
        out.staticIpcBound = std::max(out.staticIpcBound, b.packedBound);
        out.blocks.push_back(std::move(b));
    }
    out.meanHeight =
        out.blocks.empty()
            ? 0.0
            : static_cast<double>(height_sum) /
                  static_cast<double>(out.blocks.size());

    for (const IssueModel &issue : allIssueModels()) {
        ResourceBound rb;
        rb.issueIndex = issue.index;
        rb.width = issue.width();
        for (const BlockBounds &b : out.blocks) {
            const int cycles = resourceCycles(b, issue);
            if (cycles > 0)
                rb.bound = std::max(rb.bound,
                                    static_cast<double>(b.nodes) /
                                        static_cast<double>(cycles));
        }
        out.resourceBounds.push_back(rb);
    }
    return out;
}

double
staticIpcBound(const CodeImage &image)
{
    double bound = 0.0;
    for (const ImageBlock &block : image.blocks) {
        if (block.words.empty())
            continue;
        bound = std::max(bound, static_cast<double>(block.nodes.size()) /
                                    static_cast<double>(block.words.size()));
    }
    return bound;
}

bool
xcheckEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("FGP_ANALYZE_XCHECK")) {
            if (env[0] == '1')
                return true;
            if (env[0] == '0')
                return false;
        }
#ifdef NDEBUG
        return false;
#else
        return true;
#endif
    }();
    return enabled;
}

std::vector<ChainAudit>
auditChains(const CodeImage &single, const CodeImage &enlarged,
            const EnlargePlan &plan, int mem_hit_latency)
{
    // Member heights are reused across chains (loops repeat blocks).
    std::vector<int> height_of(single.blocks.size(), -1);
    auto member_height = [&](std::int32_t id) {
        int &h = height_of[static_cast<std::size_t>(id)];
        if (h < 0) {
            const ImageBlock &block = single.block(id);
            h = criticalPath(block, buildDepGraph(block, false),
                             mem_hit_latency);
        }
        return h;
    };

    std::vector<ChainAudit> audits;
    for (std::size_t c = 0; c < plan.chains.size(); ++c) {
        const EnlargeChain &planned = plan.chains[c];
        if (planned.entryPcs.empty())
            continue;
        const Chain chain = resolveChain(single, planned);

        // Locate the primary this chain produced. A chain whose head pc
        // was consumed by an earlier chain built no block — skip it, the
        // builder did too.
        const auto it = enlarged.entryByPc.find(planned.entryPcs.front());
        if (it == enlarged.entryByPc.end())
            continue;
        const ImageBlock &primary = enlarged.block(it->second);
        if (!primary.enlarged || primary.companion ||
            primary.chainLen != static_cast<std::int32_t>(chain.size()))
            continue;

        ChainAudit audit;
        audit.chainIndex = c;
        audit.entryPc = planned.entryPcs.front();
        audit.members = chain.size();
        audit.primaryBlock = primary.id;
        audit.nodes = primary.nodes.size();
        for (const ChainLink &link : chain)
            audit.memberHeightSum += member_height(link.blockId);

        // Re-optimize a copy the way the translating loader will, then
        // measure the fused dependence height.
        ImageBlock fused = primary;
        optimizeBlock(fused);
        audit.fusedHeight =
            criticalPath(fused, buildDepGraph(fused, false),
                         mem_hit_latency);
        audits.push_back(std::move(audit));
    }

    std::sort(audits.begin(), audits.end(),
              [](const ChainAudit &a, const ChainAudit &b) {
                  if (a.heightReduction() != b.heightReduction())
                      return a.heightReduction() > b.heightReduction();
                  return a.chainIndex < b.chainIndex;
              });
    return audits;
}

PlanAuditHook
heightRankingHook(int mem_hit_latency)
{
    return [mem_hit_latency](const CodeImage &single, EnlargePlan &plan) {
        if (plan.empty())
            return;
        const CodeImage enlarged = applyEnlargement(single, plan);
        const std::vector<ChainAudit> audits =
            auditChains(single, enlarged, plan, mem_hit_latency);

        // Audited chains in ranked order first; chains the builder
        // skipped (head consumed by an earlier chain) keep their
        // relative order at the back.
        std::vector<bool> placed(plan.chains.size(), false);
        std::vector<EnlargeChain> ordered;
        ordered.reserve(plan.chains.size());
        for (const ChainAudit &audit : audits) {
            ordered.push_back(std::move(plan.chains[audit.chainIndex]));
            placed[audit.chainIndex] = true;
        }
        for (std::size_t c = 0; c < plan.chains.size(); ++c)
            if (!placed[c])
                ordered.push_back(std::move(plan.chains[c]));
        plan.chains = std::move(ordered);
    };
}

} // namespace fgp::analyze
