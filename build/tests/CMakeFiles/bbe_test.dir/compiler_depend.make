# Empty compiler generated dependencies file for bbe_test.
# This may be replaced when dependencies are built.
