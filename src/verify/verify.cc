#include "verify/verify.hh"

#include <algorithm>
#include <array>

#include "tld/schedule.hh"

namespace fgp::verify {

namespace {

using Mask = std::uint64_t; // one bit per register, kNumRegs <= 64

constexpr Mask kAllArch = (Mask{1} << kNumArchRegs) - 1;

Mask
bit(std::uint8_t reg)
{
    return Mask{1} << reg;
}

/** Per-node register and operand-form legality. */
void
checkNodeOperands(const CodeImage &image, const ImageBlock &block,
                  std::size_t node_idx, Report &report,
                  std::string_view stage)
{
    const Node &node = block.nodes[node_idx];
    const auto idx = static_cast<std::int32_t>(node_idx);

    if (node.op >= Opcode::NUM_OPCODES) {
        addDiag(report, Code::OperandFormViolation, Severity::Error, stage,
                block.id, idx, node.origPc, "opcode value ",
                static_cast<int>(node.op), " is not a node opcode");
        return; // nothing else is decodable
    }

    const OperandUse use = operandUse(opcodeInfo(node.op).form);

    auto check_reg = [&](std::uint8_t reg, bool used, const char *field) {
        if (used) {
            if (reg == kRegNone)
                addDiag(report, Code::OperandFormViolation, Severity::Error,
                        stage, block.id, idx, node.origPc, mnemonic(node.op),
                        " requires operand ", field);
            else if (reg >= kNumRegs)
                addDiag(report, Code::RegisterOutOfRange, Severity::Error,
                        stage, block.id, idx, node.origPc, field, " r",
                        static_cast<int>(reg), " outside the ",
                        static_cast<int>(kNumRegs), "-register file");
        } else if (reg != kRegNone) {
            addDiag(report, Code::OperandFormViolation, Severity::Error,
                    stage, block.id, idx, node.origPc, mnemonic(node.op),
                    " must leave operand ", field, " unset (found r",
                    static_cast<int>(reg), ")");
        }
    };
    check_reg(node.rd, use.rd, "rd");
    check_reg(node.rs1, use.rs1, "rs1");
    check_reg(node.rs2, use.rs2, "rs2");

    if (!use.imm && node.imm != 0)
        addDiag(report, Code::OperandFormViolation, Severity::Error, stage,
                block.id, idx, node.origPc, mnemonic(node.op),
                " must leave imm zero (found ", node.imm, ")");
    if (use.target) {
        if (node.target < 0)
            addDiag(report, Code::OperandFormViolation, Severity::Error,
                    stage, block.id, idx, node.origPc, mnemonic(node.op),
                    " requires a target");
    } else if (node.target != -1) {
        addDiag(report, Code::OperandFormViolation, Severity::Error, stage,
                block.id, idx, node.origPc, mnemonic(node.op),
                " must leave target unset (found ", node.target, ")");
    }

    if (node.isFault()) {
        const auto num_blocks = static_cast<std::int32_t>(image.blocks.size());
        if (node.target < 0 || node.target >= num_blocks)
            addDiag(report, Code::BadFaultTarget, Severity::Error, stage,
                    block.id, idx, node.origPc, "fault target ", node.target,
                    " is not a block id (", num_blocks, " blocks)");
    }
}

/** Terminator placement, branch-target resolution and exit-path rules. */
void
checkBlockControl(const CodeImage &image, const ImageBlock &block,
                  Report &report, std::string_view stage)
{
    bool has_syscall = false;
    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        const Node &node = block.nodes[i];
        has_syscall = has_syscall || node.isSys();
        if (node.isControl() && i + 1 != block.nodes.size())
            addDiag(report, Code::NonTerminalControl, Severity::Error, stage,
                    block.id, static_cast<std::int32_t>(i), node.origPc,
                    "control node ", mnemonic(node.op),
                    " is not in terminal position");
    }
    if (has_syscall != block.hasSyscall)
        addDiag(report, Code::BlockFlagMismatch, Severity::Error, stage,
                block.id, -1, block.entryPc, "hasSyscall flag is ",
                block.hasSyscall, " but the block ",
                has_syscall ? "contains" : "does not contain",
                " a system call");
    if (block.companion && !block.enlarged)
        addDiag(report, Code::BlockFlagMismatch, Severity::Error, stage,
                block.id, -1, block.entryPc,
                "companion flag set on a non-enlarged block");

    auto resolves = [&](std::int32_t pc) {
        return image.entryByPc.count(pc) != 0;
    };

    const Node *term = block.terminal();
    const auto term_idx = static_cast<std::int32_t>(block.nodes.size()) - 1;
    if (term) {
        const bool conditional = isConditionalBranch(term->op);
        if (term->target >= 0 && term->op != Opcode::JR &&
            !resolves(term->target))
            addDiag(report, Code::DanglingBranchTarget, Severity::Error,
                    stage, block.id, term_idx, term->origPc,
                    mnemonic(term->op), " target pc ", term->target,
                    " is not a block entry");
        if (conditional && block.fallthroughPc < 0)
            addDiag(report, Code::BadTerminator, Severity::Error, stage,
                    block.id, term_idx, term->origPc,
                    "conditional terminator without a fall-through pc");
        if (!conditional && block.fallthroughPc >= 0)
            addDiag(report, Code::BadTerminator, Severity::Error, stage,
                    block.id, term_idx, term->origPc, mnemonic(term->op),
                    " terminator must not carry a fall-through pc");
    }
    if (block.fallthroughPc >= 0 && !resolves(block.fallthroughPc))
        addDiag(report, Code::DanglingFallthrough, Severity::Error, stage,
                block.id, -1, block.entryPc, "fall-through pc ",
                block.fallthroughPc, " is not a block entry");
    if (!term && block.fallthroughPc < 0 && !has_syscall)
        addDiag(report, Code::NoExitPath, Severity::Error, stage, block.id,
                -1, block.entryPc,
                "no terminator, no fall-through and no system call: "
                "execution would fall off the image");
}

/** Issue-word packing: every node in exactly one word, model respected. */
void
checkWords(const ImageBlock &block, const VerifyOptions &opts,
           Report &report, std::string_view stage)
{
    const IssueModel *issue = opts.issue;
    if (block.words.empty())
        return; // untranslated image; the packer has not run yet
    std::vector<int> seen(block.nodes.size(), 0);
    for (std::size_t w = 0; w < block.words.size(); ++w) {
        const Word &word = block.words[w];
        if (word.empty())
            addDiag(report, Code::WordPackingBroken, Severity::Error, stage,
                    block.id, -1, block.entryPc, "issue word ", w,
                    " is empty");
        for (std::uint16_t idx : word) {
            if (idx >= block.nodes.size()) {
                addDiag(report, Code::WordPackingBroken, Severity::Error,
                        stage, block.id, -1, block.entryPc, "issue word ", w,
                        " references node ", idx, " out of range");
                continue;
            }
            ++seen[idx];
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        if (seen[i] != 1)
            addDiag(report, Code::WordPackingBroken, Severity::Error, stage,
                    block.id, static_cast<std::int32_t>(i),
                    block.nodes[i].origPc, "node appears in ", seen[i],
                    " issue words (expected exactly 1)");
    if (issue) {
        bool ok;
        if (opts.memFacts) {
            const MemDepFacts facts = opts.memFacts(block);
            ok = wordsRespectModel(block, *issue,
                                   facts.empty() ? nullptr : &facts);
        } else {
            ok = wordsRespectModel(block, *issue);
        }
        if (!ok)
            addDiag(report, Code::WordPackingBroken, Severity::Error, stage,
                    block.id, -1, block.entryPc,
                    "packing violates the issue model (slot shapes or "
                    "dependence order)");
    }
}

/** Plan-free BBE invariants: fault placement and mutual fault edges. */
void
checkBbeStructure(const CodeImage &image, Report &report,
                  std::string_view stage)
{
    const auto num_blocks = static_cast<std::int32_t>(image.blocks.size());

    auto has_fault_to = [&](const ImageBlock &from, std::int32_t to) {
        return std::any_of(from.nodes.begin(), from.nodes.end(),
                           [&](const Node &n) {
                               return n.isFault() && n.target == to;
                           });
    };

    for (const ImageBlock &block : image.blocks) {
        bool has_return_edge = false;
        for (std::size_t i = 0; i < block.nodes.size(); ++i) {
            const Node &node = block.nodes[i];
            if (!node.isFault())
                continue;
            const auto idx = static_cast<std::int32_t>(i);
            if (!block.enlarged) {
                addDiag(report, Code::FaultOutsideEnlarged, Severity::Error,
                        stage, block.id, idx, node.origPc,
                        "fault node in a block not produced by enlargement");
                continue;
            }
            if (node.target < 0 || node.target >= num_blocks)
                continue; // already reported as BadFaultTarget
            const ImageBlock &target = image.block(node.target);
            if (target.entryPc != block.entryPc) {
                addDiag(report, Code::CompanionFaultNotMutual,
                        Severity::Error, stage, block.id, idx, node.origPc,
                        "fault edge crosses chains: target block ",
                        node.target, " enters at pc ", target.entryPc,
                        " not ", block.entryPc);
                continue;
            }
            if (!block.companion) {
                // Primary faults must reach a companion that can fault
                // back (Figure 1: AB and AC are mutual fault targets; a
                // one-way edge strands the cold path or livelocks).
                if (!target.companion)
                    addDiag(report, Code::CompanionFaultNotMutual,
                            Severity::Error, stage, block.id, idx,
                            node.origPc, "primary fault target block ",
                            node.target, " is not a companion");
                else if (!has_fault_to(target, block.id))
                    addDiag(report, Code::CompanionFaultNotMutual,
                            Severity::Error, stage, block.id, idx,
                            node.origPc, "fault edge to companion ",
                            node.target, " has no return fault edge");
            } else if (!target.companion) {
                // Companion faulting back to its primary; prefix faults
                // to earlier companions are equally legal.
                has_return_edge = true;
            }
        }
        if (block.companion && !has_return_edge)
            addDiag(report, Code::CompanionFaultNotMutual, Severity::Error,
                    stage, block.id, -1, block.entryPc,
                    "companion has no fault edge back to a primary");
    }

    for (const auto &[pc, id] : image.entryByPc) {
        if (id < 0 || id >= num_blocks)
            continue; // reported by the entry-map check
        if (image.block(id).companion)
            addDiag(report, Code::CompanionEntryReachable, Severity::Error,
                    stage, id, -1, pc,
                    "entry map routes pc ", pc,
                    " into a companion block (companions are reachable "
                    "only as fault targets)");
    }
}

/** Entry-map consistency. */
void
checkEntryMap(const CodeImage &image, Report &report, std::string_view stage)
{
    const auto num_blocks = static_cast<std::int32_t>(image.blocks.size());
    for (const auto &[pc, id] : image.entryByPc) {
        if (id < 0 || id >= num_blocks) {
            addDiag(report, Code::EntryMapBroken, Severity::Error, stage, id,
                    -1, pc, "entry map for pc ", pc, " points at bad block ",
                    id);
            continue;
        }
        if (image.block(id).entryPc != pc)
            addDiag(report, Code::EntryMapBroken, Severity::Error, stage, id,
                    -1, pc, "entry map for pc ", pc,
                    " points at block with entry pc ",
                    image.block(id).entryPc);
    }
    if (image.entryBlock < 0 || image.entryBlock >= num_blocks) {
        addDiag(report, Code::EntryMapBroken, Severity::Error, stage, -1, -1,
                -1, "image entry block ", image.entryBlock, " out of range");
    } else if (image.prog &&
               image.block(image.entryBlock).entryPc != image.prog->entry) {
        addDiag(report, Code::EntryMapBroken, Severity::Error, stage,
                image.entryBlock, -1, image.prog->entry,
                "entry block does not begin at the program entry pc");
    }
}

/** Registers read by @p node before it writes, as a mask. */
Mask
readMask(const Node &node)
{
    std::array<std::uint8_t, 5> srcs;
    const int nsrc = node.srcRegs(srcs);
    Mask mask = 0;
    for (int s = 0; s < nsrc; ++s)
        if (srcs[s] != kRegNone && srcs[s] < kNumRegs)
            mask |= bit(srcs[s]);
    return mask;
}

/**
 * Def-before-use. Scratch registers are dead at block boundaries by the
 * translator contract, so any upward-exposed scratch read is an error.
 * With strictUninit, a forward may-be-uninitialized dataflow over the
 * CFG additionally flags architectural registers that can reach a read
 * with no prior definition on some path (warnings: the register file is
 * zero-filled, so these reads are defined but usually unintended).
 */
void
checkDefBeforeUse(const CodeImage &image, Report &report,
                  const VerifyOptions &opts, std::string_view stage)
{
    const std::size_t num_blocks = image.blocks.size();
    std::vector<Mask> upward(num_blocks, 0); // upward-exposed arch reads
    std::vector<Mask> defs(num_blocks, 0);

    for (std::size_t b = 0; b < num_blocks; ++b) {
        const ImageBlock &block = image.blocks[b];
        Mask defined = kAllArch; // scratch regs start undefined
        for (std::size_t i = 0; i < block.nodes.size(); ++i) {
            const Node &node = block.nodes[i];
            const Mask reads = readMask(node);
            const Mask naked = reads & ~defined;
            for (std::uint8_t reg = kNumArchRegs; reg < kNumRegs; ++reg) {
                if (naked & bit(reg))
                    addDiag(report, Code::ScratchReadBeforeWrite,
                            Severity::Error, stage, block.id,
                            static_cast<std::int32_t>(i), node.origPc,
                            "scratch r", static_cast<int>(reg),
                            " read before any definition in the block "
                            "(scratch registers are dead at block entry)");
            }
            upward[b] |= reads & kAllArch & ~defs[b];
            const std::uint8_t dst = node.dstReg();
            if (dst != kRegNone && dst < kNumRegs) {
                defined |= bit(dst);
                defs[b] |= bit(dst);
            }
        }
    }

    if (!opts.strictUninit || image.entryBlock < 0 ||
        image.entryBlock >= static_cast<std::int32_t>(num_blocks))
        return;

    // Forward may-be-uninitialized fixpoint. At process start only the
    // zero register and the stack pointer carry meaningful values.
    const Mask entry_undef =
        kAllArch & ~(bit(kRegZero) | bit(kRegSp));
    std::vector<Mask> undef_in(num_blocks, 0);
    std::vector<bool> reached(num_blocks, false);
    undef_in[static_cast<std::size_t>(image.entryBlock)] = entry_undef;
    reached[static_cast<std::size_t>(image.entryBlock)] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < num_blocks; ++b) {
            if (!reached[b])
                continue;
            const Mask out = undef_in[b] & ~defs[b];
            for (std::int32_t succ :
                 imageSuccessors(image, static_cast<std::int32_t>(b))) {
                auto s = static_cast<std::size_t>(succ);
                const Mask merged = undef_in[s] | out;
                if (!reached[s] || merged != undef_in[s]) {
                    undef_in[s] = merged;
                    reached[s] = true;
                    changed = true;
                }
            }
        }
    }

    for (std::size_t b = 0; b < num_blocks; ++b) {
        if (!reached[b])
            continue;
        const Mask suspect = upward[b] & undef_in[b];
        if (!suspect)
            continue;
        for (std::uint8_t reg = 0; reg < kNumArchRegs; ++reg)
            if (suspect & bit(reg))
                addDiag(report, Code::MaybeUninitRead, Severity::Warning,
                        stage, image.blocks[b].id, -1,
                        image.blocks[b].entryPc, "r",
                        static_cast<int>(reg),
                        " may be read before any definition on a path "
                        "from the entry");
    }
}

} // namespace

std::vector<std::int32_t>
imageSuccessors(const CodeImage &image, std::int32_t block_id)
{
    const ImageBlock &block = image.block(block_id);
    std::vector<std::int32_t> succs;
    const auto num_blocks = static_cast<std::int32_t>(image.blocks.size());

    auto add_pc = [&](std::int32_t pc) {
        const auto it = image.entryByPc.find(pc);
        if (it != image.entryByPc.end())
            succs.push_back(it->second);
    };
    auto add_block = [&](std::int32_t id) {
        if (id >= 0 && id < num_blocks)
            succs.push_back(id);
    };

    for (const Node &node : block.nodes)
        if (node.isFault())
            add_block(node.target);

    const Node *term = block.terminal();
    if (!term) {
        if (block.fallthroughPc >= 0)
            add_pc(block.fallthroughPc);
    } else if (term->op == Opcode::JR) {
        // Return sites: the block after each JAL in the image.
        for (const ImageBlock &other : image.blocks) {
            const Node *t = other.terminal();
            if (t && t->op == Opcode::JAL && t->origPc >= 0)
                add_pc(t->origPc + 1);
        }
    } else {
        if (term->target >= 0)
            add_pc(term->target);
        if (block.fallthroughPc >= 0)
            add_pc(block.fallthroughPc);
    }

    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    return succs;
}

void
verifyImageInto(const CodeImage &image, Report &report,
                const VerifyOptions &opts, std::string_view stage)
{
    if (image.blocks.empty()) {
        addDiag(report, Code::EmptyBlock, Severity::Error, stage, -1, -1, -1,
                "image has no blocks");
        return;
    }

    for (std::size_t b = 0; b < image.blocks.size(); ++b) {
        const ImageBlock &block = image.blocks[b];
        if (block.id != static_cast<std::int32_t>(b))
            addDiag(report, Code::BlockIdMismatch, Severity::Error, stage,
                    static_cast<std::int32_t>(b), -1, block.entryPc,
                    "block at index ", b, " carries id ", block.id);
        if (block.nodes.empty()) {
            addDiag(report, Code::EmptyBlock, Severity::Error, stage,
                    block.id, -1, block.entryPc, "block has no nodes");
            continue;
        }
        for (std::size_t i = 0; i < block.nodes.size(); ++i)
            checkNodeOperands(image, block, i, report, stage);
        checkBlockControl(image, block, report, stage);
        checkWords(block, opts, report, stage);
    }

    checkEntryMap(image, report, stage);
    checkBbeStructure(image, report, stage);
    checkDefBeforeUse(image, report, opts, stage);
}

Report
verifyImage(const CodeImage &image, const VerifyOptions &opts,
            std::string_view stage)
{
    Report report;
    verifyImageInto(image, report, opts, stage);
    return report;
}

} // namespace fgp::verify
