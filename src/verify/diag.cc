#include "verify/diag.hh"

#include <sstream>
#include <unordered_map>

namespace fgp::verify {

namespace {

/**
 * The code registry. The verifier's own families are seeded here; other
 * families (the analyzer's AN codes) call registerCodes() from their
 * owning TU's static initializer, so growing the catalog never edits
 * this file. Function-local static so cross-TU initialization order
 * cannot observe an unconstructed map.
 */
std::unordered_map<Code, CodeInfo> &
codeTable()
{
    static std::unordered_map<Code, CodeInfo> table = {
        {Code::BlockIdMismatch, {"IMG001", "block-id-mismatch"}},
        {Code::EmptyBlock, {"IMG002", "empty-block"}},
        {Code::EntryMapBroken, {"IMG003", "entry-map-broken"}},
        {Code::NonTerminalControl, {"IMG004", "non-terminal-control"}},
        {Code::BadTerminator, {"IMG005", "bad-terminator"}},
        {Code::DanglingBranchTarget, {"IMG006", "dangling-branch-target"}},
        {Code::DanglingFallthrough, {"IMG007", "dangling-fallthrough"}},
        {Code::BadFaultTarget, {"IMG008", "bad-fault-target"}},
        {Code::RegisterOutOfRange, {"IMG009", "register-out-of-range"}},
        {Code::OperandFormViolation, {"IMG010", "operand-form-violation"}},
        {Code::WordPackingBroken, {"IMG011", "word-packing-broken"}},
        {Code::NoExitPath, {"IMG012", "no-exit-path"}},
        {Code::BlockFlagMismatch, {"IMG013", "block-flag-mismatch"}},
        {Code::ScratchReadBeforeWrite, {"DF001", "scratch-read-before-write"}},
        {Code::MaybeUninitRead, {"DF002", "maybe-uninit-read"}},
        {Code::FaultOutsideEnlarged, {"BBE001", "fault-outside-enlarged"}},
        {Code::CompanionEntryReachable,
         {"BBE002", "companion-entry-reachable"}},
        {Code::CompanionFaultNotMutual,
         {"BBE003", "companion-fault-not-mutual"}},
        {Code::InstanceCapExceeded, {"BBE004", "instance-cap-exceeded"}},
        {Code::ChainPlanBroken, {"BBE005", "chain-plan-broken"}},
        {Code::RegisterEffectMismatch,
         {"EQ001", "register-effect-mismatch"}},
        {Code::MemoryEffectMismatch, {"EQ002", "memory-effect-mismatch"}},
        {Code::ControlEffectMismatch, {"EQ003", "control-effect-mismatch"}},
        {Code::FaultGuardMismatch, {"EQ004", "fault-guard-mismatch"}},
        {Code::ImageShapeMismatch, {"EQ005", "image-shape-mismatch"}},
    };
    return table;
}

CodeInfo
codeInfo(Code code)
{
    const auto &table = codeTable();
    const auto it = table.find(code);
    return it == table.end() ? CodeInfo{"???", "unknown"} : it->second;
}

} // namespace

void
registerCodes(std::initializer_list<std::pair<Code, CodeInfo>> codes)
{
    auto &table = codeTable();
    for (const auto &[code, info] : codes) {
        const auto [it, inserted] = table.emplace(code, info);
        fgp_assert(inserted || (it->second.id == info.id &&
                                it->second.name == info.name),
                   "conflicting registration for diagnostic code ",
                   info.id);
    }
}

std::string_view
codeId(Code code)
{
    return codeInfo(code).id;
}

std::string_view
codeName(Code code)
{
    return codeInfo(code).name;
}

std::string_view
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << codeId(code) << " " << severityName(severity);
    if (!stage.empty())
        os << " [" << stage << "]";
    if (block >= 0)
        os << " block " << block;
    if (node >= 0)
        os << " node " << node;
    if (origPc >= 0)
        os << " (pc " << origPc << ")";
    os << ": " << message;
    return os.str();
}

std::size_t
Report::errorCount() const
{
    std::size_t count = 0;
    for (const Diagnostic &diag : diags_)
        count += diag.severity == Severity::Error;
    return count;
}

std::size_t
Report::warningCount() const
{
    return diags_.size() - errorCount();
}

std::size_t
Report::countOf(Code code) const
{
    std::size_t count = 0;
    for (const Diagnostic &diag : diags_)
        count += diag.code == code;
    return count;
}

std::string
Report::renderText() const
{
    std::string out;
    for (const Diagnostic &diag : diags_) {
        out += diag.render();
        out += '\n';
    }
    return out;
}

} // namespace fgp::verify
