/**
 * @file
 * SimOS: the simulated operating system. The paper's simulator passes
 * system calls through to the host OS and excludes them from statistics;
 * here an in-memory OS (file system, file descriptors, program break)
 * services them in zero simulated time, which gives the same measurement
 * boundary with full determinism.
 */

#ifndef FGP_VM_SIMOS_HH
#define FGP_VM_SIMOS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace fgp {

/** System call numbers (in register v0 at the SYSCALL node). */
enum class Sys : std::uint32_t {
    Exit = 0,  ///< exit(a0)
    Open = 1,  ///< open(a0=path, a1=flags: 0 read, 1 write/create) -> fd
    Close = 2, ///< close(a0) -> 0 / -1
    Read = 3,  ///< read(a0=fd, a1=buf, a2=len) -> bytes or 0 at EOF
    Write = 4, ///< write(a0=fd, a1=buf, a2=len) -> bytes
    Brk = 5,   ///< brk(a0: 0 queries) -> current break
};

/**
 * Byte-level memory accessors given to SimOS by the executing engine, so
 * that reads observe in-flight (not yet committed) stores when the caller
 * requires it.
 */
struct MemPorts
{
    std::function<std::uint8_t(std::uint32_t)> load;
    std::function<void(std::uint32_t, std::uint8_t)> store;
};

/** In-memory OS state: files, descriptors, break, exit status. */
class SimOS
{
  public:
    SimOS();

    /** Install a named input file. */
    void addFile(const std::string &name, std::vector<std::uint8_t> bytes);
    void addFile(const std::string &name, const std::string &text);

    /** Preload standard input. */
    void setStdin(const std::string &text);
    void setStdin(std::vector<std::uint8_t> bytes);

    /** Captured standard output / error. */
    std::string stdoutText() const;
    std::string stderrText() const;

    /** Contents of a (possibly written) file; nullopt when absent. */
    std::optional<std::string> fileText(const std::string &name) const;

    bool exited() const { return exited_; }
    int exitCode() const { return exitCode_; }
    std::uint64_t syscallCount() const { return syscallCount_; }

    /** Set the initial program break (end of static data). */
    void setInitialBrk(std::uint32_t brk) { brk_ = brk; }
    std::uint32_t currentBrk() const { return brk_; }

    /**
     * Execute one system call.
     *
     * @param v0  syscall number; receives the result.
     * @param a0..a3 arguments.
     * @param mem byte accessors into the caller's view of memory.
     * @return result value to write into v0.
     */
    std::uint32_t syscall(std::uint32_t v0, std::uint32_t a0,
                          std::uint32_t a1, std::uint32_t a2,
                          std::uint32_t a3, const MemPorts &mem);

  private:
    struct OpenFile
    {
        std::string name;
        std::size_t pos = 0;
        bool writable = false;
        bool open = false;
    };

    std::uint32_t doOpen(const std::string &path, std::uint32_t flags);
    std::uint32_t doRead(std::uint32_t fd, std::uint32_t buf,
                         std::uint32_t len, const MemPorts &mem);
    std::uint32_t doWrite(std::uint32_t fd, std::uint32_t buf,
                          std::uint32_t len, const MemPorts &mem);

    std::map<std::string, std::vector<std::uint8_t>> files_;
    std::vector<OpenFile> fds_;

    std::vector<std::uint8_t> stdin_;
    std::size_t stdinPos_ = 0;
    std::vector<std::uint8_t> stdout_;
    std::vector<std::uint8_t> stderr_;

    std::uint32_t brk_ = kDataBase;
    bool exited_ = false;
    int exitCode_ = 0;
    std::uint64_t syscallCount_ = 0;
};

} // namespace fgp

#endif // FGP_VM_SIMOS_HH
