file(REMOVE_RECURSE
  "CMakeFiles/fgp_ir.dir/cfg.cc.o"
  "CMakeFiles/fgp_ir.dir/cfg.cc.o.d"
  "CMakeFiles/fgp_ir.dir/image.cc.o"
  "CMakeFiles/fgp_ir.dir/image.cc.o.d"
  "CMakeFiles/fgp_ir.dir/opcode.cc.o"
  "CMakeFiles/fgp_ir.dir/opcode.cc.o.d"
  "CMakeFiles/fgp_ir.dir/printer.cc.o"
  "CMakeFiles/fgp_ir.dir/printer.cc.o.d"
  "CMakeFiles/fgp_ir.dir/program.cc.o"
  "CMakeFiles/fgp_ir.dir/program.cc.o.d"
  "libfgp_ir.a"
  "libfgp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
