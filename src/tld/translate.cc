#include "tld/translate.hh"

#include "base/logging.hh"
#include "tld/schedule.hh"
#include "verify/postpass.hh"

namespace fgp {

OptimizerStats
translate(CodeImage &image, const MachineConfig &config,
          const TranslateOptions &opts)
{
    OptimizerStats stats;
    CodeImage before;
    const bool check = verify::postPassChecksEnabled();
    if (check)
        before = image;
    for (ImageBlock &block : image.blocks) {
        if (opts.optimizeAll || (opts.optimizeEnlarged && block.enlarged))
            stats.mergeFrom(optimizeBlock(block, opts.optimizer));

        if (config.discipline == Discipline::Static) {
            const MemDepFacts facts =
                opts.disambigHook ? opts.disambigHook(block)
                                  : MemDepFacts{};
            const MemDepFacts *facts_ptr =
                facts.empty() ? nullptr : &facts;
            scheduleStatic(block, config.issue, config.memory.hitLatency,
                           facts_ptr);
            if (opts.oracleHook)
                opts.oracleHook(block, config.issue,
                                config.memory.hitLatency, facts_ptr);
        } else {
            packDynamic(block, config.issue);
        }
    }
    validateImage(image);
    if (check)
        verify::postTranslationCheck(before, image);
    return stats;
}

} // namespace fgp
