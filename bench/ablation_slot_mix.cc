/**
 * @file
 * Ablation: instruction-word slot mix. The paper picks 2:1 and 3:1
 * ALU:MEM shapes because the benchmarks' static ratio is about 2.5:1
 * (§3.1); this sweep holds the total width at 16 slots and varies the
 * memory-port share to show why. dyn4 / memory A / enlarged blocks.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: issue-word slot mix",
           "16-slot words, dyn4 / memory A / enlarged");

    Table table({"shape", "alu:mem", "nodes/cycle (mean)"});
    ExperimentRunner runner(envScale());
    for (int mem : {1, 2, 4, 6, 8}) {
        const IssueModel shape = customIssue(mem, 16 - mem);
        const MachineConfig config{Discipline::Dyn4, shape,
                                   memoryConfig('A'),
                                   BranchMode::Enlarged};
        table.addRow({shape.name(),
                      format("%.1f:1",
                             static_cast<double>(16 - mem) / mem),
                      format("%.3f", runner.meanNodesPerCycle(config))});
    }
    table.print(std::cout);
    std::cout << "\nThe knee should sit near the benchmarks' ~2.5:1 "
                 "static ALU:MEM ratio (paper §3.1).\n";
    return 0;
}
