/**
 * @file
 * Intra-block dependence DAG used by the static list scheduler and by
 * property tests. Edges:
 *
 *  - true (RAW) register dependencies;
 *  - WAR/WAW register dependencies (the static machine has no renaming
 *    hardware; the local renaming pass removes most of these first);
 *  - memory ordering between possibly-aliasing accesses, using the static
 *    disambiguation rule from §2.1: accesses with the same base register
 *    value and non-overlapping constant offsets provably do not alias;
 *    everything else is assumed to conflict;
 *  - full barriers around system calls.
 */

#ifndef FGP_TLD_DEPGRAPH_HH
#define FGP_TLD_DEPGRAPH_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/image.hh"

namespace fgp {

/**
 * Scheduling latency of one node: the cache-hit assumption every static
 * consumer of the dependence DAG shares — the greedy list scheduler, the
 * analyzer's dependence heights and the exact-schedule oracle
 * (analyze/oracle.hh). One definition so the models cannot drift.
 */
inline int
nodeLatency(const Node &node, int mem_hit_latency)
{
    return node.isLoad() ? mem_hit_latency : 1;
}

/** Dependence DAG over the nodes of one block. */
struct DepGraph
{
    /** preds[i] — indices of nodes that must execute before node i. */
    std::vector<std::vector<std::uint16_t>> preds;
    /** succs[i] — inverse adjacency. */
    std::vector<std::vector<std::uint16_t>> succs;

    std::size_t size() const { return preds.size(); }
};

/**
 * Proven no-alias facts for one block, as produced by an external memory
 * disambiguator (analyze/disambig.cc) and consumed by buildDepGraph: a
 * memory ordering edge between two nodes in this set is provably
 * unnecessary and is dropped. The set is a plain sorted pair list so tld
 * does not depend on the analyzer that computes it.
 */
struct MemDepFacts
{
    /** Packed no-alias node-index pairs, (lo << 16) | hi, sorted. */
    std::vector<std::uint32_t> noAliasPairs;

    static std::uint32_t
    packPair(std::uint16_t a, std::uint16_t b)
    {
        return a < b ? (static_cast<std::uint32_t>(a) << 16) | b
                     : (static_cast<std::uint32_t>(b) << 16) | a;
    }

    bool
    independent(std::uint16_t a, std::uint16_t b) const
    {
        return std::binary_search(noAliasPairs.begin(), noAliasPairs.end(),
                                  packPair(a, b));
    }

    bool empty() const { return noAliasPairs.empty(); }
};

/**
 * Build the dependence DAG for @p block.
 *
 * @param with_antideps include WAR/WAW register edges (true for the static
 *        machine; the dynamic machine renames in hardware).
 * @param facts optional proven no-alias pairs; memory ordering edges
 *        between proven-independent nodes are omitted. Register and
 *        syscall-barrier edges are never affected.
 */
DepGraph buildDepGraph(const ImageBlock &block, bool with_antideps,
                       const MemDepFacts *facts = nullptr);

/**
 * True when two memory nodes may reference overlapping bytes, using only
 * compile-time information. @p same_base_value tells whether the base
 * registers are known to hold the same value.
 */
bool mayAlias(const Node &a, const Node &b, bool same_base_value);

} // namespace fgp

#endif // FGP_TLD_DEPGRAPH_HH
