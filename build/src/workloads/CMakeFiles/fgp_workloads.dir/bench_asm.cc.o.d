src/workloads/CMakeFiles/fgp_workloads.dir/bench_asm.cc.o: \
 /root/repo/src/workloads/bench_asm.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/bench_asm.hh
