/**
 * @file
 * Ablation: contribution of each local re-optimization pass to enlarged
 * basic block performance (§2.3's "re-optimized as a unit"). dyn4 /
 * issue 8 / memory A, enlarged blocks.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: local optimizer passes",
           "dyn4 / issue 8 / memory A, enlarged blocks");


    struct Setting
    {
        const char *name;
        OptimizerOptions opts;
        bool disableAll;
    };
    const std::vector<Setting> settings = {
        {"none (concatenate only)", {}, true},
        {"propagate only", {true, false, false, false}, false},
        {"+ load elimination", {true, true, false, false}, false},
        {"+ local renaming", {true, true, true, false}, false},
        {"all passes", {true, true, true, true}, false},
    };

    // The dynamic machine renames in hardware, so software renaming
    // matters little there; the static machine cannot, so the passes
    // should buy much more (the paper re-optimizes for both).
    for (Discipline d : {Discipline::Dyn4, Discipline::Static}) {
        const MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                   BranchMode::Enlarged};
        Table table({"optimizer", "nodes/cycle (mean)", "vs. none"});
        double baseline = 0.0;
        for (const Setting &setting : settings) {
            TranslateOptions topts;
            topts.optimizeEnlarged = !setting.disableAll;
            topts.optimizer = setting.opts;

            ExperimentRunner runner(envScale());
            runner.setTranslateOptions(topts);
            const double npc = runner.meanNodesPerCycle(config);
            if (baseline == 0.0)
                baseline = npc;
            table.addRow({setting.name, format("%.3f", npc),
                          format("%+.1f%%",
                                 100.0 * (npc / baseline - 1.0))});
        }
        std::cout << disciplineName(d) << ":\n";
        table.print(std::cout);
        std::cout << "\n";
        }
    std::cout << "The paper's claim: combining blocks pays most when "
                 "the combined unit is re-optimized (artificial flow "
                 "dependencies removed, §2.3).\n";
    return 0;
}
