#include "branch/predictor.hh"

#include "base/logging.hh"

namespace fgp {

BranchPredictor::BranchPredictor(const PredictorOptions &opts)
    : opts_(opts), entries_(static_cast<std::size_t>(opts.btbEntries))
{
    fgp_assert(opts.btbEntries > 0, "BTB needs at least one entry");
    if (opts_.staticHint == StaticHint::Profile && !opts_.profileHints)
        fgp_fatal("profile static hints requested without a hint table");
    if (opts_.direction == DirectionPredictor::Gshare) {
        if (opts_.gshareBits < 4 || opts_.gshareBits > 24)
            fgp_fatal("gshare table bits must be in [4, 24], got ",
                      opts_.gshareBits);
        gshare_.assign(std::size_t{1} << opts_.gshareBits, 1);
        historyMask_ = (1u << opts_.gshareBits) - 1;
    }
}

std::size_t
BranchPredictor::gshareIndex(std::int32_t pc) const
{
    return (static_cast<std::uint32_t>(pc) ^ history_) & historyMask_;
}

BranchPredictor::BranchPredictor(int entries, bool static_supplement)
    : BranchPredictor([&] {
          PredictorOptions opts;
          opts.btbEntries = entries;
          opts.staticHint =
              static_supplement ? StaticHint::Btfn : StaticHint::None;
          return opts;
      }())
{
}

BranchPredictor::Entry &
BranchPredictor::entryFor(std::int32_t pc)
{
    return entries_[static_cast<std::size_t>(pc) % entries_.size()];
}

bool
BranchPredictor::staticPrediction(std::int32_t pc,
                                  std::int32_t target_pc) const
{
    switch (opts_.staticHint) {
      case StaticHint::None:
        return false;
      case StaticHint::Btfn:
        return target_pc < pc; // backward taken, forward not taken
      case StaticHint::Profile: {
        const auto it = opts_.profileHints->find(pc);
        if (it != opts_.profileHints->end())
            return it->second;
        return target_pc < pc; // fall back to BTFN off-profile
      }
    }
    return false;
}

bool
BranchPredictor::predictConditional(std::int32_t pc, std::int32_t target_pc)
{
    ++lookups_;
    if (opts_.direction == DirectionPredictor::Gshare)
        return gshare_[gshareIndex(pc)] >= 2;
    Entry &entry = entryFor(pc);
    if (entry.valid && entry.tag == pc)
        return entry.counter >= 2;
    ++cold_;
    return staticPrediction(pc, target_pc);
}

void
BranchPredictor::updateConditional(std::int32_t pc, bool taken)
{
    if (opts_.direction == DirectionPredictor::Gshare) {
        std::uint8_t &counter = gshare_[gshareIndex(pc)];
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        // Non-speculative history update (at resolution).
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
        return;
    }
    Entry &entry = entryFor(pc);
    if (!entry.valid || entry.tag != pc) {
        entry.valid = true;
        entry.tag = pc;
        entry.counter = taken ? 2 : 1;
        entry.lastTarget = -1;
        return;
    }
    if (taken) {
        if (entry.counter < 3)
            ++entry.counter;
    } else {
        if (entry.counter > 0)
            --entry.counter;
    }
}

std::int32_t
BranchPredictor::predictIndirect(std::int32_t pc)
{
    ++lookups_;
    Entry &entry = entryFor(pc);
    if (entry.valid && entry.tag == pc && entry.lastTarget >= 0)
        return entry.lastTarget;
    ++cold_;
    return -1;
}

void
BranchPredictor::updateIndirect(std::int32_t pc, std::int32_t target)
{
    Entry &entry = entryFor(pc);
    if (!entry.valid || entry.tag != pc) {
        entry.valid = true;
        entry.tag = pc;
        entry.counter = 2;
    }
    entry.lastTarget = target;
}

void
BranchPredictor::pushReturn(std::int32_t return_pc)
{
    if (opts_.rasDepth <= 0)
        return;
    if (static_cast<int>(ras_.size()) >= opts_.rasDepth)
        ras_.erase(ras_.begin()); // overflow drops the oldest entry
    ras_.push_back(return_pc);
}

std::int32_t
BranchPredictor::popReturn()
{
    if (opts_.rasDepth <= 0 || ras_.empty())
        return -1;
    const std::int32_t top = ras_.back();
    ras_.pop_back();
    return top;
}

void
BranchPredictor::exportStats(StatGroup &stats,
                             const std::string &prefix) const
{
    stats.set(prefix + "lookups", lookups_);
    stats.set(prefix + "resolved", resolved_);
    stats.set(prefix + "mispredicts", mispredicts_);
    stats.set(prefix + "cold", cold_);
    stats.setReal(prefix + "accuracy", accuracy());
}

} // namespace fgp
