/**
 * @file
 * The Node — one micro-operation. Nodes appear in two containers: the flat
 * Program produced by the assembler (targets are original instruction
 * indices) and the CodeImage produced by the translating loader (fault-node
 * targets are image block ids; branch/jump targets remain original
 * instruction indices and are mapped through the image's entry map at run
 * time).
 */

#ifndef FGP_IR_NODE_HH
#define FGP_IR_NODE_HH

#include <array>
#include <cstdint>

#include "ir/opcode.hh"

namespace fgp {

/** Register file shape: 32 architectural + 16 translator scratch. */
constexpr std::uint8_t kNumArchRegs = 32;
constexpr std::uint8_t kNumScratchRegs = 16;
constexpr std::uint8_t kNumRegs = kNumArchRegs + kNumScratchRegs;
constexpr std::uint8_t kRegNone = 0xff;

/** ABI register aliases. */
constexpr std::uint8_t kRegZero = 0;  ///< hardwired zero
constexpr std::uint8_t kRegV0 = 2;    ///< syscall number / result
constexpr std::uint8_t kRegV1 = 3;
constexpr std::uint8_t kRegA0 = 4;    ///< first argument
constexpr std::uint8_t kRegA1 = 5;
constexpr std::uint8_t kRegA2 = 6;
constexpr std::uint8_t kRegA3 = 7;
constexpr std::uint8_t kRegSp = 29;   ///< stack pointer
constexpr std::uint8_t kRegFp = 30;   ///< frame pointer
constexpr std::uint8_t kRegRa = 31;   ///< return address

/** One micro-operation. */
struct Node
{
    Opcode op = Opcode::ADD;
    std::uint8_t rd = kRegNone;  ///< destination register (kRegNone if none)
    std::uint8_t rs1 = kRegNone; ///< first source / base register
    std::uint8_t rs2 = kRegNone; ///< second source / store-data register
    std::int32_t imm = 0;        ///< immediate / address offset
    /**
     * Control target. For branches/jumps: original instruction index.
     * For fault nodes in a CodeImage: the fault-to image block id.
     * -1 when not applicable.
     */
    std::int32_t target = -1;
    /**
     * Original program counter (instruction index in the source Program)
     * this node derives from. Used as the branch-prediction and profiling
     * key so that enlarged copies share predictor state.
     */
    std::int32_t origPc = -1;

    bool isLoad() const { return fgp::isLoad(op); }
    bool isStore() const { return fgp::isStore(op); }
    bool isMem() const { return fgp::isMem(op); }
    bool isControl() const { return fgp::isControl(op); }
    bool isFault() const { return fgp::isFault(op); }
    bool isSys() const { return nodeClass(op) == NodeClass::Sys; }
    NodeClass cls() const { return nodeClass(op); }

    /**
     * Source registers of this node written into @p out; returns the count.
     * r0 reads are included (it always reads as zero). System calls read the
     * ABI argument registers.
     */
    int
    srcRegs(std::array<std::uint8_t, 5> &out) const
    {
        switch (opcodeInfo(op).form) {
          case OperandForm::RRR:
          case OperandForm::Branch:
          case OperandForm::FaultF:
            out[0] = rs1;
            out[1] = rs2;
            return 2;
          case OperandForm::RRI:
          case OperandForm::Load:
          case OperandForm::JumpReg:
            out[0] = rs1;
            return 1;
          case OperandForm::Store:
            out[0] = rs1;
            out[1] = rs2;
            return 2;
          case OperandForm::RI:
          case OperandForm::Jump:
          case OperandForm::JumpLink:
            return 0;
          case OperandForm::System:
            out[0] = kRegV0;
            out[1] = kRegA0;
            out[2] = kRegA1;
            out[3] = kRegA2;
            out[4] = kRegA3;
            return 5;
        }
        return 0;
    }

    /** Destination register, or kRegNone. System calls write v0. */
    std::uint8_t
    dstReg() const
    {
        if (op == Opcode::SYSCALL)
            return kRegV0;
        switch (opcodeInfo(op).form) {
          case OperandForm::RRR:
          case OperandForm::RRI:
          case OperandForm::RI:
          case OperandForm::Load:
          case OperandForm::JumpLink:
            return rd;
          default:
            return kRegNone;
        }
    }

    bool operator==(const Node &other) const = default;
};

} // namespace fgp

#endif // FGP_IR_NODE_HH
