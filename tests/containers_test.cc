/**
 * Engine container primitives (src/engine/containers.hh): whitebox
 * probe-chain fixtures and a model-based churn test for FlatHashMap32's
 * backward-shift deletion, plus ChainPool freelist-reuse edge cases.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/containers.hh"

namespace fgp {
namespace {

// Mirror of FlatHashMap32::slotFor at its initial capacity (64 slots,
// shift 25): lets the fixtures place keys into chosen probe clusters.
// Kept in sync with containers.hh by ClusterKeysShareAHomeSlot below.
std::size_t
homeSlot64(std::uint32_t key)
{
    return (key * 0x9e3779b1u) >> 25 & 63;
}

/** First @p n keys whose home is exactly @p slot (ascending). */
std::vector<std::uint32_t>
keysWithHome(std::size_t slot, std::size_t n)
{
    std::vector<std::uint32_t> keys;
    for (std::uint32_t k = 1; keys.size() < n && k < 1u << 20; ++k)
        if (homeSlot64(k) == slot)
            keys.push_back(k);
    return keys;
}

TEST(FlatHashMap, ClusterKeysShareAHomeSlot)
{
    // Guard for the whitebox mirror: three same-home keys inserted into
    // a fresh map occupy adjacent probe slots, so erasing the first one
    // must backward-shift the others (covered next). If slotFor ever
    // changes, this test fails first and points at homeSlot64.
    const std::vector<std::uint32_t> keys = keysWithHome(7, 3);
    ASSERT_EQ(keys.size(), 3u);
    for (std::uint32_t k : keys)
        EXPECT_EQ(homeSlot64(k), 7u);
}

TEST(FlatHashMap, EraseInsideAProbeChainKeepsFollowersReachable)
{
    const std::vector<std::uint32_t> keys = keysWithHome(11, 4);
    ASSERT_EQ(keys.size(), 4u);
    FlatHashMap32<int> map;
    for (std::size_t i = 0; i < keys.size(); ++i)
        map[keys[i]] = static_cast<int>(i + 1);

    // Erase the head of the cluster: every follower was displaced and
    // must be pulled back toward its home, or find() would stop at the
    // hole and lose them (the classic tombstone-free deletion bug).
    map.erase(keys[0]);
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.find(keys[0]), nullptr);
    for (std::size_t i = 1; i < keys.size(); ++i) {
        ASSERT_NE(map.find(keys[i]), nullptr) << "lost key " << keys[i];
        EXPECT_EQ(*map.find(keys[i]), static_cast<int>(i + 1));
    }

    // Erasing from the middle leaves the outer entries intact.
    map.erase(keys[2]);
    EXPECT_EQ(map.find(keys[2]), nullptr);
    ASSERT_NE(map.find(keys[1]), nullptr);
    ASSERT_NE(map.find(keys[3]), nullptr);
    EXPECT_EQ(*map.find(keys[3]), 4);
}

TEST(FlatHashMap, ProbeChainWrapsAroundTheTable)
{
    // Home the cluster at the last slot so the probe chain wraps to
    // slot 0; the backward shift's (j - home) & mask distance math must
    // treat the wrap correctly or the shift stops early.
    const std::vector<std::uint32_t> keys = keysWithHome(63, 4);
    ASSERT_EQ(keys.size(), 4u);
    FlatHashMap32<int> map;
    for (std::size_t i = 0; i < keys.size(); ++i)
        map[keys[i]] = static_cast<int>(100 + i);

    map.erase(keys[1]);
    map.erase(keys[0]);
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(keys[2]), nullptr);
    EXPECT_EQ(*map.find(keys[2]), 102);
    ASSERT_NE(map.find(keys[3]), nullptr);
    EXPECT_EQ(*map.find(keys[3]), 103);
}

TEST(FlatHashMap, ReinsertAfterEraseStartsFresh)
{
    FlatHashMap32<int> map;
    map[42] = 7;
    map.erase(42);
    EXPECT_EQ(map.find(42), nullptr);

    // operator[] recreates the slot default-constructed...
    EXPECT_EQ(map[42], 0);
    map.erase(42);
    // ...and getOrInsert re-applies its init value on the fresh slot.
    EXPECT_EQ(map.getOrInsert(42, 9), 9);
    // A second getOrInsert sees the existing slot and keeps its value.
    EXPECT_EQ(map.getOrInsert(42, 5), 9);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, EraseOfAbsentKeyIsANoOp)
{
    FlatHashMap32<int> map;
    map[1] = 1;
    map.erase(2);
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(1), nullptr);
}

TEST(FlatHashMap, ChurnMatchesReferenceModel)
{
    // Fixed-seed mixed insert/erase/find churn over a small key domain,
    // driven well past the rehash threshold and checked against
    // std::unordered_map after every operation. Clusters, wraps and
    // backward shifts all occur organically at this density.
    FlatHashMap32<std::uint32_t> map;
    std::unordered_map<std::uint32_t, std::uint32_t> model;
    std::uint32_t rng = 0x1234567u;
    const auto next = [&rng] {
        rng = rng * 1664525u + 1013904223u;
        return rng >> 8;
    };
    for (int op = 0; op < 20000; ++op) {
        const std::uint32_t key = next() % 512;
        switch (next() % 3) {
          case 0:
            map[key] = model[key] = next();
            break;
          case 1:
            map.erase(key);
            model.erase(key);
            break;
          default:
            break;
        }
        const auto it = model.find(key);
        const std::uint32_t *found = map.find(key);
        if (it == model.end()) {
            EXPECT_EQ(found, nullptr) << "op " << op << " key " << key;
        } else {
            ASSERT_NE(found, nullptr) << "op " << op << " key " << key;
            EXPECT_EQ(*found, it->second) << "op " << op;
        }
        ASSERT_EQ(map.size(), model.size()) << "op " << op;
    }
}

TEST(FlatHashMap, ClearRetainEmptiesButStaysUsable)
{
    FlatHashMap32<int> map;
    for (std::uint32_t k = 0; k < 100; ++k)
        map[k] = static_cast<int>(k);
    map.clearRetain();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(5), nullptr);
    map[5] = 50;
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(*map.find(5), 50);
}

// ---------------------------------------------------------------------------
// ChainPool freelist reuse.

TEST(ChainPool, AllocGrowsThenFreelistReusesLifo)
{
    ChainPool<int> pool;
    const std::uint32_t a = pool.alloc(1);
    const std::uint32_t b = pool.alloc(2);
    const std::uint32_t c = pool.alloc(3);
    EXPECT_EQ(pool.size(), 3u);

    pool.release(b);
    pool.release(a);
    // LIFO reuse: the most recently released slot comes back first, and
    // the arena high-water mark does not move.
    EXPECT_EQ(pool.alloc(20), a);
    EXPECT_EQ(pool.alloc(10), b);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_EQ(pool.at(a), 20);
    EXPECT_EQ(pool.at(b), 10);
    EXPECT_EQ(pool.at(c), 3);

    // Freelist exhausted: the next alloc extends the arena.
    EXPECT_EQ(pool.alloc(4), 3u);
    EXPECT_EQ(pool.size(), 4u);
}

TEST(ChainPool, ReusedSlotStartsUnlinked)
{
    // The freelist threads through the same next fields the chains use;
    // a recycled slot must come back with next == kNilIndex or a stale
    // freelist link would corrupt the chain it joins.
    ChainPool<int> pool;
    const std::uint32_t a = pool.alloc(1);
    const std::uint32_t b = pool.alloc(2);
    pool.setNext(a, b);
    pool.release(b);
    pool.release(a); // a's next now points into the freelist (b)

    const std::uint32_t r = pool.alloc(3);
    EXPECT_EQ(r, a);
    EXPECT_EQ(pool.next(r), kNilIndex);
}

TEST(ChainPool, ChainWalkSurvivesInterleavedReuse)
{
    // Build chain x -> y -> z, release an unrelated slot, alloc a new
    // element into the recycled slot, and verify the original chain is
    // untouched while the new slot links cleanly elsewhere.
    ChainPool<int> pool;
    const std::uint32_t spare = pool.alloc(0);
    const std::uint32_t x = pool.alloc(10);
    const std::uint32_t y = pool.alloc(11);
    const std::uint32_t z = pool.alloc(12);
    pool.setNext(x, y);
    pool.setNext(y, z);
    pool.release(spare);

    const std::uint32_t w = pool.alloc(13);
    EXPECT_EQ(w, spare);
    int sum = 0;
    for (std::uint32_t i = x; i != kNilIndex; i = pool.next(i))
        sum += pool.at(i);
    EXPECT_EQ(sum, 33);
    EXPECT_EQ(pool.next(w), kNilIndex);
}

TEST(ChainPool, ClearRetainResetsArenaAndFreelist)
{
    ChainPool<int> pool;
    pool.alloc(1);
    const std::uint32_t b = pool.alloc(2);
    pool.release(b);
    pool.clearRetain();
    EXPECT_EQ(pool.size(), 0u);
    // A cleared pool must not hand out stale freelist indices into the
    // emptied arena.
    EXPECT_EQ(pool.alloc(5), 0u);
    EXPECT_EQ(pool.at(0), 5);
}

} // namespace
} // namespace fgp
