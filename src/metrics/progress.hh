/**
 * @file
 * Live sweep progress reporting. A ProgressSink observes points as they
 * complete (from any worker thread); StreamProgress renders either a
 * single rewriting status line (interactive TTYs) or periodic JSONL
 * heartbeat records (logs, CI). Sinks are pure observers — attaching
 * one never changes a simulation (asserted by tests/metrics_test.cc).
 *
 * Policy helper makeStderrProgress(): FGP_PROGRESS=0 disables, any
 * other FGP_PROGRESS value forces reporting on, and when unset the
 * status line appears only if stderr is a TTY (so test and pipeline
 * output stays byte-identical).
 */

#ifndef FGP_METRICS_PROGRESS_HH
#define FGP_METRICS_PROGRESS_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace fgp::metrics {

/** Observer of sweep progress; all methods may race and must be safe. */
class ProgressSink
{
  public:
    virtual ~ProgressSink() = default;

    /** A sweep of @p total_points is starting. */
    virtual void beginSweep(std::size_t total_points) = 0;

    /**
     * One (workload, configuration) point finished. @p label names it
     * ("sort dyn4/8A/enlarged"), @p host_ns is the point's host wall
     * time, @p sim_cycles its simulated cycle count.
     */
    virtual void pointDone(std::string_view label, std::uint64_t host_ns,
                           std::uint64_t sim_cycles) = 0;

    /** The sweep finished (flush point). */
    virtual void endSweep() = 0;
};

/** TTY status line / JSONL heartbeat renderer. */
class StreamProgress : public ProgressSink
{
  public:
    struct Options
    {
        /** Rewriting \r status line (TTY) vs. JSONL heartbeat records. */
        bool statusLine = false;
        /** Minimum seconds between heartbeat records. */
        double heartbeatSeconds = 2.0;
        /** Minimum seconds between status-line redraws. */
        double minRedrawSeconds = 0.1;
    };

    explicit StreamProgress(std::ostream &os) : StreamProgress(os, Options()) {}
    StreamProgress(std::ostream &os, Options opts);

    void beginSweep(std::size_t total_points) override;
    void pointDone(std::string_view label, std::uint64_t host_ns,
                   std::uint64_t sim_cycles) override;
    void endSweep() override;

  private:
    using Clock = std::chrono::steady_clock;

    double elapsedSeconds() const;
    void render(bool final);

    std::mutex mu_;
    std::ostream &os_;
    Options opts_;

    std::size_t total_ = 0;
    std::size_t done_ = 0;
    std::uint64_t simCycles_ = 0;
    std::uint64_t hostNs_ = 0;
    std::uint64_t slowestNs_ = 0;
    std::string slowestLabel_;
    Clock::time_point start_;
    Clock::time_point lastEmit_;
};

/**
 * Stderr progress sink per the FGP_PROGRESS/TTY policy above; null when
 * reporting is off.
 */
std::unique_ptr<ProgressSink> makeStderrProgress();

} // namespace fgp::metrics

#endif // FGP_METRICS_PROGRESS_HH
