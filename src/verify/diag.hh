/**
 * @file
 * Typed diagnostics for the static verifier. Every finding carries a
 * stable code (asserted by tests and documented in docs/VERIFIER.md), a
 * severity and a location (image stage, block, node, original pc), so
 * that the negative-test suite can pin exact findings and the CLI can
 * render both human and machine-readable reports.
 */

#ifndef FGP_VERIFY_DIAG_HH
#define FGP_VERIFY_DIAG_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace fgp::verify {

/**
 * Stable diagnostic codes. The IMG/DF/BBE/EQ catalog lives in
 * docs/VERIFIER.md; the analyzer's AN family in docs/ANALYZER.md. Each
 * family's (id, name) strings are registered with registerCodes() — the
 * verifier families here in diag.cc, the AN family by src/analyze/lint.cc
 * — so adding a family never edits a switch in diag.cc.
 */
enum class Code : std::uint8_t {
    // IMG — structural image invariants.
    BlockIdMismatch,        ///< IMG001 block id does not match its index
    EmptyBlock,             ///< IMG002 block has no nodes
    EntryMapBroken,         ///< IMG003 entry map / entry block inconsistent
    NonTerminalControl,     ///< IMG004 control node not in terminal position
    BadTerminator,          ///< IMG005 terminator / fall-through shape illegal
    DanglingBranchTarget,   ///< IMG006 branch target is not a block entry
    DanglingFallthrough,    ///< IMG007 fall-through pc is not a block entry
    BadFaultTarget,         ///< IMG008 fault target is not a valid block id
    RegisterOutOfRange,     ///< IMG009 register index outside the file
    OperandFormViolation,   ///< IMG010 operand fields illegal for the form
    WordPackingBroken,      ///< IMG011 issue words are not a valid packing
    NoExitPath,             ///< IMG012 block cannot exit (no term/fall/sys)
    BlockFlagMismatch,      ///< IMG013 block metadata flags inconsistent

    // DF — dataflow (def-before-use).
    ScratchReadBeforeWrite, ///< DF001 scratch register read before block def
    MaybeUninitRead,        ///< DF002 arch register may be read uninitialized

    // BBE — enlargement invariants.
    FaultOutsideEnlarged,   ///< BBE001 fault node in a non-enlarged block
    CompanionEntryReachable,///< BBE002 entry map routes into a companion
    CompanionFaultNotMutual,///< BBE003 primary/companion fault edges broken
    InstanceCapExceeded,    ///< BBE004 >max instances of an original block
    ChainPlanBroken,        ///< BBE005 plan chain inconsistent with image

    // EQ — transform-soundness (symbolic summary comparison).
    RegisterEffectMismatch, ///< EQ001 live-out register effects differ
    MemoryEffectMismatch,   ///< EQ002 memory write effects differ
    ControlEffectMismatch,  ///< EQ003 exit control effects differ
    FaultGuardMismatch,     ///< EQ004 fault guard is not the cold-arc test
    ImageShapeMismatch,     ///< EQ005 compared images differ structurally

    // AN — static ILP analyzer lint (registered by src/analyze/lint.cc).
    SerializingFalseDep,    ///< AN001 WAR the renamer can't kill is critical
    DeadDefSurvives,        ///< AN002 dead definition survives in the block
    UnprofitableChain,      ///< AN003 fused chain gains no dependence height
    ForwardingDefeated,     ///< AN004 store-load pair defeats forwarding
    UnreachableBlock,       ///< AN005 block unreachable from the entry
    UnusedLabel,            ///< AN006 code label never targeted
    HighMayAliasDensity,    ///< AN007 block dominated by may-alias pairs
    PackedDisjointPair,     ///< AN008 disjoint store/load packed in one word
    GreedyScheduleGap,      ///< AN009 greedy schedule beats oracle by >= N
    OracleBudgetExhausted,  ///< AN010 oracle budget out, interval reported

    // MD — static memory disambiguation (src/analyze/disambig.cc).
    NoAliasViolated,        ///< MD001 proven no-alias pair conflicted at runtime
    DisambigFactsStale,     ///< MD002 facts do not match the simulated image
};

/** Registered strings of one code: stable id + kebab-case slug. */
struct CodeInfo
{
    std::string_view id;   ///< e.g. "IMG006"
    std::string_view name; ///< e.g. "dangling-branch-target"
};

/**
 * Register one family's (code -> id, name) strings. Called from static
 * initializers of the TU owning the family; re-registering a code with
 * identical strings is a no-op, conflicting strings are fatal.
 */
void registerCodes(
    std::initializer_list<std::pair<Code, CodeInfo>> codes);

/** Stable short id, e.g. "IMG006" ("???" when unregistered). */
std::string_view codeId(Code code);

/** Kebab-case slug, e.g. "dangling-branch-target". */
std::string_view codeName(Code code);

enum class Severity : std::uint8_t { Warning, Error };

std::string_view severityName(Severity severity);

/** One finding. */
struct Diagnostic
{
    Code code;
    Severity severity = Severity::Error;
    std::string stage;        ///< image stage: "single", "enlarged", ...
    std::int32_t block = -1;  ///< image block id, -1 when not block-scoped
    std::int32_t node = -1;   ///< node index within the block, -1 if n/a
    std::int32_t origPc = -1; ///< original instruction index, -1 if n/a
    std::string message;

    /** One human-readable line: "IMG006 error [single] block 3 ...". */
    std::string render() const;
};

/** Accumulated findings of one verification run. */
class Report
{
  public:
    void
    add(Diagnostic diag)
    {
        diags_.push_back(std::move(diag));
    }

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    std::size_t errorCount() const;
    std::size_t warningCount() const;
    bool clean() const { return errorCount() == 0; }

    bool hasCode(Code code) const { return countOf(code) > 0; }
    std::size_t countOf(Code code) const;

    /** All findings, one render() line each. */
    std::string renderText() const;

  private:
    std::vector<Diagnostic> diags_;
};

/** Compose-and-add helper used throughout the checkers. */
template <typename... Args>
void
addDiag(Report &report, Code code, Severity severity, std::string_view stage,
        std::int32_t block, std::int32_t node, std::int32_t orig_pc,
        Args &&...message_parts)
{
    Diagnostic diag;
    diag.code = code;
    diag.severity = severity;
    diag.stage = std::string(stage);
    diag.block = block;
    diag.node = node;
    diag.origPc = orig_pc;
    diag.message =
        fgp::detail::composeMessage(std::forward<Args>(message_parts)...);
    report.add(std::move(diag));
}

} // namespace fgp::verify

#endif // FGP_VERIFY_DIAG_HH
