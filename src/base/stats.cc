#include "base/stats.hh"

#include <iomanip>

namespace fgp {

void
StatGroup::set(const std::string &name, std::uint64_t value)
{
    ints_[name] = value;
}

void
StatGroup::setReal(const std::string &name, double value)
{
    reals_[name] = value;
}

void
StatGroup::add(const std::string &name, std::uint64_t delta)
{
    ints_[name] += delta;
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    const auto it = ints_.find(name);
    return it == ints_.end() ? 0 : it->second;
}

double
StatGroup::getReal(const std::string &name) const
{
    const auto it = reals_.find(name);
    if (it != reals_.end())
        return it->second;
    return static_cast<double>(get(name));
}

bool
StatGroup::has(const std::string &name) const
{
    return ints_.count(name) || reals_.count(name);
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const auto &[name, value] : other.ints_)
        ints_[name] += value;
    for (const auto &[name, value] : other.reals_)
        reals_[name] = value;
}

void
StatGroup::print(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[name, value] : ints_)
        os << prefix << name << " " << value << "\n";
    for (const auto &[name, value] : reals_)
        os << prefix << name << " " << std::setprecision(6) << value << "\n";
}

} // namespace fgp
