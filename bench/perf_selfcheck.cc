/**
 * @file
 * Simulator-performance self-check: times a fixed slice of the sweep and
 * emits a machine-readable JSON record (wall time, simulations/second,
 * host nanoseconds per simulated cycle). The slice is a deterministic
 * configuration mix exercising all four disciplines, both cache and flat
 * memory, and every branch mode, so its wall time tracks the hot paths
 * the real figure benches spend their time in.
 *
 * Knobs:
 *   FGP_JOBS         worker threads (default: hardware concurrency)
 *   FGP_SCALE        input scale (default 1.0)
 *   FGP_BENCH_OUT    output path for the JSON record (or --out <path>;
 *                    default BENCH_engine.json in the working directory)
 *   FGP_RUN_MANIFEST write the full fgpsim-run-v1 manifest here
 *                    (or --manifest <path>) for `fgpsim compare`
 *   --append <path>  append this run's fgpsim-run-v1 record to a history
 *                    file (BENCH_history.jsonl) — one line per run, so
 *                    the perf trajectory accumulates across commits
 *   --reduced        quarter-size slice for CI smoke runs
 */

#include <chrono>
#include <cstring>
#include <ctime>
#include <fstream>

#include "base/strutil.hh"
#include "bench/fig_common.hh"
#include "metrics/manifest.hh"

using namespace fgp;
using namespace fgp::bench;

int
main(int argc, char **argv)
{
    detail::setQuiet(true);

    std::string out_path = "BENCH_engine.json";
    if (const char *env = std::getenv("FGP_BENCH_OUT"))
        out_path = env;
    std::string manifest_path;
    std::string history_path;
    bool reduced = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc)
            manifest_path = argv[++i];
        else if (std::strcmp(argv[i], "--append") == 0 && i + 1 < argc)
            history_path = argv[++i];
        else if (std::strcmp(argv[i], "--reduced") == 0)
            reduced = true;
    }

    const int jobs = sweepJobs();
    const double scale = envScale();
    banner("Perf self-check",
           format("simulator wall-time slice (jobs=%d, scale=%.2f)", jobs,
                  scale));

    // Fixed slice: every discipline x {flat A, cached G} x every branch
    // mode (perfect only where it is defined, i.e. dynamic disciplines).
    std::vector<MachineConfig> configs;
    for (Discipline d : allDisciplines()) {
        for (char mc : {'A', 'G'}) {
            for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged})
                configs.push_back(
                    {d, issueModel(8), memoryConfig(mc), bm});
            if (isDynamic(d) && d != Discipline::Dyn1)
                configs.push_back({d, issueModel(8), memoryConfig(mc),
                                   BranchMode::Perfect});
        }
    }
    if (reduced) {
        // CI smoke slice: drop the slowest discipline and cut the rest.
        std::vector<MachineConfig> cut;
        for (const MachineConfig &c : configs)
            if (c.discipline != Discipline::Dyn256 && c.memory.letter == 'A')
                cut.push_back(c);
        configs = cut;
    }

    ExperimentRunner runner(scale);

    std::vector<SweepPoint> points;
    for (const std::string &workload : workloadNames())
        for (const MachineConfig &config : configs)
            points.push_back({workload, config});

    // Preparation (profile + reference runs) is one-time setup shared by
    // every figure bench; the timed region is the simulations proper.
    for (const std::string &workload : workloadNames())
        runner.referenceNodes(workload);

    // The recorder is created after preparation so its wall clock spans
    // only the timed sweep — the manifest's wall_seconds then gates the
    // same region the printed numbers describe.
    RunRecorder recorder(reduced ? "perf_selfcheck_reduced"
                                 : "perf_selfcheck",
                         &runner);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<ExperimentResult> results =
        runSweep(runner, points, 0, recorder.progress());
    const auto end = std::chrono::steady_clock::now();
    recorder.record(results);

    const double wall =
        std::chrono::duration<double>(end - start).count();
    std::uint64_t sim_cycles = 0;
    for (const ExperimentResult &r : results)
        sim_cycles += r.cycles;
    const double sims_per_sec =
        wall > 0.0 ? static_cast<double>(results.size()) / wall : 0.0;
    const double host_ns_per_cycle =
        sim_cycles ? wall * 1e9 / static_cast<double>(sim_cycles) : 0.0;

    std::cout << format("  simulations      : %zu\n", results.size())
              << format("  wall time        : %.3f s\n", wall)
              << format("  sims/second      : %.2f\n", sims_per_sec)
              << format("  simulated cycles : %llu\n",
                        static_cast<unsigned long long>(sim_cycles))
              << format("  host ns/sim cycle: %.1f\n", host_ns_per_cycle);

    const std::int64_t now =
        static_cast<std::int64_t>(std::time(nullptr));
    std::ofstream json(out_path);
    if (!json)
        fgp_fatal("cannot write ", out_path);
    json << "{\n"
         << format("  \"bench\": \"perf_selfcheck%s\",\n",
                   reduced ? "_reduced" : "")
         << format("  \"git\": \"%s\",\n",
                   metrics::jsonEscape(metrics::gitDescribe()).c_str())
         << format("  \"timestamp\": %lld,\n",
                   static_cast<long long>(now))
         << format("  \"iso_time\": \"%s\",\n",
                   metrics::isoTime(now).c_str())
         << format("  \"jobs\": %d,\n", jobs)
         << format("  \"scale\": %.4f,\n", scale)
         << format("  \"sims\": %zu,\n", results.size())
         << format("  \"wall_seconds\": %.4f,\n", wall)
         << format("  \"sims_per_sec\": %.4f,\n", sims_per_sec)
         << format("  \"sim_cycles\": %llu,\n",
                   static_cast<unsigned long long>(sim_cycles))
         << format("  \"host_ns_per_sim_cycle\": %.4f\n", host_ns_per_cycle)
         << "}\n";
    std::cout << "\nwrote " << out_path << "\n";

    if (!manifest_path.empty()) {
        std::ofstream manifest(manifest_path);
        if (!manifest)
            fgp_fatal("cannot write ", manifest_path);
        recorder.writeManifest(manifest);
        std::cout << "wrote " << manifest_path << "\n";
    }
    finishRun(recorder); // honors FGP_RUN_MANIFEST
    if (!history_path.empty()) {
        recorder.appendHistory(history_path);
        std::cout << "appended run record to " << history_path << "\n";
    }
    return 0;
}
