/**
 * @file
 * Dynamic branch prediction (§3.1): a branch target buffer of 2-bit
 * saturating counters, optionally supplemented by static prediction for
 * branches not present in the BTB — the paper uses static information
 * "only the first time a branch is encountered". The BTB also records the
 * last target of indirect jumps (JR); an optional return-address stack
 * (an extension over the paper) can take over return prediction.
 */

#ifndef FGP_BRANCH_PREDICTOR_HH
#define FGP_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "base/stats.hh"
#include "branch/predictor_opts.hh"

namespace fgp {

/** 2-bit-counter BTB predictor with optional static hints and RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorOptions &opts = {});

    /** Compatibility constructor (entries + BTFN flag). */
    BranchPredictor(int entries, bool static_supplement);

    /**
     * Predict the direction of the conditional branch at original pc
     * @p pc whose taken-target is @p target_pc.
     */
    bool predictConditional(std::int32_t pc, std::int32_t target_pc);

    /** Train with the resolved direction. */
    void updateConditional(std::int32_t pc, bool taken);

    /** Predict an indirect target; -1 when no history exists. */
    std::int32_t predictIndirect(std::int32_t pc);

    /** Train with the resolved indirect target. */
    void updateIndirect(std::int32_t pc, std::int32_t target);

    /**
     * Call-stack hooks for the return-address stack. No-ops when the
     * RAS is disabled. pushReturn() is called at fetch of a JAL with its
     * return address; popReturn() at fetch of a JR (-1 when empty).
     */
    void pushReturn(std::int32_t return_pc);
    std::int32_t popReturn();
    bool rasEnabled() const { return opts_.rasDepth > 0; }

    /** Record accuracy of a resolved conditional prediction. */
    void
    recordOutcome(bool correct)
    {
        ++resolved_;
        if (!correct)
            ++mispredicts_;
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t resolved() const { return resolved_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    std::uint64_t coldLookups() const { return cold_; }

    double
    accuracy() const
    {
        return resolved_ ? 1.0 - static_cast<double>(mispredicts_) /
                                     static_cast<double>(resolved_)
                         : 1.0;
    }

    void exportStats(StatGroup &stats, const std::string &prefix) const;

  private:
    struct Entry
    {
        bool valid = false;
        std::int32_t tag = -1;
        std::uint8_t counter = 1; ///< 0..3; >=2 predicts taken
        std::int32_t lastTarget = -1;
    };

    Entry &entryFor(std::int32_t pc);
    bool staticPrediction(std::int32_t pc, std::int32_t target_pc) const;

    PredictorOptions opts_;
    std::vector<Entry> entries_;
    std::vector<std::int32_t> ras_;

    // gshare state (extension): counters indexed by pc ^ history.
    std::vector<std::uint8_t> gshare_;
    std::uint32_t history_ = 0;
    std::uint32_t historyMask_ = 0;

    std::size_t gshareIndex(std::int32_t pc) const;

    std::uint64_t lookups_ = 0;
    std::uint64_t resolved_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t cold_ = 0;
};

} // namespace fgp

#endif // FGP_BRANCH_PREDICTOR_HH
