file(REMOVE_RECURSE
  "CMakeFiles/window_metrics.dir/window_metrics.cc.o"
  "CMakeFiles/window_metrics.dir/window_metrics.cc.o.d"
  "window_metrics"
  "window_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
