# Empty dependencies file for fgp_memsys.
# This may be replaced when dependencies are built.
