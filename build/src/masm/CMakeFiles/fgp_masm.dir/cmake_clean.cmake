file(REMOVE_RECURSE
  "CMakeFiles/fgp_masm.dir/assembler.cc.o"
  "CMakeFiles/fgp_masm.dir/assembler.cc.o.d"
  "libfgp_masm.a"
  "libfgp_masm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_masm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
