/**
 * @file
 * Branch prediction configuration. The paper's baseline is a 2-bit
 * counter BTB with a static supplement on cold branches; the conclusions
 * single out "better branch prediction" as the first unexplored avenue,
 * so the predictor also supports two extensions beyond the 1991 baseline:
 * profile-derived static hints and a return-address stack.
 */

#ifndef FGP_BRANCH_PREDICTOR_OPTS_HH
#define FGP_BRANCH_PREDICTOR_OPTS_HH

#include <cstdint>
#include <unordered_map>

#include "arch/config.hh"

namespace fgp {

/** What to predict for a conditional branch missing from the BTB. */
enum class StaticHint : std::uint8_t {
    None,    ///< always predict not-taken
    Btfn,    ///< backward taken, forward not taken (paper baseline)
    Profile, ///< profile-derived per-branch hints (extension)
};

/** Conditional direction predictor organization. */
enum class DirectionPredictor : std::uint8_t {
    TwoBitBtb, ///< tagged BTB of 2-bit counters (paper baseline)
    Gshare,    ///< global-history-xor-pc counter table (extension)
};

/** Predictor configuration. */
struct PredictorOptions
{
    int btbEntries = kBtbEntries;
    StaticHint staticHint = StaticHint::Btfn;

    /** Direction predictor organization. */
    DirectionPredictor direction = DirectionPredictor::TwoBitBtb;

    /** log2 of the gshare table size (history length matches). */
    int gshareBits = 12;

    /**
     * Profile hints: branch pc -> taken-is-hot. Consulted only for
     * branches absent from the BTB and only when staticHint == Profile.
     */
    const std::unordered_map<std::int32_t, bool> *profileHints = nullptr;

    /**
     * Return-address-stack depth for JR prediction; 0 keeps the paper's
     * last-target BTB scheme. (Extension: alternating call sites defeat
     * a last-target predictor completely.)
     */
    int rasDepth = 0;
};

} // namespace fgp

#endif // FGP_BRANCH_PREDICTOR_OPTS_HH
