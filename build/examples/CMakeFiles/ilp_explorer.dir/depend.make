# Empty dependencies file for ilp_explorer.
# This may be replaced when dependencies are built.
