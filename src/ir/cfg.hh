/**
 * @file
 * Control-flow graph construction: chops a flat Program into single basic
 * blocks, producing the baseline CodeImage that the translating loader and
 * the enlargement pass operate on.
 */

#ifndef FGP_IR_CFG_HH
#define FGP_IR_CFG_HH

#include "ir/image.hh"
#include "ir/program.hh"

namespace fgp {

/**
 * Build the single-basic-block CodeImage of @p prog.
 *
 * Leaders are: the entry point, every control-transfer target, and every
 * instruction following a control node (which covers subroutine return
 * sites after JAL). Issue words are left empty; the translating loader
 * fills them per machine configuration.
 */
CodeImage buildCfg(const Program &prog);

} // namespace fgp

#endif // FGP_IR_CFG_HH
