/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * cache directory, branch predictor, sparse memory, assembler, the
 * functional VM and the cycle engine itself (simulation throughput in
 * nodes/second).
 */

#include <benchmark/benchmark.h>

#include "base/logging.hh"
#include "base/rng.hh"
#include "bbe/enlarge.hh"
#include "branch/predictor.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "memsys/memsys.hh"
#include "tld/translate.hh"
#include "vm/interp.hh"
#include "vm/memory.hh"
#include "workloads/workloads.hh"

namespace {

using namespace fgp;

void
BM_CacheAccess(benchmark::State &state)
{
    CacheDirectory cache(16 * 1024, 2, 16);
    Rng rng(1);
    std::vector<std::uint32_t> addrs(4096);
    for (auto &addr : addrs)
        addr = static_cast<std::uint32_t>(rng.below(1 << 18));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i], true));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorLookup(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(2);
    std::vector<std::int32_t> pcs(1024);
    for (auto &pc : pcs)
        pc = static_cast<std::int32_t>(rng.below(4096));
    std::size_t i = 0;
    for (auto _ : state) {
        const std::int32_t pc = pcs[i];
        const bool taken = bp.predictConditional(pc, pc - 10);
        bp.updateConditional(pc, !taken);
        i = (i + 1) & 1023;
    }
}
BENCHMARK(BM_PredictorLookup);

void
BM_SparseMemoryRead32(benchmark::State &state)
{
    SparseMemory mem;
    for (std::uint32_t a = 0; a < 1 << 16; a += 4)
        mem.write32(kDataBase + a, a);
    std::uint32_t addr = kDataBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.read32(addr));
        addr = kDataBase + ((addr + 4) & 0xffff);
    }
}
BENCHMARK(BM_SparseMemoryRead32);

void
BM_AssembleGrep(benchmark::State &state)
{
    for (auto _ : state) {
        const Workload wl = makeWorkload("grep");
        benchmark::DoNotOptimize(wl.program().instrs.size());
    }
}
BENCHMARK(BM_AssembleGrep);

void
BM_VmInterpret(benchmark::State &state)
{
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);
    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        const RunResult r = interpret(wl.program(), os);
        nodes += r.dynamicNodes;
    }
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInterpret);

void
BM_EngineDyn4(benchmark::State &state)
{
    detail::setQuiet(true);
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);
    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    CodeImage image = buildCfg(wl.program());
    translate(image, config);

    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);
        nodes += r.retiredNodes;
    }
    state.counters["sim_nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineDyn4);

void
BM_EngineDyn256Enlarged(benchmark::State &state)
{
    detail::setQuiet(true);
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);

    Profile profile;
    {
        SimOS os;
        wl.prepareOs(os, InputSet::Profile);
        InterpOptions opts;
        opts.profile = &profile;
        interpret(wl.program(), os, opts);
    }
    const MachineConfig config{Discipline::Dyn256, issueModel(8),
                               memoryConfig('A'), BranchMode::Enlarged};
    CodeImage image = enlarge(buildCfg(wl.program()), profile);
    translate(image, config);

    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);
        nodes += r.retiredNodes;
    }
    state.counters["sim_nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineDyn256Enlarged);

} // namespace

BENCHMARK_MAIN();
