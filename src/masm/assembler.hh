/**
 * @file
 * Two-pass assembler for the micro-op ISA.
 *
 * Syntax overview:
 *
 *     # comment (also ';')
 *             .data
 *     msg:    .asciiz "hello\n"
 *     tbl:    .word 1, 2, 3
 *     buf:    .space 64
 *             .align 4
 *             .text
 *     main:   la   a0, msg
 *             li   v0, 4
 *             syscall
 *             beqz r8, done
 *             call helper
 *     done:   li   v0, 0
 *             syscall            # exit
 *
 * Registers: r0..r31 plus aliases zero, v0, v1, a0..a3, sp, fp, ra.
 * Immediates: decimal, 0x hex, 0b binary, character literals ('a', '\n').
 * Data labels may be used as immediates, optionally with "+offset".
 *
 * Pseudo-instructions (each expands to exactly one node):
 *     li rd, imm      -> addi rd, zero, imm
 *     la rd, label    -> addi rd, zero, <address>
 *     mov rd, rs      -> addi rd, rs, 0
 *     nop             -> addi zero, zero, 0
 *     not rd, rs      -> xori rd, rs, -1
 *     neg rd, rs      -> sub rd, zero, rs
 *     b label         -> j label
 *     beqz/bnez/bltz/bgez rs, label
 *     bgt/ble/bgtu/bleu rs1, rs2, label (operand swap)
 *     call label      -> jal label
 *     ret             -> jr ra
 */

#ifndef FGP_MASM_ASSEMBLER_HH
#define FGP_MASM_ASSEMBLER_HH

#include <string_view>

#include "ir/program.hh"

namespace fgp {

/**
 * Assemble @p source into a Program. Throws FatalError with "line N:"
 * diagnostics on malformed input. The result passes validateProgram().
 *
 * @param source Assembly text.
 * @param name   Name used in diagnostics (e.g. the benchmark name).
 */
Program assemble(std::string_view source, std::string_view name = "<asm>");

} // namespace fgp

#endif // FGP_MASM_ASSEMBLER_HH
