file(REMOVE_RECURSE
  "CMakeFiles/fgp_arch.dir/config.cc.o"
  "CMakeFiles/fgp_arch.dir/config.cc.o.d"
  "libfgp_arch.a"
  "libfgp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
