/**
 * Structured program fuzzer: generates random — but terminating by
 * construction — programs with counted loops, data-dependent branches,
 * subroutine calls and memory traffic, then checks that the cycle engine
 * reproduces the functional VM's architectural results across machine
 * configurations (with and without enlargement).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"
#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "verify/equiv.hh"
#include "verify/verify.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

/**
 * Build a random program. Structure: a few counted outer loops, each
 * containing random straight-line work, a data-dependent diamond and
 * optionally a call to one of a few generated leaf subroutines. The
 * result register mix is dumped to memory and summarized in the exit
 * code.
 */
std::string
randomProgram(Rng &rng)
{
    std::string text;
    auto reg = [&](int lo, int hi) {
        return "r" + std::to_string(rng.range(lo, hi));
    };
    auto emit_work = [&](int count) {
        for (int i = 0; i < count; ++i) {
            switch (rng.below(9)) {
              case 0:
                text += "        li " + reg(8, 15) + ", " +
                        std::to_string(rng.range(-64, 64)) + "\n";
                break;
              case 1:
                text += "        add " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 2:
                text += "        sub " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 3:
                text += "        mul " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 4:
                text += "        xori " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + std::to_string(rng.range(0, 255)) + "\n";
                break;
              case 5:
                text += "        andi " + reg(8, 15) + ", " + reg(8, 15) +
                        ", 1023\n";
                break;
              case 6: {
                // Bounded random memory access within the scratch array.
                const std::string r = reg(8, 15);
                text += "        andi r16, " + r + ", 252\n";
                text += "        add  r16, r16, r28\n";
                text += "        lw   " + reg(8, 15) + ", 0(r16)\n";
                break;
              }
              case 7: {
                const std::string r = reg(8, 15);
                text += "        andi r17, " + r + ", 252\n";
                text += "        add  r17, r17, r28\n";
                text += "        sw   " + reg(8, 15) + ", 0(r17)\n";
                break;
              }
              case 8:
                text += "        srai " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + std::to_string(rng.range(0, 7)) + "\n";
                break;
            }
        }
    };

    const int num_funcs = static_cast<int>(rng.range(1, 3));
    const int num_loops = static_cast<int>(rng.range(1, 3));

    text += "main:   la   r28, scratch\n";
    for (int loop = 0; loop < num_loops; ++loop) {
        const std::string counter = "r" + std::to_string(20 + loop);
        const std::string label = "oloop" + std::to_string(loop);
        text += "        li   " + counter + ", " +
                std::to_string(rng.range(3, 24)) + "\n";
        text += label + ":\n";
        emit_work(static_cast<int>(rng.range(1, 6)));

        // Data-dependent diamond.
        const std::string skip = label + "_skip";
        const std::string join = label + "_join";
        text += "        andi r18, " + reg(8, 15) + ", " +
                std::to_string(1 + rng.below(7)) + "\n";
        text += "        beqz r18, " + skip + "\n";
        emit_work(static_cast<int>(rng.range(1, 4)));
        if (rng.chance(1, 2))
            text += "        jal  fn" +
                    std::to_string(rng.below(
                        static_cast<std::uint64_t>(num_funcs))) +
                    "\n";
        text += "        j    " + join + "\n";
        text += skip + ":\n";
        emit_work(static_cast<int>(rng.range(1, 3)));
        text += join + ":\n";

        text += "        addi " + counter + ", " + counter + ", -1\n";
        text += "        bnez " + counter + ", " + label + "\n";
    }

    // Summarize every register into the exit code.
    text += "        li   r19, 0\n";
    for (int r = 8; r <= 15; ++r)
        text += "        add  r19, r19, r" + std::to_string(r) + "\n";
    text += "        andi a0, r19, 0x7f\n";
    text += "        li   v0, 0\n";
    text += "        syscall\n";

    for (int f = 0; f < num_funcs; ++f) {
        text += "fn" + std::to_string(f) + ":\n";
        emit_work(static_cast<int>(rng.range(1, 4)));
        text += "        ret\n";
    }

    text += "        .data\nscratch: .space 512\n";
    return text;
}

TEST(Fuzz, EngineMatchesVmOnRandomPrograms)
{
    Rng rng(0xc0ffee);
    const std::vector<MachineConfig> configs = {
        {Discipline::Static, issueModel(4), memoryConfig('A'),
         BranchMode::Single},
        {Discipline::Dyn1, issueModel(8), memoryConfig('D'),
         BranchMode::Single},
        {Discipline::Dyn4, issueModel(8), memoryConfig('G'),
         BranchMode::Single},
        {Discipline::Dyn256, issueModel(8), memoryConfig('A'),
         BranchMode::Single},
    };

    for (int trial = 0; trial < 25; ++trial) {
        const std::string source = randomProgram(rng);
        Program prog;
        try {
            prog = assemble(source, "fuzz");
        } catch (const FatalError &err) {
            FAIL() << "generator produced invalid assembly: " << err.what()
                   << "\n"
                   << source;
        }

        SimOS vm_os;
        const RunResult ref = interpret(prog, vm_os);
        ASSERT_TRUE(ref.exited) << source;

        for (const MachineConfig &config : configs) {
            CodeImage image = buildCfg(prog);
            translate(image, config);
            SimOS os;
            EngineOptions opts;
            opts.config = config;
            const EngineResult r = simulate(image, os, opts);
            ASSERT_EQ(r.exitCode, ref.exitCode)
                << "trial " << trial << " config " << config.name() << "\n"
                << source;
            ASSERT_EQ(r.retiredNodes, ref.dynamicNodes)
                << "trial " << trial << " config " << config.name();
        }
    }
}

TEST(Fuzz, EnlargedImagesMatchVmOnRandomPrograms)
{
    Rng rng(0xfacade);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string source = randomProgram(rng);
        const Program prog = assemble(source, "fuzz-en");

        SimOS vm_os;
        const RunResult ref = interpret(prog, vm_os);

        Profile profile;
        {
            SimOS os;
            InterpOptions opts;
            opts.profile = &profile;
            interpret(prog, os, opts);
        }
        EnlargeOptions eopts;
        eopts.minArcCount = 4;
        eopts.minArcRatio = 0.55;
        const CodeImage enlarged =
            enlarge(buildCfg(prog), profile, eopts);

        for (Discipline d :
             {Discipline::Static, Discipline::Dyn4, Discipline::Dyn256}) {
            CodeImage image = enlarged;
            const MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                       BranchMode::Enlarged};
            translate(image, config);
            SimOS os;
            EngineOptions opts;
            opts.config = config;
            const EngineResult r = simulate(image, os, opts);
            ASSERT_EQ(r.exitCode, ref.exitCode)
                << "trial " << trial << " " << config.name() << "\n"
                << source;
        }
    }
}

TEST(Fuzz, VerifierAcceptsGeneratedImages)
{
    // Every image the pipeline produces from a generated program — single,
    // enlarged and translated — must verify clean, and the transforms must
    // prove sound against their inputs.
    Rng rng(0xbeefed);
    const MachineConfig config = parseMachineConfig("dyn4/8A/enlarged");
    for (int trial = 0; trial < 10; ++trial) {
        const std::string source = randomProgram(rng);
        const Program prog = assemble(source, "fuzz-verify");
        const CodeImage single = buildCfg(prog);
        const verify::Report sreport = verify::verifyImage(single);
        ASSERT_TRUE(sreport.clean())
            << "trial " << trial << "\n" << sreport.renderText() << source;

        Profile profile;
        {
            SimOS os;
            InterpOptions opts;
            opts.profile = &profile;
            interpret(prog, os, opts);
        }
        EnlargeOptions eopts;
        eopts.minArcCount = 4;
        eopts.minArcRatio = 0.55;
        const EnlargePlan plan = planEnlargement(single, profile, eopts);
        const CodeImage enlarged = applyEnlargement(single, plan);
        verify::Report ereport = verify::verifyImage(enlarged);
        verify::checkEnlargementSoundness(single, enlarged, plan, ereport,
                                          eopts.maxInstances);
        ASSERT_TRUE(ereport.clean())
            << "trial " << trial << "\n" << ereport.renderText() << source;

        CodeImage translated = enlarged;
        translate(translated, config);
        verify::VerifyOptions vopts;
        vopts.issue = &config.issue;
        verify::Report treport = verify::verifyImage(translated, vopts);
        verify::checkTranslationSoundness(enlarged, translated, treport);
        ASSERT_TRUE(treport.clean())
            << "trial " << trial << "\n" << treport.renderText() << source;
    }
}

TEST(Fuzz, MutationsCaughtOrExecuteIdentically)
{
    // Single-field mutations of a valid translated image are either
    // rejected by the verifier/soundness checker or provably harmless: the
    // mutated image executes bit-identically to the original.
    Rng rng(0x5eed5);
    const MachineConfig config = parseMachineConfig("dyn4/8A/single");
    int caught = 0;
    int survived = 0;
    for (int trial = 0; trial < 6; ++trial) {
        const std::string source = randomProgram(rng);
        const Program prog = assemble(source, "fuzz-mut");
        CodeImage base = buildCfg(prog);
        translate(base, config);

        for (int m = 0; m < 16; ++m) {
            CodeImage mutated = base;
            ImageBlock &block =
                mutated.blocks[rng.below(mutated.blocks.size())];
            if (block.nodes.empty())
                continue;
            Node &node = block.nodes[rng.below(block.nodes.size())];
            switch (rng.below(6)) {
              case 0:
                node.op = static_cast<Opcode>(rng.below(
                    static_cast<std::uint64_t>(Opcode::NUM_OPCODES)));
                break;
              case 1:
                node.rd = static_cast<std::uint8_t>(rng.below(kNumRegs));
                break;
              case 2:
                node.rs1 = static_cast<std::uint8_t>(rng.below(kNumRegs));
                break;
              case 3:
                node.rs2 = static_cast<std::uint8_t>(rng.below(kNumRegs));
                break;
              case 4:
                node.imm += static_cast<std::int32_t>(rng.range(1, 64));
                break;
              case 5:
                node.target = static_cast<std::int32_t>(
                    rng.below(prog.instrs.size()));
                break;
            }

            verify::Report report;
            verify::VerifyOptions vopts;
            vopts.issue = &config.issue;
            verify::verifyImageInto(mutated, report, vopts, "mutated");
            verify::checkTranslationSoundness(base, mutated, report,
                                              "mutated");
            if (!report.clean()) {
                ++caught;
                continue;
            }

            // Not caught: the mutation must be semantically invisible.
            AtomicRunOptions aopts;
            aopts.maxNodes = 2'000'000;
            SimOS os_a;
            SimOS os_b;
            const AtomicRunResult a = runAtomic(base, os_a, aopts);
            const AtomicRunResult b = runAtomic(mutated, os_b, aopts);
            ASSERT_EQ(a.exited, b.exited)
                << "trial " << trial << " mutation " << m << "\n" << source;
            if (a.exited) {
                ASSERT_EQ(a.exitCode, b.exitCode)
                    << "trial " << trial << " mutation " << m;
                ASSERT_EQ(a.retiredNodes, b.retiredNodes)
                    << "trial " << trial << " mutation " << m;
                ASSERT_EQ(os_a.stdoutText(), os_b.stdoutText());
            }
            ++survived;
        }
    }
    // The sweep must actually exercise the rejection path.
    EXPECT_GT(caught, 0);
    // Harmless mutations (e.g. a field overwritten to its own value) may
    // or may not occur; nothing to assert about `survived` beyond the
    // equivalence checks above.
    (void)survived;
}

} // namespace
} // namespace fgp
