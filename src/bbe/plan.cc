#include "bbe/plan.hh"

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

std::string
serializePlan(const EnlargePlan &plan)
{
    std::string out = "# fgpsim enlargement plan v1\n";
    for (const EnlargeChain &chain : plan.chains) {
        out += "chain";
        for (std::int32_t pc : chain.entryPcs) {
            out += ' ';
            out += std::to_string(pc);
        }
        out += '\n';
    }
    return out;
}

EnlargePlan
parsePlan(std::string_view text)
{
    EnlargePlan plan;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        if (!startsWith(line, "chain"))
            fgp_fatal("enlargement plan line ", line_no,
                      ": expected 'chain', got '", std::string(line), "'");
        EnlargeChain chain;
        for (const std::string &field :
             split(trim(line.substr(5)), ' ')) {
            if (field.empty())
                continue;
            const auto pc = parseInt(field);
            if (!pc || *pc < 0)
                fgp_fatal("enlargement plan line ", line_no,
                          ": bad entry pc '", field, "'");
            chain.entryPcs.push_back(static_cast<std::int32_t>(*pc));
        }
        if (chain.entryPcs.size() < 2)
            fgp_fatal("enlargement plan line ", line_no,
                      ": a chain needs at least two blocks");
        plan.chains.push_back(std::move(chain));
    }
    return plan;
}

} // namespace fgp
