/**
 * Observability tests: the event bus, the stall-cause accounting and the
 * machine-readable exporters.
 *
 *  - the slot invariant: every issue slot of every cycle is either an
 *    issued node or attributed to exactly one stall cause;
 *  - per-block attribution sums back to the global counters;
 *  - attaching sinks never changes the simulation (tracing neutrality);
 *  - the exact event sequence for a tiny straight-line program (golden);
 *  - JSONL and Chrome trace outputs are structurally well formed.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "obs/bus.hh"
#include "obs/report.hh"
#include "obs/sinks.hh"
#include "tld/translate.hh"

namespace fgp {
namespace {

/** Copies the value fields of every event (pointers are not retained). */
struct CollectingSink : obs::EventSink
{
    struct Rec
    {
        obs::EventKind kind;
        std::uint64_t cycle;
        std::uint64_t seq;
        std::uint64_t bseq;
        std::uint32_t count;
        bool mispredict;
        bool partial;
    };

    std::vector<Rec> events;
    int runEnds = 0;

    void
    onEvent(const obs::SimEvent &e) override
    {
        events.push_back({e.kind, e.cycle, e.seq, e.bseq, e.count,
                          e.mispredict, e.partial});
    }

    void onRunEnd() override { ++runEnds; }
};

MachineConfig
cfg(Discipline d, int issue, char mem)
{
    return {d, issueModel(issue), memoryConfig(mem), BranchMode::Single};
}

EngineResult
run(const std::string &source, const MachineConfig &config,
    obs::EventBus *bus = nullptr)
{
    const Program prog = assemble(source, "obs-test");
    CodeImage image = buildCfg(prog);
    translate(image, config);
    SimOS os;
    EngineOptions opts;
    opts.config = config;
    opts.bus = bus;
    return simulate(image, os, opts);
}

const char *const kLoopProgram = R"(
main:   li   r8, 25
        la   r9, data
loop:   lw   r10, 0(r9)
        add  r11, r11, r10
        sw   r11, 4(r9)
        addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
        .data
data:   .word 5, 0
)";

const char *const kStraightLine = R"(
main:   li   r1, 7
        add  r2, r1, r1
        li   v0, 0
        li   a0, 0
        syscall
)";

/** The documented accounting identity, exercised across the config space. */
TEST(Stalls, SlotInvariantAcrossConfigs)
{
    const Discipline disciplines[] = {Discipline::Static, Discipline::Dyn1,
                                      Discipline::Dyn4, Discipline::Dyn256};
    for (Discipline d : disciplines) {
        for (int issue : {1, 4, 8}) {
            for (char mem : {'A', 'D'}) {
                const MachineConfig config = cfg(d, issue, mem);
                const EngineResult r = run(kLoopProgram, config);
                ASSERT_TRUE(r.exited) << config.name();
                EXPECT_EQ(r.issueWidth, config.issue.width());
                const std::uint64_t total =
                    r.cycles * static_cast<std::uint64_t>(r.issueWidth);
                EXPECT_EQ(r.stalls.totalSlots(), total - r.issuedNodes)
                    << config.name();
            }
        }
    }
}

TEST(Stalls, BlockStatsSumToGlobals)
{
    const EngineResult r = run(kLoopProgram, cfg(Discipline::Dyn4, 8, 'D'));
    std::uint64_t retiredNodes = 0, retiredBlocks = 0, squashedBlocks = 0,
                  squashedNodes = 0, mispredicts = 0, faults = 0;
    for (const BlockStat &bs : r.blockStats) {
        retiredNodes += bs.retiredNodes;
        retiredBlocks += bs.retiredBlocks;
        squashedBlocks += bs.squashedBlocks;
        squashedNodes += bs.squashedNodes;
        mispredicts += bs.mispredicts;
        faults += bs.faultsFired;
    }
    EXPECT_EQ(retiredNodes, r.retiredNodes);
    EXPECT_EQ(retiredBlocks, r.committedBlocks);
    EXPECT_EQ(squashedBlocks, r.squashedBlocks);
    EXPECT_EQ(mispredicts, r.mispredicts);
    EXPECT_EQ(faults, r.faultsFired);
    EXPECT_GT(squashedNodes, 0u); // the loop exit mispredicts
}

TEST(Stalls, WaitCausesObserved)
{
    // Dependent chain + cache misses: operand and memory waits must both
    // show up on a wide dynamic machine.
    const EngineResult r = run(kLoopProgram, cfg(Discipline::Dyn256, 8, 'D'));
    EXPECT_GT(r.stalls.operandWaitNodeCycles, 0u);
    EXPECT_GT(r.stalls.shortWordSlots, 0u);
    EXPECT_GT(r.stalls.fetchRedirectSlots, 0u);
    // Exported into the stats listing for harness consumers.
    EXPECT_TRUE(r.stats.has("stall.slots_short_word"));
    EXPECT_TRUE(r.stats.has("stall.node_cycles_operand_wait"));
}

TEST(Stalls, MergeFromAccumulates)
{
    StallBreakdown a, b;
    a.windowFullSlots = 3;
    a.operandWaitNodeCycles = 5;
    b.windowFullSlots = 4;
    b.drainSlots = 2;
    a.mergeFrom(b);
    EXPECT_EQ(a.windowFullSlots, 7u);
    EXPECT_EQ(a.drainSlots, 2u);
    EXPECT_EQ(a.operandWaitNodeCycles, 5u);
    EXPECT_EQ(a.totalSlots(), 9u);
}

/** Attaching sinks must not perturb the simulation. */
TEST(Bus, TracingDoesNotChangeResults)
{
    const MachineConfig config = cfg(Discipline::Dyn4, 8, 'D');
    const EngineResult plain = run(kLoopProgram, config);

    CollectingSink sink;
    obs::EventBus bus;
    bus.addSink(&sink);
    const EngineResult traced = run(kLoopProgram, config, &bus);

    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.retiredNodes, traced.retiredNodes);
    EXPECT_EQ(plain.executedNodes, traced.executedNodes);
    EXPECT_EQ(plain.issuedNodes, traced.issuedNodes);
    EXPECT_EQ(plain.committedBlocks, traced.committedBlocks);
    EXPECT_EQ(plain.squashedBlocks, traced.squashedBlocks);
    EXPECT_EQ(plain.mispredicts, traced.mispredicts);
    EXPECT_EQ(plain.stats.ints(), traced.stats.ints());
    EXPECT_EQ(plain.stalls.totalSlots(), traced.stalls.totalSlots());
    EXPECT_GT(sink.events.size(), 0u);
    EXPECT_EQ(sink.runEnds, 1);
}

TEST(Bus, EventStreamConsistency)
{
    CollectingSink sink;
    obs::EventBus bus;
    bus.addSink(&sink);
    const EngineResult r =
        run(kLoopProgram, cfg(Discipline::Dyn4, 8, 'D'), &bus);

    std::uint64_t lastCycle = 0;
    std::uint64_t issues = 0, schedules = 0, completes = 0;
    std::uint64_t retiredNodes = 0, squashedNodes = 0;
    for (const CollectingSink::Rec &e : sink.events) {
        EXPECT_GE(e.cycle, lastCycle); // cycles never go backwards
        lastCycle = e.cycle;
        switch (e.kind) {
          case obs::EventKind::Issue:
            ++issues;
            break;
          case obs::EventKind::Schedule:
            ++schedules;
            break;
          case obs::EventKind::Complete:
            ++completes;
            break;
          case obs::EventKind::Retire:
            retiredNodes += e.count;
            break;
          case obs::EventKind::Squash:
            squashedNodes += e.count;
            break;
          default:
            break;
        }
    }
    EXPECT_GT(issues, 0u);
    EXPECT_EQ(schedules, r.executedNodes);
    // Nodes still in flight when their block squashes (or when the
    // program exits) never publish a Complete.
    EXPECT_LE(completes, schedules);
    EXPECT_GT(completes, 0u);
    EXPECT_EQ(retiredNodes, r.retiredNodes);
    EXPECT_GT(squashedNodes, 0u);
}

/**
 * Exact event sequence for a tiny straight-line program on dyn4/8A. A
 * change here means the engine's externally visible pipeline behaviour
 * changed — update deliberately, not incidentally.
 */
TEST(Bus, GoldenEventSequence)
{
    CollectingSink sink;
    obs::EventBus bus;
    bus.addSink(&sink);
    run(kStraightLine, cfg(Discipline::Dyn4, 8, 'A'), &bus);

    std::ostringstream got;
    for (const CollectingSink::Rec &e : sink.events) {
        got << 'c' << e.cycle << ' ' << obs::eventKindName(e.kind);
        if (e.seq)
            got << " seq=" << e.seq;
        if (e.kind == obs::EventKind::Retire ||
            e.kind == obs::EventKind::Squash)
            got << " n=" << e.count;
        got << '\n';
    }
    EXPECT_EQ(got.str(), R"(c0 issue
c1 schedule seq=1
c1 schedule seq=3
c1 schedule seq=4
c2 complete seq=1
c2 complete seq=3
c2 complete seq=4
c2 schedule seq=2
c3 complete seq=2
c3 schedule seq=5
c3 retire n=5
)");
}

TEST(Sinks, JsonlWellFormed)
{
    std::ostringstream out;
    obs::JsonlSink sink(out);
    obs::EventBus bus;
    bus.addSink(&sink);
    CollectingSink counter;
    bus.addSink(&counter);
    run(kLoopProgram, cfg(Discipline::Dyn4, 8, 'D'), &bus);

    std::istringstream in(out.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"kind\":"), std::string::npos) << line;
        EXPECT_NE(line.find("\"cycle\":"), std::string::npos) << line;
    }
    EXPECT_EQ(lines, counter.events.size());
}

TEST(Sinks, ChromeTraceWellFormed)
{
    std::ostringstream out;
    {
        obs::ChromeTraceSink sink(out);
        obs::EventBus bus;
        bus.addSink(&sink);
        run(kLoopProgram, cfg(Discipline::Dyn4, 8, 'D'), &bus);
    }
    const std::string text = out.str();
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\"", 0), 0u);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    // Document closed exactly once even though onRunEnd ran before the
    // destructor.
    EXPECT_EQ(text.find("]}"), text.rfind("]}"));
    EXPECT_EQ(text.substr(text.size() - 3), "]}\n");
    long depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, JsonContainsStallBreakdown)
{
    const MachineConfig config = cfg(Discipline::Dyn4, 8, 'D');
    const EngineResult r = run(kLoopProgram, config);
    std::ostringstream out;
    obs::writeResultJson(out, r, {"obs-test", config.name()});
    const std::string text = out.str();
    EXPECT_NE(text.find("\"schema\": \"fgpsim-sim-v1\""), std::string::npos);
    EXPECT_NE(text.find("\"issue_slots\""), std::string::npos);
    EXPECT_NE(text.find("\"short_word\""), std::string::npos);
    EXPECT_NE(text.find("\"node_cycles\""), std::string::npos);
    EXPECT_NE(text.find("\"blocks\""), std::string::npos);
    EXPECT_NE(text.find("\"bucket_width\""), std::string::npos);
}

TEST(Report, PrintedReportHasTables)
{
    const MachineConfig config = cfg(Discipline::Dyn4, 8, 'D');
    const EngineResult r = run(kLoopProgram, config);
    std::ostringstream out;
    obs::printReport(out, r, {"obs-test", config.name()}, 3);
    const std::string text = out.str();
    EXPECT_NE(text.find("Issue slots"), std::string::npos);
    EXPECT_NE(text.find("short word"), std::string::npos);
    EXPECT_NE(text.find("Waiting node-cycles"), std::string::npos);
    EXPECT_NE(text.find("static blocks by retired nodes"), std::string::npos);
}

} // namespace
} // namespace fgp
