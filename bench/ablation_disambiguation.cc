/**
 * @file
 * Ablation: run-time memory disambiguation (§2.1). Compares the full
 * dynamic scheme (loads bypass stores with known non-conflicting
 * addresses, byte-accurate forwarding) against a conservative machine
 * whose loads wait for every older in-window store to execute.
 * dyn256 + enlarged blocks across issue models, memory A and C.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Ablation: memory disambiguation",
           "dyn256 / enlarged; dynamic vs. conservative load ordering");

    Table table({"issue", "memory", "dynamic", "conservative", "gain"});
    for (int im : {2, 5, 8}) {
        for (char mc : {'A', 'C'}) {
            const MachineConfig config{Discipline::Dyn256, issueModel(im),
                                       memoryConfig(mc),
                                       BranchMode::Enlarged};
            ExperimentRunner dyn(envScale());
            const double fast = dyn.meanNodesPerCycle(config);

            ExperimentRunner cons(envScale());
            ExperimentRunner::EngineTweaks tweaks;
            tweaks.conservativeLoads = true;
            cons.setEngineTweaks(tweaks);
            const double slow = cons.meanNodesPerCycle(config);

            table.addRow({issueModel(im).name(), std::string(1, mc),
                          format("%.3f", fast), format("%.3f", slow),
                          format("%+.1f%%", 100.0 * (fast / slow - 1.0))});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper §2.1: with one port to memory the schemes "
                 "barely differ; with multiple ports and out-of-order ALU "
                 "operations, run-time disambiguation pays.\n";
    return 0;
}
