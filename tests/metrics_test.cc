/**
 * Run-level observability tests (src/metrics + harness wiring):
 *
 *  - registry determinism: the merged snapshot is identical whether the
 *    same work ran on one thread or many (counter merging is a sum);
 *  - timer aggregation (count/total/max) and ScopedTimer behavior;
 *  - a disabled registry allocates nothing — the zero-cost-when-off
 *    guarantee, checked with a counting global operator new;
 *  - JsonLineWriter -> parseRunFile round trip of the fgpsim-run-v1
 *    manifest, including '#' comment skipping and malformed input;
 *  - no interference: attaching a metrics registry and a progress sink
 *    leaves the simulated schedule bit-identical, at the engine level
 *    and through a full ExperimentRunner sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "engine/engine.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "metrics/manifest.hh"
#include "metrics/progress.hh"
#include "metrics/registry.hh"
#include "tld/translate.hh"

// Counting global allocator for the zero-alloc test. Every counted form
// funnels through malloc so the override composes with sanitizers.
static std::atomic<std::uint64_t> g_allocCount{0};

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// Kept out of line: once gcc inlines a delete body at -O2 it pairs the
// raw free() with the replaced operator new and misfires
// -Wmismatched-new-delete, even though every form funnels through
// malloc/free.
[[gnu::noinline]] void operator delete(void *p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void *p) noexcept { std::free(p); }
[[gnu::noinline]] void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
[[gnu::noinline]] void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace fgp {
namespace {

// ---------------------------------------------------------------- registry

/** The reference workload: what one "job" contributes to the registry. */
void
contribute(metrics::Registry &registry, int job)
{
    for (int i = 0; i <= job; ++i) {
        registry.add("engine.sims");
        registry.add("engine.cycles", 100 + static_cast<std::uint64_t>(job));
        registry.recordTimeNs("host.phase.simulate_ns",
                              10 + static_cast<std::uint64_t>(i));
    }
    registry.setGauge("run.scale", 0.25);
}

TEST(MetricsRegistry, SnapshotIdenticalSerialVsThreaded)
{
    constexpr int kJobs = 8;

    metrics::Registry serial;
    for (int job = 0; job < kJobs; ++job)
        contribute(serial, job);

    metrics::Registry threaded;
    {
        std::vector<std::thread> threads;
        threads.reserve(kJobs);
        for (int job = 0; job < kJobs; ++job)
            threads.emplace_back([&threaded, job] {
                contribute(threaded, job);
            });
        for (std::thread &t : threads)
            t.join();
    }

    const metrics::Snapshot a = serial.snapshot();
    const metrics::Snapshot b = threaded.snapshot();
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.gauges, b.gauges);
    ASSERT_EQ(a.timers.size(), b.timers.size());
    for (const auto &[name, stat] : a.timers) {
        const auto it = b.timers.find(name);
        ASSERT_NE(it, b.timers.end()) << name;
        EXPECT_EQ(stat.count, it->second.count) << name;
        EXPECT_EQ(stat.totalNs, it->second.totalNs) << name;
        EXPECT_EQ(stat.maxNs, it->second.maxNs) << name;
    }
    EXPECT_EQ(a.toJson(), b.toJson());

    // Sanity on the merged values themselves.
    EXPECT_EQ(a.counters.at("engine.sims"),
              static_cast<std::uint64_t>(kJobs * (kJobs + 1) / 2));
    EXPECT_EQ(a.gauges.at("run.scale"), 0.25);
}

TEST(MetricsRegistry, TimerAggregation)
{
    metrics::Registry registry;
    registry.recordTimeNs("t", 5);
    registry.recordTimeNs("t", 7);

    const metrics::Snapshot snap = registry.snapshot();
    const metrics::TimerStat &stat = snap.timers.at("t");
    EXPECT_EQ(stat.count, 2u);
    EXPECT_EQ(stat.totalNs, 12u);
    EXPECT_EQ(stat.maxNs, 7u);
}

TEST(MetricsRegistry, ScopedTimerRecordsElapsed)
{
    metrics::Registry registry;
    {
        metrics::ScopedTimer timer(&registry, "scope_ns");
    }
    const metrics::Snapshot snap = registry.snapshot();
    const metrics::TimerStat &stat = snap.timers.at("scope_ns");
    EXPECT_EQ(stat.count, 1u);
    EXPECT_GE(stat.maxNs, 0u);
    EXPECT_GE(stat.totalNs, stat.maxNs);
}

TEST(MetricsRegistry, DisabledRegistryAllocatesNothing)
{
    metrics::Registry registry(false);

    const std::uint64_t before =
        g_allocCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        registry.add("engine.cycles", 3);
        registry.setGauge("run.scale", 1.0);
        registry.recordTimeNs("host.phase.simulate_ns", 42);
        metrics::ScopedTimer timer(&registry, "scope_ns");
    }
    {
        // Null registry pointer: same guarantee.
        metrics::ScopedTimer timer(nullptr, "scope_ns");
    }
    const std::uint64_t after =
        g_allocCount.load(std::memory_order_relaxed);

    EXPECT_EQ(before, after);
    EXPECT_TRUE(registry.snapshot().empty());
}

// ---------------------------------------------------------------- manifest

TEST(Manifest, RoundTrip)
{
    metrics::JsonLineWriter run;
    run.field("schema", metrics::kRunSchema);
    run.field("kind", "run");
    run.field("bench", "fig3");
    run.field("git", "abc123-dirty");
    run.field("timestamp", std::uint64_t{1754000000});
    run.field("jobs", 4);
    run.field("scale", 0.25);
    run.field("sims", std::uint64_t{400});
    run.field("wall_seconds", 1.5);
    run.field("sim_cycles", std::uint64_t{3000000});
    run.field("host_ns_per_sim_cycle", 410.5);
    run.strings("workloads", {"sort", "grep"});
    run.raw("metrics", "{\"engine.sims\":400}");

    metrics::JsonLineWriter point;
    point.field("kind", "point");
    point.field("workload", "sort");
    point.field("config", "dyn4/8A/enlarged");
    point.field("nodes_per_cycle", 2.5);
    point.field("cycles", std::uint64_t{1234});
    point.field("host_ns", std::uint64_t{987654});

    std::stringstream file;
    file << "# comment line, skipped by consumers\n"
         << run.str() << "\n"
         << "\n" // blank line, also skipped
         << point.str() << "\n"
         << "{\"kind\":\"progress\",\"done\":1,\"total\":2}\n";

    const metrics::RunFile parsed =
        metrics::parseRunFile(file, "round-trip");
    ASSERT_EQ(parsed.runs.size(), 1u);
    ASSERT_EQ(parsed.points.size(), 1u);

    const metrics::RunRecord &r = parsed.runs[0];
    EXPECT_EQ(r.str("bench"), "fig3");
    EXPECT_EQ(r.str("git"), "abc123-dirty");
    EXPECT_EQ(r.str("workloads"), "sort,grep");
    EXPECT_EQ(r.num("jobs"), 4.0);
    EXPECT_EQ(r.num("scale"), 0.25);
    EXPECT_EQ(r.num("sims"), 400.0);
    EXPECT_EQ(r.num("wall_seconds"), 1.5);
    EXPECT_EQ(r.metrics.at("engine.sims"), 400.0);

    const metrics::RunPoint &p = parsed.points[0];
    EXPECT_EQ(p.workload, "sort");
    EXPECT_EQ(p.config, "dyn4/8A/enlarged");
    EXPECT_EQ(p.num("nodes_per_cycle"), 2.5);
    EXPECT_EQ(p.num("cycles"), 1234.0);
    EXPECT_EQ(p.num("missing", -1.0), -1.0);
}

TEST(Manifest, JsonEscaping)
{
    metrics::JsonLineWriter w;
    w.field("kind", "run");
    w.field("schema", metrics::kRunSchema);
    w.field("bench", "quote\"back\\slash\nnewline\ttab");
    std::stringstream file(w.str());
    const metrics::RunFile parsed = metrics::parseRunFile(file, "escape");
    ASSERT_EQ(parsed.runs.size(), 1u);
    EXPECT_EQ(parsed.runs[0].str("bench"),
              "quote\"back\\slash\nnewline\ttab");
}

TEST(Manifest, MalformedInputThrows)
{
    const auto parse = [](const std::string &text) {
        std::stringstream file(text);
        return metrics::parseRunFile(file, "malformed");
    };
    // Truncated JSON.
    EXPECT_THROW(parse("{\"kind\":\"run\",\"schema\":"), FatalError);
    // Unknown record kind.
    EXPECT_THROW(parse("{\"kind\":\"mystery\"}"), FatalError);
    // A run record without the schema tag.
    EXPECT_THROW(parse("{\"kind\":\"run\",\"bench\":\"x\"}"), FatalError);
    // No run record at all.
    EXPECT_THROW(
        parse("{\"kind\":\"point\",\"workload\":\"s\",\"config\":\"c\"}"),
        FatalError);
    // Empty stream.
    EXPECT_THROW(parse(""), FatalError);
}

// ---------------------------------------------------------------- progress

TEST(Progress, HeartbeatRecordsAreEmitted)
{
    std::ostringstream out;
    metrics::StreamProgress::Options opts;
    opts.statusLine = false;
    opts.heartbeatSeconds = 0.0; // emit on every point
    metrics::StreamProgress progress(out, opts);

    progress.beginSweep(2);
    progress.pointDone("sort dyn4/8A/enlarged", 1000, 500);
    progress.pointDone("grep dyn4/8A/enlarged", 3000, 700);
    progress.endSweep();

    const std::string text = out.str();
    EXPECT_NE(text.find("\"kind\":\"progress\""), std::string::npos);
    EXPECT_NE(text.find("\"done\":2"), std::string::npos);
    EXPECT_NE(text.find("\"total\":2"), std::string::npos);
    EXPECT_NE(text.find("slowest"), std::string::npos);

    // Heartbeats interleaved into a manifest stream must not break the
    // parser: append a run header and parse the mix.
    metrics::JsonLineWriter run;
    run.field("schema", metrics::kRunSchema);
    run.field("kind", "run");
    run.field("bench", "x");
    std::stringstream file(text + run.str() + "\n");
    EXPECT_NO_THROW(metrics::parseRunFile(file, "heartbeats"));
}

TEST(Progress, StatusLineMode)
{
    std::ostringstream out;
    metrics::StreamProgress::Options opts;
    opts.statusLine = true;
    opts.minRedrawSeconds = 0.0;
    metrics::StreamProgress progress(out, opts);

    progress.beginSweep(3);
    progress.pointDone("sort static/1A/single", 500, 100);
    progress.endSweep();

    const std::string text = out.str();
    EXPECT_NE(text.find('\r'), std::string::npos);
    EXPECT_NE(text.find("1/3"), std::string::npos);
}

// ----------------------------------------------------------- interference

const char *const kLoopProgram = R"(
main:   li   r8, 25
        la   r9, data
loop:   lw   r10, 0(r9)
        add  r11, r11, r10
        sw   r11, 4(r9)
        addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
        .data
data:   .word 5, 0
)";

/** Everything schedule-visible in an EngineResult, for exact compares. */
void
expectSameSchedule(const EngineResult &a, const EngineResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retiredNodes, b.retiredNodes);
    EXPECT_EQ(a.executedNodes, b.executedNodes);
    EXPECT_EQ(a.issuedNodes, b.issuedNodes);
    EXPECT_EQ(a.committedBlocks, b.committedBlocks);
    EXPECT_EQ(a.squashedBlocks, b.squashedBlocks);
    EXPECT_EQ(a.branchesResolved, b.branchesResolved);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.faultsFired, b.faultsFired);
    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.stalls.fetchRedirectSlots, b.stalls.fetchRedirectSlots);
    EXPECT_EQ(a.stalls.fetchIdleSlots, b.stalls.fetchIdleSlots);
    EXPECT_EQ(a.stalls.windowFullSlots, b.stalls.windowFullSlots);
    EXPECT_EQ(a.stalls.shortWordSlots, b.stalls.shortWordSlots);
    EXPECT_EQ(a.stalls.drainSlots, b.stalls.drainSlots);
    EXPECT_EQ(a.stalls.operandWaitNodeCycles,
              b.stalls.operandWaitNodeCycles);
    EXPECT_EQ(a.stalls.memoryWaitNodeCycles,
              b.stalls.memoryWaitNodeCycles);
    EXPECT_EQ(a.stalls.serializeWaitNodeCycles,
              b.stalls.serializeWaitNodeCycles);
    EXPECT_EQ(a.stalls.fuBusyNodeCycles, b.stalls.fuBusyNodeCycles);
}

TEST(NoInterference, EngineScheduleUnchangedByMetrics)
{
    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    const Program prog = assemble(kLoopProgram, "metrics-test");
    CodeImage image = buildCfg(prog);
    translate(image, config);

    const auto run = [&](metrics::Registry *registry) {
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        opts.metrics = registry;
        return simulate(image, os, opts);
    };

    metrics::Registry registry;
    const EngineResult plain = run(nullptr);
    const EngineResult instrumented = run(&registry);
    expectSameSchedule(plain, instrumented);

    // And the fold actually recorded the run.
    const metrics::Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("engine.sims"), 1u);
    EXPECT_EQ(snap.counters.at("engine.cycles"), instrumented.cycles);
    EXPECT_EQ(snap.counters.at("engine.retired_nodes"),
              instrumented.retiredNodes);
}

TEST(NoInterference, HarnessSweepUnchangedByMetricsAndProgress)
{
    const std::vector<SweepPoint> points = {
        {"grep", {Discipline::Static, issueModel(2), memoryConfig('A'),
                  BranchMode::Single}},
        {"grep", {Discipline::Dyn4, issueModel(2), memoryConfig('A'),
                  BranchMode::Enlarged}},
    };

    ExperimentRunner plain(0.05);
    const std::vector<ExperimentResult> base =
        runSweep(plain, points, 1);

    ExperimentRunner observed(0.05);
    metrics::Registry registry;
    observed.setMetrics(&registry);
    std::ostringstream sink_out;
    metrics::StreamProgress::Options popts;
    popts.heartbeatSeconds = 0.0;
    metrics::StreamProgress progress(sink_out, popts);
    const std::vector<ExperimentResult> instrumented =
        runSweep(observed, points, 1, &progress);

    ASSERT_EQ(base.size(), instrumented.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].cycles, instrumented[i].cycles);
        EXPECT_EQ(base[i].refNodes, instrumented[i].refNodes);
        EXPECT_EQ(base[i].nodesPerCycle, instrumented[i].nodesPerCycle);
        expectSameSchedule(base[i].engine, instrumented[i].engine);
    }

    // The observers did observe: two sims counted, two points reported.
    EXPECT_EQ(registry.snapshot().counters.at("harness.sims_done"), 2u);
    EXPECT_NE(sink_out.str().find("\"done\":2"), std::string::npos);
}

} // namespace
} // namespace fgp
