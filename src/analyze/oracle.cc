#include "analyze/oracle.hh"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "base/logging.hh"
#include "tld/optimizer.hh"
#include "tld/schedule.hh"

namespace fgp::analyze {

namespace {

int
ceilDiv(std::size_t num, int den)
{
    return den > 0 ? static_cast<int>((num + static_cast<std::size_t>(den) -
                                       1) /
                                      static_cast<std::size_t>(den))
                   : 0;
}

/**
 * Branch-and-bound search state for one block. One cycle per recursion
 * level: either issue one maximal word of ready nodes (there is always
 * an optimal schedule whose words are maximal — moving a ready node
 * into an earlier non-full word never delays anything) or, when nothing
 * is ready, jump to the next operand-finish cycle.
 *
 * Dominance memo: the future of a search state depends only on the
 * scheduled-node set and the in-flight finish times *relative to the
 * current cycle* (finished work can never outlast work still pending).
 * Two states with equal keys are therefore equivalent futures, and only
 * the one reached at the earliest absolute cycle can win — the memo
 * stores that cycle and prunes later arrivals.
 */
struct Searcher
{
    const ImageBlock &block;
    const IssueModel &issue;
    const DepGraph &graph;
    int lat;
    std::size_t n;
    std::size_t maxStates;

    std::vector<int> latency;  ///< per node, shared nodeLatency() model
    std::vector<int> height;   ///< remaining critical path incl. own latency

    std::size_t states = 0;
    bool exhausted = false;
    int best;                   ///< tightest upper bound found so far
    std::vector<int> bestIssue; ///< issue cycle per node of the best found

    std::vector<int> issueAt;   ///< current partial schedule (-1 unset)
    std::vector<int> finish;    ///< finish time of scheduled nodes
    std::vector<int> earliest;  ///< operand-ready cycle per node
    std::vector<int> predsLeft;

    std::map<std::vector<std::uint32_t>, int> seen;

    Searcher(const ImageBlock &b, const IssueModel &is, const DepGraph &g,
             int mem_hit_latency, std::size_t max_states, int upper)
        : block(b), issue(is), graph(g), lat(mem_hit_latency),
          n(b.nodes.size()), maxStates(max_states), best(upper)
    {
        latency.resize(n);
        height.assign(n, 0);
        for (std::size_t i = n; i-- > 0;) {
            latency[i] = nodeLatency(block.nodes[i], lat);
            for (std::uint16_t succ : graph.succs[i])
                height[i] = std::max(height[i], latency[i] + height[succ]);
            height[i] = std::max(height[i], latency[i]);
        }
        issueAt.assign(n, -1);
        finish.assign(n, 0);
        earliest.assign(n, 0);
        predsLeft.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            predsLeft[i] = static_cast<int>(graph.preds[i].size());
    }

    bool nodeFits(std::size_t i, int mem_free, int alu_free) const
    {
        if (issue.sequential)
            return mem_free + alu_free > 0;
        return block.nodes[i].isMem() ? mem_free > 0 : alu_free > 0;
    }

    /** Sound lower bound on the makespan of any completion of @p mask. */
    int remainingBound(std::uint64_t mask, int cycle, int finish_max) const
    {
        int bound = finish_max;
        std::size_t rem = 0;
        std::size_t rem_mem = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (mask & (1ULL << i))
                continue;
            ++rem;
            if (block.nodes[i].isMem())
                ++rem_mem;
            const int start = std::max(earliest[i], cycle);
            bound = std::max(bound, start + height[i]);
        }
        if (rem) {
            int slots;
            if (issue.sequential) {
                slots = static_cast<int>(rem);
            } else {
                slots = std::max(
                    {ceilDiv(rem_mem, issue.memSlots),
                     ceilDiv(rem - rem_mem, issue.aluSlots),
                     ceilDiv(rem, issue.width())});
            }
            bound = std::max(bound, cycle + slots);
        }
        return bound;
    }

    void dfs(std::uint64_t mask, int cycle, std::size_t done,
             int finish_max)
    {
        if (exhausted)
            return;
        if (done == n) {
            if (finish_max < best) {
                best = finish_max;
                bestIssue = issueAt;
            }
            return;
        }
        if (++states > maxStates) {
            exhausted = true;
            return;
        }
        if (remainingBound(mask, cycle, finish_max) >= best)
            return;

        // Dominance memo (see struct comment).
        std::vector<std::uint32_t> key;
        key.reserve(4 + n);
        key.push_back(static_cast<std::uint32_t>(mask));
        key.push_back(static_cast<std::uint32_t>(mask >> 32));
        for (std::size_t i = 0; i < n; ++i) {
            if (!(mask & (1ULL << i)) || finish[i] <= cycle)
                continue;
            const auto delta =
                static_cast<std::uint32_t>(finish[i] - cycle);
            key.push_back((static_cast<std::uint32_t>(i) << 16) | delta);
        }
        const auto [it, inserted] = seen.emplace(std::move(key), cycle);
        if (!inserted) {
            if (it->second <= cycle)
                return;
            it->second = cycle;
        }

        // Ready nodes at this cycle, tallest first so the greedy-shaped
        // branch is explored (and prunes) first.
        std::vector<std::uint16_t> ready;
        int next_cycle = -1;
        for (std::size_t i = 0; i < n; ++i) {
            if ((mask & (1ULL << i)) || predsLeft[i] != 0)
                continue;
            if (earliest[i] <= cycle) {
                ready.push_back(static_cast<std::uint16_t>(i));
            } else if (next_cycle < 0 || earliest[i] < next_cycle) {
                next_cycle = earliest[i];
            }
        }
        if (ready.empty()) {
            fgp_assert(next_cycle > cycle,
                       "oracle search stuck with no ready nodes");
            dfs(mask, next_cycle, done, finish_max);
            return;
        }
        std::sort(ready.begin(), ready.end(),
                  [&](std::uint16_t a, std::uint16_t b) {
                      if (height[a] != height[b])
                          return height[a] > height[b];
                      return a < b;
                  });

        const int mem0 = issue.sequential ? 1 : issue.memSlots;
        const int alu0 = issue.sequential ? 0 : issue.aluSlots;
        std::vector<std::uint16_t> word;
        chooseWord(ready, 0, word, mem0, alu0, mask, cycle, done,
                   finish_max);
    }

    /**
     * Enumerate the maximal ready-subsets fitting one issue word and
     * branch on each. @p mem_free / @p alu_free are the remaining slot
     * budgets (for sequential models the pair encodes "one node total").
     */
    void chooseWord(const std::vector<std::uint16_t> &ready,
                    std::size_t pos, std::vector<std::uint16_t> &word,
                    int mem_free, int alu_free, std::uint64_t mask,
                    int cycle, std::size_t done, int finish_max)
    {
        if (exhausted)
            return;
        if (pos == ready.size()) {
            if (word.empty())
                return;
            // Maximality: every ready node left out must genuinely not
            // fit, else a strictly better word exists and covers this one.
            for (std::uint16_t i : ready) {
                if (std::find(word.begin(), word.end(), i) == word.end() &&
                    nodeFits(i, mem_free, alu_free))
                    return;
            }
            issueWord(word, mask, cycle, done, finish_max);
            return;
        }

        const std::uint16_t idx = ready[pos];
        const bool fits = nodeFits(idx, mem_free, alu_free);
        if (fits) {
            int mem_next = mem_free;
            int alu_next = alu_free;
            if (issue.sequential) {
                mem_next = 0;
                alu_next = 0;
            } else if (block.nodes[idx].isMem()) {
                --mem_next;
            } else {
                --alu_next;
            }
            word.push_back(idx);
            chooseWord(ready, pos + 1, word, mem_next, alu_next, mask,
                       cycle, done, finish_max);
            word.pop_back();
        }
        chooseWord(ready, pos + 1, word, mem_free, alu_free, mask, cycle,
                   done, finish_max);
    }

    void issueWord(const std::vector<std::uint16_t> &word,
                   std::uint64_t mask, int cycle, std::size_t done,
                   int finish_max)
    {
        std::uint64_t mask_next = mask;
        int finish_next = finish_max;
        for (std::uint16_t idx : word) {
            mask_next |= 1ULL << idx;
            issueAt[idx] = cycle;
            finish[idx] = cycle + latency[idx];
            finish_next = std::max(finish_next, finish[idx]);
            for (std::uint16_t succ : graph.succs[idx]) {
                earliest[succ] = std::max(earliest[succ], finish[idx]);
                --predsLeft[succ];
            }
        }

        dfs(mask_next, cycle + 1, done + word.size(), finish_next);

        // Undo: clear the whole word's marks first, then rebuild each
        // touched successor's ready time from the preds still scheduled.
        for (std::uint16_t idx : word)
            issueAt[idx] = -1;
        for (std::uint16_t idx : word) {
            for (std::uint16_t succ : graph.succs[idx]) {
                ++predsLeft[succ];
                int e = 0;
                for (std::uint16_t p : graph.preds[succ])
                    if (issueAt[p] >= 0)
                        e = std::max(e, finish[p]);
                earliest[succ] = e;
            }
        }
    }
};

/** Flatten a per-node issue-cycle assignment into dense words. */
std::vector<Word>
wordsFromIssue(const std::vector<int> &issue_at)
{
    int last = -1;
    for (int c : issue_at)
        last = std::max(last, c);
    std::vector<Word> by_cycle(static_cast<std::size_t>(last + 1));
    for (std::size_t i = 0; i < issue_at.size(); ++i)
        by_cycle[static_cast<std::size_t>(issue_at[i])].push_back(
            static_cast<std::uint16_t>(i));
    std::vector<Word> words;
    for (Word &word : by_cycle) {
        if (word.empty())
            continue;
        std::sort(word.begin(), word.end());
        words.push_back(std::move(word));
    }
    return words;
}

/**
 * Greedy baseline makespan. Always re-schedules a copy with
 * scheduleStatic, never trusting the block's existing words: a
 * dynamically packed image (packDynamic) carries words that intra-word
 * forwarding makes shorter than any legal static schedule, which would
 * put the "greedy" side of the sandwich below the true optimum. For
 * statically scheduled images the copy reproduces the existing words
 * bit-identically (the scheduler is deterministic), so nothing changes.
 */
int
greedyMakespan(const ImageBlock &block, const IssueModel &issue,
               int mem_hit_latency, const MemDepFacts *facts)
{
    ImageBlock copy = block;
    scheduleStatic(copy, issue, mem_hit_latency, facts);
    return packedMakespan(copy, mem_hit_latency, facts);
}

std::size_t
envBudget(std::size_t fallback)
{
    static const long parsed = [] {
        if (const char *env = std::getenv("FGP_ORACLE_BUDGET"))
            return std::strtol(env, nullptr, 10);
        return -1L;
    }();
    return parsed >= 0 ? static_cast<std::size_t>(parsed) : fallback;
}

} // namespace

int
packedMakespan(const ImageBlock &block, int mem_hit_latency,
               const MemDepFacts *facts)
{
    if (block.words.empty())
        return 0;
    const DepGraph graph =
        buildDepGraph(block, /*with_antideps=*/true, facts);

    std::vector<int> word_of(block.nodes.size(), -1);
    for (std::size_t w = 0; w < block.words.size(); ++w)
        for (std::uint16_t idx : block.words[w])
            word_of[idx] = static_cast<int>(w);

    std::vector<int> finish(block.nodes.size(), 0);
    int makespan = 0;
    int cycle = -1;
    for (std::size_t w = 0; w < block.words.size(); ++w) {
        int ready = cycle + 1;
        for (std::uint16_t idx : block.words[w])
            for (std::uint16_t p : graph.preds[idx])
                if (word_of[p] >= 0 &&
                    word_of[p] < static_cast<int>(w))
                    ready = std::max(ready, finish[p]);
        cycle = ready;
        for (std::uint16_t idx : block.words[w]) {
            finish[idx] =
                cycle + nodeLatency(block.nodes[idx], mem_hit_latency);
            makespan = std::max(makespan, finish[idx]);
        }
    }
    return makespan;
}

BlockOracle
oracleBlock(const ImageBlock &block, const IssueModel &issue,
            int mem_hit_latency, const OracleOptions &opts,
            const MemDepFacts *facts)
{
    BlockOracle out;
    out.block = block.id;
    out.entryPc = block.entryPc;
    out.enlarged = block.enlarged;
    out.nodes = block.nodes.size();
    if (out.nodes == 0) {
        out.exact = true;
        return out;
    }

    const DepGraph graph =
        buildDepGraph(block, /*with_antideps=*/true, facts);
    Searcher search(block, issue, graph, mem_hit_latency, opts.maxStates,
                    0);
    for (std::size_t i = 0; i < out.nodes; ++i)
        out.height = std::max(out.height, search.height[i]);
    out.greedyLength =
        greedyMakespan(block, issue, mem_hit_latency, facts);

    // Certified floor independent of the search: the critical path and
    // the slot-count ceilings (analyze::resourceCycles' shape).
    const int floor =
        search.remainingBound(/*mask=*/0, /*cycle=*/0, /*finish_max=*/0);

    if (out.nodes > opts.maxNodes || opts.maxStates == 0) {
        out.lowerBound = floor;
        out.upperBound = out.greedyLength;
        out.exact = out.lowerBound == out.upperBound;
        return out;
    }

    search.best = out.greedyLength;
    search.dfs(/*mask=*/0, /*cycle=*/0, /*done=*/0, /*finish_max=*/0);

    out.statesExplored = search.states;
    out.upperBound = search.best; // any found schedule is a valid ceiling
    if (search.exhausted) {
        out.lowerBound = std::min(floor, out.upperBound);
        out.exact = out.lowerBound == out.upperBound;
    } else {
        out.lowerBound = search.best;
        out.exact = true;
    }
    if (out.exact && out.upperBound < out.greedyLength &&
        !search.bestIssue.empty())
        out.words = wordsFromIssue(search.bestIssue);
    return out;
}

ImageOracle
oracleImage(const CodeImage &image, const MachineConfig &config,
            const OracleOptions &opts)
{
    ImageOracle out;
    out.blocks.reserve(image.blocks.size());
    for (const ImageBlock &block : image.blocks) {
        BlockOracle b =
            oracleBlock(block, config.issue, config.memory.hitLatency,
                        opts);
        fgp_assert(b.height <= b.upperBound || b.nodes == 0,
                   "oracle sandwich violated: height above upper bound");
        fgp_assert(b.upperBound <= b.greedyLength || b.nodes == 0,
                   "oracle sandwich violated: bound above greedy");
        out.exactBlocks += b.exact;
        out.exhaustedBlocks += !b.exact;
        out.greedyCycles += b.greedyLength;
        out.oracleCycles += b.upperBound;
        out.maxGap = std::max(out.maxGap, b.gap());
        out.blocks.push_back(std::move(b));
    }
    return out;
}

bool
oracleSchedEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("FGP_ORACLE_SCHED");
        return env != nullptr && env[0] == '1';
    }();
    return enabled;
}

std::function<void(ImageBlock &, const IssueModel &, int,
                   const MemDepFacts *)>
oracleAdoptionHook(const OracleOptions &opts)
{
    OracleOptions hook_opts = opts;
    hook_opts.maxStates = envBudget(opts.maxStates);
    return [hook_opts](ImageBlock &block, const IssueModel &issue,
                       int mem_hit_latency, const MemDepFacts *facts) {
        if (block.nodes.size() > hook_opts.adoptMaxNodes)
            return;
        const BlockOracle oracle =
            oracleBlock(block, issue, mem_hit_latency, hook_opts, facts);
        if (oracle.words.empty())
            return; // greedy already optimal, or budget exhausted
        ImageBlock candidate = block;
        candidate.words = oracle.words;
        // The oracle schedules against the same DAG and packing rules,
        // so this can only fail if the search itself is buggy — keep the
        // greedy schedule rather than ship an unsound word layout.
        if (!wordsRespectModel(candidate, issue, facts))
            return;
        block.words = std::move(candidate.words);
    };
}

PlanAuditHook
oracleRankingHook(const IssueModel &issue, int mem_hit_latency,
                  const OracleOptions &opts)
{
    return [issue, mem_hit_latency, opts](const CodeImage &single,
                                          EnlargePlan &plan) {
        if (plan.empty())
            return;
        const CodeImage enlarged = applyEnlargement(single, plan);

        // Member upper bounds are reused across chains (loops repeat
        // blocks) — mirrors heightRankingHook's member-height cache.
        std::vector<int> member_len(single.blocks.size(), -1);
        auto member_bound = [&](std::int32_t id) {
            int &len = member_len[static_cast<std::size_t>(id)];
            if (len < 0)
                len = oracleBlock(single.block(id), issue,
                                  mem_hit_latency, opts)
                          .upperBound;
            return len;
        };

        struct Ranked
        {
            std::size_t chainIndex;
            int reduction;
        };
        std::vector<Ranked> ranked;
        for (std::size_t c = 0; c < plan.chains.size(); ++c) {
            const EnlargeChain &planned = plan.chains[c];
            if (planned.entryPcs.empty())
                continue;
            const auto it =
                enlarged.entryByPc.find(planned.entryPcs.front());
            if (it == enlarged.entryByPc.end())
                continue;
            const ImageBlock &primary = enlarged.block(it->second);
            if (!primary.enlarged || primary.companion)
                continue;

            int member_sum = 0;
            for (const ChainLink &link : resolveChain(single, planned))
                member_sum += member_bound(link.blockId);

            ImageBlock fused = primary;
            optimizeBlock(fused);
            const int fused_len =
                oracleBlock(fused, issue, mem_hit_latency, opts)
                    .upperBound;
            ranked.push_back({c, member_sum - fused_len});
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const Ranked &a, const Ranked &b) {
                      if (a.reduction != b.reduction)
                          return a.reduction > b.reduction;
                      return a.chainIndex < b.chainIndex;
                  });

        std::vector<bool> placed(plan.chains.size(), false);
        std::vector<EnlargeChain> ordered;
        ordered.reserve(plan.chains.size());
        for (const Ranked &r : ranked) {
            ordered.push_back(std::move(plan.chains[r.chainIndex]));
            placed[r.chainIndex] = true;
        }
        for (std::size_t c = 0; c < plan.chains.size(); ++c)
            if (!placed[c])
                ordered.push_back(std::move(plan.chains[c]));
        plan.chains = std::move(ordered);
    };
}

} // namespace fgp::analyze
