#include "ir/opcode.hh"

#include <array>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

std::optional<Opcode>
opcodeFromMnemonic(std::string_view text)
{
    static const auto *table = [] {
        auto *map = new std::unordered_map<std::string, Opcode>();
        for (std::size_t i = 0; i < detail::kNumOpcodes; ++i)
            map->emplace(std::string(detail::kOpcodeInfo[i].mnemonic),
                         static_cast<Opcode>(i));
        return map;
    }();
    const auto it = table->find(toLower(text));
    if (it == table->end())
        return std::nullopt;
    return it->second;
}

Opcode
branchToFault(Opcode op)
{
    fgp_assert(isConditionalBranch(op), "not a conditional branch");
    return static_cast<Opcode>(static_cast<int>(Opcode::FEQ) +
                               (static_cast<int>(op) -
                                static_cast<int>(Opcode::BEQ)));
}

Opcode
faultToBranch(Opcode op)
{
    fgp_assert(isFault(op), "not a fault node");
    return static_cast<Opcode>(static_cast<int>(Opcode::BEQ) +
                               (static_cast<int>(op) -
                                static_cast<int>(Opcode::FEQ)));
}

Opcode
invertCondition(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: return Opcode::BNE;
      case Opcode::BNE: return Opcode::BEQ;
      case Opcode::BLT: return Opcode::BGE;
      case Opcode::BGE: return Opcode::BLT;
      case Opcode::BLTU: return Opcode::BGEU;
      case Opcode::BGEU: return Opcode::BLTU;
      case Opcode::FEQ: return Opcode::FNE;
      case Opcode::FNE: return Opcode::FEQ;
      case Opcode::FLT: return Opcode::FGE;
      case Opcode::FGE: return Opcode::FLT;
      case Opcode::FLTU: return Opcode::FGEU;
      case Opcode::FGEU: return Opcode::FLTU;
      default:
        fgp_panic("opcode has no condition to invert: ", mnemonic(op));
    }
}

} // namespace fgp
