#!/bin/sh
# Hardened CI configuration: Debug build (post-pass verifier checks on by
# default) with AddressSanitizer + UBSan and warnings-as-errors, then the
# full test suite; afterwards a ThreadSanitizer build (its own tree —
# TSan and ASan cannot share one) runs the metrics suite and a parallel
# sweep smoke. Usage:
#
#   tools/ci.sh [build-dir]
#
# The build directory defaults to build-san, kept apart from the regular
# `build/` tree so the two configurations never share object files; the
# TSan stage appends -tsan to the chosen directory.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build-san}"
[ "$#" -gt 0 ] && shift
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DFGP_SANITIZE=address,undefined \
    -DFGP_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD" -j "$JOBS"

# Static analysis: the curated .clang-tidy profile (bugprone-*,
# performance-*, modernize-use-override; warnings-as-errors) over every
# src/ translation unit, using the compile database exported above.
# Skipped when the toolchain ships no clang-tidy — the sanitizer and
# test stages below still gate the build.
if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy: src/ (warnings-as-errors) ==="
    find src -name '*.cc' -print | xargs -P "$JOBS" -n 4 \
        clang-tidy -p "$BUILD" --quiet
else
    echo "clang-tidy not found; skipping the static-analysis stage" >&2
fi

# Make UBSan findings fatal so ctest reports them as failures.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" "$@"

# The observability suite is part of the default run above; repeat the
# label explicitly so a filtered "$@" invocation cannot silently skip it.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD" --output-on-failure -L metrics

# Likewise the analyzer suite: it carries the static-disambiguation
# soundness cross-check (analyze_test forces FGP_STATIC_DISAMBIG and
# FGP_DISAMBIG_XCHECK on, so every workload x issue model retires under
# the MD001/MD002 retirement check — here with ASan/UBSan watching).
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$BUILD" --output-on-failure -L analyze

# Interval-profiler round-trip under ASan/UBSan: the profiling
# simulation, its fgpsim-profile-v1 stream and the stream's closure
# identities (per-window slot closure, window sums vs aggregates,
# critical-path bounds) must all hold in the instrumented build.
echo "=== profile round-trip: fgpsim profile --json + validate ==="
"$BUILD/tools/fgpsim" profile grep --config dyn4/8A/enlarged \
    --interval 5000 --json > "$BUILD/profile_gate.jsonl" 2>/dev/null
sh tools/check_bench.sh --validate-profile "$BUILD/profile_gate.jsonl"

# Differential round-trip under ASan/UBSan: profile the same workload
# with and without static disambiguation, diff the two streams, and
# validate the fgpsim-diff-v1 output — every aligned window's IPC delta
# must decompose into the stall-slot breakdown with zero residual
# (check_bench recomputes the residual independently of the differ).
echo "=== diff round-trip: fgpsim diff --json + validate ==="
FGP_STATIC_DISAMBIG=1 "$BUILD/tools/fgpsim" profile grep \
    --config dyn4/8A/enlarged --interval 5000 --json \
    > "$BUILD/profile_gate_sd.jsonl" 2>/dev/null
"$BUILD/tools/fgpsim" diff \
    "$BUILD/profile_gate.jsonl" "$BUILD/profile_gate_sd.jsonl" \
    --json > "$BUILD/diff_gate.jsonl"
sh tools/check_bench.sh --validate-diff "$BUILD/diff_gate.jsonl"

# Exact-schedule oracle round-trip under ASan/UBSan: solve every block
# to optimality, then have check_bench recompute the certification
# sandwich height <= lower <= upper <= greedy from the oracle_blocks
# dump. A second pair of runs starves the state budget to one state —
# the certified-interval fallback must be deterministic (byte-identical
# JSON across repeats) or cached lint output would flap in CI.
echo "=== oracle round-trip: fgpsim analyze --oracle --json + validate ==="
"$BUILD/tools/fgpsim" analyze diff --config static/4A/enlarged \
    --oracle --json > "$BUILD/oracle_gate.json"
sh tools/check_bench.sh --validate-analyze "$BUILD/oracle_gate.json"
sh tools/check_bench.sh --validate-oracle "$BUILD/oracle_gate.json"
"$BUILD/tools/fgpsim" analyze diff --config static/4A/enlarged \
    --oracle --oracle-budget 1 --json > "$BUILD/oracle_gate_b1.json"
"$BUILD/tools/fgpsim" analyze diff --config static/4A/enlarged \
    --oracle --oracle-budget 1 --json > "$BUILD/oracle_gate_b2.json"
cmp "$BUILD/oracle_gate_b1.json" "$BUILD/oracle_gate_b2.json"
sh tools/check_bench.sh --validate-oracle "$BUILD/oracle_gate_b1.json"

# Perf gate: run the reduced perf slice twice and compare the two
# fgpsim-run-v1 manifests. IPC is deterministic, so any IPC delta is a
# real regression; wall time is host noise on a loaded CI machine, so it
# gets a deliberately loose tolerance.
echo "=== perf gate: perf_selfcheck x2 + fgpsim compare ==="
export FGP_PROGRESS=0
PERF_SCALE="${FGP_CI_PERF_SCALE:-0.05}"
FGP_SCALE="$PERF_SCALE" FGP_RUN_MANIFEST="$BUILD/perf_gate_a.jsonl" \
    "$BUILD/bench/perf_selfcheck" --reduced --out "$BUILD/perf_gate_a.json"
FGP_SCALE="$PERF_SCALE" FGP_RUN_MANIFEST="$BUILD/perf_gate_b.jsonl" \
    "$BUILD/bench/perf_selfcheck" --reduced --out "$BUILD/perf_gate_b.json"
sh tools/check_bench.sh --validate-run "$BUILD/perf_gate_a.jsonl"
sh tools/check_bench.sh --validate-run "$BUILD/perf_gate_b.jsonl"
# compare prints per-cell diff attribution itself when an IPC gate
# fails; the explicit fgpsim diff fallback also covers wall-time and
# cell-set failures before the stage exits nonzero.
"$BUILD/tools/fgpsim" compare \
    "$BUILD/perf_gate_a.jsonl" "$BUILD/perf_gate_b.jsonl" \
    --tolerance 10% --wall-tolerance 75% || {
    "$BUILD/tools/fgpsim" diff \
        "$BUILD/perf_gate_a.jsonl" "$BUILD/perf_gate_b.jsonl" || true
    exit 1
}

# Release perf gate: the sanitizer gate above proves determinism, but
# its instrumented wall times say nothing about real speed. This stage
# repeats the reduced slice in an optimized tree — the build perf
# numbers are quoted from — so the wall tolerance can be much tighter
# (40% vs the sanitizer stage's 75%); IPC tolerance stays exact-ish at
# 10%. perf_selfcheck itself additionally enforces the engine's
# zero-steady-state-allocation contract, so this stage fails if a warmed
# workspace ever allocates inside the cycle loop.
echo "=== Release perf gate: perf_selfcheck x2 + fgpsim compare ==="
REL_BUILD="$BUILD-rel"
cmake -B "$REL_BUILD" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DFGP_WERROR=ON
cmake --build "$REL_BUILD" -j "$JOBS"
FGP_SCALE="$PERF_SCALE" FGP_RUN_MANIFEST="$REL_BUILD/perf_gate_a.jsonl" \
    "$REL_BUILD/bench/perf_selfcheck" --reduced --out "$REL_BUILD/perf_gate_a.json"
FGP_SCALE="$PERF_SCALE" FGP_RUN_MANIFEST="$REL_BUILD/perf_gate_b.jsonl" \
    "$REL_BUILD/bench/perf_selfcheck" --reduced --out "$REL_BUILD/perf_gate_b.json"
sh tools/check_bench.sh --validate-run "$REL_BUILD/perf_gate_a.jsonl"
sh tools/check_bench.sh --validate-run "$REL_BUILD/perf_gate_b.jsonl"
"$REL_BUILD/tools/fgpsim" compare \
    "$REL_BUILD/perf_gate_a.jsonl" "$REL_BUILD/perf_gate_b.jsonl" \
    --tolerance 10% --wall-tolerance 40% || {
    "$REL_BUILD/tools/fgpsim" diff \
        "$REL_BUILD/perf_gate_a.jsonl" "$REL_BUILD/perf_gate_b.jsonl" \
        || true
    exit 1
}

# Same release gate with static disambiguation consuming its facts:
# schedules change (loads hoist above proven-independent stores), so
# these manifests are compared against each other, not the baseline —
# the feature must stay deterministic and inside the same wall gate.
echo "=== Release perf gate: FGP_STATIC_DISAMBIG=1 ==="
FGP_STATIC_DISAMBIG=1 FGP_SCALE="$PERF_SCALE" \
    FGP_RUN_MANIFEST="$REL_BUILD/perf_gate_sd_a.jsonl" \
    "$REL_BUILD/bench/perf_selfcheck" --reduced --out "$REL_BUILD/perf_gate_sd_a.json"
FGP_STATIC_DISAMBIG=1 FGP_SCALE="$PERF_SCALE" \
    FGP_RUN_MANIFEST="$REL_BUILD/perf_gate_sd_b.jsonl" \
    "$REL_BUILD/bench/perf_selfcheck" --reduced --out "$REL_BUILD/perf_gate_sd_b.json"
sh tools/check_bench.sh --validate-run "$REL_BUILD/perf_gate_sd_a.jsonl"
"$REL_BUILD/tools/fgpsim" compare \
    "$REL_BUILD/perf_gate_sd_a.jsonl" "$REL_BUILD/perf_gate_sd_b.jsonl" \
    --tolerance 10% --wall-tolerance 40% || {
    "$REL_BUILD/tools/fgpsim" diff \
        "$REL_BUILD/perf_gate_sd_a.jsonl" "$REL_BUILD/perf_gate_sd_b.jsonl" \
        || true
    exit 1
}

# Cross-config differential attribution over the manifests themselves:
# baseline vs static-disambiguation runs of the same reduced slice.
# Run-v1 manifests carry whole-run stall totals per cell, so the differ
# synthesizes one run-spanning window per cell — the slot identity holds
# globally, and the validator recomputes every residual to zero.
"$REL_BUILD/tools/fgpsim" diff \
    "$REL_BUILD/perf_gate_a.jsonl" "$REL_BUILD/perf_gate_sd_a.jsonl" \
    --json > "$REL_BUILD/diff_gate_sd.jsonl"
sh tools/check_bench.sh --validate-diff "$REL_BUILD/diff_gate_sd.jsonl"

# ThreadSanitizer stage: the harness fans sweeps out across threads
# (harness/parallel.hh), so race coverage matters. RelWithDebInfo keeps
# the TSan run's wall time sane; the metrics label exercises the
# thread-safe registry paths and the sweep smoke drives the worker pool.
echo "=== TSan stage: ctest -L metrics + parallel sweep smoke ==="
TSAN_BUILD="$BUILD-tsan"
cmake -B "$TSAN_BUILD" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFGP_SANITIZE=thread \
    -DFGP_WERROR=ON
cmake --build "$TSAN_BUILD" -j "$JOBS"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$JOBS" -L metrics
# The disambiguation soundness cross-check again, now under TSan: the
# analyzer sweep fans out over the worker pool with facts + fast loads +
# retirement checks enabled in every cell.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$JOBS" -L analyze
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    FGP_SCALE="${FGP_CI_PERF_SCALE:-0.05}" FGP_JOBS=4 \
    "$TSAN_BUILD/bench/full_sweep" > /dev/null

# Profiled parallel sweep under TSan: every worker thread carries its
# own thread-local profiler, and the manifest (with interleaved
# kind:"window" streams) must still validate.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    FGP_SCALE="${FGP_CI_PERF_SCALE:-0.05}" FGP_JOBS=4 \
    FGP_PROFILE_WINDOW=5000 \
    FGP_RUN_MANIFEST="$TSAN_BUILD/profile_sweep.jsonl" \
    "$TSAN_BUILD/bench/full_sweep" > /dev/null
sh tools/check_bench.sh --validate-run "$TSAN_BUILD/profile_sweep.jsonl"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$TSAN_BUILD/tools/fgpsim" profile grep --config dyn256/8G/single \
    --interval 5000 --json > "$TSAN_BUILD/profile_gate.jsonl" 2>/dev/null
sh tools/check_bench.sh --validate-profile "$TSAN_BUILD/profile_gate.jsonl"

# Diff round-trip under TSan: same FGP_STATIC_DISAMBIG pair as the ASan
# stage, including the retired-node log so the schedule-divergence
# pinpointing path (per-window FNV fingerprints + binary search) runs
# under the race detector too.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" FGP_STATIC_DISAMBIG=1 \
    "$TSAN_BUILD/tools/fgpsim" profile grep --config dyn256/8G/single \
    --interval 5000 --json --retired \
    > "$TSAN_BUILD/profile_gate_sd.jsonl" 2>/dev/null
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$TSAN_BUILD/tools/fgpsim" diff \
    "$TSAN_BUILD/profile_gate.jsonl" "$TSAN_BUILD/profile_gate_sd.jsonl" \
    --json > "$TSAN_BUILD/diff_gate.jsonl"
sh tools/check_bench.sh --validate-diff "$TSAN_BUILD/diff_gate.jsonl"
