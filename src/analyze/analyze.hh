/**
 * @file
 * Static ILP analyzer: per-block dependence-height and resource bounds
 * computed from a CodeImage without running the simulator.
 *
 * For every block the analyzer builds the latency-weighted dataflow
 * dependence DAG (true register/scratch dependencies, conservative
 * may-alias memory ordering, syscall barriers — the same conservative
 * lattice the translating loader schedules against) and derives:
 *
 *  - the critical path (dependence height) in cycles, assuming cache-hit
 *    load latency;
 *  - the pure-dataflow ILP bound nodes/height — what infinitely wide
 *    hardware could sustain inside the block;
 *  - analytic resource bounds at every issue model of the sweep grid
 *    (slot-count and width ceilings combined with the height floor);
 *  - for translated images, the *packed* bound nodes/words. Because the
 *    engine issues at most one multi-node word per cycle, the maximum of
 *    nodes/words over all blocks is a sound upper bound on the retired
 *    nodes-per-cycle of ANY run of that image — the machine-checked
 *    `static bound >= dynamic IPC` oracle (staticIpcBound, cross-checked
 *    by the harness under FGP_ANALYZE_XCHECK).
 *
 * The analyzer never mutates the image, so analyzing can never change a
 * simulated schedule.
 */

#ifndef FGP_ANALYZE_ANALYZE_HH
#define FGP_ANALYZE_ANALYZE_HH

#include <cstdint>
#include <vector>

#include "base/histogram.hh"
#include "bbe/enlarge.hh"
#include "ir/image.hh"

namespace fgp::analyze {

/** Dependence-height and bound summary of one block. */
struct BlockBounds
{
    std::int32_t block = -1;   ///< image block id
    std::int32_t entryPc = -1;
    bool enlarged = false;
    bool companion = false;
    std::int32_t chainLen = 1;

    std::size_t nodes = 0;
    std::size_t memNodes = 0;
    std::size_t aluNodes = 0; ///< everything occupying an ALU slot

    /**
     * Latency-weighted critical path of the dataflow DAG (RAW +
     * conservative memory ordering + syscall barriers), in cycles.
     */
    int critPath = 0;

    /**
     * Critical path with the anti-dependencies no renamer can kill added:
     * WAR edges from a read of a live-in register to that register's
     * final in-block definition. Hardware renaming (dynamic machines) and
     * the tld's local renaming both leave exactly these, so
     * critPathResidual > critPath flags height lost to a false
     * dependency (lint AN001).
     */
    int critPathResidual = 0;

    /** nodes / critPath — the infinite-resource ILP bound. */
    double dataflowBound = 0.0;

    /** Issue words (0 when the image is not yet translated). */
    std::size_t words = 0;

    /** nodes / words when words are present, else 0. */
    double packedBound = 0.0;
};

/** Analytic resource bound of a whole image at one issue shape. */
struct ResourceBound
{
    int issueIndex = 0; ///< paper's model number (0 for custom shapes)
    int width = 0;
    /**
     * max over blocks of nodes / max(height, slot ceilings): no machine
     * with this issue shape can beat this inside any single block.
     */
    double bound = 0.0;
};

/** Whole-image analysis. */
struct ImageAnalysis
{
    std::vector<BlockBounds> blocks;

    std::size_t totalNodes = 0;
    std::size_t enlargedBlocks = 0;
    std::size_t companionBlocks = 0;

    /** Per-block dependence heights (critPath), histogrammed. */
    Histogram heightHist{4, 32};

    int critPathMax = 0;
    double meanHeight = 0.0;

    /** max over blocks of the per-block dataflow bound. */
    double dataflowBound = 0.0;

    /**
     * max over blocks of nodes/words (0 for untranslated images). Sound
     * upper bound on retired nodes/cycle of any simulation of this
     * image — see staticIpcBound().
     */
    double staticIpcBound = 0.0;

    /** One analytic bound per issue model of the sweep grid (1..8). */
    std::vector<ResourceBound> resourceBounds;
};

/**
 * Analyze every block of @p image. @p mem_hit_latency is the load
 * latency assumed on the critical path (the scheduler's cache-hit
 * assumption; pass config.memory.hitLatency for a specific machine).
 */
ImageAnalysis analyzeImage(const CodeImage &image, int mem_hit_latency = 1);

/** Dataflow dependence height of one block (BlockBounds::critPath). */
int dependenceHeight(const ImageBlock &block, int mem_hit_latency = 1);

/** Height with the renamer-proof WAR edges added (critPathResidual). */
int residualHeight(const ImageBlock &block, int mem_hit_latency = 1);

/** One renamer-proof WAR: read of live-in @p reg before its final def. */
struct ResidualWar
{
    std::uint8_t reg = kRegNone;
    std::uint16_t reader = 0; ///< node index reading the live-in value
    std::uint16_t def = 0;    ///< node index of the final definition
};

/** All renamer-proof WAR edges of @p block (see lint AN001). */
std::vector<ResidualWar> residualWars(const ImageBlock &block);

/**
 * Sound static upper bound on retired nodes per cycle for a *translated*
 * image (words filled): the engine issues at most one word per cycle and
 * every retired node sits in exactly one word of a committed block, so
 * cycles >= committed words and IPC <= max over blocks of nodes/words.
 * Returns 0 for images without words.
 */
double staticIpcBound(const CodeImage &image);

/**
 * Whether the harness cross-checks `staticIpcBound >= measured IPC`
 * after every simulation. Default: on in debug builds (!NDEBUG), off in
 * release; the FGP_ANALYZE_XCHECK environment variable ("1"/"0")
 * overrides either way.
 */
bool xcheckEnabled();

/**
 * Audit of one planned enlargement chain: predicted dependence-height
 * reduction from fusing + re-optimizing the member blocks.
 */
struct ChainAudit
{
    std::size_t chainIndex = 0;     ///< index into plan.chains
    std::int32_t entryPc = -1;      ///< chain head entry pc
    std::size_t members = 0;        ///< chain length (with repeats)
    std::int32_t primaryBlock = -1; ///< primary block id in the enlarged image
    std::size_t nodes = 0;          ///< primary block nodes
    int memberHeightSum = 0;        ///< sum of member dataflow heights
    int fusedHeight = 0;            ///< height of the re-optimized primary

    /** Positive: fusion shortened the dependence chain. */
    int heightReduction() const { return memberHeightSum - fusedHeight; }
};

/**
 * Rank every chain of @p plan by predicted height reduction (descending;
 * ties by chain index). @p single is the pre-enlargement image the plan
 * applies to and @p enlarged the image applyEnlargement built from it.
 * Each primary block is re-optimized on a copy — mirroring what the
 * translating loader will do — before its fused height is measured.
 * Chains whose head was consumed by an earlier chain are skipped.
 */
std::vector<ChainAudit> auditChains(const CodeImage &single,
                                    const CodeImage &enlarged,
                                    const EnlargePlan &plan,
                                    int mem_hit_latency = 1);

/**
 * A bbe plan-audit hook (EnlargeOptions::auditHook) reordering planned
 * chains by predicted height reduction, descending (ties keep plan
 * order), so the most profitable fusions win entry-pc conflicts in
 * applyEnlargement. Measures fused heights against a throwaway enlarged
 * image. Opt-in: the default pipeline installs no hook, so schedules are
 * unchanged unless a caller asks for the ranking.
 */
PlanAuditHook heightRankingHook(int mem_hit_latency = 1);

} // namespace fgp::analyze

#endif // FGP_ANALYZE_ANALYZE_HH
