/**
 * @file
 * ILP-limit study: the paper's framing dispute. Jouppi/Wall '89 and
 * Smith/Lam/Horowitz '90 reported ~2x available parallelism; the paper
 * argues far more exists once dynamic scheduling, speculative execution
 * and enlargement combine. This bench measures the ladder from a
 * realistic machine to a near-dataflow limit:
 *
 *   1. dyn4 / issue 8 / single      (conventional-ish machine)
 *   2. dyn4 / issue 8 / enlarged    (the paper's proposal)
 *   3. dyn256 / issue 8 / perfect   (the paper's upper-bound run)
 *   4. huge window + huge word + perfect prediction (dataflow-ish limit)
 *
 * Memory config A throughout.
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("ILP limits", "from realistic machines to a dataflow-ish bound");

    const IssueModel huge = customIssue(16, 48);

    struct Rung
    {
        const char *name;
        MachineConfig config;
        int window;
    };
    const std::vector<Rung> ladder = {
        {"dyn4 / 4M12A / single",
         {Discipline::Dyn4, issueModel(8), memoryConfig('A'),
          BranchMode::Single},
         0},
        {"dyn4 / 4M12A / enlarged",
         {Discipline::Dyn4, issueModel(8), memoryConfig('A'),
          BranchMode::Enlarged},
         0},
        {"dyn256 / 4M12A / perfect",
         {Discipline::Dyn256, issueModel(8), memoryConfig('A'),
          BranchMode::Perfect},
         0},
        {"window 1024 / 16M48A / perfect",
         {Discipline::Dyn256, huge, memoryConfig('A'),
          BranchMode::Perfect},
         1024},
    };

    std::vector<std::string> header = {"machine"};
    for (const std::string &workload : workloadNames())
        header.push_back(workload);
    header.push_back("mean");
    Table table(std::move(header));

    for (const Rung &rung : ladder) {
        ExperimentRunner runner(envScale());
        if (rung.window) {
            ExperimentRunner::EngineTweaks tweaks;
            tweaks.windowOverride = rung.window;
            runner.setEngineTweaks(tweaks);
        }
        std::vector<double> row;
        double sum = 0.0;
        for (const std::string &workload : workloadNames()) {
            const double npc =
                runner.run(workload, rung.config).nodesPerCycle;
            row.push_back(npc);
            sum += npc;
        }
        row.push_back(sum / static_cast<double>(workloadNames().size()));
        table.addNumericRow(rung.name, row);
    }
    table.print(std::cout);

    std::cout << "\nThe paper's position: the ~2x 'limits' of "
                 "contemporaneous studies reflect machine assumptions, "
                 "not the programs; even its own realistic 3-6x is a "
                 "lower bound.\n";
    return 0;
}
