# Empty dependencies file for fgp_harness.
# This may be replaced when dependencies are built.
