/**
 * @file
 * Facade header: the complete public API of fgpsim. Link against the
 * `fgp` CMake target and include this one header.
 *
 *     #include "fgp/fgp.hh"
 *
 *     fgp::ExperimentRunner runner;
 *     auto r = runner.run("grep",
 *                         fgp::parseMachineConfig("dyn4/8A/enlarged"));
 *     std::cout << r.nodesPerCycle << "\n";
 */

#ifndef FGP_FGP_HH
#define FGP_FGP_HH

// Infrastructure.
#include "base/histogram.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "base/strutil.hh"
#include "base/table.hh"

// Machine configuration space (§3.1 parameters).
#include "arch/config.hh"

// Micro-op ISA, programs, images, assembler.
#include "ir/cfg.hh"
#include "ir/image.hh"
#include "ir/node.hh"
#include "ir/opcode.hh"
#include "ir/printer.hh"
#include "ir/program.hh"
#include "masm/assembler.hh"

// Functional execution (golden models) and the simulated OS.
#include "vm/atomic_runner.hh"
#include "vm/exec.hh"
#include "vm/interp.hh"
#include "vm/memory.hh"
#include "vm/profile.hh"
#include "vm/profile_io.hh"
#include "vm/simos.hh"

// Translating loader.
#include "tld/depgraph.hh"
#include "tld/optimizer.hh"
#include "tld/schedule.hh"
#include "tld/translate.hh"

// Basic block enlargement.
#include "bbe/enlarge.hh"
#include "bbe/plan.hh"

// Branch prediction and the memory system.
#include "branch/predictor.hh"
#include "branch/predictor_opts.hh"
#include "memsys/memsys.hh"

// The cycle-level engine.
#include "engine/engine.hh"

// Benchmarks and the experiment driver.
#include "harness/experiment.hh"
#include "workloads/workloads.hh"

#endif // FGP_FGP_HH
