file(REMOVE_RECURSE
  "CMakeFiles/fgp_memsys.dir/memsys.cc.o"
  "CMakeFiles/fgp_memsys.dir/memsys.cc.o.d"
  "libfgp_memsys.a"
  "libfgp_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
