#include "ir/image.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fgp {

std::int32_t
CodeImage::blockAtPc(std::int32_t pc) const
{
    // debug aid

    const auto it = entryByPc.find(pc);
    if (it == entryByPc.end())
        fgp_fatal("no block begins at original pc ", pc);
    return it->second;
}

void
CodeImage::blockIdPanic(std::int32_t id) const
{
    fgp_panic("block id ", id, " out of range (", blocks.size(), " blocks)");
}

std::size_t
CodeImage::totalNodes() const
{
    std::size_t total = 0;
    for (const auto &block : blocks)
        total += block.nodes.size();
    return total;
}

void
validateImage(const CodeImage &image)
{
    if (image.blocks.empty())
        fgp_fatal("image has no blocks");
    if (image.entryBlock < 0 ||
        image.entryBlock >= static_cast<std::int32_t>(image.blocks.size()))
        fgp_fatal("image entry block out of range");

    const auto num_blocks = static_cast<std::int32_t>(image.blocks.size());

    for (std::int32_t id = 0; id < num_blocks; ++id) {
        const ImageBlock &block = image.blocks[id];
        if (block.id != id)
            fgp_fatal("block ", id, " carries id ", block.id);
        if (block.nodes.empty())
            fgp_fatal("block ", id, " is empty");

        for (std::size_t i = 0; i < block.nodes.size(); ++i) {
            const Node &node = block.nodes[i];
            if (node.isControl() && i + 1 != block.nodes.size())
                fgp_fatal("block ", id, ": control node at position ", i,
                          " is not terminal");
            if (node.isFault()) {
                if (node.target < 0 || node.target >= num_blocks)
                    fgp_fatal("block ", id, ": fault target ", node.target,
                              " is not a block id");
            }
            auto check_reg = [&](std::uint8_t reg) {
                if (reg != kRegNone && reg >= kNumRegs)
                    fgp_fatal("block ", id, ": register r",
                              static_cast<int>(reg), " out of range");
            };
            check_reg(node.rs1);
            check_reg(node.rs2);
            check_reg(node.rd);
        }

        if (!block.words.empty()) {
            std::vector<int> seen(block.nodes.size(), 0);
            for (const Word &word : block.words) {
                if (word.empty())
                    fgp_fatal("block ", id, ": empty issue word");
                for (std::uint16_t idx : word) {
                    if (idx >= block.nodes.size())
                        fgp_fatal("block ", id, ": word references node ",
                                  idx, " out of range");
                    ++seen[idx];
                }
            }
            for (std::size_t i = 0; i < seen.size(); ++i)
                if (seen[i] != 1)
                    fgp_fatal("block ", id, ": node ", i, " appears in ",
                              seen[i], " words");
        }
    }

    for (const auto &[pc, id] : image.entryByPc)
        if (id < 0 || id >= num_blocks)
            fgp_fatal("entry map for pc ", pc, " points at bad block ", id);
}

} // namespace fgp
