#include "vm/profile_io.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

std::string
serializeProfile(const Profile &profile)
{
    std::string out = "# fgpsim profile v1\n";

    // Sort for stable, diffable files.
    std::vector<std::pair<std::int32_t, BranchArc>> arcs(
        profile.arcs.begin(), profile.arcs.end());
    std::sort(arcs.begin(), arcs.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[pc, arc] : arcs)
        out += format("branch %d %llu %llu\n", pc,
                      static_cast<unsigned long long>(arc.taken),
                      static_cast<unsigned long long>(arc.notTaken));

    std::vector<std::pair<std::int32_t, std::uint64_t>> jumps(
        profile.jumps.begin(), profile.jumps.end());
    std::sort(jumps.begin(), jumps.end());
    for (const auto &[pc, count] : jumps)
        out += format("jump %d %llu\n", pc,
                      static_cast<unsigned long long>(count));
    return out;
}

Profile
parseProfile(std::string_view text)
{
    Profile profile;
    int line_no = 0;
    for (const std::string &raw : split(text, '\n')) {
        ++line_no;
        const std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#')
            continue;
        const auto fields = split(line, ' ');

        auto field_int = [&](std::size_t idx) -> std::int64_t {
            if (idx >= fields.size())
                fgp_fatal("profile line ", line_no, ": missing field ",
                          idx);
            const auto value = parseInt(fields[idx]);
            if (!value)
                fgp_fatal("profile line ", line_no, ": bad number '",
                          fields[idx], "'");
            return *value;
        };

        if (fields[0] == "branch") {
            if (fields.size() != 4)
                fgp_fatal("profile line ", line_no,
                          ": branch needs pc taken not-taken");
            BranchArc arc;
            arc.taken = static_cast<std::uint64_t>(field_int(2));
            arc.notTaken = static_cast<std::uint64_t>(field_int(3));
            profile.arcs[static_cast<std::int32_t>(field_int(1))] = arc;
            profile.totalBranches += arc.total();
        } else if (fields[0] == "jump") {
            if (fields.size() != 3)
                fgp_fatal("profile line ", line_no,
                          ": jump needs pc count");
            profile.jumps[static_cast<std::int32_t>(field_int(1))] =
                static_cast<std::uint64_t>(field_int(2));
        } else {
            fgp_fatal("profile line ", line_no, ": unknown record '",
                      fields[0], "'");
        }
    }
    return profile;
}

} // namespace fgp
