/** Assembler tests: syntax, pseudo-ops, directives, errors, round-trip. */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include <sstream>

#include "ir/printer.hh"
#include "masm/assembler.hh"

namespace fgp {
namespace {

TEST(Asm, BasicInstruction)
{
    const Program p = assemble("main: add r1, r2, r3\n");
    ASSERT_EQ(p.instrs.size(), 1u);
    EXPECT_EQ(p.instrs[0].op, Opcode::ADD);
    EXPECT_EQ(p.instrs[0].rd, 1);
    EXPECT_EQ(p.instrs[0].rs1, 2);
    EXPECT_EQ(p.instrs[0].rs2, 3);
    EXPECT_EQ(p.entry, 0);
}

TEST(Asm, RegisterAliases)
{
    const Program p = assemble(
        "add v0, a0, a1\nadd sp, fp, ra\nadd zero, v1, a3\n");
    EXPECT_EQ(p.instrs[0].rd, kRegV0);
    EXPECT_EQ(p.instrs[0].rs1, kRegA0);
    EXPECT_EQ(p.instrs[0].rs2, kRegA1);
    EXPECT_EQ(p.instrs[1].rd, kRegSp);
    EXPECT_EQ(p.instrs[1].rs1, kRegFp);
    EXPECT_EQ(p.instrs[1].rs2, kRegRa);
    EXPECT_EQ(p.instrs[2].rd, kRegZero);
    EXPECT_EQ(p.instrs[2].rs1, kRegV1);
    EXPECT_EQ(p.instrs[2].rs2, kRegA3);
}

TEST(Asm, MemoryOperands)
{
    const Program p = assemble("lw r1, -4(r2)\nsw r3, 0x10(sp)\nlb r4, (r5)\n");
    EXPECT_EQ(p.instrs[0].imm, -4);
    EXPECT_EQ(p.instrs[0].rs1, 2);
    EXPECT_EQ(p.instrs[1].imm, 16);
    EXPECT_EQ(p.instrs[1].rs2, 3);
    EXPECT_EQ(p.instrs[1].rs1, kRegSp);
    EXPECT_EQ(p.instrs[2].imm, 0);
}

TEST(Asm, Immediates)
{
    const Program p = assemble(
        "addi r1, r0, 10\naddi r2, r0, -10\naddi r3, r0, 0x1f\n"
        "addi r4, r0, 'A'\naddi r5, r0, '\\n'\n");
    EXPECT_EQ(p.instrs[0].imm, 10);
    EXPECT_EQ(p.instrs[1].imm, -10);
    EXPECT_EQ(p.instrs[2].imm, 31);
    EXPECT_EQ(p.instrs[3].imm, 65);
    EXPECT_EQ(p.instrs[4].imm, 10);
}

TEST(Asm, PseudoOps)
{
    const Program p = assemble(R"(
main:   li   r1, 1234
        mov  r2, r1
        nop
        not  r3, r1
        neg  r4, r1
        ret
)");
    EXPECT_EQ(p.instrs[0].op, Opcode::ADDI);
    EXPECT_EQ(p.instrs[0].rs1, kRegZero);
    EXPECT_EQ(p.instrs[0].imm, 1234);
    EXPECT_EQ(p.instrs[1].op, Opcode::ADDI);
    EXPECT_EQ(p.instrs[1].imm, 0);
    EXPECT_EQ(p.instrs[2].rd, kRegZero);
    EXPECT_EQ(p.instrs[3].op, Opcode::XORI);
    EXPECT_EQ(p.instrs[3].imm, -1);
    EXPECT_EQ(p.instrs[4].op, Opcode::SUB);
    EXPECT_EQ(p.instrs[4].rs1, kRegZero);
    EXPECT_EQ(p.instrs[5].op, Opcode::JR);
    EXPECT_EQ(p.instrs[5].rs1, kRegRa);
}

TEST(Asm, BranchPseudoOpsSwapOperands)
{
    const Program p = assemble(R"(
x:      bgt  r1, r2, x
        ble  r1, r2, x
        bgtu r1, r2, x
        bleu r1, r2, x
        beqz r3, x
        bnez r3, x
        bltz r3, x
        bgez r3, x
        blez r3, x
        bgtz r3, x
)");
    EXPECT_EQ(p.instrs[0].op, Opcode::BLT);
    EXPECT_EQ(p.instrs[0].rs1, 2);
    EXPECT_EQ(p.instrs[0].rs2, 1);
    EXPECT_EQ(p.instrs[1].op, Opcode::BGE);
    EXPECT_EQ(p.instrs[1].rs1, 2);
    EXPECT_EQ(p.instrs[2].op, Opcode::BLTU);
    EXPECT_EQ(p.instrs[3].op, Opcode::BGEU);
    EXPECT_EQ(p.instrs[4].op, Opcode::BEQ);
    EXPECT_EQ(p.instrs[4].rs2, kRegZero);
    EXPECT_EQ(p.instrs[8].op, Opcode::BGE);
    EXPECT_EQ(p.instrs[8].rs1, kRegZero);
    EXPECT_EQ(p.instrs[9].op, Opcode::BLT);
    EXPECT_EQ(p.instrs[9].rs1, kRegZero);
}

TEST(Asm, LabelsAndTargets)
{
    const Program p = assemble(R"(
main:   j skip
        nop
skip:   beq r1, r2, main
)");
    EXPECT_EQ(p.instrs[0].target, 2);
    EXPECT_EQ(p.instrs[2].target, 0);
}

TEST(Asm, ForwardDataLabelReference)
{
    const Program p = assemble(R"(
        .text
main:   la  r1, late
        lw  r2, late(r0)
        .data
early:  .word 7
late:   .word 9
)");
    EXPECT_EQ(static_cast<std::uint32_t>(p.instrs[0].imm), kDataBase + 4);
    EXPECT_EQ(static_cast<std::uint32_t>(p.instrs[1].imm), kDataBase + 4);
}

TEST(Asm, DataDirectives)
{
    const Program p = assemble(R"(
main:   nop
        .data
w:      .word 1, -1, 0x10
b:      .byte 1, 2, 255
s:      .asciiz "hi\n"
        .align 4
a:      .word 5
sp0:    .space 3
z:      .byte 9
)");
    ASSERT_GE(p.data.size(), 4u * 3 + 3 + 4);
    EXPECT_EQ(p.data[0], 1u);
    EXPECT_EQ(p.data[4], 0xffu);
    EXPECT_EQ(p.data[8], 0x10u);
    EXPECT_EQ(p.data[12], 1u);
    EXPECT_EQ(p.data[14], 255u);
    EXPECT_EQ(p.data[15], 'h');
    EXPECT_EQ(p.data[16], 'i');
    EXPECT_EQ(p.data[17], '\n');
    EXPECT_EQ(p.data[18], 0u);
    EXPECT_EQ(p.dataLabels.at("a") % 4, 0u);
    EXPECT_EQ(p.dataLabels.at("z") - p.dataLabels.at("sp0"), 3u);
}

TEST(Asm, DataLabelWithOffset)
{
    const Program p = assemble(R"(
main:   la r1, buf+8
        .data
buf:    .space 16
)");
    EXPECT_EQ(static_cast<std::uint32_t>(p.instrs[0].imm), kDataBase + 8);
}

TEST(Asm, CommentsAndBlankLines)
{
    const Program p = assemble(R"(
# full line comment
main:   nop        # trailing comment
        ; semicolon comment
        nop
)");
    EXPECT_EQ(p.instrs.size(), 2u);
}

TEST(Asm, HashInStringLiteralIsNotComment)
{
    const Program p = assemble(R"(
main:   nop
        .data
s:      .asciiz "a#b"
)");
    ASSERT_EQ(p.data.size(), 4u);
    EXPECT_EQ(p.data[1], '#');
}

TEST(Asm, MultipleLabelsOneLine)
{
    const Program p = assemble("a: b: main: nop\n");
    EXPECT_EQ(p.codeLabels.at("a"), 0);
    EXPECT_EQ(p.codeLabels.at("b"), 0);
    EXPECT_EQ(p.codeLabels.at("main"), 0);
}

TEST(Asm, EntryDefaultsToMainOrZero)
{
    const Program with_main = assemble("nop\nmain: nop\n");
    EXPECT_EQ(with_main.entry, 1);
    const Program without = assemble("start: nop\n");
    EXPECT_EQ(without.entry, 0);
}

TEST(Asm, Errors)
{
    EXPECT_THROW(assemble("frobnicate r1, r2\n"), FatalError);
    EXPECT_THROW(assemble("add r1, r2\n"), FatalError);          // arity
    EXPECT_THROW(assemble("add r1, r2, r99\n"), FatalError);     // bad reg
    EXPECT_THROW(assemble("j nowhere\n"), FatalError);           // bad label
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), FatalError);      // dup label
    EXPECT_THROW(assemble("li r1, junk\n"), FatalError);         // bad imm
    EXPECT_THROW(assemble(".data\n.asciiz \"x\n"), FatalError);  // string
    EXPECT_THROW(assemble("feq r1, r2, x\nx: nop\n"), FatalError); // fault
    EXPECT_THROW(assemble(".word 1\n"), FatalError); // .word outside .data
    EXPECT_THROW(assemble(".data\n.align 3\n"), FatalError);     // npot
}

TEST(Asm, ErrorMentionsLineNumber)
{
    try {
        assemble("nop\nnop\nbad_op r1\n", "unit");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos);
        EXPECT_NE(std::string(err.what()).find("unit"), std::string::npos);
    }
}

/** Disassemble-reassemble round trip preserves the instruction stream. */
TEST(Asm, RoundTripThroughPrinter)
{
    const Program original = assemble(R"(
main:   li   r8, 100
        la   r9, table
loop:   lw   r10, 0(r9)
        add  r11, r11, r10
        addi r9, r9, 4
        addi r8, r8, -1
        bnez r8, loop
        sw   r11, 4(r9)
        jal  fn
        li   v0, 0
        li   a0, 0
        syscall
fn:     sra  r1, r2, r3
        sltiu r4, r5, 10
        lui  r6, 0x1234
        jr   ra
        .data
table:  .space 400
)");
    std::ostringstream text;
    printProgram(original, text);
    const Program reparsed = assemble(text.str(), "round-trip");

    ASSERT_EQ(reparsed.instrs.size(), original.instrs.size());
    for (std::size_t i = 0; i < original.instrs.size(); ++i)
        EXPECT_EQ(reparsed.instrs[i], original.instrs[i]) << "instr " << i;
    EXPECT_EQ(reparsed.entry, original.entry);
}

} // namespace
} // namespace fgp
