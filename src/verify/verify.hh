/**
 * @file
 * Structural image verifier: a static analysis pass over a CodeImage that
 * checks CFG well-formedness (every branch/fault target resolves, no
 * fall-through off the image, word packing and opcode/operand legality),
 * def-before-use via a forward may-be-uninitialized dataflow over the
 * CFG, single-terminator and fault-node placement rules, and the
 * plan-free subset of the BBE invariants (companions are mutual fault
 * targets, external edges enter the primary instance).
 *
 * All findings are reported as typed diagnostics (verify/diag.hh); no
 * check ever mutates the image, so running the verifier cannot change a
 * simulated schedule.
 */

#ifndef FGP_VERIFY_VERIFY_HH
#define FGP_VERIFY_VERIFY_HH

#include <functional>

#include "arch/config.hh"
#include "ir/image.hh"
#include "tld/depgraph.hh"
#include "verify/diag.hh"

namespace fgp::verify {

/** Verifier knobs. */
struct VerifyOptions
{
    /**
     * Issue model to hold the word packing against (slot shapes and, for
     * static schedules, dependence order). nullptr checks only the
     * model-independent packing invariants.
     */
    const IssueModel *issue = nullptr;

    /**
     * Report architectural registers that may be read before any
     * definition on some path from the entry (warnings; the runtime
     * zero-fills the register file, so such reads are legal but usually
     * unintended).
     */
    bool strictUninit = false;

    /**
     * Per-block no-alias facts provider for the dependence-order packing
     * check. A schedule produced under a disambiguation hook
     * (TranslateOptions::disambigHook) legally hoists loads above proven
     * independent stores; the packing check must judge it against the
     * same facts or report false WordPackingBroken findings. Default
     * none: the conservative dependence rule applies.
     */
    std::function<MemDepFacts(const ImageBlock &)> memFacts;
};

/**
 * Run every structural and dataflow check over @p image, appending
 * findings tagged with @p stage to @p report.
 */
void verifyImageInto(const CodeImage &image, Report &report,
                     const VerifyOptions &opts = {},
                     std::string_view stage = "image");

/** Convenience wrapper returning a fresh report. */
Report verifyImage(const CodeImage &image, const VerifyOptions &opts = {},
                   std::string_view stage = "image");

/**
 * CFG successors of block @p block_id: branch targets and fall-through
 * (through the entry map), fault-to companions, and — for register
 * jumps — every return site (the block after each JAL). Exposed for the
 * dataflow pass and for tests.
 */
std::vector<std::int32_t> imageSuccessors(const CodeImage &image,
                                          std::int32_t block_id);

} // namespace fgp::verify

#endif // FGP_VERIFY_VERIFY_HH
