#include "engine/engine.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>

#include "base/logging.hh"
#include "branch/predictor.hh"
#include "engine/store_index.hh"
#include "memsys/memsys.hh"
#include "metrics/registry.hh"
#include "obs/bus.hh"
#include "vm/exec.hh"

namespace fgp {

namespace {

enum class NState : std::uint8_t { Waiting, Ready, Executing, Done };

constexpr int kMaxSrcs = 5; // SYSCALL reads v0, a0..a3

/** One issued node instance. */
struct NodeInst
{
    const Node *node = nullptr;
    std::uint32_t nodeIdx = 0; ///< index within the image block's nodes
    std::uint32_t instIdx = 0; ///< index within the BlockInst's insts
    std::uint64_t seq = 0;
    NState state = NState::Waiting;

    int nSrc = 0;
    int unresolved = 0;
    std::uint32_t srcVal[kMaxSrcs] = {};
    bool srcReady[kMaxSrcs] = {};

    std::uint32_t value = 0;

    // Memory state.
    std::uint32_t addr = 0;
    bool addrKnown = false;
    std::uint8_t data[4] = {};
    std::uint32_t len = 0;
    bool dataKnown = false;
};

/** One in-flight basic block. */
struct BlockInst
{
    std::uint64_t bseq = 0;
    std::int32_t imageId = -1;
    std::vector<NodeInst> insts;
    std::size_t issuedWords = 0;
    bool fullyIssued = false;
    std::size_t doneCount = 0;

    // Next-block decision bookkeeping.
    bool predictionMade = false;
    bool predictedTaken = false;
    std::int32_t predictedTargetPc = -1; ///< for JR
    bool resolvedEarly = false;
    bool resolvedTaken = false;
    std::int32_t resolvedTargetPc = -1;
};

struct Ref
{
    std::uint64_t bseq;
    std::uint32_t idx;
    std::uint64_t seq;
};

struct RefNewestFirst
{
    bool operator()(const Ref &a, const Ref &b) const { return a.seq > b.seq; }
};

struct WaitRef
{
    std::uint64_t bseq;
    std::uint32_t idx;
    int slot;
};

struct RenameEntry
{
    bool ready = true;
    std::uint32_t value = 0;
    std::uint64_t tag = 0;
};

/** The whole machine for one simulate() call. */
class Engine
{
  public:
    Engine(const CodeImage &image, SimOS &os, const EngineOptions &opts)
        : image_(image), os_(os), opts_(opts),
          bus_(opts.bus),
          memsys_(opts.config.memory),
          predictor_(opts.predictor),
          windowCap_(opts.windowOverride > 0
                         ? opts.windowOverride
                         : windowBlocks(opts.config.discipline)),
          isStatic_(opts.config.discipline == Discipline::Static),
          perfect_(opts.config.branch == BranchMode::Perfect)
    {
        if (perfect_) {
            fgp_assert(opts.perfectTrace,
                       "perfect branch mode needs a committed-block trace");
            trace_ = opts.perfectTrace;
        }
    }

    EngineResult run();

  private:
    // ---- helpers ----------------------------------------------------
    /**
     * Find the in-flight block with exactly this bseq. Sequence numbers
     * are monotone but NOT dense (squashes leave gaps), so this is a
     * binary search over the sorted window.
     */
    BlockInst *
    blockBy(std::uint64_t bseq)
    {
        BlockInst *block = firstAtOrAfter(bseq);
        return block && block->bseq == bseq ? block : nullptr;
    }

    /** First in-flight block with bseq >= the argument, or nullptr. */
    BlockInst *
    firstAtOrAfter(std::uint64_t bseq)
    {
        if (window_.empty() || bseq > window_.back().bseq)
            return nullptr;
        const std::uint64_t front = window_.front().bseq;
        if (bseq <= front)
            return &window_.front();
        // Window bseqs are strictly increasing, so slot i holds bseq >=
        // front + i: the target sits at most (bseq - front) slots in.
        // Squash gaps only push it left, so start there and walk back.
        std::size_t idx = std::min(static_cast<std::size_t>(bseq - front),
                                   window_.size() - 1);
        while (idx > 0 && window_[idx - 1].bseq >= bseq)
            --idx;
        return &window_[idx];
    }

    NodeInst *
    instBy(const Ref &ref)
    {
        BlockInst *block = blockBy(ref.bseq);
        if (!block || ref.idx >= block->insts.size())
            return nullptr;
        NodeInst *inst = &block->insts[ref.idx];
        return inst->seq == ref.seq ? inst : nullptr;
    }

    void processCompletions();
    void retireBlocks();
    void refreshPending();
    void scheduleDynamic();
    void scheduleStaticWord();
    void issueCycle();

    void onDataReady(BlockInst &block, std::uint32_t idx);
    void tryStoreAgen(NodeInst &inst);
    void completeAt(std::uint64_t cycle, const Ref &ref);
    void executeNode(BlockInst &block, NodeInst &inst);
    bool tryExecuteLoad(BlockInst &block, NodeInst &inst);
    void resolveControl(BlockInst &block, NodeInst &inst);

    void decideNextFetch(BlockInst &block);
    void squashFrom(std::uint64_t bseq_inclusive);
    void rebuildRenameMap();
    void redirectTo(std::int32_t image_block);
    std::int32_t mapPc(std::int32_t pc);

    enum class MergeStatus { Ok, NeedData, UnknownAddr };
    /**
     * Speculatively read @p len bytes at @p addr as seen by sequence
     * number @p seq_limit. On failure, @p blocker (when non-null) names
     * the oldest node whose resolution must precede a retry: a store
     * with an unknown address or unknown data, or a pending syscall.
     */
    MergeStatus specRead(std::uint64_t seq_limit, std::uint32_t addr,
                         std::uint32_t len, std::uint8_t *out,
                         bool *forwarded,
                         std::uint64_t *blocker = nullptr);

    /** Move loads blocked on @p seq to the retry list (event wake-up). */
    void wakeLoadsBlockedOn(std::uint64_t seq);

    void finishExit(BlockInst &block, NodeInst &inst);

    // ---- members ----------------------------------------------------
    const CodeImage &image_;
    SimOS &os_;
    EngineOptions opts_;
    obs::EventBus *bus_;
    MemorySystem memsys_;
    BranchPredictor predictor_;
    SparseMemory mem_;

    const int windowCap_;
    const bool isStatic_;
    const bool perfect_;
    const std::vector<std::int32_t> *trace_ = nullptr;
    std::size_t traceIdx_ = 0;

    EngineResult result_;
    std::uint64_t cycle_ = 0;
    std::uint64_t seqCounter_ = 1;
    std::uint64_t bseqCounter_ = 1;

    std::deque<BlockInst> window_;
    RenameEntry rename_[kNumRegs];
    std::uint32_t committedRegs_[kNumRegs] = {};

    std::unordered_map<std::uint64_t, std::vector<WaitRef>> waiters_;

    /** One scheduled completion. Kept in a flat binary heap: completions
     *  are pushed/popped millions of times per run and a node-based
     *  multimap spends most of that in the allocator. */
    struct Event
    {
        std::uint64_t cycle;
        Ref ref;
    };
    struct EventLater
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.cycle > b.cycle;
        }
    };
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;

    std::priority_queue<Ref, std::vector<Ref>, RefNewestFirst> readyAlu_;
    std::priority_queue<Ref, std::vector<Ref>, RefNewestFirst> readyMem_;
    std::vector<Ref> pendingSys_;

    std::deque<Ref> storeQueue_;
    StoreIndex storeIndex_; ///< addr-indexed view of resolved stores
    std::set<std::uint64_t> unknownStoreAddrs_;
    std::set<std::uint64_t> pendingSyscallSeqs_;
    /** Stores with unresolved data (maintained under conservativeLoads). */
    std::set<std::uint64_t> unknownStoreData_;

    /**
     * Event-driven load scheduling: a load that fails disambiguation
     * parks under the seq of the node blocking it; resolving (or
     * squashing) that node moves the waiters to retryLoads_, drained
     * once per cycle at the former polling point so cycle timing is
     * identical to the polled schedule.
     */
    std::map<std::uint64_t, std::vector<Ref>> loadWaiters_;
    std::vector<Ref> retryLoads_;
    /** Set when retirement/completion/squash may change syscall
     *  eligibility; cleared after the pendingSys_ scan. */
    bool sysWake_ = true;

    struct WordRef
    {
        std::uint64_t bseq;
        std::size_t wordIdx;
    };
    std::deque<WordRef> wordQueue_; ///< static machine in-order word stream

    /** Fault-target chooser (extension): entry pc -> alternate block. */
    struct FaultChoice
    {
        std::int32_t target = -1;
        std::uint8_t counter = 0; ///< 0..3; >=2 selects the alternate
    };
    std::unordered_map<std::int32_t, FaultChoice> faultChoice_;
    std::uint64_t issueCycles_ = 0;

    // Per-cycle counters kept as members (a StatGroup add costs a string
    // key construction plus a map lookup; these fire nearly every cycle).
    std::uint64_t fetchRedirectCycles_ = 0;
    std::uint64_t fetchIdleCycles_ = 0;
    std::uint64_t issueStallWindow_ = 0;
    std::uint64_t wordStallCycles_ = 0;
    /** Issue slots wasted by words narrower than the machine width. */
    std::uint64_t shortWordSlots_ = 0;
    /** Refs currently parked in loadWaiters_ (includes refs whose load
     *  was squashed while parked, until their blocker resolves). */
    std::uint64_t parkedLoads_ = 0;

    // Incremental window-content counters (the paper's three measures).
    std::int64_t validCount_ = 0;  ///< issued, not retired
    std::int64_t activeCount_ = 0; ///< issued, not scheduled
    std::int64_t readyCount_ = 0;  ///< active and schedulable

    // Fetch state.
    std::int32_t fetchImageBlock_ = -1; ///< block being issued (-1: pick new)
    std::int32_t nextFetchImageBlock_ = -1;
    std::uint64_t fetchBseq_ = 0;
    int fetchStall_ = 0;
    bool fetchIdle_ = false; ///< no known next block (exit path or JR wait)
    std::uint64_t jrWaitBseq_ = 0; ///< block whose JR fetch waits on

    bool exited_ = false;
};

/**
 * Publish one typed event when a bus is attached. The arguments are the
 * designated initializers of one obs::SimEvent; they must not be
 * evaluated when no bus is attached — emissions sit on the
 * execute/complete hot paths.
 */
#define OBS_EMIT(...)                                                         \
    do {                                                                      \
        if (bus_)                                                             \
            bus_->emit(obs::SimEvent{__VA_ARGS__});                           \
    } while (0)

// ---------------------------------------------------------------------
// Rename / operand plumbing
// ---------------------------------------------------------------------

/**
 * Address generation for stores happens as soon as the base register is
 * available, independent of the data operand — this is what lets younger
 * loads disambiguate and bypass (§2.1). No function unit is charged for
 * it; the store still occupies a memory port when it executes.
 */
void
Engine::tryStoreAgen(NodeInst &inst)
{
    if (!inst.node->isStore() || inst.addrKnown || !inst.srcReady[0])
        return;
    inst.addr = effectiveAddress(*inst.node, inst.srcVal[0]);
    inst.len = accessBytes(inst.node->op);
    inst.addrKnown = true;
    storeIndex_.addStore(inst.seq, inst.addr, inst.len);
    unknownStoreAddrs_.erase(inst.seq);
    wakeLoadsBlockedOn(inst.seq);
}

void
Engine::wakeLoadsBlockedOn(std::uint64_t seq)
{
    const auto it = loadWaiters_.find(seq);
    if (it == loadWaiters_.end())
        return;
    parkedLoads_ -= it->second.size();
    if (bus_) {
        for (const Ref &ref : it->second)
            bus_->emit(obs::SimEvent{.kind = obs::EventKind::LoadWake,
                                     .cycle = cycle_,
                                     .seq = ref.seq,
                                     .bseq = ref.bseq});
    }
    retryLoads_.insert(retryLoads_.end(), it->second.begin(),
                       it->second.end());
    loadWaiters_.erase(it);
}

void
Engine::onDataReady(BlockInst &block, std::uint32_t idx)
{
    NodeInst &inst = block.insts[idx];
    fgp_assert(inst.state == NState::Waiting, "double wakeup");
    inst.state = NState::Ready;
    ++readyCount_;
    if (isStatic_)
        return; // the in-order word dispatcher polls readiness itself

    const Ref ref{block.bseq, idx, inst.seq};
    if (inst.node->isSys()) {
        pendingSys_.push_back(ref);
        sysWake_ = true;
    } else if (inst.node->isLoad()) {
        // First attempt happens at the next refresh point, exactly when
        // the polled scheduler would have seen it.
        retryLoads_.push_back(ref);
    } else if (inst.node->isMem()) {
        readyMem_.push(ref);
    } else {
        readyAlu_.push(ref);
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

void
Engine::completeAt(std::uint64_t done_cycle, const Ref &ref)
{
    events_.push(Event{done_cycle, ref});
}

Engine::MergeStatus
Engine::specRead(std::uint64_t seq_limit, std::uint32_t addr,
                 std::uint32_t len, std::uint8_t *out, bool *forwarded,
                 std::uint64_t *blocker)
{
    // Gate: every older store must have a known address, and no older
    // system call may still be pending (system calls write memory
    // directly, so they are barriers for younger loads). The oldest
    // member of each ordered set is the watermark, so the check is O(1).
    const auto oldest_unknown = unknownStoreAddrs_.begin();
    if (oldest_unknown != unknownStoreAddrs_.end() &&
        *oldest_unknown < seq_limit) {
        if (blocker)
            *blocker = *oldest_unknown;
        return MergeStatus::UnknownAddr;
    }
    const auto oldest_sys = pendingSyscallSeqs_.begin();
    if (oldest_sys != pendingSyscallSeqs_.end() &&
        *oldest_sys < seq_limit) {
        if (blocker)
            *blocker = *oldest_sys;
        return MergeStatus::UnknownAddr;
    }
    if (opts_.conservativeLoads) {
        // All older stores have known addresses here (gate above), so
        // "any older store still lacking data" is exactly the oldest
        // member of the unknown-data set.
        const auto oldest_data = unknownStoreData_.begin();
        if (oldest_data != unknownStoreData_.end() &&
            *oldest_data < seq_limit) {
            if (blocker)
                *blocker = *oldest_data;
            return MergeStatus::NeedData;
        }
    }

    bool any_forward = false;
    for (std::uint32_t b = 0; b < len; ++b) {
        const std::uint32_t byte_addr = addr + b;
        const StoreIndex::Lookup hit =
            storeIndex_.lookup(byte_addr, seq_limit);
        switch (hit.status) {
          case StoreIndex::Lookup::Status::NeedData:
            if (blocker)
                *blocker = hit.blocker;
            return MergeStatus::NeedData;
          case StoreIndex::Lookup::Status::Hit:
            out[b] = hit.value;
            any_forward = true;
            break;
          case StoreIndex::Lookup::Status::Miss:
            out[b] = mem_.read8(byte_addr);
            break;
        }
    }
    if (forwarded)
        *forwarded = any_forward;
    return MergeStatus::Ok;
}

bool
Engine::tryExecuteLoad(BlockInst &block, NodeInst &inst)
{
    const std::uint32_t addr = effectiveAddress(*inst.node, inst.srcVal[0]);
    std::uint8_t bytes[4];
    bool forwarded = false;
    std::uint64_t blocked_on = 0;
    const MergeStatus status = specRead(inst.seq, addr,
                                        accessBytes(inst.node->op), bytes,
                                        &forwarded, &blocked_on);
    if (status != MergeStatus::Ok) {
        if (!isStatic_) {
            fgp_assert(blocked_on != 0, "blocked load without a blocker");
            loadWaiters_[blocked_on].push_back(
                Ref{block.bseq, inst.instIdx, inst.seq});
            ++parkedLoads_;
            OBS_EMIT(.kind = obs::EventKind::LoadBlock, .cycle = cycle_,
                     .seq = inst.seq, .bseq = block.bseq,
                     .node = inst.node, .addr = addr,
                     .blocker = blocked_on);
        }
        return false;
    }

    inst.addr = addr;
    inst.addrKnown = true;
    inst.value = loadResult(inst.node->op, bytes);
    inst.state = NState::Executing;
    --activeCount_;
    --readyCount_;
    ++result_.executedNodes;
    const int latency = memsys_.loadLatency(addr, forwarded);
    if (bus_ && forwarded)
        bus_->emit(obs::SimEvent{.kind = obs::EventKind::StoreForward,
                                 .cycle = cycle_,
                                 .seq = inst.seq,
                                 .bseq = block.bseq,
                                 .node = inst.node,
                                 .addr = addr});
    OBS_EMIT(.kind = obs::EventKind::Schedule, .cycle = cycle_,
             .seq = inst.seq, .bseq = block.bseq, .node = inst.node,
             .addr = addr, .latency = latency, .forwarded = forwarded);
    completeAt(cycle_ + static_cast<std::uint64_t>(latency),
               Ref{block.bseq, inst.instIdx, inst.seq});
    return true;
}

void
Engine::executeNode(BlockInst &block, NodeInst &inst)
{
    inst.state = NState::Executing;
    --activeCount_;
    --readyCount_;
    ++result_.executedNodes;
    OBS_EMIT(.kind = obs::EventKind::Schedule, .cycle = cycle_,
             .seq = inst.seq, .bseq = block.bseq, .node = inst.node,
             .latency = 1);
    int latency = 1;

    const Node &node = *inst.node;
    switch (node.cls()) {
      case NodeClass::IntAlu:
        inst.value = evalAlu(node, inst.srcVal[0], inst.srcVal[1]);
        break;
      case NodeClass::Fault:
        inst.value = evalCondition(node.op, inst.srcVal[0], inst.srcVal[1])
                         ? 1
                         : 0;
        break;
      case NodeClass::Control:
        switch (node.op) {
          case Opcode::J:
            inst.value = 0;
            break;
          case Opcode::JAL:
            inst.value = static_cast<std::uint32_t>(node.origPc + 1);
            break;
          case Opcode::JR:
            inst.value = inst.srcVal[0];
            break;
          default: // conditional branch
            inst.value =
                evalCondition(node.op, inst.srcVal[0], inst.srcVal[1]) ? 1
                                                                       : 0;
            break;
        }
        break;
      case NodeClass::Mem: {
        fgp_assert(node.isStore(), "loads take the tryExecuteLoad path");
        tryStoreAgen(inst); // usually already done at wakeup
        fgp_assert(inst.addrKnown, "store executing without an address");
        const std::uint32_t len = storeBytes(node.op, inst.srcVal[1],
                                             inst.data);
        fgp_assert(len == inst.len, "store width changed");
        inst.dataKnown = true;
        storeIndex_.setData(inst.seq, inst.data);
        if (opts_.conservativeLoads)
            unknownStoreData_.erase(inst.seq);
        wakeLoadsBlockedOn(inst.seq);
        break;
      }
      case NodeClass::Sys: {
        // Reads observe in-flight older stores; writes are immediate (the
        // block is the window's oldest and cannot be squashed).
        const MemPorts ports{
            [&](std::uint32_t a) {
                std::uint8_t byte;
                const MergeStatus st =
                    specRead(inst.seq, a, 1, &byte, nullptr);
                fgp_assert(st == MergeStatus::Ok,
                           "system call read raced an incomplete store");
                return byte;
            },
            [&](std::uint32_t a, std::uint8_t v) { mem_.write8(a, v); },
        };
        const std::uint32_t res =
            os_.syscall(inst.srcVal[0], inst.srcVal[1], inst.srcVal[2],
                        inst.srcVal[3], inst.srcVal[4], ports);
        pendingSyscallSeqs_.erase(inst.seq);
        wakeLoadsBlockedOn(inst.seq);
        if (os_.exited()) {
            finishExit(block, inst);
            return;
        }
        inst.value = res;
        break;
      }
    }
    completeAt(cycle_ + static_cast<std::uint64_t>(latency),
               Ref{block.bseq, inst.instIdx, inst.seq});
}

void
Engine::finishExit(BlockInst &block, NodeInst &inst)
{
    exited_ = true;
    result_.exited = true;
    result_.exitCode = os_.exitCode();

    // Commit the partial block up to and including the exit node, exactly
    // like the functional VM counts it.
    const std::uint64_t partial = inst.nodeIdx + 1;
    OBS_EMIT(.kind = obs::EventKind::Retire, .cycle = cycle_,
             .bseq = block.bseq, .imageId = block.imageId,
             .count = static_cast<std::uint32_t>(partial), .partial = true);
    BlockStat &bs = result_.blockStats[block.imageId];
    ++bs.retiredBlocks;
    bs.retiredNodes += partial;
    result_.retiredNodes += partial;
    ++result_.committedBlocks;
    result_.blockSize.add(partial);
    result_.cycles = cycle_ + 1;
}

// ---------------------------------------------------------------------
// Completion, resolution, retirement
// ---------------------------------------------------------------------

void
Engine::processCompletions()
{
    std::vector<Ref> due;
    while (!events_.empty() && events_.top().cycle <= cycle_) {
        due.push_back(events_.top().ref);
        events_.pop();
    }
    // In-order resolution priority: an older fault/mispredict must act
    // before younger control nodes completing in the same cycle.
    std::sort(due.begin(), due.end(),
              [](const Ref &a, const Ref &b) { return a.seq < b.seq; });

    for (const Ref &ref : due) {
        NodeInst *inst = instBy(ref);
        if (!inst || inst->state != NState::Executing)
            continue; // squashed since scheduling
        BlockInst &block = *blockBy(ref.bseq);
        inst->state = NState::Done;
        ++block.doneCount;
        sysWake_ = true; // progress in the oldest block frees syscalls
        OBS_EMIT(.kind = obs::EventKind::Complete, .cycle = cycle_,
                 .seq = inst->seq, .bseq = block.bseq, .node = inst->node,
                 .value = inst->value);

        // Publish to the rename map.
        const std::uint8_t dst = inst->node->dstReg();
        if (dst != kRegNone && dst != kRegZero) {
            RenameEntry &entry = rename_[dst];
            if (!entry.ready && entry.tag == inst->seq) {
                entry.ready = true;
                entry.value = inst->value;
            }
        }

        // Wake consumers.
        if (auto wit = waiters_.find(inst->seq); wit != waiters_.end()) {
            const std::vector<WaitRef> waiting = std::move(wit->second);
            waiters_.erase(wit);
            for (const WaitRef &w : waiting) {
                BlockInst *cb = blockBy(w.bseq);
                if (!cb || w.idx >= cb->insts.size())
                    continue; // consumer squashed
                NodeInst &consumer = cb->insts[w.idx];
                if (consumer.state != NState::Waiting ||
                    consumer.srcReady[w.slot])
                    continue;
                consumer.srcVal[w.slot] = inst->value;
                consumer.srcReady[w.slot] = true;
                if (consumer.node->isStore() && w.slot == 0)
                    tryStoreAgen(consumer);
                if (--consumer.unresolved == 0)
                    onDataReady(*cb, w.idx);
            }
        }

        if (inst->node->isFault() || inst->node->isControl())
            resolveControl(block, *inst);
    }
}

void
Engine::resolveControl(BlockInst &block, NodeInst &inst)
{
    const Node &node = *inst.node;

    if (node.isFault()) {
        if (inst.value) {
            if (perfect_)
                fgp_panic("fault node fired under perfect prediction");
            ++result_.faultsFired;
            ++result_.blockStats[block.imageId].faultsFired;
            const std::int32_t target = node.target;
            OBS_EMIT(.kind = obs::EventKind::AssertFire, .cycle = cycle_,
                     .seq = inst.seq, .bseq = block.bseq,
                     .imageId = block.imageId, .node = &node,
                     .target = target);
            if (opts_.predictFaultTargets) {
                // Strengthen the chooser toward the block we fault into.
                FaultChoice &choice =
                    faultChoice_[image_.block(block.imageId).entryPc];
                if (choice.target == target) {
                    if (choice.counter < 3)
                        ++choice.counter;
                } else {
                    // A new alternate starts weak: only repeated faults
                    // into the same block switch the entry over.
                    choice.target = target;
                    choice.counter = 1;
                }
            }
            squashFrom(block.bseq);
            redirectTo(target);
        }
        return;
    }

    if (isConditionalBranch(node.op)) {
        const bool taken = inst.value != 0;
        ++result_.branchesResolved;
        if (perfect_)
            return;
        predictor_.updateConditional(node.origPc, taken);
        if (!block.predictionMade) {
            block.resolvedEarly = true;
            block.resolvedTaken = taken;
            return;
        }
        predictor_.recordOutcome(taken == block.predictedTaken);
        OBS_EMIT(.kind = obs::EventKind::Resolve, .cycle = cycle_,
                 .seq = inst.seq, .bseq = block.bseq,
                 .imageId = block.imageId, .node = &node, .taken = taken,
                 .mispredict = taken != block.predictedTaken);
        if (taken != block.predictedTaken) {
            ++result_.mispredicts;
            ++result_.blockStats[block.imageId].mispredicts;
            const ImageBlock &ib = image_.block(block.imageId);
            const std::int32_t pc = taken ? node.target : ib.fallthroughPc;
            squashFrom(block.bseq + 1);
            redirectTo(mapPc(pc));
        }
        return;
    }

    if (node.op == Opcode::JR) {
        const auto actual = static_cast<std::int32_t>(inst.value);
        if (perfect_)
            return;
        predictor_.updateIndirect(node.origPc, actual);
        if (!block.predictionMade) {
            block.resolvedEarly = true;
            block.resolvedTargetPc = actual;
            return;
        }
        OBS_EMIT(.kind = obs::EventKind::Resolve, .cycle = cycle_,
                 .seq = inst.seq, .bseq = block.bseq,
                 .imageId = block.imageId, .node = &node,
                 .value = inst.value,
                 .mispredict = block.predictedTargetPc >= 0 &&
                               block.predictedTargetPc != actual);
        if (block.predictedTargetPc == actual)
            return;
        if (block.predictedTargetPc >= 0) {
            // Predicted some other target: squash the wrong path.
            ++result_.mispredicts;
            ++result_.blockStats[block.imageId].mispredicts;
            squashFrom(block.bseq + 1);
            const auto it = image_.entryByPc.find(actual);
            if (it != image_.entryByPc.end()) {
                redirectTo(it->second);
            } else {
                // Wrong-path JR computed a garbage target; stall fetch
                // until an older control node repairs the path.
                fetchIdle_ = true;
                fetchImageBlock_ = -1;
                nextFetchImageBlock_ = -1;
            }
        } else if (fetchIdle_ && jrWaitBseq_ == block.bseq) {
            // Fetch was waiting for this JR to resolve. A wrong-path JR
            // can compute a garbage target; stay idle in that case until
            // an older control node repairs the path.
            const auto it = image_.entryByPc.find(actual);
            if (it != image_.entryByPc.end()) {
                fetchIdle_ = false;
                redirectTo(it->second);
            }
        }
        return;
    }
    // J / JAL: statically determined, nothing to verify.
}

void
Engine::retireBlocks()
{
    while (!window_.empty()) {
        BlockInst &front = window_.front();
        if (!front.fullyIssued || front.doneCount != front.insts.size())
            break;

        // Commit stores in issue order (program order for aliasing pairs).
        while (!storeQueue_.empty() &&
               storeQueue_.front().bseq == front.bseq) {
            NodeInst *store = instBy(storeQueue_.front());
            fgp_assert(store && store->state == NState::Done &&
                           store->addrKnown && store->dataKnown,
                       "retiring block with incomplete store");
            mem_.writeBytes(store->addr, store->data, store->len);
            memsys_.commitStore(store->addr, store->len);
            storeIndex_.erase(store->seq);
            storeQueue_.pop_front();
        }

        // Architectural register state.
        for (const NodeInst &inst : front.insts) {
            const std::uint8_t dst = inst.node->dstReg();
            if (dst != kRegNone && dst != kRegZero)
                committedRegs_[dst] = inst.value;
        }

        if (opts_.predictFaultTargets) {
            const ImageBlock &ib = image_.block(front.imageId);
            if (ib.enlarged) {
                const auto it = faultChoice_.find(ib.entryPc);
                if (it != faultChoice_.end() &&
                    it->second.target != front.imageId &&
                    it->second.counter > 0)
                    --it->second.counter;
            }
        }
        OBS_EMIT(.kind = obs::EventKind::Retire, .cycle = cycle_,
                 .bseq = front.bseq, .imageId = front.imageId,
                 .count = static_cast<std::uint32_t>(front.insts.size()));
        BlockStat &bs = result_.blockStats[front.imageId];
        ++bs.retiredBlocks;
        bs.retiredNodes += front.insts.size();
        validCount_ -= static_cast<std::int64_t>(front.insts.size());
        result_.retiredNodes += front.insts.size();
        result_.blockSize.add(front.insts.size());
        ++result_.committedBlocks;
        window_.pop_front();
        sysWake_ = true; // the new window front may free a syscall
    }
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

void
Engine::refreshPending()
{
    // Deferred loads: re-attempt only those whose blocking node resolved
    // (or was squashed) since the last refresh. The retry list is
    // drained here — between completion processing and scheduling — so
    // wake-ups land on exactly the cycle the per-cycle poll would have
    // found them.
    if (!retryLoads_.empty()) {
        std::vector<Ref> retry;
        retry.swap(retryLoads_);
        for (const Ref &ref : retry) {
            NodeInst *inst = instBy(ref);
            if (!inst || inst->state != NState::Ready)
                continue; // squashed (or already scheduled) meanwhile
            std::uint8_t scratch[4];
            std::uint64_t blocked_on = 0;
            const std::uint32_t addr =
                effectiveAddress(*inst->node, inst->srcVal[0]);
            if (specRead(inst->seq, addr, accessBytes(inst->node->op),
                         scratch, nullptr, &blocked_on) ==
                MergeStatus::Ok) {
                readyMem_.push(ref);
            } else {
                fgp_assert(blocked_on != 0,
                           "blocked load without a blocker");
                loadWaiters_[blocked_on].push_back(ref);
                ++parkedLoads_;
                OBS_EMIT(.kind = obs::EventKind::LoadBlock,
                         .cycle = cycle_, .seq = inst->seq,
                         .bseq = ref.bseq, .node = inst->node,
                         .addr = addr, .blocker = blocked_on);
            }
        }
    }

    // System calls become eligible when their block is the window's
    // oldest and every older node in the block is done. Only retirement,
    // completion or squash can change that, so skip the scan otherwise.
    if (!sysWake_)
        return;
    sysWake_ = false;
    for (std::size_t i = 0; i < pendingSys_.size();) {
        const Ref ref = pendingSys_[i];
        NodeInst *inst = instBy(ref);
        if (!inst || inst->state != NState::Ready) {
            pendingSys_[i] = pendingSys_.back();
            pendingSys_.pop_back();
            continue;
        }
        BlockInst &block = *blockBy(ref.bseq);
        bool eligible = !window_.empty() &&
                        window_.front().bseq == block.bseq;
        if (eligible) {
            for (std::uint32_t k = 0; k < inst->instIdx && eligible; ++k)
                eligible = block.insts[k].state == NState::Done;
        }
        if (eligible) {
            readyAlu_.push(ref);
            pendingSys_[i] = pendingSys_.back();
            pendingSys_.pop_back();
            continue;
        }
        ++i;
    }
}

void
Engine::scheduleDynamic()
{
    const IssueModel &issue = opts_.config.issue;

    if (issue.sequential) {
        // One node of any kind per cycle; oldest first.
        for (int budget = 1; budget > 0;) {
            Ref pick{};
            bool have = false;
            bool from_mem = false;
            while (!readyAlu_.empty()) {
                NodeInst *inst = instBy(readyAlu_.top());
                if (inst && inst->state == NState::Ready) {
                    pick = readyAlu_.top();
                    have = true;
                    break;
                }
                readyAlu_.pop();
            }
            while (!readyMem_.empty()) {
                NodeInst *inst = instBy(readyMem_.top());
                if (inst && inst->state == NState::Ready) {
                    if (!have || readyMem_.top().seq < pick.seq) {
                        pick = readyMem_.top();
                        have = true;
                        from_mem = true;
                    }
                    break;
                }
                readyMem_.pop();
            }
            if (!have)
                break;
            (from_mem ? readyMem_ : readyAlu_).pop();
            NodeInst *inst = instBy(pick);
            BlockInst &block = *blockBy(pick.bseq);
            if (inst->node->isLoad()) {
                if (!tryExecuteLoad(block, *inst))
                    continue; // parked on its blocker; next candidate
            } else {
                executeNode(block, *inst);
            }
            if (exited_)
                return;
            --budget;
        }
        return;
    }

    int mem_budget = issue.memSlots;
    while (mem_budget > 0 && !readyMem_.empty()) {
        const Ref ref = readyMem_.top();
        readyMem_.pop();
        NodeInst *inst = instBy(ref);
        if (!inst || inst->state != NState::Ready)
            continue;
        BlockInst &block = *blockBy(ref.bseq);
        if (inst->node->isLoad()) {
            if (!tryExecuteLoad(block, *inst))
                continue; // parked on its blocker
        } else {
            executeNode(block, *inst);
        }
        --mem_budget;
    }

    int alu_budget = issue.aluSlots;
    while (alu_budget > 0 && !readyAlu_.empty()) {
        const Ref ref = readyAlu_.top();
        readyAlu_.pop();
        NodeInst *inst = instBy(ref);
        if (!inst || inst->state != NState::Ready)
            continue;
        BlockInst &block = *blockBy(ref.bseq);
        executeNode(block, *inst);
        if (exited_)
            return;
        --alu_budget;
    }
}

void
Engine::scheduleStaticWord()
{
    while (!wordQueue_.empty() && !blockBy(wordQueue_.front().bseq))
        wordQueue_.pop_front();
    if (wordQueue_.empty())
        return;

    const WordRef wr = wordQueue_.front();
    BlockInst &block = *blockBy(wr.bseq);
    const ImageBlock &ib = image_.block(block.imageId);
    const Word &word = ib.words[wr.wordIdx];

    // Identify the word's instances: words issue in order, so the word's
    // instances are a contiguous run ending before later words' nodes.
    // Find them by node index.
    std::vector<NodeInst *> insts;
    insts.reserve(word.size());
    for (std::uint16_t node_idx : word) {
        NodeInst *found = nullptr;
        for (NodeInst &cand : block.insts) {
            if (cand.nodeIdx == node_idx) {
                found = &cand;
                break;
            }
        }
        if (!found)
            return; // word not fully issued yet
        insts.push_back(found);
    }

    // Full interlock: the word executes only when every node is ready.
    for (NodeInst *inst : insts) {
        if (inst->state != NState::Ready) {
            ++wordStallCycles_;
            return;
        }
        if (inst->node->isSys()) {
            // Serialize: block must be oldest, all older nodes done.
            if (window_.front().bseq != block.bseq)
                return;
            for (std::uint32_t k = 0; k < inst->instIdx; ++k)
                if (block.insts[k].state != NState::Done)
                    return;
        }
    }

    // Execute stores and ALU work first so same-word loads can
    // disambiguate against them, then the loads.
    for (NodeInst *inst : insts) {
        if (!inst->node->isLoad()) {
            executeNode(block, *inst);
            if (exited_)
                return;
        }
    }
    for (NodeInst *inst : insts) {
        if (inst->node->isLoad()) {
            const bool ok = tryExecuteLoad(block, *inst);
            fgp_assert(ok, "in-order load failed to disambiguate");
        }
    }
    wordQueue_.pop_front();
}

// ---------------------------------------------------------------------
// Fetch and issue
// ---------------------------------------------------------------------

std::int32_t
Engine::mapPc(std::int32_t pc)
{
    const std::int32_t primary = image_.blockAtPc(pc);
    if (opts_.predictFaultTargets) {
        const auto it = faultChoice_.find(pc);
        if (it != faultChoice_.end() && it->second.counter >= 2 &&
            it->second.target >= 0)
            return it->second.target;
    }
    return primary;
}

void
Engine::redirectTo(std::int32_t image_block)
{
    nextFetchImageBlock_ = image_block;
    fetchImageBlock_ = -1;
    fetchStall_ = opts_.redirectPenalty;
    fetchIdle_ = false;
}

void
Engine::decideNextFetch(BlockInst &block)
{
    block.predictionMade = true;

    if (perfect_) {
        if (traceIdx_ < trace_->size())
            nextFetchImageBlock_ = (*trace_)[traceIdx_++];
        else
            fetchIdle_ = true; // program exits inside a fetched block
        return;
    }

    const ImageBlock &ib = image_.block(block.imageId);
    const Node *term = ib.terminal();

    if (!term) {
        if (ib.fallthroughPc < 0)
            fetchIdle_ = true; // only an exit syscall can end this path
        else
            nextFetchImageBlock_ = mapPc(ib.fallthroughPc);
        return;
    }

    switch (term->op) {
      case Opcode::J:
        nextFetchImageBlock_ = mapPc(term->target);
        return;
      case Opcode::JAL:
        predictor_.pushReturn(term->origPc + 1);
        nextFetchImageBlock_ = mapPc(term->target);
        return;
      case Opcode::JR: {
        if (block.resolvedEarly) {
            block.predictedTargetPc = block.resolvedTargetPc;
            const auto it = image_.entryByPc.find(block.resolvedTargetPc);
            if (it == image_.entryByPc.end())
                fgp_fatal("JR to unmapped pc ", block.resolvedTargetPc);
            nextFetchImageBlock_ = it->second;
            return;
        }
        std::int32_t guess = -1;
        if (predictor_.rasEnabled())
            guess = predictor_.popReturn();
        if (guess < 0)
            guess = predictor_.predictIndirect(term->origPc);
        const auto it = guess >= 0 ? image_.entryByPc.find(guess)
                                   : image_.entryByPc.end();
        if (it != image_.entryByPc.end()) {
            block.predictedTargetPc = guess;
            nextFetchImageBlock_ = it->second;
        } else {
            block.predictedTargetPc = -1;
            fetchIdle_ = true;
            jrWaitBseq_ = block.bseq;
        }
        return;
      }
      default: { // conditional branch
        const bool taken =
            block.resolvedEarly
                ? block.resolvedTaken
                : predictor_.predictConditional(term->origPc, term->target);
        block.predictedTaken = taken;
        const std::int32_t pc = taken ? term->target : ib.fallthroughPc;
        nextFetchImageBlock_ = mapPc(pc);
        return;
      }
    }
}

void
Engine::issueCycle()
{
    if (fetchStall_ > 0) {
        --fetchStall_;
        ++fetchRedirectCycles_;
        return;
    }

    if (fetchImageBlock_ < 0) {
        if (fetchIdle_ || nextFetchImageBlock_ < 0) {
            ++fetchIdleCycles_;
            return;
        }
        if (static_cast<int>(window_.size()) >= windowCap_) {
            ++issueStallWindow_;
            return;
        }
        BlockInst block;
        block.bseq = bseqCounter_++;
        block.imageId = nextFetchImageBlock_;
        window_.push_back(std::move(block));
        fetchImageBlock_ = nextFetchImageBlock_;
        fetchBseq_ = window_.back().bseq;
        nextFetchImageBlock_ = -1;
    }

    BlockInst &block = *blockBy(fetchBseq_);
    const ImageBlock &ib = image_.block(block.imageId);
    fgp_assert(!ib.words.empty(), "image block ", ib.id,
               " has no issue words (image not translated?)");
    const Word &word = ib.words[block.issuedWords];

    for (std::uint16_t node_idx : word) {
        const Node &node = ib.nodes[node_idx];
        NodeInst inst;
        inst.node = &node;
        inst.nodeIdx = node_idx;
        inst.instIdx = static_cast<std::uint32_t>(block.insts.size());
        inst.seq = seqCounter_++;

        std::array<std::uint8_t, 5> srcs;
        inst.nSrc = node.srcRegs(srcs);
        for (int slot = 0; slot < inst.nSrc; ++slot) {
            const std::uint8_t reg = srcs[slot];
            if (reg == kRegNone || reg == kRegZero) {
                inst.srcVal[slot] = 0;
                inst.srcReady[slot] = true;
                continue;
            }
            const RenameEntry &entry = rename_[reg];
            if (entry.ready) {
                inst.srcVal[slot] = entry.value;
                inst.srcReady[slot] = true;
            } else {
                ++inst.unresolved;
                waiters_[entry.tag].push_back(
                    {block.bseq, inst.instIdx, slot});
            }
        }

        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero)
            rename_[dst] = {false, 0, inst.seq};

        const Ref ref{block.bseq, inst.instIdx, inst.seq};
        if (node.isStore()) {
            storeQueue_.push_back(ref);
            unknownStoreAddrs_.insert(inst.seq);
            if (opts_.conservativeLoads)
                unknownStoreData_.insert(inst.seq);
            tryStoreAgen(inst);
        }
        if (node.isSys())
            pendingSyscallSeqs_.insert(inst.seq);

        const bool ready_now = inst.unresolved == 0;
        block.insts.push_back(inst);
        ++result_.issuedNodes;
        ++validCount_;
        ++activeCount_;
        if (ready_now)
            onDataReady(block, block.insts.back().instIdx);
    }

    OBS_EMIT(.kind = obs::EventKind::Issue, .cycle = cycle_,
             .bseq = block.bseq, .imageId = block.imageId, .block = &ib,
             .wordIdx = static_cast<std::int32_t>(block.issuedWords));
    const std::size_t width =
        static_cast<std::size_t>(opts_.config.issue.width());
    if (word.size() < width)
        shortWordSlots_ += width - word.size();
    ++result_.blockStats[block.imageId].issuedWords;
    ++issueCycles_;
    if (isStatic_)
        wordQueue_.push_back({block.bseq, block.issuedWords});

    if (++block.issuedWords == ib.words.size()) {
        block.fullyIssued = true;
        decideNextFetch(block);
        fetchImageBlock_ = -1;
    }
}

// ---------------------------------------------------------------------
// Squash / repair
// ---------------------------------------------------------------------

void
Engine::squashFrom(std::uint64_t bseq_inclusive)
{
    const BlockInst *first = firstAtOrAfter(bseq_inclusive);
    if (!first) {
        // Nothing younger is in flight; still cancel any in-progress fetch.
        fetchImageBlock_ = -1;
        rebuildRenameMap();
        return;
    }
    fgp_assert(!first->insts.empty(), "squashing an empty block");
    const std::uint64_t seq_boundary = first->insts.front().seq;

    while (!window_.empty() && window_.back().bseq >= bseq_inclusive) {
        const BlockInst &victim = window_.back();
        OBS_EMIT(.kind = obs::EventKind::Squash, .cycle = cycle_,
                 .bseq = victim.bseq, .imageId = victim.imageId,
                 .count = static_cast<std::uint32_t>(victim.insts.size()));
        BlockStat &bs = result_.blockStats[victim.imageId];
        ++bs.squashedBlocks;
        bs.squashedNodes += victim.insts.size();
        for (const NodeInst &inst : victim.insts) {
            --validCount_;
            if (inst.state == NState::Waiting ||
                inst.state == NState::Ready)
                --activeCount_;
            if (inst.state == NState::Ready)
                --readyCount_;
        }
        ++result_.squashedBlocks;
        window_.pop_back();
    }
    while (!storeQueue_.empty() &&
           storeQueue_.back().seq >= seq_boundary)
        storeQueue_.pop_back();
    storeIndex_.squash(seq_boundary);
    unknownStoreAddrs_.erase(
        unknownStoreAddrs_.lower_bound(seq_boundary),
        unknownStoreAddrs_.end());
    pendingSyscallSeqs_.erase(
        pendingSyscallSeqs_.lower_bound(seq_boundary),
        pendingSyscallSeqs_.end());
    unknownStoreData_.erase(
        unknownStoreData_.lower_bound(seq_boundary),
        unknownStoreData_.end());
    while (!wordQueue_.empty() && wordQueue_.back().bseq >= bseq_inclusive)
        wordQueue_.pop_back();

    // Squashed stores/syscalls can never resolve: re-attempt every load
    // parked on one of them (surviving loads re-park on a live blocker).
    for (auto it = loadWaiters_.lower_bound(seq_boundary);
         it != loadWaiters_.end(); it = loadWaiters_.erase(it)) {
        parkedLoads_ -= it->second.size();
        retryLoads_.insert(retryLoads_.end(), it->second.begin(),
                           it->second.end());
    }
    sysWake_ = true;

    fetchImageBlock_ = -1; // any in-progress fetch was on the wrong path
    rebuildRenameMap();
}

void
Engine::rebuildRenameMap()
{
    for (std::uint8_t r = 0; r < kNumRegs; ++r)
        rename_[r] = {true, committedRegs_[r], 0};
    for (const BlockInst &block : window_) {
        for (const NodeInst &inst : block.insts) {
            const std::uint8_t dst = inst.node->dstReg();
            if (dst == kRegNone || dst == kRegZero)
                continue;
            if (inst.state == NState::Done)
                rename_[dst] = {true, inst.value, 0};
            else
                rename_[dst] = {false, 0, inst.seq};
        }
    }
}

// ---------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------

EngineResult
Engine::run()
{
    validateImage(image_);
    result_.issueWidth = opts_.config.issue.width();
    result_.blockStats.resize(image_.blocks.size());
    for (std::size_t i = 0; i < image_.blocks.size(); ++i)
        result_.blockStats[i].entryPc = image_.blocks[i].entryPc;
    const Program &prog = *image_.prog;
    if (!prog.data.empty())
        mem_.writeBytes(kDataBase, prog.data.data(), prog.data.size());
    os_.setInitialBrk(prog.initialBrk());
    committedRegs_[kRegSp] = kStackTop;
    rebuildRenameMap();

    if (perfect_) {
        fgp_assert(!trace_->empty(), "empty perfect trace");
        nextFetchImageBlock_ = (*trace_)[0];
        traceIdx_ = 1;
    } else {
        nextFetchImageBlock_ = image_.entryBlock;
    }

    std::uint64_t last_progress = 0;
    std::uint64_t progress_marker = 0;

    for (cycle_ = 0; cycle_ < opts_.maxCycles; ++cycle_) {
        processCompletions();
        if (exited_)
            break;
        retireBlocks();
        if (!isStatic_)
            refreshPending();
        if (isStatic_)
            scheduleStaticWord();
        else
            scheduleDynamic();
        if (exited_)
            break;
        issueCycle();
        result_.windowOccupancy.add(window_.size());
        result_.validNodes.add(static_cast<std::uint64_t>(validCount_));
        result_.activeNodes.add(static_cast<std::uint64_t>(activeCount_));
        result_.readyNodes.add(static_cast<std::uint64_t>(readyCount_));

        // Waiting-node attribution (same sampling point as the window
        // histograms). Ready nodes split into memory-parked loads,
        // serializing syscalls, and genuinely slot-starved work; the
        // parked count can transiently include loads squashed while
        // parked, so the FU-busy remainder is clamped at zero.
        StallBreakdown &st = result_.stalls;
        st.operandWaitNodeCycles +=
            static_cast<std::uint64_t>(activeCount_ - readyCount_);
        const std::uint64_t sys_waiting = pendingSys_.size();
        st.memoryWaitNodeCycles += parkedLoads_;
        st.serializeWaitNodeCycles += sys_waiting;
        const std::uint64_t ready = static_cast<std::uint64_t>(readyCount_);
        st.fuBusyNodeCycles += ready > parkedLoads_ + sys_waiting
                                   ? ready - parkedLoads_ - sys_waiting
                                   : 0;

        // Watchdog: the machine must make progress (issue, execute or
        // retire something) regularly or the model has deadlocked.
        const std::uint64_t marker = result_.issuedNodes +
                                     result_.executedNodes +
                                     result_.retiredNodes;
        if (marker != progress_marker) {
            progress_marker = marker;
            last_progress = cycle_;
        } else if (cycle_ - last_progress > 100000) {
            fgp_panic("engine deadlock: no progress for 100000 cycles "
                      "(config ", opts_.config.name(), ")");
        }
    }
    if (!exited_)
        fgp_fatal("cycle budget exceeded (", opts_.maxCycles, ") on config ",
                  opts_.config.name());

    predictor_.exportStats(result_.stats, "bpred.");
    memsys_.exportStats(result_.stats, "mem.");
    result_.stats.set("window_cap", static_cast<std::uint64_t>(windowCap_));
    result_.stats.set("issue_cycles", issueCycles_);
    // Match the incremental-add behaviour: a counter that never fired
    // leaves no key behind.
    if (fetchRedirectCycles_)
        result_.stats.set("fetch_redirect_cycles", fetchRedirectCycles_);
    if (fetchIdleCycles_)
        result_.stats.set("fetch_idle_cycles", fetchIdleCycles_);
    if (issueStallWindow_)
        result_.stats.set("issue_stall_window", issueStallWindow_);
    if (wordStallCycles_)
        result_.stats.set("word_stall_cycles", wordStallCycles_);
    if (issueCycles_) {
        result_.stats.setReal(
            "issue_slot_utilization",
            static_cast<double>(result_.issuedNodes) /
                (static_cast<double>(issueCycles_) *
                 opts_.config.issue.width()));
    }

    // Close the issue-slot books: every slot of every cycle is either an
    // issued node or attributed to exactly one cause. The remainder is
    // the exit cycle's drained slots (issue never runs on the cycle the
    // program exits).
    {
        StallBreakdown &st = result_.stalls;
        const std::uint64_t width =
            static_cast<std::uint64_t>(result_.issueWidth);
        st.fetchRedirectSlots = fetchRedirectCycles_ * width;
        st.fetchIdleSlots = fetchIdleCycles_ * width;
        st.windowFullSlots = issueStallWindow_ * width;
        st.shortWordSlots = shortWordSlots_;
        const std::uint64_t total = result_.cycles * width;
        const std::uint64_t accounted =
            result_.issuedNodes + st.fetchRedirectSlots +
            st.fetchIdleSlots + st.windowFullSlots + st.shortWordSlots;
        fgp_assert(accounted <= total,
                   "stall accounting overran the issue-slot budget");
        st.drainSlots = total - accounted;

        // Mirror into the named-stats registry (nonzero keys only, like
        // the other issue counters).
        const auto put = [&](const char *name, std::uint64_t v) {
            if (v)
                result_.stats.set(name, v);
        };
        put("stall.slots_fetch_redirect", st.fetchRedirectSlots);
        put("stall.slots_fetch_idle", st.fetchIdleSlots);
        put("stall.slots_window_full", st.windowFullSlots);
        put("stall.slots_short_word", st.shortWordSlots);
        put("stall.slots_drain", st.drainSlots);
        put("stall.node_cycles_operand_wait", st.operandWaitNodeCycles);
        put("stall.node_cycles_memory_wait", st.memoryWaitNodeCycles);
        put("stall.node_cycles_serialize_wait", st.serializeWaitNodeCycles);
        put("stall.node_cycles_fu_busy", st.fuBusyNodeCycles);
    }

    if (bus_)
        bus_->finish();
    return result_;
}

#undef OBS_EMIT

} // namespace

EngineResult
simulate(const CodeImage &image, SimOS &os, const EngineOptions &opts)
{
    Engine engine{image, os, opts};
    EngineResult result = engine.run();

    // Fold the finished run into the sweep-level registry (one batch of
    // counter adds per simulation; the cycle loop stays untouched).
    if (opts.metrics && opts.metrics->enabled()) {
        metrics::Registry &m = *opts.metrics;
        m.add("engine.sims", 1);
        m.add("engine.cycles", result.cycles);
        m.add("engine.retired_nodes", result.retiredNodes);
        m.add("engine.executed_nodes", result.executedNodes);
        m.add("engine.issued_nodes", result.issuedNodes);
        m.add("engine.committed_blocks", result.committedBlocks);
        m.add("engine.squashed_blocks", result.squashedBlocks);
        m.add("engine.branches_resolved", result.branchesResolved);
        m.add("engine.mispredicts", result.mispredicts);
        m.add("engine.faults_fired", result.faultsFired);
        m.add("engine.stall_slots", result.stalls.totalSlots());
    }
    return result;
}

} // namespace fgp
