/**
 * @file
 * Window-content metrics (§2.2): the paper defines the instruction
 * window three ways — active basic blocks, and the number of operations
 * that are valid (issued, not retired), active (issued, not scheduled)
 * or ready (active and schedulable). This bench reports all four
 * per-cycle means per scheduling discipline (issue model 8, memory A,
 * enlarged blocks).
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Window metrics",
           "mean per-cycle window content, issue 8 / memory A / enlarged");

    Table table({"discipline", "blocks", "valid ops", "active ops",
                 "ready ops", "nodes/cycle"});

    ExperimentRunner runner(envScale());
    for (Discipline d : allDisciplines()) {
        const MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                   BranchMode::Enlarged};
        double blocks = 0.0;
        double valid = 0.0;
        double active = 0.0;
        double ready = 0.0;
        double npc = 0.0;
        for (const std::string &workload : workloadNames()) {
            const ExperimentResult r = runner.run(workload, config);
            blocks += r.engine.windowOccupancy.mean();
            valid += r.engine.validNodes.mean();
            active += r.engine.activeNodes.mean();
            ready += r.engine.readyNodes.mean();
            npc += r.nodesPerCycle;
        }
        const double n = static_cast<double>(workloadNames().size());
        table.addRow({disciplineName(d), format("%.2f", blocks / n),
                      format("%.1f", valid / n),
                      format("%.1f", active / n),
                      format("%.2f", ready / n), format("%.3f", npc / n)});
    }
    table.print(std::cout);
    std::cout << "\nAn operation is valid from issue to retirement, "
                 "active until it is scheduled, and ready only while "
                 "schedulable (§2.2).\n";
    return 0;
}
