/**
 * @file
 * Reusable simulation state: the engine's arenas, rings and scratch
 * buffers, owned outside any single simulate() call.
 *
 * One sweep evaluates hundreds of (workload, configuration) cells; with
 * the node records, queues and heaps pooled here, the second and every
 * later run on a workspace performs zero steady-state allocations —
 * beginRun() resets logical contents but never frees capacity. The
 * harness keeps one workspace per worker thread; passing
 * EngineOptions::workspace = nullptr makes the engine fall back to a
 * private workspace with identical semantics (and identical schedules —
 * the workspace only changes *where* state lives, never what it holds).
 *
 * Node records are structure-of-arrays at field-group granularity:
 * parallel rings indexed by `pos & nodeMask()`, where pos is a dense
 * per-run slot counter. Retirement advances the head, squash rewinds
 * the tail, so live nodes always occupy a contiguous pos range and a
 * (pos, seq) pair is a complete O(1)-checkable node reference — no
 * hashing, no pointer chasing, no per-block vector. DESIGN.md ("Engine
 * memory layout") documents the lifecycle and invariants.
 */

#ifndef FGP_ENGINE_WORKSPACE_HH
#define FGP_ENGINE_WORKSPACE_HH

#include <cstdint>
#include <type_traits>
#include <vector>

#include "engine/containers.hh"
#include "engine/store_index.hh"
#include "profile/record.hh"
#include "vm/memory.hh"

namespace fgp {

struct Node;

struct EngineWorkspace
{
    static constexpr int kMaxSrcs = 5; // SYSCALL reads v0, a0..a3

    // ---- SoA node records (rings over pos & nodeMask()) -------------
    /** Dataflow group: touched at issue, wakeup and execute. */
    struct ExecRec
    {
        const Node *node;
        std::uint32_t srcVal[kMaxSrcs];
        std::uint32_t value;
        std::uint8_t nSrc;
        std::uint8_t unresolved;
        std::uint8_t srcReadyMask;
    };

    /** Memory group: only loads/stores/syscalls touch it. */
    struct MemRec
    {
        std::uint32_t addr;
        std::uint8_t data[4];
        std::uint8_t len;
        bool addrKnown;
        bool dataKnown;
    };

    /** Identity group: block membership and static-node index. */
    struct MetaRec
    {
        std::uint32_t blockPos;
        std::uint32_t nodeIdx;
    };

    /** Head+tail of a pooled chain (kNilIndex when empty). */
    struct ChainRef
    {
        std::uint32_t head;
        std::uint32_t tail;
    };

    std::vector<std::uint64_t> nodeSeq; ///< validity tag (unique per run)
    std::vector<std::uint8_t> nodeState;
    std::vector<ExecRec> exec;
    std::vector<MemRec> memRec;
    std::vector<MetaRec> meta;
    std::vector<ChainRef> waitChain; ///< consumers waiting on this producer
    std::vector<ChainRef> loadChain; ///< loads parked on this blocker

    /** Interval-profiler lane (profile/record.hh): sized only when a
     *  profiler is attached (ensureProfLane), so unprofiled runs carry
     *  no extra ring and growNodes skips the lane entirely. */
    std::vector<profile::NodeProf> profRec;

    std::uint32_t nodeMask() const
    {
        return static_cast<std::uint32_t>(nodeSeq.size() - 1);
    }

    // ---- In-flight block records (ring over pos & blockMask()) ------
    struct BlockRec
    {
        std::uint64_t bseq;
        std::int32_t imageId;
        std::uint32_t firstPos; ///< pos of the block's first node
        std::uint32_t count;    ///< nodes issued so far
        std::uint32_t issuedWords;
        std::uint32_t doneCount;

        // Next-block decision bookkeeping.
        std::int32_t predictedTargetPc;
        std::int32_t resolvedTargetPc;
        bool fullyIssued;
        bool predictionMade;
        bool predictedTaken;
        bool resolvedEarly;
        bool resolvedTaken;
    };
    std::vector<BlockRec> blocks;

    std::uint32_t blockMask() const
    {
        return static_cast<std::uint32_t>(blocks.size() - 1);
    }

    // ---- Chains, queues, heaps, scratch -----------------------------
    /** One wait-chain entry. aux is the waiting slot (operand chains) or
     *  the parked load's bseq (load chains — kept for the observability
     *  stream, which reports the original bseq even for refs whose load
     *  was squashed while parked). */
    struct ChainItem
    {
        std::uint64_t seq;
        std::uint64_t aux;
        std::uint32_t pos;
    };
    ChainPool<ChainItem> chains;

    /** A (pos, seq) node reference — the post-layout Ref. */
    struct NodeRef
    {
        std::uint64_t seq;
        std::uint32_t pos;
    };

    struct Event
    {
        std::uint64_t cycle;
        std::uint64_t seq;
        std::uint32_t pos;
    };
    struct EventSooner
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.cycle < b.cycle;
        }
    };
    struct RefOldestFirst
    {
        bool
        operator()(const NodeRef &a, const NodeRef &b) const
        {
            return a.seq < b.seq;
        }
    };

    MinHeap<Event, EventSooner> events;
    MinHeap<NodeRef, RefOldestFirst> readyAlu;
    MinHeap<NodeRef, RefOldestFirst> readyMem;

    std::vector<NodeRef> pendingSys;
    std::vector<NodeRef> retryLoads;
    std::vector<NodeRef> retryScratch; ///< swap partner for retryLoads
    std::vector<NodeRef> dueScratch;   ///< completions due this cycle

    RingBuffer<NodeRef> storeQueue;

    struct WordRef
    {
        std::uint64_t bseq;
        std::uint32_t blockPos;
        std::uint32_t wordIdx;
        std::uint32_t firstInst; ///< block-relative index of word node 0
    };
    RingBuffer<WordRef> wordQueue; ///< static machine in-order word stream

    /** Watermark rings: seq-sorted (pushed in issue order), membership
     *  resolved lazily against the node record, suffix-popped on squash.
     *  Replace the std::set begin()/erase()/lower_bound() watermarks. */
    RingBuffer<NodeRef> unknownStoreAddrs;
    RingBuffer<NodeRef> pendingSyscallSeqs;
    RingBuffer<NodeRef> unknownStoreData;

    StoreIndex storeIndex;

    /** Simulated flat memory; pages persist across runs (resetRetain). */
    SparseMemory mem;

    /**
     * Reset logical contents for a new simulation without releasing any
     * capacity. Node/block rings need no wipe: validity is established
     * by the per-run (pos, seq) range checks, never by slot contents.
     */
    void
    beginRun()
    {
        if (nodeSeq.empty())
            growNodes(0, 0);
        if (blocks.empty())
            blocks.resize(512);
        chains.clearRetain();
        events.clearRetain();
        readyAlu.clearRetain();
        readyMem.clearRetain();
        pendingSys.clear();
        retryLoads.clear();
        retryScratch.clear();
        dueScratch.clear();
        storeQueue.clearRetain();
        wordQueue.clearRetain();
        unknownStoreAddrs.clearRetain();
        pendingSyscallSeqs.clearRetain();
        unknownStoreData.clearRetain();
        storeIndex.clearRetain();
        mem.resetRetain();
    }

    /**
     * Double the node ring, re-placing live records (pos in
     * [head, next)) at their new masked slots. References by pos remain
     * valid — the mapping pos -> slot changes, pos itself does not.
     */
    void
    growNodes(std::uint32_t head, std::uint32_t next)
    {
        const std::size_t old_cap = nodeSeq.size();
        const std::size_t new_cap = old_cap ? old_cap * 2 : 4096;
        const std::uint32_t old_mask =
            static_cast<std::uint32_t>(old_cap - 1);
        const std::uint32_t new_mask =
            static_cast<std::uint32_t>(new_cap - 1);

        const auto replace = [&](auto &vec) {
            using Vec = std::remove_reference_t<decltype(vec)>;
            Vec grown(new_cap);
            for (std::uint32_t pos = head; pos != next; ++pos)
                grown[pos & new_mask] = vec[pos & old_mask];
            vec = std::move(grown);
        };
        replace(nodeSeq);
        replace(nodeState);
        replace(exec);
        replace(memRec);
        replace(meta);
        replace(waitChain);
        replace(loadChain);
        if (!profRec.empty())
            replace(profRec);
    }

    /** Size the profiling lane to match the node ring (idempotent);
     *  called once per profiled run, before any node issues. */
    void
    ensureProfLane()
    {
        if (profRec.size() != nodeSeq.size())
            profRec.resize(nodeSeq.size());
    }

    /** Same doubling scheme for the block ring. */
    void
    growBlocks(std::uint32_t head, std::uint32_t next)
    {
        const std::size_t old_cap = blocks.size();
        const std::size_t new_cap = old_cap ? old_cap * 2 : 512;
        const std::uint32_t old_mask =
            static_cast<std::uint32_t>(old_cap - 1);
        const std::uint32_t new_mask =
            static_cast<std::uint32_t>(new_cap - 1);
        std::vector<BlockRec> grown(new_cap);
        for (std::uint32_t pos = head; pos != next; ++pos)
            grown[pos & new_mask] = blocks[pos & old_mask];
        blocks = std::move(grown);
    }
};

} // namespace fgp

#endif // FGP_ENGINE_WORKSPACE_HH
