#include "harness/experiment.hh"

#include <chrono>

#include "analyze/analyze.hh"
#include "analyze/disambig.hh"
#include "analyze/oracle.hh"
#include "base/logging.hh"
#include "engine/workspace.hh"
#include "verify/diag.hh"
#include "ir/cfg.hh"
#include "metrics/registry.hh"
#include "tld/translate.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

namespace fgp {

struct ExperimentRunner::Prepared
{
    Workload workload;
    CodeImage single;      ///< raw single-block image
    CodeImage enlarged;    ///< raw enlarged image
    Profile profile;       ///< from input set 1
    EnlargeStats enlargeStats;

    std::uint64_t refNodes = 0; ///< VM dynamic nodes, input set 2
    std::string refStdout;
    int refExit = 0;

    std::vector<std::int32_t> perfectTrace; ///< committed blocks, set 2

    /** Profile static hints: branch pc -> hot direction is taken. */
    std::unordered_map<std::int32_t, bool> profileHints;

    explicit Prepared(Workload wl) : workload(std::move(wl)) {}
};

/** Cache slot: a latch so exactly one thread builds each benchmark. */
struct ExperimentRunner::Entry
{
    std::once_flag built;
    std::unique_ptr<Prepared> prepared;
};

ExperimentRunner::ExperimentRunner(double scale, EnlargeOptions enlarge_opts)
    : scale_(scale), enlargeOpts_(enlarge_opts)
{
}

ExperimentRunner::~ExperimentRunner() = default;

ExperimentRunner::Prepared &
ExperimentRunner::prepare(const std::string &name)
{
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        std::unique_ptr<Entry> &slot = cache_[name];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get(); // map nodes are address-stable
    }
    // Build outside the map lock so unrelated benchmarks prepare in
    // parallel; concurrent requests for the same benchmark block here
    // until the one builder finishes.
    std::call_once(entry->built,
                   [&] { entry->prepared = buildPrepared(name); });
    return *entry->prepared;
}

std::unique_ptr<ExperimentRunner::Prepared>
ExperimentRunner::buildPrepared(const std::string &name)
{
    Workload wl = makeWorkload(name);
    wl.setScale(scale_);
    auto prepared = std::make_unique<Prepared>(std::move(wl));
    Prepared &p = *prepared;

    // Phase 1: functional profile run on input set 1.
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.profile_ns");
        SimOS os;
        p.workload.prepareOs(os, InputSet::Profile);
        InterpOptions opts;
        opts.profile = &p.profile;
        const RunResult r = interpret(p.workload.program(), os, opts);
        if (!r.exited || r.exitCode != 0)
            fgp_fatal("workload ", name, " failed its profile run (exit ",
                      r.exitCode, ")");
    }

    // Golden reference on input set 2.
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.reference_ns");
        SimOS os;
        p.workload.prepareOs(os, InputSet::Measure);
        const RunResult r = interpret(p.workload.program(), os);
        if (!r.exited || r.exitCode != 0)
            fgp_fatal("workload ", name, " failed its reference run (exit ",
                      r.exitCode, ")");
        p.refNodes = r.dynamicNodes;
        p.refStdout = os.stdoutText();
        p.refExit = r.exitCode;
    }

    for (const auto &[pc, arc] : p.profile.arcs)
        p.profileHints.emplace(pc, arc.hotIsTaken());

    // Phase 2: images.
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.parse_ns");
        p.single = buildCfg(p.workload.program());
    }
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.enlarge_ns");
        p.enlarged = enlarge(p.single, p.profile, enlargeOpts_,
                             &p.enlargeStats);
    }

    // Committed-block trace of the enlarged image for perfect prediction.
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.trace_ns");
        SimOS os;
        p.workload.prepareOs(os, InputSet::Measure);
        AtomicRunOptions opts;
        opts.recordTrace = true;
        AtomicRunResult r = runAtomic(p.enlarged, os, opts);
        fgp_assert(r.exited && r.exitCode == p.refExit &&
                       os.stdoutText() == p.refStdout,
                   "enlarged image diverges from the reference on ", name);
        p.perfectTrace = std::move(r.blockTrace);
    }

    if (metrics_)
        metrics_->add("harness.workloads_prepared", 1);
    return prepared;
}

ExperimentResult
ExperimentRunner::run(const std::string &name, const MachineConfig &config)
{
    Prepared &p = prepare(name);

    const auto point_start = std::chrono::steady_clock::now();

    const bool enlarged_image = config.branch != BranchMode::Single;
    CodeImage image = enlarged_image ? p.enlarged : p.single;
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.translate_ns");
        TranslateOptions topts = translateOpts_;
        // FGP_STATIC_DISAMBIG=1: the static scheduler consumes proven
        // no-alias facts (hoists loads above independent stores).
        if (analyze::staticDisambigEnabled() && !topts.disambigHook)
            topts.disambigHook = analyze::disambigSchedulingHook();
        // FGP_ORACLE_SCHED=1: small blocks adopt exact oracle schedules
        // when provably shorter (FGP_ORACLE_BUDGET caps the search).
        // Both default off — schedules stay bit-identical.
        if (analyze::oracleSchedEnabled() && !topts.oracleHook)
            topts.oracleHook = analyze::oracleAdoptionHook();
        translate(image, config, topts);
    }
    const double static_bound = analyze::staticIpcBound(image);

    // Static memory-disambiguation facts over the translated image: the
    // engine consumes them (probe-skipping fast path) when the feature
    // is on, and cross-checks them at retirement when the debug-build
    // soundness check is on. Computed fresh per point — the image is
    // translated per configuration, so issuePos matches its words.
    analyze::DisambigImage disambig_facts;
    const bool disambig_fast = analyze::staticDisambigEnabled();
    const bool disambig_xcheck = analyze::disambigXcheckEnabled();
    if (disambig_fast || disambig_xcheck) {
        metrics::ScopedTimer timer(metrics_, "host.phase.disambig_ns");
        disambig_facts = analyze::disambigImage(image);
    }

    SimOS os;
    p.workload.prepareOs(os, InputSet::Measure);

    EngineOptions opts;
    opts.config = config;
    if (config.branch == BranchMode::Perfect)
        opts.perfectTrace = &p.perfectTrace;
    opts.predictor.staticHint = tweaks_.staticHint;
    if (tweaks_.staticHint == StaticHint::Profile)
        opts.predictor.profileHints = &p.profileHints;
    opts.predictor.rasDepth = tweaks_.rasDepth;
    opts.predictor.direction = tweaks_.direction;
    opts.predictFaultTargets = tweaks_.predictFaultTargets;
    opts.windowOverride = tweaks_.windowOverride;
    opts.conservativeLoads = tweaks_.conservativeLoads;
    if (disambig_fast || disambig_xcheck) {
        opts.disambig = &disambig_facts;
        opts.disambigFastPath = disambig_fast;
        opts.disambigXcheck = disambig_xcheck;
    }

    opts.metrics = metrics_;

    // Pool the engine's arenas per worker thread: after the first run
    // warms a thread's workspace, every later cell on that thread
    // simulates with zero steady-state allocations.
    static thread_local EngineWorkspace workspace;
    opts.workspace = &workspace;

    // The interval profiler pools its window/residency/retired-log
    // storage the same way: beginRun() clears contents but keeps
    // capacity, so profiled repeat runs also allocate nothing at
    // steady state.
    static thread_local profile::IntervalProfiler profiler;
    if (tweaks_.profileWindow > 0) {
        profiler.setWindowCycles(tweaks_.profileWindow);
        opts.profile = &profiler;
    }

    ExperimentResult result;
    result.workload = name;
    result.config = config;
    {
        metrics::ScopedTimer timer(metrics_, "host.phase.simulate_ns");
        result.engine = simulate(image, os, opts);
    }

    // Every simulated run must reproduce the architectural results.
    if (!result.engine.exited || result.engine.exitCode != p.refExit ||
        os.stdoutText() != p.refStdout) {
        fgp_panic("engine diverged from the functional VM: workload ", name,
                  " config ", config.name());
    }

    // Disambiguation soundness cross-check: a statically proven no-alias
    // pair that overlapped at runtime (or stale facts) is an analysis
    // bug. Render the recorded violations as MD diagnostics and abort.
    if (result.engine.disambigViolations) {
        verify::Report report;
        for (const DisambigViolation &v :
             result.engine.disambigViolationLog) {
            if (v.stale) {
                addDiag(report, verify::Code::DisambigFactsStale,
                        verify::Severity::Error, "translated", v.imageId,
                        v.nodeA, -1,
                        "disambiguation facts do not match the simulated "
                        "image");
            } else {
                addDiag(report, verify::Code::NoAliasViolated,
                        verify::Severity::Error, "translated", v.imageId,
                        v.nodeA, -1, "proven no-alias pair (", v.nodeA,
                        ", ", v.nodeB, ") overlapped at runtime: [",
                        v.addrA, ", +", v.lenA, ") vs [", v.addrB, ", +",
                        v.lenB, ")");
            }
        }
        fgp_panic("static disambiguation unsound: workload ", name,
                  " config ", config.name(), " (",
                  result.engine.disambigViolations, " violations)\n",
                  report.renderText());
    }

    // Static/dynamic cross-check: no run may retire more nodes per cycle
    // than the analyzer's sound bound for its translated image.
    result.staticIpcBound = static_bound;
    if (analyze::xcheckEnabled() &&
        result.engine.nodesPerCycle() > static_bound * (1.0 + 1e-9)) {
        fgp_panic("static ILP bound violated: workload ", name, " config ",
                  config.name(), " retired ", result.engine.nodesPerCycle(),
                  " nodes/cycle against a static bound of ", static_bound);
    }

    if (opts.profile) {
        result.profile.enabled = true;
        result.profile.windowCycles = profiler.windowCycles();
        result.profile.issueWidth = profiler.issueWidth();
        result.profile.windows = profiler.windows();
        result.profile.residency = profiler.residency();
        result.profile.critPath = profile::extractCriticalPath(
            profiler.retiredLog(), result.engine.cycles,
            image.blocks.size());
    }

    result.cycles = result.engine.cycles;
    result.refNodes = p.refNodes;
    result.nodesPerCycle =
        result.cycles ? static_cast<double>(p.refNodes) /
                            static_cast<double>(result.cycles)
                      : 0.0;
    result.hostNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - point_start)
            .count());
    if (metrics_)
        metrics_->add("harness.sims_done", 1);
    return result;
}

double
ExperimentRunner::meanNodesPerCycle(const MachineConfig &config)
{
    double sum = 0.0;
    for (const std::string &name : workloadNames())
        sum += run(name, config).nodesPerCycle;
    return sum / static_cast<double>(workloadNames().size());
}

double
ExperimentRunner::meanRedundancy(const MachineConfig &config)
{
    double sum = 0.0;
    for (const std::string &name : workloadNames())
        sum += run(name, config).engine.redundancy();
    return sum / static_cast<double>(workloadNames().size());
}

const EnlargeStats &
ExperimentRunner::enlargeStats(const std::string &workload)
{
    return prepare(workload).enlargeStats;
}

std::uint64_t
ExperimentRunner::referenceNodes(const std::string &workload)
{
    return prepare(workload).refNodes;
}

const CodeImage &
ExperimentRunner::singleImage(const std::string &workload)
{
    return prepare(workload).single;
}

const CodeImage &
ExperimentRunner::enlargedImage(const std::string &workload)
{
    return prepare(workload).enlarged;
}

std::unique_ptr<SimOS>
ExperimentRunner::makeOs(const std::string &workload, InputSet set)
{
    Prepared &p = prepare(workload);
    auto os = std::make_unique<SimOS>();
    p.workload.prepareOs(*os, set);
    return os;
}

StallBreakdown
totalStalls(const std::vector<ExperimentResult> &results)
{
    StallBreakdown total;
    for (const ExperimentResult &r : results)
        total.mergeFrom(r.engine.stalls);
    return total;
}

} // namespace fgp
