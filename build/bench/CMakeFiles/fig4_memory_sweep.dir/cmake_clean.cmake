file(REMOVE_RECURSE
  "CMakeFiles/fig4_memory_sweep.dir/fig4_memory_sweep.cc.o"
  "CMakeFiles/fig4_memory_sweep.dir/fig4_memory_sweep.cc.o.d"
  "fig4_memory_sweep"
  "fig4_memory_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_memory_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
