/**
 * @file
 * Plain per-node profiling records shared between the engine workspace
 * and the interval profiler. Kept dependency-free so the workspace can
 * embed the live-node lane without pulling in the profiler proper.
 *
 * Every live node carries one NodeProf record while profiling is
 * enabled (EngineWorkspace::profRec, sized lazily by ensureProfLane so
 * unprofiled runs pay nothing). The engine stamps the four pipeline
 * timestamps as they happen and keeps the *last* enabling dependence
 * edge — the event that actually released the node — so the retired log
 * can reconstruct the executed schedule's dependence chains.
 */

#ifndef FGP_PROFILE_RECORD_HH
#define FGP_PROFILE_RECORD_HH

#include <cstdint>

namespace fgp {
namespace profile {

/** What kind of dependence edge enabled a node (last writer wins). */
enum class EdgeKind : std::uint8_t
{
    None = 0, ///< never profiled (defensive default)
    Fetch,    ///< issued with all operands ready — bound by fetch order
    Branch,   ///< first node fetched after a mispredict/fault redirect
    Data,     ///< last register operand delivered by a producer's wakeup
    Memory,   ///< load parked on disambiguation (unknown store/syscall)
    Forward,  ///< load whose value came from an in-window store forward
};

/** Live-node lane record (SoA ring parallel to the node arenas). */
struct NodeProf
{
    std::uint64_t parentSeq; ///< enabling producer's seq (0: none)
    std::uint32_t issueCycle;
    std::uint32_t readyCycle;    ///< last operand arrived
    std::uint32_t schedCycle;    ///< won a function-unit slot
    std::uint32_t completeCycle; ///< result published
    EdgeKind edge;
};

/** One entry of the retired-node log (appended in seq order). */
struct RetiredNode
{
    std::uint64_t seq;
    std::uint64_t parentSeq;
    std::uint32_t issueCycle;
    std::uint32_t readyCycle;
    std::uint32_t schedCycle;
    std::uint32_t completeCycle;
    std::uint32_t block; ///< static image block id
    EdgeKind edge;
};

} // namespace profile
} // namespace fgp

#endif // FGP_PROFILE_RECORD_HH
