#!/bin/sh
# End-to-end test of the fgpsim CLI: the paper's three-stage pipeline
# (profile -> enlargement file -> simulation) plus asm/run on a file,
# the static verifier (check) and the static ILP analyzer (analyze),
# each against its JSON schema validator.
set -e
FGPSIM="$1"
CHECK_BENCH="$2"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Stage 1: statistics file.
"$FGPSIM" profile grep --out "$TMP/grep.prof" 2> "$TMP/log1"
grep -q "branch" "$TMP/grep.prof"

# Stage 2: enlargement file.
"$FGPSIM" bbe grep --profile "$TMP/grep.prof" --out "$TMP/grep.plan" \
    --max-chain 6 2> "$TMP/log2"
grep -q "chain" "$TMP/grep.plan"

# Stage 3: simulation consuming the plan; stdout must equal the VM's.
"$FGPSIM" run grep > "$TMP/vm.out" 2> /dev/null
"$FGPSIM" sim grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    > "$TMP/sim.out" 2> "$TMP/stats"
cmp "$TMP/vm.out" "$TMP/sim.out"
grep -q "nodes per cycle" "$TMP/stats"

# Extensions reachable from the CLI.
"$FGPSIM" sim grep --config dyn256/8G/enlarged --ras 16 --window 32 \
    > /dev/null 2> "$TMP/stats2"
grep -q "cycles" "$TMP/stats2"

# asm/run on a user-supplied file with stdin.
cat > "$TMP/echo.s" <<'ASM'
        .data
buf:    .space 64
        .text
main:   li   v0, 3
        li   a0, 0
        la   a1, buf
        li   a2, 64
        syscall
        mov  r20, v0
        li   v0, 4
        li   a0, 1
        la   a1, buf
        mov  a2, r20
        syscall
        li   v0, 0
        li   a0, 0
        syscall
ASM
printf 'hello-cli' > "$TMP/input.txt"
"$FGPSIM" asm "$TMP/echo.s" | grep -q "block"
OUT="$("$FGPSIM" run "$TMP/echo.s" --stdin "$TMP/input.txt" 2>/dev/null)"
test "$OUT" = "hello-cli"

# Pipeline trace subcommand emits per-cycle events.
"$FGPSIM" trace "$TMP/echo.s" --config dyn4/8A/single \
    --stdin "$TMP/input.txt" 2> /dev/null | grep -q "retire"

# Static verifier: the whole pipeline (single -> enlarged via the plan
# from stage 2 -> translated) must verify clean.
"$FGPSIM" check grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    > "$TMP/check.txt"
grep -q "check passed: 0 errors" "$TMP/check.txt"

# check --json validates against the fgpsim-check-v1 schema.
"$FGPSIM" check grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    --json > "$TMP/check.json"
sh "$CHECK_BENCH" --validate-check "$TMP/check.json"

# A user-supplied file also verifies (single path: no enlargement).
"$FGPSIM" check "$TMP/echo.s" --config dyn4/8A/single \
    --stdin "$TMP/input.txt" | grep -q "check passed"

# Strict mode still exits 0 (uninitialized-read findings are warnings)
# and the schema holds with a non-empty diagnostics array.
"$FGPSIM" check grep --config dyn4/8A/single --strict --json \
    > "$TMP/check_strict.json"
sh "$CHECK_BENCH" --validate-check "$TMP/check_strict.json"

# Static ILP analyzer: human output carries the sound bound and a clean
# lint summary on the pipeline image built from the stage-2 plan.
"$FGPSIM" analyze grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    > "$TMP/analyze.txt"
grep -q "static IPC bound" "$TMP/analyze.txt"
grep -q "chain audit" "$TMP/analyze.txt"
grep -q "analyze: 0 errors" "$TMP/analyze.txt"

# analyze --json validates against the fgpsim-analyze-v1 schema.
"$FGPSIM" analyze grep --config dyn4/8A/enlarged --plan "$TMP/grep.plan" \
    --json > "$TMP/analyze.json"
sh "$CHECK_BENCH" --validate-analyze "$TMP/analyze.json"

# A workload with lint findings: dead code after `j` plus an untargeted
# label. Non-strict runs exit 0 (warnings only); --strict exits nonzero.
cat > "$TMP/lint.s" <<'ASM'
main:   j    end
dead:   addi r8, r8, 1
end:    li   v0, 0
        li   a0, 0
        syscall
ASM
"$FGPSIM" analyze "$TMP/lint.s" --config dyn4/8A/single \
    > "$TMP/lint.txt"
grep -q "AN005" "$TMP/lint.txt"
grep -q "AN006" "$TMP/lint.txt"
if "$FGPSIM" analyze "$TMP/lint.s" --config dyn4/8A/single --strict \
    > /dev/null
then
    echo "expected strict analyze to fail on lint findings" >&2
    exit 1
fi
# The strict JSON dump still validates, with a non-empty diagnostics array.
"$FGPSIM" analyze "$TMP/lint.s" --config dyn4/8A/single --strict --json \
    > "$TMP/lint.json" || true
sh "$CHECK_BENCH" --validate-analyze "$TMP/lint.json"
grep -q '"code": "AN005"' "$TMP/lint.json"

# Exact-schedule oracle: summary line in the human output, and the JSON
# extension passes both the schema validator and the oracle sandwich
# gate (height <= lower <= upper <= greedy recomputed per block).
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle > "$TMP/oracle.txt"
grep -q "exact-schedule oracle" "$TMP/oracle.txt"
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle --json > "$TMP/oracle.json"
sh "$CHECK_BENCH" --validate-analyze "$TMP/oracle.json"
sh "$CHECK_BENCH" --validate-oracle "$TMP/oracle.json"
grep -q '"oracle_blocks"' "$TMP/oracle.json"

# A starved state budget degrades to certified intervals: AN010 warns,
# the gap table marks the block, plain runs still exit 0 and --strict
# exits 1 (the lint-finding class, not the bound-violation class).
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle --oracle-budget 1 > "$TMP/oracle_budget.txt"
grep -q "AN010" "$TMP/oracle_budget.txt"
grep -q "budget out" "$TMP/oracle_budget.txt"
set +e
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle --oracle-budget 1 --strict > /dev/null
rc=$?
set -e
test "$rc" = 1

# Starved runs are deterministic: byte-identical JSON across repeats.
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle --oracle-budget 1 --json > "$TMP/oracle_b1.json"
"$FGPSIM" analyze grep --config static/4A/enlarged --plan "$TMP/grep.plan" \
    --oracle --oracle-budget 1 --json > "$TMP/oracle_b2.json"
cmp "$TMP/oracle_b1.json" "$TMP/oracle_b2.json"

# A broken sandwich is a distinct failure class: exit 4 even without
# --strict. Sound code cannot produce one, so FGP_ORACLE_XFAIL=1
# injects a synthetic violation to cover the path.
set +e
FGP_ORACLE_XFAIL=1 "$FGPSIM" analyze grep --config static/4A/enlarged \
    --plan "$TMP/grep.plan" --oracle > "$TMP/oracle_xfail.txt"
rc=$?
set -e
test "$rc" = 4
grep -q "ORACLE BOUND VIOLATION" "$TMP/oracle_xfail.txt"

# Interval profiler: human output carries the window table and the
# critical-path attribution; legacy `profile --out` above is untouched.
"$FGPSIM" profile grep --config dyn4/8A/enlarged --interval 5000 \
    --plan "$TMP/grep.plan" > "$TMP/profile.txt" 2> /dev/null
grep -q "critical path" "$TMP/profile.txt"
grep -q "ipc_bound" "$TMP/profile.txt"

# profile --json round-trips through the fgpsim-profile-v1 validator:
# per-window slot closure, window sums vs the run aggregates, and the
# critical-path bounds are all checked by the awk gate.
"$FGPSIM" profile grep --config dyn4/8A/enlarged --interval 5000 \
    --plan "$TMP/grep.plan" --json > "$TMP/profile.jsonl" 2> /dev/null
sh "$CHECK_BENCH" --validate-profile "$TMP/profile.jsonl"
grep -q '"kind":"critpath"' "$TMP/profile.jsonl"
grep -q '"kind":"critblock"' "$TMP/profile.jsonl"

# Static configs profile too, and the stream still closes.
"$FGPSIM" profile sort --config static/4A/single --interval 2000 \
    --json > "$TMP/profile_static.jsonl" 2> /dev/null
sh "$CHECK_BENCH" --validate-profile "$TMP/profile_static.jsonl"

# profile --chrome rides the existing Chrome-trace sink: counter events
# (ph "C") with per-window IPC and stall shares.
"$FGPSIM" profile grep --config dyn4/8A/single --interval 5000 \
    --chrome "$TMP/profile.trace" > /dev/null 2>&1
grep -q '"ph":"C"' "$TMP/profile.trace"
grep -q '"name":"ipc"' "$TMP/profile.trace"

# report --top ranks blocks with their static IPC bounds alongside.
"$FGPSIM" report grep --config dyn4/8A/enlarged --top 5 \
    > "$TMP/report.txt" 2>&1
grep -q "ipc_bound" "$TMP/report.txt"

# fgpsim history: perf trajectory over a BENCH_history.jsonl file.
cat > "$TMP/history.jsonl" <<'JSONL'
{"schema":"fgpsim-run-v1","kind":"run","bench":"engine","git":"aaa1111","timestamp":1,"jobs":8,"scale":1,"sims":40,"wall_seconds":5.0,"sim_cycles":1000000,"host_ns_per_sim_cycle":800}
{"schema":"fgpsim-run-v1","kind":"run","bench":"engine","git":"bbb2222","timestamp":2,"jobs":8,"scale":1,"sims":40,"wall_seconds":2.5,"sim_cycles":1000000,"host_ns_per_sim_cycle":400}
JSONL
"$FGPSIM" history "$TMP/history.jsonl" > "$TMP/history.txt"
grep -q "aaa1111" "$TMP/history.txt"
grep -q -- "-50.0%" "$TMP/history.txt"
grep -q "2 runs" "$TMP/history.txt"

# A missing or empty history file is the normal fresh-checkout state,
# not an error: both exit 0 and say how to start accumulating runs.
"$FGPSIM" history "$TMP/no_such_history.jsonl" > "$TMP/history_missing.txt"
grep -q "no history file" "$TMP/history_missing.txt"
grep -q -- "--append" "$TMP/history_missing.txt"
: > "$TMP/empty_history.jsonl"
"$FGPSIM" history "$TMP/empty_history.jsonl" > "$TMP/history_empty.txt"
grep -q "no run records yet" "$TMP/history_empty.txt"
grep -q -- "--append" "$TMP/history_empty.txt"

# fgpsim compare: handcrafted fgpsim-run-v1 manifests. A run compared
# to itself is clean; an IPC drop or a wall-time blowup past tolerance
# exits nonzero (the CI perf gate contract).
cat > "$TMP/run_a.jsonl" <<'JSONL'
{"schema":"fgpsim-run-v1","kind":"run","bench":"t","git":"abc","timestamp":1,"jobs":1,"scale":1,"sims":2,"wall_seconds":1.0,"sim_cycles":1000,"host_ns_per_sim_cycle":100}
{"kind":"point","workload":"sort","config":"dyn4/8A/enlarged","nodes_per_cycle":2.0,"cycles":500,"host_ns":1000}
{"kind":"point","workload":"grep","config":"dyn4/8A/enlarged","nodes_per_cycle":1.0,"cycles":500,"host_ns":1000}
JSONL
sh "$CHECK_BENCH" --validate-run "$TMP/run_a.jsonl"
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_a.jsonl" > /dev/null

# A 20% IPC drop on one point regresses at the default 10% tolerance...
sed 's/"nodes_per_cycle":2.0/"nodes_per_cycle":1.6/' "$TMP/run_a.jsonl" \
    > "$TMP/run_ipc.jsonl"
if "$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_ipc.jsonl" > /dev/null
then
    echo "expected IPC regression" >&2
    exit 1
fi
# ...and is tolerated at 25%.
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_ipc.jsonl" \
    --tolerance 25% > /dev/null

# Doubled wall time: regression, unless --wall-tolerance is loosened.
sed 's/"wall_seconds":1.0/"wall_seconds":2.0/' "$TMP/run_a.jsonl" \
    > "$TMP/run_wall.jsonl"
if "$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_wall.jsonl" > /dev/null
then
    echo "expected wall-time regression" >&2
    exit 1
fi
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_wall.jsonl" \
    --wall-tolerance 150% > /dev/null

# --json output carries the compare schema and the verdict.
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_a.jsonl" --json \
    > "$TMP/compare.json"
grep -q '"schema": "fgpsim-compare-v1"' "$TMP/compare.json"
grep -q '"regressed": false' "$TMP/compare.json"

# Mismatched cell sets are a distinct failure (exit 3, not the
# regression exit 1): the unmatched keys are named on stderr.
grep -v '"workload":"grep"' "$TMP/run_a.jsonl" > "$TMP/run_short.jsonl"
set +e
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_short.jsonl" \
    > /dev/null 2> "$TMP/mismatch.err"
rc=$?
set -e
test "$rc" = 3
grep -q "only in A" "$TMP/mismatch.err"
grep -q "grep dyn4/8A/enlarged" "$TMP/mismatch.err"
grep -q "MISMATCHED cell sets" "$TMP/mismatch.err"
# The JSON mode reports the same verdict machine-readably.
set +e
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_short.jsonl" --json \
    > "$TMP/mismatch.json"
rc=$?
set -e
test "$rc" = 3
grep -q '"mismatched": true' "$TMP/mismatch.json"
grep -q '"grep dyn4/8A/enlarged"' "$TMP/mismatch.json"

# A failing IPC gate prints per-cell differential attribution inline.
set +e
"$FGPSIM" compare "$TMP/run_a.jsonl" "$TMP/run_ipc.jsonl" \
    > "$TMP/compare_fail.txt" 2>&1
set -e
grep -q "Differential attribution" "$TMP/compare_fail.txt"
grep -q "== sort dyn4/8A/enlarged ==" "$TMP/compare_fail.txt"

# fgpsim diff: the tentpole round-trip. Profile the same workload twice
# (baseline vs conservative loads — genuinely different schedules), diff
# the streams, and push the fgpsim-diff-v1 output through the validator:
# every aligned window's IPC delta must decompose into the stall-slot
# breakdown with zero residual, recomputed independently by the awk gate.
"$FGPSIM" profile grep --config dyn4/8A/enlarged --interval 5000 \
    --plan "$TMP/grep.plan" --conservative --json \
    > "$TMP/profile_cons.jsonl" 2> /dev/null
"$FGPSIM" diff "$TMP/profile.jsonl" "$TMP/profile_cons.jsonl" --json \
    > "$TMP/diff.jsonl"
sh "$CHECK_BENCH" --validate-diff "$TMP/diff.jsonl"
grep -q '"kind":"wdelta"' "$TMP/diff.jsonl"
grep -q '"kind":"dcause"' "$TMP/diff.jsonl"
grep -q '"kind":"divergence"' "$TMP/diff.jsonl"

# Human output names the cell and the schedule verdict.
"$FGPSIM" diff "$TMP/profile.jsonl" "$TMP/profile_cons.jsonl" \
    > "$TMP/diff.txt"
grep -q "== grep dyn4/8A/enlarged ==" "$TMP/diff.txt"
grep -q "Windows that moved most" "$TMP/diff.txt"

# A stream diffed against itself is clean: identical fingerprints.
"$FGPSIM" diff "$TMP/profile.jsonl" "$TMP/profile.jsonl" \
    | grep -q "identical"

# --retired streams carry the full retired-node log (validator-checked:
# record count must equal the header's retired_nodes; critedge rows must
# sum exactly to the critical path).
"$FGPSIM" profile sort --config static/4A/single --interval 2000 \
    --json --retired > "$TMP/profile_ret.jsonl" 2> /dev/null
sh "$CHECK_BENCH" --validate-profile "$TMP/profile_ret.jsonl"
grep -q '"kind":"retired"' "$TMP/profile_ret.jsonl"
grep -q '"kind":"critedge"' "$TMP/profile_ret.jsonl"

# Seed a one-node perturbation into the retired log: diff must pinpoint
# the exact window, node and field, at node level.
awk 'BEGIN{n=0}
     /"kind":"retired"/{n++; if (n==100)
         sub(/"sched_cycle":[0-9]+/, "\"sched_cycle\":54321")}
     {print}' "$TMP/profile_ret.jsonl" > "$TMP/profile_ret_b.jsonl"
"$FGPSIM" diff "$TMP/profile_ret.jsonl" "$TMP/profile_ret_b.jsonl" --json \
    > "$TMP/diff_ret.jsonl"
sh "$CHECK_BENCH" --validate-diff "$TMP/diff_ret.jsonl"
grep -q '"level":"node"' "$TMP/diff_ret.jsonl"
grep -q '"log_index":99,' "$TMP/diff_ret.jsonl"
grep -q '"field":"sched_cycle"' "$TMP/diff_ret.jsonl"
grep -q '"value_b":54321' "$TMP/diff_ret.jsonl"
"$FGPSIM" diff "$TMP/profile_ret.jsonl" "$TMP/profile_ret_b.jsonl" \
    | grep -q "DIVERGED"

# --folded writes the two-column folded-stack file flamegraph diff
# tooling consumes; --chrome writes an A/B overlay (two named pids).
"$FGPSIM" diff "$TMP/profile.jsonl" "$TMP/profile_cons.jsonl" \
    --folded "$TMP/diff.folded" --chrome "$TMP/diff.trace" > /dev/null
grep -q "^grep;dyn4/8A/enlarged;" "$TMP/diff.folded"
# Two trailing count columns (A and B) after the semicolon-joined stack.
awk '{ if (NF != 3) exit 1 }' "$TMP/diff.folded"
grep -q '"pid":1' "$TMP/diff.trace"
grep -q '"pid":2' "$TMP/diff.trace"
grep -q '"name":"process_name"' "$TMP/diff.trace"

# Manifests diff too: whole-run stall totals become one synthesized
# window per cell, and the residual still recomputes to zero.
"$FGPSIM" diff "$TMP/run_a.jsonl" "$TMP/run_ipc.jsonl" --json \
    > "$TMP/diff_run.jsonl"
sh "$CHECK_BENCH" --validate-diff "$TMP/diff_run.jsonl"

# fgpsim history grows per-point IPC columns when the run records carry
# the engine metrics: +20% retired nodes at equal cycles is +20.0% IPC.
cat > "$TMP/history_ipc.jsonl" <<'JSONL'
{"schema":"fgpsim-run-v1","kind":"run","bench":"engine","git":"ccc3333","timestamp":3,"jobs":8,"scale":1,"sims":40,"wall_seconds":5.0,"sim_cycles":1000000,"host_ns_per_sim_cycle":800,"engine.retired_nodes":2000000}
{"schema":"fgpsim-run-v1","kind":"run","bench":"engine","git":"ddd4444","timestamp":4,"jobs":8,"scale":1,"sims":40,"wall_seconds":2.5,"sim_cycles":1000000,"host_ns_per_sim_cycle":400,"engine.retired_nodes":2400000}
JSONL
"$FGPSIM" history "$TMP/history_ipc.jsonl" > "$TMP/history_ipc.txt"
grep -q "2.000" "$TMP/history_ipc.txt"
grep -q "2.400" "$TMP/history_ipc.txt"
grep -q -- "+20.0%" "$TMP/history_ipc.txt"
# Records without the engine metrics still render (dash columns).
grep -q "d_ipc" "$TMP/history.txt"

# Bad inputs fail cleanly.
if "$FGPSIM" sim grep --config bogus 2> /dev/null; then
    echo "expected failure on bogus config" >&2
    exit 1
fi
if "$FGPSIM" compare "$TMP/run_a.jsonl" 2> /dev/null; then
    echo "expected failure on compare with one file" >&2
    exit 1
fi
if "$FGPSIM" diff "$TMP/profile.jsonl" 2> /dev/null; then
    echo "expected failure on diff with one file" >&2
    exit 1
fi
echo "cli test ok"
