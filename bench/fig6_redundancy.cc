/**
 * @file
 * Figure 6: operation redundancy — the fraction of executed nodes that
 * are discarded rather than retired — per issue model and scheduling
 * discipline, memory configuration A. The ordering is the inverse of
 * Figure 3: the faster the machine, the more work it throws away.
 */

#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Figure 6",
           "operation redundancy (executed-not-retired fraction) vs. "
           "issue model, memory config A");

    ExperimentRunner runner(envScale());
    RunRecorder recorder("fig6", &runner);
    const MemoryConfig mem = memoryConfig('A');

    std::vector<std::string> header = {"series"};
    for (const IssueModel &im : allIssueModels())
        header.push_back(im.name());
    Table table(std::move(header));

    std::vector<MachineConfig> configs;
    for (const Series &series : tenSeries())
        for (const IssueModel &im : allIssueModels())
            configs.push_back({series.discipline, im, mem, series.branch});
    const std::vector<double> means = sweepMeans(
        runner, configs,
        [](const ExperimentResult &r) { return r.engine.redundancy(); },
        &recorder);

    std::size_t at = 0;
    for (const Series &series : tenSeries()) {
        const std::vector<double> row(
            means.begin() + static_cast<std::ptrdiff_t>(at),
            means.begin() +
                static_cast<std::ptrdiff_t>(at + allIssueModels().size()));
        at += allIssueModels().size();
        table.addNumericRow(series.name(), row);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): ordering inverse of Figure 3;"
                 "\n  dyn256+enlarged discards up to ~1 in 4 executed "
                 "nodes; dyn4+enlarged discards far fewer at nearly the "
                 "same performance; perfect prediction ~0.\n";
    finishRun(recorder);
    return 0;
}
