/**
 * @file
 * Error-reporting and status-message helpers, in the spirit of gem5's
 * logging discipline: panic() for internal invariant violations (simulator
 * bugs), fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef FGP_BASE_LOGGING_HH
#define FGP_BASE_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace fgp {

namespace detail {

/** Compose a message from streamable parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Suppress/enable inform() output (benchmarks silence it). */
void setQuiet(bool quiet);
bool quiet();

} // namespace detail

/**
 * Exception carrying a fatal (user-level) error. Thrown by fatal() so that
 * library users and tests can catch configuration errors; uncaught it
 * terminates the process with the message.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Internal invariant violation — a simulator bug. Aborts. */
#define fgp_panic(...)                                                        \
    ::fgp::detail::panicImpl(__FILE__, __LINE__,                              \
                             ::fgp::detail::composeMessage(__VA_ARGS__))

/** Unrecoverable user error (bad configuration, malformed input). Throws. */
#define fgp_fatal(...)                                                        \
    ::fgp::detail::fatalImpl(__FILE__, __LINE__,                              \
                             ::fgp::detail::composeMessage(__VA_ARGS__))

/** Condition that should never be false regardless of user input. */
#define fgp_assert(cond, ...)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::fgp::detail::panicImpl(                                         \
                __FILE__, __LINE__,                                           \
                std::string("assertion failed: " #cond " ") +                 \
                    ::fgp::detail::composeMessage(__VA_ARGS__));              \
        }                                                                     \
    } while (0)

/** Status message about possibly-degraded behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::composeMessage(std::forward<Args>(args)...));
}

/** Neutral status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::composeMessage(std::forward<Args>(args)...));
}

} // namespace fgp

#endif // FGP_BASE_LOGGING_HH
