#include "base/histogram.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fgp {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets,
                     std::uint64_t origin)
    : bucketWidth_(bucket_width), origin_(origin), buckets_(num_buckets, 0)
{
    fgp_assert(bucket_width >= 1, "bucket width must be positive");
    fgp_assert(num_buckets >= 1, "need at least one bucket");
}

void
Histogram::add(std::uint64_t sample, std::uint64_t weight)
{
    if (weight == 0)
        return;
    if (sample < origin_) {
        underflow_ += weight;
    } else {
        const std::size_t idx = (sample - origin_) / bucketWidth_;
        if (idx < buckets_.size())
            buckets_[idx] += weight;
        else
            overflow_ += weight;
    }
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    count_ += weight;
    sum_ += sample * weight;
}

void
Histogram::merge(const Histogram &other)
{
    fgp_assert(other.bucketWidth_ == bucketWidth_ &&
                   other.origin_ == origin_ &&
                   other.buckets_.size() == buckets_.size(),
               "histogram geometry mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    underflow_ += other.underflow_;
    if (other.count_) {
        min_ = count_ ? std::min(min_, other.min_) : other.min_;
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

double
Histogram::bucketFraction(std::size_t i) const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(buckets_.at(i)) / static_cast<double>(count_);
}

std::string
Histogram::bucketLabel(std::size_t i) const
{
    const std::uint64_t lo = origin_ + i * bucketWidth_;
    const std::uint64_t hi = lo + bucketWidth_ - 1;
    if (bucketWidth_ == 1)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

std::string
Histogram::toJson() const
{
    std::string out = "{\"bucket_width\":" + std::to_string(bucketWidth_) +
                      ",\"origin\":" + std::to_string(origin_) +
                      ",\"count\":" + std::to_string(count_) +
                      ",\"sum\":" + std::to_string(sum_) +
                      ",\"min\":" + std::to_string(min()) +
                      ",\"max\":" + std::to_string(max_) +
                      ",\"underflow\":" + std::to_string(underflow_) +
                      ",\"overflow\":" + std::to_string(overflow_) +
                      ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(buckets_[i]);
    }
    out += "]}";
    return out;
}

void
Histogram::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = underflow_ = count_ = sum_ = min_ = max_ = 0;
}

} // namespace fgp
