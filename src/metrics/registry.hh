/**
 * @file
 * Run-level metrics registry: typed counters, gauges and timers with
 * hierarchical dotted names ("engine.retired_nodes",
 * "host.phase.translate_ns"). Complements the per-simulation
 * observability in src/obs — an obs::EventBus narrates ONE simulation,
 * a metrics::Registry aggregates across a whole sweep of them.
 *
 * Concurrency: writers go through per-thread shards (each worker thread
 * hashes to its own shard, so FGP_JOBS-parallel sweeps aggregate without
 * contention); snapshot() merges the shards. Counter merging is a sum,
 * so a snapshot is identical whether the same work ran on 1 or N
 * threads (asserted by tests/metrics_test.cc).
 *
 * Cost: a disabled registry (or a null Registry*) returns before taking
 * any lock or allocating anything, and ScopedTimer skips the clock reads
 * entirely, so instrumented code paths are free when observability is
 * off.
 */

#ifndef FGP_METRICS_REGISTRY_HH
#define FGP_METRICS_REGISTRY_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace fgp::metrics {

/** Aggregated timer: number of observations, total and max duration. */
struct TimerStat
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;

    void
    mergeFrom(const TimerStat &other)
    {
        count += other.count;
        totalNs += other.totalNs;
        if (other.maxNs > maxNs)
            maxNs = other.maxNs;
    }
};

/** Point-in-time copy of a registry's contents, ordered by name. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerStat> timers;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && timers.empty();
    }

    /**
     * Compact one-line JSON object: counters as integers, gauges as
     * numbers, each timer flattened to <name>, <name>.count and
     * <name>.max (nanoseconds). Deterministic key order.
     */
    std::string toJson() const;
};

/**
 * The registry proper. add()/setGauge()/recordTimeNs() are safe to call
 * from any number of threads; construction, snapshot() and enabled()
 * toggling are for the coordinating thread.
 *
 * Gauges are last-writer-wins and intended for single-writer facts
 * (scale, jobs); concurrent writers of one gauge would merge in shard
 * order, not program order.
 */
class Registry
{
  public:
    explicit Registry(bool enabled = true) : enabled_(enabled) {}

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    bool enabled() const { return enabled_; }

    /** Add @p delta to the counter @p name (created at zero). */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Set the gauge @p name (last writer wins). */
    void setGauge(std::string_view name, double value);

    /** Record one timed observation of @p ns nanoseconds. */
    void recordTimeNs(std::string_view name, std::uint64_t ns);

    /** Merge every shard into one ordered snapshot. */
    Snapshot snapshot() const;

  private:
    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        mutable std::mutex mu;
        std::map<std::string, std::uint64_t, std::less<>> counters;
        std::map<std::string, double, std::less<>> gauges;
        std::map<std::string, TimerStat, std::less<>> timers;
    };

    Shard &myShard();

    bool enabled_;
    std::array<Shard, kShards> shards_;
};

/**
 * RAII phase timer: records the scope's wall duration into
 * @p registry under @p name on destruction. A null or disabled registry
 * makes construction and destruction free (no clock reads).
 */
class ScopedTimer
{
  public:
    ScopedTimer(Registry *registry, const char *name)
        : registry_(registry && registry->enabled() ? registry : nullptr),
          name_(name)
    {
        if (registry_)
            start_ = std::chrono::steady_clock::now();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!registry_)
            return;
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        registry_->recordTimeNs(
            name_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
    }

  private:
    Registry *registry_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace fgp::metrics

#endif // FGP_METRICS_REGISTRY_HH
