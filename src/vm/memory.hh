/**
 * @file
 * Sparse byte-addressable memory for the simulated 32-bit address space.
 * Backed by 64 KiB pages allocated on demand; all accesses are little-endian
 * and byte-composed, so unaligned accesses are well-defined.
 */

#ifndef FGP_VM_MEMORY_HH
#define FGP_VM_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

static_assert(std::endian::native == std::endian::little,
              "fgpsim's fast memory paths assume a little-endian host");

namespace fgp {

/** Demand-paged flat memory image. Unmapped bytes read as zero. */
class SparseMemory
{
  public:
    static constexpr std::uint32_t kPageShift = 16;
    static constexpr std::uint32_t kPageSize = 1u << kPageShift;

    std::uint8_t
    read8(std::uint32_t addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[addr & (kPageSize - 1)] : 0;
    }

    void
    write8(std::uint32_t addr, std::uint8_t value)
    {
        touchPage(addr)[addr & (kPageSize - 1)] = value;
    }

    std::uint32_t
    read32(std::uint32_t addr) const
    {
        // Fast path: access within one page.
        if ((addr & (kPageSize - 1)) <= kPageSize - 4) {
            const Page *page = findPage(addr);
            if (!page)
                return 0;
            std::uint32_t value;
            std::memcpy(&value, page->data() + (addr & (kPageSize - 1)), 4);
            return value; // little-endian host asserted above
        }
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<std::uint32_t>(read8(addr + i)) << (8 * i);
        return value;
    }

    void
    write32(std::uint32_t addr, std::uint32_t value)
    {
        if ((addr & (kPageSize - 1)) <= kPageSize - 4) {
            Page &page = touchPage(addr);
            std::memcpy(page.data() + (addr & (kPageSize - 1)), &value, 4);
            return;
        }
        for (int i = 0; i < 4; ++i)
            write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    }

    /** Copy a byte range into memory. */
    void
    writeBytes(std::uint32_t addr, const std::uint8_t *src, std::size_t len)
    {
        for (std::size_t i = 0; i < len; ++i)
            write8(addr + static_cast<std::uint32_t>(i), src[i]);
    }

    /** Copy a byte range out of memory. */
    void
    readBytes(std::uint32_t addr, std::uint8_t *dst, std::size_t len) const
    {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] = read8(addr + static_cast<std::uint32_t>(i));
    }

    /** Read a NUL-terminated string (bounded at @p max_len). */
    std::string
    readCString(std::uint32_t addr, std::size_t max_len = 4096) const
    {
        std::string out;
        for (std::size_t i = 0; i < max_len; ++i) {
            const char ch = static_cast<char>(
                read8(addr + static_cast<std::uint32_t>(i)));
            if (ch == '\0')
                break;
            out.push_back(ch);
        }
        return out;
    }

    std::size_t numPages() const { return pages_.size(); }

    /**
     * Zero the contents but keep every mapped page, so a reused memory
     * behaves like a fresh one without re-faulting its working set —
     * repeat simulations on a pooled engine workspace touch the same
     * pages and allocate nothing.
     */
    void
    resetRetain()
    {
        for (auto &[key, page] : pages_)
            page->fill(0);
    }

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    const Page *
    findPage(std::uint32_t addr) const
    {
        const std::uint32_t key = addr >> kPageShift;
        if (key == cachedKey_ && cachedPage_)
            return cachedPage_;
        const auto it = pages_.find(key);
        if (it == pages_.end())
            return nullptr;
        cachedKey_ = key;
        cachedPage_ = it->second.get();
        return cachedPage_;
    }

    Page &
    touchPage(std::uint32_t addr)
    {
        const std::uint32_t key = addr >> kPageShift;
        if (key == cachedKey_ && cachedPage_)
            return *cachedPage_;
        auto &slot = pages_[key];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        cachedKey_ = key;
        cachedPage_ = slot.get();
        return *slot;
    }

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
    mutable std::uint32_t cachedKey_ = 0xffffffff;
    mutable Page *cachedPage_ = nullptr;
};

} // namespace fgp

#endif // FGP_VM_MEMORY_HH
