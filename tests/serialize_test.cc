/**
 * Serialization tests: profile statistics files, enlargement plan files
 * (the paper's inter-tool artifacts) and machine-config names.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "bbe/enlarge.hh"
#include "bbe/plan.hh"
#include "harness/experiment.hh"
#include "ir/cfg.hh"
#include "vm/interp.hh"
#include "vm/profile_io.hh"

namespace fgp {
namespace {

TEST(ProfileIo, RoundTrip)
{
    Profile profile;
    profile.recordBranch(10, true);
    profile.recordBranch(10, true);
    profile.recordBranch(10, false);
    profile.recordBranch(99, false);
    profile.recordJump(55);
    profile.recordJump(55);

    const Profile back = parseProfile(serializeProfile(profile));
    EXPECT_EQ(back.arcs.at(10).taken, 2u);
    EXPECT_EQ(back.arcs.at(10).notTaken, 1u);
    EXPECT_EQ(back.arcs.at(99).notTaken, 1u);
    EXPECT_EQ(back.jumps.at(55), 2u);
    EXPECT_EQ(back.totalBranches, profile.totalBranches);
}

TEST(ProfileIo, StableOutput)
{
    Profile profile;
    profile.recordBranch(30, true);
    profile.recordBranch(10, false);
    const std::string text = serializeProfile(profile);
    // Sorted by pc for diffable files.
    EXPECT_LT(text.find("branch 10"), text.find("branch 30"));
}

TEST(ProfileIo, RejectsGarbage)
{
    EXPECT_THROW(parseProfile("branch ten 1 2\n"), FatalError);
    EXPECT_THROW(parseProfile("branch 10 1\n"), FatalError);
    EXPECT_THROW(parseProfile("frobnicate 1 2\n"), FatalError);
    // Comments and blank lines are fine.
    const Profile empty = parseProfile("# comment\n\n");
    EXPECT_TRUE(empty.arcs.empty());
}

TEST(PlanIo, RoundTrip)
{
    EnlargePlan plan;
    plan.chains.push_back({{3, 7, 3, 7}});
    plan.chains.push_back({{20, 25}});
    const EnlargePlan back = parsePlan(serializePlan(plan));
    ASSERT_EQ(back.chains.size(), 2u);
    EXPECT_EQ(back.chains[0].entryPcs, (std::vector<std::int32_t>{3, 7, 3, 7}));
    EXPECT_EQ(back.chains[1].entryPcs, (std::vector<std::int32_t>{20, 25}));
}

TEST(PlanIo, RejectsGarbage)
{
    EXPECT_THROW(parsePlan("chian 1 2\n"), FatalError);
    EXPECT_THROW(parsePlan("chain 1\n"), FatalError);   // too short
    EXPECT_THROW(parsePlan("chain 1 -2\n"), FatalError); // negative pc
    EXPECT_THROW(parsePlan("chain a b\n"), FatalError);
}

TEST(PlanIo, PlannedFileReproducesDirectEnlargement)
{
    // planEnlargement -> serialize -> parse -> applyEnlargement must
    // produce the same image as the one-step enlarge().
    Workload wl = makeWorkload("grep");
    wl.setScale(0.3);
    Profile profile;
    {
        SimOS os;
        wl.prepareOs(os, InputSet::Profile);
        InterpOptions opts;
        opts.profile = &profile;
        interpret(wl.program(), os, opts);
    }
    const CodeImage single = buildCfg(wl.program());

    const CodeImage direct = enlarge(single, profile);
    const EnlargePlan plan = planEnlargement(single, profile);
    const EnlargePlan reparsed = parsePlan(serializePlan(plan));
    const CodeImage via_file = applyEnlargement(single, reparsed);

    ASSERT_EQ(via_file.blocks.size(), direct.blocks.size());
    for (std::size_t i = 0; i < direct.blocks.size(); ++i) {
        EXPECT_EQ(via_file.blocks[i].nodes, direct.blocks[i].nodes)
            << "block " << i;
        EXPECT_EQ(via_file.blocks[i].entryPc, direct.blocks[i].entryPc);
        EXPECT_EQ(via_file.blocks[i].companion, direct.blocks[i].companion);
    }
    EXPECT_EQ(via_file.entryByPc, direct.entryByPc);
}

TEST(PlanIo, ApplyValidatesControlFlow)
{
    Workload wl = makeWorkload("grep");
    const CodeImage single = buildCfg(wl.program());

    // A chain between blocks with no arc must be rejected.
    EnlargePlan bogus;
    const std::int32_t a = single.blocks[0].entryPc;
    std::int32_t unrelated = -1;
    for (const ImageBlock &block : single.blocks) {
        if (block.entryPc != single.blocks[0].fallthroughPc &&
            block.entryPc != a && !block.terminal()) {
            unrelated = block.entryPc;
            break;
        }
    }
    bogus.chains.push_back({{a, unrelated >= 0 ? unrelated : a + 999}});
    EXPECT_THROW(applyEnlargement(single, bogus), FatalError);
}

TEST(ConfigNames, ParseRoundTrip)
{
    for (Discipline d : allDisciplines()) {
        for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged,
                              BranchMode::Perfect}) {
            const MachineConfig config{d, issueModel(5), memoryConfig('F'),
                                       bm};
            const MachineConfig back = parseMachineConfig(config.name());
            EXPECT_EQ(back.name(), config.name());
            EXPECT_EQ(back.discipline, config.discipline);
            EXPECT_EQ(back.issue.index, config.issue.index);
            EXPECT_EQ(back.memory.letter, config.memory.letter);
            EXPECT_EQ(back.branch, config.branch);
        }
    }
}

TEST(ConfigNames, ParseRejectsGarbage)
{
    EXPECT_THROW(parseMachineConfig("dyn4"), FatalError);
    EXPECT_THROW(parseMachineConfig("dyn5/8A/single"), FatalError);
    EXPECT_THROW(parseMachineConfig("dyn4/9A/single"), FatalError);
    EXPECT_THROW(parseMachineConfig("dyn4/8A/sometimes"), FatalError);
}

} // namespace
} // namespace fgp
