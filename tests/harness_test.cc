/** Experiment-runner and atomic-runner integration tests. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "ir/cfg.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

MachineConfig
cfg(Discipline d, int issue, char mem, BranchMode branch)
{
    return {d, issueModel(issue), memoryConfig(mem), branch};
}

TEST(Harness, MetricUsesReferenceNodes)
{
    ExperimentRunner runner(0.2);
    const auto r = runner.run(
        "grep", cfg(Discipline::Dyn4, 8, 'A', BranchMode::Single));
    EXPECT_EQ(r.refNodes, runner.referenceNodes("grep"));
    EXPECT_DOUBLE_EQ(r.nodesPerCycle,
                     static_cast<double>(r.refNodes) /
                         static_cast<double>(r.cycles));
    // Single-block translation is 1:1.
    EXPECT_EQ(r.engine.retiredNodes, r.refNodes);
}

TEST(Harness, PreparationIsCachedAndDeterministic)
{
    ExperimentRunner runner(0.2);
    const auto a = runner.run(
        "sort", cfg(Discipline::Dyn4, 4, 'A', BranchMode::Enlarged));
    const auto b = runner.run(
        "sort", cfg(Discipline::Dyn4, 4, 'A', BranchMode::Enlarged));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.engine.executedNodes, b.engine.executedNodes);
}

TEST(Harness, EnlargementStatsExposed)
{
    ExperimentRunner runner(0.2);
    const EnlargeStats &stats = runner.enlargeStats("grep");
    EXPECT_GT(stats.chains, 0u);
    EXPECT_GT(stats.meanChainLen, 1.0);
    EXPECT_GT(runner.enlargedImage("grep").blocks.size(),
              runner.singleImage("grep").blocks.size());
}

TEST(Harness, MeanAcrossBenchmarksIsAveraged)
{
    ExperimentRunner runner(0.1);
    const MachineConfig config =
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Single);
    double sum = 0.0;
    for (const std::string &name : workloadNames())
        sum += runner.run(name, config).nodesPerCycle;
    EXPECT_NEAR(runner.meanNodesPerCycle(config), sum / 5.0, 1e-12);
}

TEST(Harness, PaperOrderingHoldsAtFullScaleIssue8)
{
    // The central qualitative claims of Figure 3 at issue model 8.
    ExperimentRunner runner; // full-scale inputs
    const double stat =
        runner.meanNodesPerCycle(
            cfg(Discipline::Static, 8, 'A', BranchMode::Single));
    const double dyn4 = runner.meanNodesPerCycle(
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Single));
    const double dyn4_en = runner.meanNodesPerCycle(
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Enlarged));
    const double dyn256_en = runner.meanNodesPerCycle(
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged));
    const double perfect = runner.meanNodesPerCycle(
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Perfect));

    EXPECT_GT(dyn4, stat);
    EXPECT_GT(dyn4_en, dyn4);
    EXPECT_GE(dyn256_en, dyn4_en * 0.95); // close, per the paper
    EXPECT_GT(perfect, dyn256_en);
    // Realistic wide machines reach roughly 3-6 nodes/cycle.
    EXPECT_GT(dyn4_en, 2.0);
    EXPECT_LT(dyn4_en, 8.0);
}

TEST(Harness, NarrowMachinesShowLittleSpread)
{
    // Figure 3's other headline: at issue model 2 the schemes are close.
    ExperimentRunner runner(0.5);
    const double stat = runner.meanNodesPerCycle(
        cfg(Discipline::Static, 2, 'A', BranchMode::Single));
    const double best = runner.meanNodesPerCycle(
        cfg(Discipline::Dyn256, 2, 'A', BranchMode::Enlarged));
    EXPECT_LT(best / stat, 2.2);
}

TEST(Harness, RedundancyOrderingMatchesFigure6)
{
    ExperimentRunner runner(0.5);
    const double dyn4_single = runner.meanRedundancy(
        cfg(Discipline::Dyn4, 8, 'A', BranchMode::Single));
    const double dyn256_en = runner.meanRedundancy(
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Enlarged));
    const double perfect = runner.meanRedundancy(
        cfg(Discipline::Dyn256, 8, 'A', BranchMode::Perfect));
    EXPECT_GT(dyn256_en, dyn4_single);
    EXPECT_LT(perfect, 0.05);
    EXPECT_LT(dyn256_en, 0.6);
}

TEST(Harness, ParallelSweepMatchesSerialRowForRow)
{
    // Mixed grid: several workloads, disciplines, memories and branch
    // modes, so the threads contend on shared prepared state.
    std::vector<SweepPoint> points;
    for (const char *workload : {"grep", "compress", "sort"})
        for (Discipline d : {Discipline::Static, Discipline::Dyn4})
            for (char mem : {'A', 'G'})
                points.push_back(
                    {workload, cfg(d, 8, mem, BranchMode::Enlarged)});

    ExperimentRunner serial_runner(0.2);
    const std::vector<ExperimentResult> serial =
        runSweep(serial_runner, points, 1);

    ExperimentRunner parallel_runner(0.2);
    const std::vector<ExperimentResult> parallel =
        runSweep(parallel_runner, points, 4);

    ASSERT_EQ(serial.size(), points.size());
    ASSERT_EQ(parallel.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE(points[i].workload + " " + points[i].config.name());
        EXPECT_EQ(parallel[i].workload, serial[i].workload);
        EXPECT_EQ(parallel[i].config.name(), serial[i].config.name());
        EXPECT_EQ(parallel[i].cycles, serial[i].cycles);
        EXPECT_EQ(parallel[i].refNodes, serial[i].refNodes);
        EXPECT_DOUBLE_EQ(parallel[i].nodesPerCycle, serial[i].nodesPerCycle);
        EXPECT_EQ(parallel[i].engine.executedNodes,
                  serial[i].engine.executedNodes);
        EXPECT_EQ(parallel[i].engine.retiredNodes,
                  serial[i].engine.retiredNodes);
        EXPECT_EQ(parallel[i].engine.mispredicts,
                  serial[i].engine.mispredicts);
        EXPECT_EQ(parallel[i].engine.faultsFired,
                  serial[i].engine.faultsFired);
    }
}

TEST(Harness, SweepJobsHonorsEnvOverride)
{
    // Not parallel-safe with other env users, but gtest runs tests in
    // one thread per process.
    setenv("FGP_JOBS", "3", 1);
    EXPECT_EQ(sweepJobs(), 3);
    setenv("FGP_JOBS", "0", 1);
    EXPECT_GE(sweepJobs(), 1); // invalid value falls back
    unsetenv("FGP_JOBS");
    EXPECT_GE(sweepJobs(), 1);
}

TEST(AtomicRunner, MatchesInterpreterOnWorkloads)
{
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name);
        wl.setScale(0.2);

        SimOS os_vm;
        wl.prepareOs(os_vm, InputSet::Measure);
        const RunResult ref = interpret(wl.program(), os_vm);

        const CodeImage image = buildCfg(wl.program());
        SimOS os_at;
        wl.prepareOs(os_at, InputSet::Measure);
        const AtomicRunResult r = runAtomic(image, os_at);

        EXPECT_EQ(r.exitCode, ref.exitCode) << name;
        EXPECT_EQ(os_at.stdoutText(), os_vm.stdoutText()) << name;
        // Single-block images cannot fault.
        EXPECT_EQ(r.faults, 0u) << name;
        EXPECT_EQ(r.retiredNodes, ref.dynamicNodes) << name;
    }
}

TEST(AtomicRunner, TraceListsCommittedBlocks)
{
    Workload wl = makeWorkload("grep");
    wl.setScale(0.1);
    const CodeImage image = buildCfg(wl.program());
    SimOS os;
    wl.prepareOs(os, InputSet::Measure);
    AtomicRunOptions opts;
    opts.recordTrace = true;
    const AtomicRunResult r = runAtomic(image, os, opts);
    EXPECT_EQ(r.blockTrace.size(), r.committedBlocks);
    ASSERT_FALSE(r.blockTrace.empty());
    EXPECT_EQ(r.blockTrace.front(), image.entryBlock);
}

} // namespace
} // namespace fgp
