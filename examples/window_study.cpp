/**
 * @file
 * Window-size study: reproduce the paper's core tradeoff on one
 * benchmark — how the instruction window (in basic blocks) and basic
 * block enlargement trade off against each other (§2.3's "optimal point
 * between the enlargement of basic blocks and the use of dynamic
 * scheduling").
 *
 *   $ ./build/examples/window_study [benchmark]
 */

#include <iostream>

#include "base/table.hh"
#include "base/logging.hh"
#include "harness/experiment.hh"

using namespace fgp;

int
main(int argc, char **argv)
{
    try {
        const std::string workload = argc > 1 ? argv[1] : "grep";
        ExperimentRunner runner;

        Table table({"discipline", "single", "enlarged",
                     "redundancy(enlarged)"});
        for (Discipline d : allDisciplines()) {
            MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                 BranchMode::Single};
            const double single =
                runner.run(workload, config).nodesPerCycle;
            config.branch = BranchMode::Enlarged;
            const ExperimentResult en = runner.run(workload, config);
            table.addNumericRow(
                disciplineName(d),
                {single, en.nodesPerCycle, en.engine.redundancy()});
        }
        std::cout << "benchmark: " << workload << ", issue model 8, "
                  << "memory A\n\n";
        table.print(std::cout);
        std::cout
            << "\nTwo ways to exploit speculative execution (paper "
               "section 3.2):\n"
               "  - a large window of small blocks (right column of "
               "'single'),\n"
               "  - enlarged blocks with a small window (row 'dyn1' of "
               "'enlarged');\n"
               "combining both clearly beats either one alone.\n";
        return 0;
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
