/**
 * @file
 * Figure 1, executed: the paper's basic-block-enlargement diagram shows
 * a block A branching to B or C, with C looping back to A. The middle of
 * the figure fuses A with each successor (AB and AC, faulting into each
 * other); the right unrolls the hot A->C loop into ACAC. This example
 * builds exactly that CFG, drives the enlargement pass along each arc
 * profile, and prints the resulting blocks — fault nodes included.
 *
 *   $ ./build/examples/figure1
 */

#include <iostream>

#include "bbe/enlarge.hh"
#include "ir/cfg.hh"
#include "ir/printer.hh"
#include "masm/assembler.hh"
#include "vm/interp.hh"

using namespace fgp;

// A: test; branches to B (taken) or falls into C.
// C: loops back to A or exits to Z.
static const char *const kFigure1 = R"(
main:
A:      lw   r8, 0(r20)      # block A
        addi r20, r20, 4
        bnez r8, B
C:      add  r21, r21, r8    # block C
        addi r22, r22, -1
        bnez r22, A
        j    Z
B:      addi r21, r21, 1     # block B
        j    A
Z:      li   v0, 0           # exit
        li   a0, 0
        syscall
)";

namespace {

void
show(const char *title, const CodeImage &image)
{
    std::cout << "---- " << title << " ----\n";
    for (const ImageBlock &block : image.blocks) {
        if (!block.enlarged)
            continue;
        std::cout << (block.companion ? "companion" : "primary")
                  << " block " << block.id << " (chain of "
                  << block.chainLen << "):\n";
        for (const Node &node : block.nodes)
            std::cout << "    " << formatNode(node) << "\n";
    }
    std::cout << "\n";
}

/** Synthesize an arc profile instead of running: this IS the figure. */
Profile
arcProfile(const Program &prog, std::uint64_t a_taken,
           std::uint64_t a_fall, std::uint64_t c_taken,
           std::uint64_t c_fall)
{
    Profile profile;
    const std::int32_t branch_a = prog.codeLabels.at("A") + 2;
    const std::int32_t branch_c = prog.codeLabels.at("C") + 2;
    profile.arcs[branch_a] = {a_taken, a_fall};
    profile.arcs[branch_c] = {c_taken, c_fall};
    profile.totalBranches = a_taken + a_fall + c_taken + c_fall;
    return profile;
}

} // namespace

int
main()
{
    const Program prog = assemble(kFigure1, "figure1");
    const CodeImage single = buildCfg(prog);

    EnlargeOptions opts;
    opts.minArcCount = 10;
    opts.minArcRatio = 0.6;

    // Middle of Figure 1: A's branch favours B -> the pass builds AB
    // with an embedded fault whose explicit fault-to is the companion
    // covering the A->C path (they fault into each other).
    {
        opts.maxChainLen = 2;
        const CodeImage enlarged = enlarge(
            single, arcProfile(prog, 80, 20, 50, 50), opts);
        show("AB with its AC companion (A's branch favours B)", enlarged);
    }

    // Right of Figure 1: the A->C->A loop dominates -> two iterations
    // unroll into one ACAC block.
    {
        opts.maxChainLen = 4;
        const CodeImage enlarged = enlarge(
            single, arcProfile(prog, 10, 90, 90, 10), opts);
        show("ACAC (two unrolled iterations of the hot loop)", enlarged);
    }

    std::cout << "Note the converted branches: each embedded 'f..' node "
                 "executes silently on the hot path and, when it fires, "
                 "discards the whole atomic block and resumes at its "
                 "explicit fault-to target (paper, section 2.3).\n";
    return 0;
}
