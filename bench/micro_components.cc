/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * cache directory, branch predictor, sparse memory, assembler, the
 * functional VM and the cycle engine itself (simulation throughput in
 * nodes/second). The engine's allocation-free container primitives
 * (engine/containers.hh) are benchmarked head-to-head against the std::
 * containers they replaced, so layout regressions stay attributable.
 */

#include <benchmark/benchmark.h>

#include <deque>
#include <queue>
#include <unordered_map>

#include "base/logging.hh"
#include "base/rng.hh"
#include "bbe/enlarge.hh"
#include "branch/predictor.hh"
#include "engine/containers.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "memsys/memsys.hh"
#include "tld/translate.hh"
#include "vm/interp.hh"
#include "vm/memory.hh"
#include "workloads/workloads.hh"

namespace {

using namespace fgp;

void
BM_CacheAccess(benchmark::State &state)
{
    CacheDirectory cache(16 * 1024, 2, 16);
    Rng rng(1);
    std::vector<std::uint32_t> addrs(4096);
    for (auto &addr : addrs)
        addr = static_cast<std::uint32_t>(rng.below(1 << 18));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i], true));
        i = (i + 1) & 4095;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_PredictorLookup(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(2);
    std::vector<std::int32_t> pcs(1024);
    for (auto &pc : pcs)
        pc = static_cast<std::int32_t>(rng.below(4096));
    std::size_t i = 0;
    for (auto _ : state) {
        const std::int32_t pc = pcs[i];
        const bool taken = bp.predictConditional(pc, pc - 10);
        bp.updateConditional(pc, !taken);
        i = (i + 1) & 1023;
    }
}
BENCHMARK(BM_PredictorLookup);

// --- Ready queue: the scheduler pushes every woken node and pops
// oldest-first each cycle. MinHeap (flat array, clearRetain) vs the
// std::priority_queue it replaced. The access mix models a window:
// push a burst, pop roughly half, repeat.

constexpr std::size_t kReadyBurst = 32;

void
BM_ReadyQueueMinHeap(benchmark::State &state)
{
    struct SeqLess
    {
        bool
        operator()(std::uint64_t a, std::uint64_t b) const
        {
            return a < b;
        }
    };
    MinHeap<std::uint64_t, SeqLess> heap;
    Rng rng(3);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kReadyBurst; ++i)
            heap.push(seq + rng.below(64));
        seq += kReadyBurst;
        for (std::size_t i = 0; i < kReadyBurst / 2 && !heap.empty(); ++i) {
            benchmark::DoNotOptimize(heap.top());
            heap.pop();
        }
        if (heap.size() > 4096)
            heap.clearRetain();
    }
}
BENCHMARK(BM_ReadyQueueMinHeap);

void
BM_ReadyQueueStdPriorityQueue(benchmark::State &state)
{
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<std::uint64_t>>
        heap;
    Rng rng(3);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kReadyBurst; ++i)
            heap.push(seq + rng.below(64));
        seq += kReadyBurst;
        for (std::size_t i = 0; i < kReadyBurst / 2 && !heap.empty(); ++i) {
            benchmark::DoNotOptimize(heap.top());
            heap.pop();
        }
        if (heap.size() > 4096)
            heap = {};
    }
}
BENCHMARK(BM_ReadyQueueStdPriorityQueue);

// --- Waiter table: at issue each unready operand registers its consumer
// with the producer; at completion the producer drains its chain. The
// engine threads ChainPool chains through node slots; the old engine
// kept an unordered_map<producer, vector<consumer>>.

struct WaiterItem
{
    std::uint64_t seq;
    std::uint32_t pos;
    std::uint32_t slot;
};

constexpr std::size_t kWaiterProducers = 256;
constexpr std::size_t kWaitersPerProducer = 4;

void
BM_WaiterTableChainPool(benchmark::State &state)
{
    ChainPool<WaiterItem> pool;
    struct ChainRef
    {
        std::uint32_t head = kNilIndex;
        std::uint32_t tail = kNilIndex;
    };
    std::vector<ChainRef> chains(kWaiterProducers);
    std::uint64_t seq = 0;
    std::uint64_t drained = 0;
    for (auto _ : state) {
        // Issue: append one consumer to every producer's chain.
        for (std::size_t round = 0; round < kWaitersPerProducer; ++round) {
            for (std::size_t p = 0; p < kWaiterProducers; ++p) {
                const std::uint32_t idx = pool.alloc(
                    {seq, static_cast<std::uint32_t>(seq & 0xffff),
                     static_cast<std::uint32_t>(round)});
                ++seq;
                ChainRef &chain = chains[p];
                if (chain.head == kNilIndex)
                    chain.head = idx;
                else
                    pool.setNext(chain.tail, idx);
                chain.tail = idx;
            }
        }
        // Complete: drain every chain in append order.
        for (ChainRef &chain : chains) {
            std::uint32_t idx = chain.head;
            while (idx != kNilIndex) {
                const std::uint32_t nxt = pool.next(idx);
                drained += pool.at(idx).seq;
                pool.release(idx);
                idx = nxt;
            }
            chain = {};
        }
    }
    benchmark::DoNotOptimize(drained);
}
BENCHMARK(BM_WaiterTableChainPool);

void
BM_WaiterTableUnorderedMap(benchmark::State &state)
{
    std::unordered_map<std::uint64_t, std::vector<WaiterItem>> waiters;
    std::uint64_t seq = 0;
    std::uint64_t drained = 0;
    for (auto _ : state) {
        for (std::size_t round = 0; round < kWaitersPerProducer; ++round) {
            for (std::size_t p = 0; p < kWaiterProducers; ++p) {
                waiters[p].push_back(
                    {seq, static_cast<std::uint32_t>(seq & 0xffff),
                     static_cast<std::uint32_t>(round)});
                ++seq;
            }
        }
        for (std::size_t p = 0; p < kWaiterProducers; ++p) {
            const auto it = waiters.find(p);
            if (it == waiters.end())
                continue;
            for (const WaiterItem &w : it->second)
                drained += w.seq;
            waiters.erase(it);
        }
    }
    benchmark::DoNotOptimize(drained);
}
BENCHMARK(BM_WaiterTableUnorderedMap);

// --- Store/word queue: push at issue, pop_front at retire, pop_back on
// squash. RingBuffer (power-of-two flat array) vs the std::deque it
// replaced.

constexpr std::size_t kRingDepth = 256;

void
BM_RingBufferQueue(benchmark::State &state)
{
    RingBuffer<std::uint64_t> ring;
    std::uint64_t seq = 0;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        while (ring.size() < kRingDepth)
            ring.push_back(seq++);
        // Retire half from the front, squash a quarter off the back.
        for (std::size_t i = 0; i < kRingDepth / 2; ++i) {
            sum += ring.front();
            ring.pop_front();
        }
        for (std::size_t i = 0; i < kRingDepth / 4; ++i)
            ring.pop_back();
    }
    benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_RingBufferQueue);

void
BM_StdDequeQueue(benchmark::State &state)
{
    std::deque<std::uint64_t> ring;
    std::uint64_t seq = 0;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        while (ring.size() < kRingDepth)
            ring.push_back(seq++);
        for (std::size_t i = 0; i < kRingDepth / 2; ++i) {
            sum += ring.front();
            ring.pop_front();
        }
        for (std::size_t i = 0; i < kRingDepth / 4; ++i)
            ring.pop_back();
    }
    benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_StdDequeQueue);

void
BM_SparseMemoryRead32(benchmark::State &state)
{
    SparseMemory mem;
    for (std::uint32_t a = 0; a < 1 << 16; a += 4)
        mem.write32(kDataBase + a, a);
    std::uint32_t addr = kDataBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.read32(addr));
        addr = kDataBase + ((addr + 4) & 0xffff);
    }
}
BENCHMARK(BM_SparseMemoryRead32);

void
BM_AssembleGrep(benchmark::State &state)
{
    for (auto _ : state) {
        const Workload wl = makeWorkload("grep");
        benchmark::DoNotOptimize(wl.program().instrs.size());
    }
}
BENCHMARK(BM_AssembleGrep);

void
BM_VmInterpret(benchmark::State &state)
{
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);
    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        const RunResult r = interpret(wl.program(), os);
        nodes += r.dynamicNodes;
    }
    state.counters["nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInterpret);

void
BM_EngineDyn4(benchmark::State &state)
{
    detail::setQuiet(true);
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);
    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('A'), BranchMode::Single};
    CodeImage image = buildCfg(wl.program());
    translate(image, config);

    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);
        nodes += r.retiredNodes;
    }
    state.counters["sim_nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineDyn4);

void
BM_EngineDyn256Enlarged(benchmark::State &state)
{
    detail::setQuiet(true);
    Workload wl = makeWorkload("compress");
    wl.setScale(0.3);

    Profile profile;
    {
        SimOS os;
        wl.prepareOs(os, InputSet::Profile);
        InterpOptions opts;
        opts.profile = &profile;
        interpret(wl.program(), os, opts);
    }
    const MachineConfig config{Discipline::Dyn256, issueModel(8),
                               memoryConfig('A'), BranchMode::Enlarged};
    CodeImage image = enlarge(buildCfg(wl.program()), profile);
    translate(image, config);

    std::uint64_t nodes = 0;
    for (auto _ : state) {
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);
        nodes += r.retiredNodes;
    }
    state.counters["sim_nodes/s"] = benchmark::Counter(
        static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineDyn256Enlarged);

} // namespace

BENCHMARK_MAIN();
