#include "memsys/memsys.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fgp {

namespace {

int
log2i(std::uint32_t value)
{
    int shift = 0;
    while ((1u << shift) < value)
        ++shift;
    fgp_assert((1u << shift) == value, "value must be a power of two");
    return shift;
}

} // namespace

CacheDirectory::CacheDirectory(std::uint32_t bytes, int assoc,
                               int line_bytes)
    : assoc_(assoc), lineShift_(log2i(static_cast<std::uint32_t>(line_bytes)))
{
    fgp_assert(bytes > 0 && assoc > 0 && line_bytes > 0, "bad geometry");
    const std::uint32_t num_lines =
        bytes / static_cast<std::uint32_t>(line_bytes);
    const std::uint32_t num_sets =
        num_lines / static_cast<std::uint32_t>(assoc);
    fgp_assert(num_sets >= 1, "cache smaller than one set");
    fgp_assert((num_sets & (num_sets - 1)) == 0, "sets must be 2^n");
    setMask_ = num_sets - 1;
    sets_.assign(num_sets, std::vector<Line>(assoc));
}

std::uint32_t
CacheDirectory::lineFor(std::uint32_t addr) const
{
    return addr >> lineShift_;
}

bool
CacheDirectory::access(std::uint32_t addr, bool allocate)
{
    const std::uint32_t line = lineFor(addr);
    auto &set = sets_[line & setMask_];
    for (Line &way : set) {
        if (way.valid && way.tag == line) {
            way.lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    if (allocate) {
        Line *victim = &set[0];
        for (Line &way : set) {
            if (!way.valid) {
                victim = &way;
                break;
            }
            if (way.lastUse < victim->lastUse)
                victim = &way;
        }
        victim->valid = true;
        victim->tag = line;
        victim->lastUse = ++useClock_;
    }
    return false;
}

bool
CacheDirectory::contains(std::uint32_t addr) const
{
    const std::uint32_t line = lineFor(addr);
    const auto &set = sets_[line & setMask_];
    return std::any_of(set.begin(), set.end(), [&](const Line &way) {
        return way.valid && way.tag == line;
    });
}

WriteBuffer::WriteBuffer(int lines, int line_bytes)
    : capacity_(lines), lineShift_(log2i(static_cast<std::uint32_t>(line_bytes)))
{
    fgp_assert(lines > 0, "write buffer needs capacity");
    lru_.reserve(static_cast<std::size_t>(lines));
}

bool
WriteBuffer::contains(std::uint32_t addr)
{
    const std::uint32_t line = addr >> lineShift_;
    const auto it = std::find(lru_.begin(), lru_.end(), line);
    if (it == lru_.end())
        return false;
    std::rotate(lru_.begin(), it, it + 1); // move-to-front
    ++hits_;
    return true;
}

std::int64_t
WriteBuffer::insert(std::uint32_t addr)
{
    const std::uint32_t line = addr >> lineShift_;
    const auto it = std::find(lru_.begin(), lru_.end(), line);
    if (it != lru_.end()) {
        std::rotate(lru_.begin(), it, it + 1); // move-to-front
        return -1;
    }
    std::int64_t evicted = -1;
    if (static_cast<int>(lru_.size()) == capacity_) {
        evicted = static_cast<std::int64_t>(lru_.back());
        lru_.pop_back();
    }
    lru_.insert(lru_.begin(), line);
    return evicted;
}

MemorySystem::MemorySystem(const MemoryConfig &config)
    : config_(config),
      cache_(config.hasCache ? config.cacheBytes : 1024, kCacheAssoc,
             kCacheLineBytes),
      writeBuffer_(kWriteBufferLines, kCacheLineBytes)
{
}

int
MemorySystem::loadLatency(std::uint32_t addr, bool forwarded)
{
    ++loads_;
    if (forwarded || !config_.hasCache)
        return config_.hitLatency;
    if (writeBuffer_.contains(addr))
        return config_.hitLatency;
    if (cache_.access(addr, /*allocate=*/true))
        return config_.hitLatency;
    ++loadMisses_;
    return config_.missLatency;
}

void
MemorySystem::commitStore(std::uint32_t addr, std::uint32_t /*len*/)
{
    ++stores_;
    if (!config_.hasCache)
        return;
    const std::int64_t evicted = writeBuffer_.insert(addr);
    if (evicted >= 0) {
        // Drained line moves into the cache (write-back allocation).
        cache_.access(static_cast<std::uint32_t>(evicted)
                          << log2i(kCacheLineBytes),
                      /*allocate=*/true);
    }
}

double
MemorySystem::hitRatio()
const
{
    return loads_ ? 1.0 - static_cast<double>(loadMisses_) /
                              static_cast<double>(loads_)
                  : 1.0;
}

void
MemorySystem::exportStats(StatGroup &stats, const std::string &prefix) const
{
    stats.set(prefix + "loads", loads_);
    stats.set(prefix + "load_misses", loadMisses_);
    stats.set(prefix + "stores", stores_);
    stats.set(prefix + "wb_hits", writeBuffer_.hits());
    stats.setReal(prefix + "hit_ratio", hitRatio());
}

} // namespace fgp
