/**
 * @file
 * Benchmark suite: the paper's five UNIX utilities (§3.1), each assembled
 * from micro-op assembly, plus deterministic input generators. Two input
 * sets exist per benchmark — set 1 profiles (drives enlargement), set 2
 * measures — "in order to prevent the branch data from being overly
 * biased" (§3.1).
 */

#ifndef FGP_WORKLOADS_WORKLOADS_HH
#define FGP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/program.hh"
#include "vm/simos.hh"

namespace fgp {

/** Input-set selector. */
enum class InputSet : int {
    Profile = 1, ///< drives the enlargement-file creation
    Measure = 2, ///< produces the reported numbers
};

/** One benchmark: program + input preparation. */
class Workload
{
  public:
    Workload(std::string name, Program program);

    const std::string &name() const { return name_; }
    const Program &program() const { return program_; }

    /** Install stdin / input files for the given input set. */
    void prepareOs(SimOS &os, InputSet set) const;

    /**
     * Scale factor for input sizes (1 = default benchmark size). Used by
     * tests (tiny inputs) and ablations (bigger inputs). Must be set
     * before prepareOs.
     */
    void setScale(double scale) { scale_ = scale; }
    double scale() const { return scale_; }

  private:
    std::string name_;
    Program program_;
    double scale_ = 1.0;
};

/** Names of all five benchmarks in the paper's order. */
const std::vector<std::string> &workloadNames();

/** Build a benchmark by name (sort, grep, diff, cpp, compress). */
Workload makeWorkload(const std::string &name);

/** Build all five. */
std::vector<Workload> makeAllWorkloads();

// Input generators are exposed for tests.
std::string genSortInput(InputSet set, double scale);
std::string genGrepInput(InputSet set, double scale);
void genDiffInputs(InputSet set, double scale, std::string &file_a,
                   std::string &file_b);
std::string genCppInput(InputSet set, double scale);
std::string genCompressInput(InputSet set, double scale);

} // namespace fgp

#endif // FGP_WORKLOADS_WORKLOADS_HH
