file(REMOVE_RECURSE
  "CMakeFiles/tld_test.dir/tld_test.cc.o"
  "CMakeFiles/tld_test.dir/tld_test.cc.o.d"
  "tld_test"
  "tld_test.pdb"
  "tld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
