#include "verify/symexpr.hh"

#include <algorithm>

#include "base/logging.hh"
#include "vm/exec.hh"

namespace fgp::verify::sym {

Opcode
rriRoot(Opcode op)
{
    switch (op) {
      case Opcode::ADDI: return Opcode::ADD;
      case Opcode::ANDI: return Opcode::AND;
      case Opcode::ORI: return Opcode::OR;
      case Opcode::XORI: return Opcode::XOR;
      case Opcode::SLLI: return Opcode::SLL;
      case Opcode::SRLI: return Opcode::SRL;
      case Opcode::SRAI: return Opcode::SRA;
      case Opcode::SLTI: return Opcode::SLT;
      case Opcode::SLTIU: return Opcode::SLTU;
      default:
        fgp_panic("rriRoot on ", mnemonic(op));
    }
}

bool
isCommutativeRoot(Opcode op)
{
    return op == Opcode::ADD || op == Opcode::AND || op == Opcode::OR ||
           op == Opcode::XOR;
}

ExprId
Arena::intern(const Expr &expr)
{
    const auto [it, inserted] =
        ids_.try_emplace(expr, static_cast<ExprId>(exprs_.size()));
    if (inserted)
        exprs_.push_back(expr);
    return it->second;
}

ExprId
Arena::constant(std::uint32_t value)
{
    Expr expr{Kind::Const};
    expr.value = value;
    return intern(expr);
}

ExprId
Arena::init(std::uint8_t reg)
{
    Expr expr{Kind::Init};
    expr.value = reg;
    return intern(expr);
}

ExprId
Arena::load(Opcode op, ExprId addr, std::int32_t mem_version)
{
    Expr expr{Kind::Load};
    expr.op = op;
    expr.a = addr;
    expr.aux = mem_version;
    return intern(expr);
}

ExprId
Arena::opaque(std::int32_t orig_pc, std::uint32_t serial)
{
    Expr expr{Kind::Opaque};
    expr.aux = orig_pc;
    expr.value = serial;
    return intern(expr);
}

ExprId
Arena::makeAlu(Opcode root, ExprId a, ExprId b)
{
    const Expr ea = at(a);
    const Expr eb = at(b);
    if (ea.kind == Kind::Const && eb.kind == Kind::Const) {
        Node synth;
        synth.op = root;
        return constant(evalAlu(synth, ea.value, eb.value));
    }
    if (root == Opcode::SUB && eb.kind == Kind::Const)
        return makeAlu(Opcode::ADD, a, constant(0u - eb.value));
    if (root == Opcode::ADD) {
        if (ea.kind == Kind::Const && ea.value == 0)
            return b;
        if (eb.kind == Kind::Const && eb.value == 0)
            return a;
    }
    if (isCommutativeRoot(root) && b < a)
        std::swap(a, b);
    Expr expr{Kind::Alu};
    expr.op = root;
    expr.a = a;
    expr.b = b;
    return intern(expr);
}

std::string
Arena::render(ExprId id, int depth) const
{
    if (id < 0)
        return "<none>";
    const Expr expr = at(id);
    switch (expr.kind) {
      case Kind::Init:
        return detail::composeMessage("r", expr.value, "@in");
      case Kind::Const:
        return detail::composeMessage(static_cast<std::int32_t>(expr.value));
      case Kind::Alu:
        if (depth <= 0)
            return "...";
        return detail::composeMessage(
            mnemonic(expr.op), "(", render(expr.a, depth - 1), ", ",
            render(expr.b, depth - 1), ")");
      case Kind::Load:
        if (depth <= 0)
            return "...";
        return detail::composeMessage(
            mnemonic(expr.op), "[", render(expr.a, depth - 1), "]@m",
            expr.aux);
      case Kind::Opaque:
        return detail::composeMessage("sys@", expr.aux, "#", expr.value);
    }
    return "?";
}

AddrParts
decompose(const Arena &arena, ExprId addr)
{
    const Expr expr = arena.at(addr);
    if (expr.kind == Kind::Const)
        return {-1, static_cast<std::int32_t>(expr.value)};
    if (expr.kind == Kind::Alu && expr.op == Opcode::ADD) {
        const Expr ea = arena.at(expr.a);
        const Expr eb = arena.at(expr.b);
        if (eb.kind == Kind::Const)
            return {expr.a, static_cast<std::int32_t>(eb.value)};
        if (ea.kind == Kind::Const)
            return {expr.b, static_cast<std::int32_t>(ea.value)};
    }
    return {addr, 0};
}

bool
definitelyDisjoint(const Arena &arena, ExprId addr_a, std::uint32_t len_a,
                   ExprId addr_b, std::uint32_t len_b)
{
    const AddrParts pa = decompose(arena, addr_a);
    const AddrParts pb = decompose(arena, addr_b);
    if (pa.base != pb.base)
        return false;
    return !(pa.off < pb.off + static_cast<std::int32_t>(len_b) &&
             pb.off < pa.off + static_cast<std::int32_t>(len_a));
}

bool
definitelySame(ExprId addr_a, std::uint32_t len_a, ExprId addr_b,
               std::uint32_t len_b)
{
    // Hash-consing makes expression equality an id comparison.
    return addr_a == addr_b && len_a == len_b;
}

} // namespace fgp::verify::sym
