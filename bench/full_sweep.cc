/**
 * @file
 * The paper's full data matrix: 560 configuration points per benchmark
 * (§3.2). By default a reduced slice is printed to keep the default
 * bench run quick; set FGP_FULL=1 for all 2800 simulations (CSV on
 * stdout, suitable for replotting every figure).
 */

#include "base/strutil.hh"
#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    const bool full = std::getenv("FGP_FULL") != nullptr;
    banner("Full sweep",
           full ? "all 560 configurations x 5 benchmarks (CSV)"
                : "reduced slice (set FGP_FULL=1 for all 2800 points)");

    ExperimentRunner runner(envScale());
    RunRecorder recorder("full_sweep", &runner);

    // Opt-in interval profiling: FGP_PROFILE_WINDOW=N attaches the
    // profiler with N-cycle windows to every point. The CSV then
    // carries measured critical-path lengths and the manifest
    // (FGP_RUN_MANIFEST) the per-window streams; schedules are
    // bit-identical either way.
    if (const char *pw = std::getenv("FGP_PROFILE_WINDOW")) {
        if (const auto cycles = parseInt(pw); cycles && *cycles > 0) {
            ExperimentRunner::EngineTweaks tweaks;
            tweaks.profileWindow = static_cast<std::uint64_t>(*cycles);
            runner.setEngineTweaks(tweaks);
        }
    }

    std::vector<MachineConfig> configs;
    if (full) {
        configs = fullConfigGrid();
    } else {
        for (int im : {2, 8}) {
            for (char mc : {'A', 'G'}) {
                for (Discipline d : allDisciplines())
                    for (BranchMode bm :
                         {BranchMode::Single, BranchMode::Enlarged})
                        configs.push_back(
                            {d, issueModel(im), memoryConfig(mc), bm});
                for (Discipline d : {Discipline::Dyn4, Discipline::Dyn256})
                    configs.push_back({d, issueModel(im), memoryConfig(mc),
                                       BranchMode::Perfect});
            }
        }
    }

    std::vector<SweepPoint> points;
    points.reserve(workloadNames().size() * configs.size());
    for (const std::string &workload : workloadNames())
        for (const MachineConfig &config : configs)
            points.push_back({workload, config});

    const std::vector<ExperimentResult> results =
        runSweep(runner, points, 0, recorder.progress());
    recorder.record(results);

    // Provenance comment: the fgpsim-run-v1 run record for this CSV.
    // Consumers (tools/check_bench.sh, plotting scripts) skip '#' lines;
    // the line varies with host/jobs/wall time, so byte-for-byte CSV
    // comparisons across job counts must strip it first (grep -v '^#').
    std::cout << "# " << recorder.headerLine() << "\n";
    std::cout << "benchmark,discipline,issue,memory,branch,nodes_per_cycle,"
                 "cycles,ref_nodes,redundancy,mispredicts,faults,"
                 "stall_fetch_redirect,stall_fetch_idle,stall_window_full,"
                 "stall_short_word,stall_drain,static_bound,"
                 "crit_path_cycles,disambig_fast_loads,"
                 "disambig_probes_eliminated\n";
    for (const ExperimentResult &r : results) {
        const MachineConfig &config = r.config;
        const StallBreakdown &st = r.engine.stalls;
        std::cout << r.workload << ','
                  << disciplineName(config.discipline) << ','
                  << config.issue.index << ',' << config.memory.name()
                  << ',' << branchModeName(config.branch) << ','
                  << format("%.4f", r.nodesPerCycle) << ',' << r.cycles
                  << ',' << r.refNodes << ','
                  << format("%.4f", r.engine.redundancy()) << ','
                  << r.engine.mispredicts << ','
                  << r.engine.faultsFired << ','
                  << st.fetchRedirectSlots << ',' << st.fetchIdleSlots << ','
                  << st.windowFullSlots << ',' << st.shortWordSlots << ','
                  << st.drainSlots << ','
                  << format("%.4f", r.staticIpcBound) << ','
                  << r.profile.critPath.pathCycles << ','
                  << r.engine.disambigFastLoads << ','
                  << r.engine.disambigProbesEliminated << '\n';
    }

    // Where the sweep's issue bandwidth went, in aggregate.
    const StallBreakdown total = totalStalls(results);
    std::cerr << "stall slots: redirect " << total.fetchRedirectSlots
              << ", idle " << total.fetchIdleSlots << ", window-full "
              << total.windowFullSlots << ", short-word "
              << total.shortWordSlots << ", drain " << total.drainSlots
              << "\n";
    finishRun(recorder);
    return 0;
}
