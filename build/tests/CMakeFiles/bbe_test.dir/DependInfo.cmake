
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bbe_test.cc" "tests/CMakeFiles/bbe_test.dir/bbe_test.cc.o" "gcc" "tests/CMakeFiles/bbe_test.dir/bbe_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fgp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/tld/CMakeFiles/fgp_tld.dir/DependInfo.cmake"
  "/root/repo/build/src/bbe/CMakeFiles/fgp_bbe.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fgp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/fgp_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/fgp_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/fgp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/fgp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/masm/CMakeFiles/fgp_masm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/fgp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fgp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/fgp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
