/**
 * @file
 * Minimal JSON emission helpers shared by the observability exporters.
 * Writing only — the repo has no JSON consumer, and keeping the surface
 * tiny avoids a third-party dependency.
 */

#ifndef FGP_OBS_JSON_HH
#define FGP_OBS_JSON_HH

#include <ostream>
#include <string>
#include <string_view>

namespace fgp::obs {

/** Escape for use inside a double-quoted JSON string. */
std::string jsonEscape(std::string_view text);

/** Render a double (finite values only) the way JSON expects. */
std::string jsonNumber(double value);

/**
 * Incremental writer for one JSON object/array tree. Tracks nesting and
 * comma placement; the caller provides structure via beginObject /
 * beginArray and key/value calls. Pretty-prints one key per line so the
 * output stays greppable by shell tooling (tools/check_bench.sh).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject(std::string_view key = {});
    void endObject();
    void beginArray(std::string_view key = {});
    void endArray();

    void field(std::string_view key, std::uint64_t value);
    void field(std::string_view key, std::int64_t value);
    void field(std::string_view key, int value);
    void field(std::string_view key, double value);
    void field(std::string_view key, bool value);
    void field(std::string_view key, std::string_view value);
    /** Keeps string literals away from the bool overload. */
    void
    field(std::string_view key, const char *value)
    {
        field(key, std::string_view(value));
    }

    /** Array element (no key). */
    void element(std::uint64_t value);
    void element(std::string_view value);

    /** Raw pre-rendered JSON value under a key (e.g. Histogram::toJson). */
    void rawField(std::string_view key, std::string_view json);

  private:
    void comma();
    void indent();
    void keyPrefix(std::string_view key);

    std::ostream &os_;
    int depth_ = 0;
    bool firstInScope_ = true;
};

} // namespace fgp::obs

#endif // FGP_OBS_JSON_HH
