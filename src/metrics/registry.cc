#include "metrics/registry.hh"

#include <atomic>

#include "metrics/manifest.hh"

namespace fgp::metrics {

Registry::Shard &
Registry::myShard()
{
    // Each thread claims a slot once; distinct worker threads land on
    // distinct shards (until kShards threads, after which they wrap),
    // so sweep workers never contend on one mutex.
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return shards_[slot % kShards];
}

void
Registry::add(std::string_view name, std::uint64_t delta)
{
    if (!enabled_)
        return;
    Shard &shard = myShard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.counters.find(name);
    if (it == shard.counters.end())
        shard.counters.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
Registry::setGauge(std::string_view name, double value)
{
    if (!enabled_)
        return;
    Shard &shard = myShard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.gauges.find(name);
    if (it == shard.gauges.end())
        shard.gauges.emplace(std::string(name), value);
    else
        it->second = value;
}

void
Registry::recordTimeNs(std::string_view name, std::uint64_t ns)
{
    if (!enabled_)
        return;
    Shard &shard = myShard();
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.timers.find(name);
    TimerStat observation{1, ns, ns};
    if (it == shard.timers.end())
        shard.timers.emplace(std::string(name), observation);
    else
        it->second.mergeFrom(observation);
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    for (const Shard &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[name, value] : shard.counters)
            snap.counters[name] += value;
        for (const auto &[name, value] : shard.gauges)
            snap.gauges[name] = value;
        for (const auto &[name, stat] : shard.timers)
            snap.timers[name].mergeFrom(stat);
    }
    return snap;
}

std::string
Snapshot::toJson() const
{
    JsonLineWriter json;
    for (const auto &[name, value] : counters)
        json.field(name, value);
    for (const auto &[name, value] : gauges)
        json.field(name, value);
    for (const auto &[name, stat] : timers) {
        json.field(name, stat.totalNs);
        json.field(name + ".count", stat.count);
        json.field(name + ".max", stat.maxNs);
    }
    return json.str();
}

} // namespace fgp::metrics
