#include "diff/flame.hh"

#include "base/strutil.hh"

namespace fgp::diff {

namespace {

std::string
blockFrame(const BlockDelta &block)
{
    std::string frame = format("block_%u", block.block);
    if (block.entryPc >= 0)
        frame += format("@pc%lld",
                        static_cast<long long>(block.entryPc));
    return frame;
}

} // namespace

std::size_t
writeFoldedDiff(std::ostream &os, const CellDiff &cell)
{
    const std::string prefix = cell.workload + ";" + cell.config;
    std::size_t lines = 0;

    bool joint = !cell.blocks.empty();
    for (const BlockDelta &block : cell.blocks)
        if (!block.hasCauses)
            joint = false;

    if (joint) {
        for (const BlockDelta &block : cell.blocks) {
            for (std::size_t c = 0; c < profile::kCritCauseCount; ++c) {
                if (!block.causesA[c] && !block.causesB[c])
                    continue;
                os << prefix << ";" << blockFrame(block) << ";"
                   << profile::critCauseName(
                          static_cast<profile::CritCause>(c))
                   << " " << block.causesA[c] << " " << block.causesB[c]
                   << "\n";
                ++lines;
            }
        }
        return lines;
    }

    if (!cell.blocks.empty()) {
        for (const BlockDelta &block : cell.blocks) {
            os << prefix << ";" << blockFrame(block) << " " << block.a
               << " " << block.b << "\n";
            ++lines;
        }
        return lines;
    }

    for (const CauseDelta &cause : cell.causes) {
        if (!cause.a && !cause.b)
            continue;
        os << prefix << ";" << cause.cause << " " << cause.a << " "
           << cause.b << "\n";
        ++lines;
    }
    return lines;
}

std::size_t
writeFoldedDiff(std::ostream &os, const DiffResult &result)
{
    std::size_t lines = 0;
    for (const CellDiff &cell : result.cells)
        lines += writeFoldedDiff(os, cell);
    return lines;
}

} // namespace fgp::diff
