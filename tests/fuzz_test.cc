/**
 * Structured program fuzzer: generates random — but terminating by
 * construction — programs with counted loops, data-dependent branches,
 * subroutine calls and memory traffic, then checks that the cycle engine
 * reproduces the functional VM's architectural results across machine
 * configurations (with and without enlargement).
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/rng.hh"
#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

/**
 * Build a random program. Structure: a few counted outer loops, each
 * containing random straight-line work, a data-dependent diamond and
 * optionally a call to one of a few generated leaf subroutines. The
 * result register mix is dumped to memory and summarized in the exit
 * code.
 */
std::string
randomProgram(Rng &rng)
{
    std::string text;
    auto reg = [&](int lo, int hi) {
        return "r" + std::to_string(rng.range(lo, hi));
    };
    auto emit_work = [&](int count) {
        for (int i = 0; i < count; ++i) {
            switch (rng.below(9)) {
              case 0:
                text += "        li " + reg(8, 15) + ", " +
                        std::to_string(rng.range(-64, 64)) + "\n";
                break;
              case 1:
                text += "        add " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 2:
                text += "        sub " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 3:
                text += "        mul " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + reg(8, 15) + "\n";
                break;
              case 4:
                text += "        xori " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + std::to_string(rng.range(0, 255)) + "\n";
                break;
              case 5:
                text += "        andi " + reg(8, 15) + ", " + reg(8, 15) +
                        ", 1023\n";
                break;
              case 6: {
                // Bounded random memory access within the scratch array.
                const std::string r = reg(8, 15);
                text += "        andi r16, " + r + ", 252\n";
                text += "        add  r16, r16, r28\n";
                text += "        lw   " + reg(8, 15) + ", 0(r16)\n";
                break;
              }
              case 7: {
                const std::string r = reg(8, 15);
                text += "        andi r17, " + r + ", 252\n";
                text += "        add  r17, r17, r28\n";
                text += "        sw   " + reg(8, 15) + ", 0(r17)\n";
                break;
              }
              case 8:
                text += "        srai " + reg(8, 15) + ", " + reg(8, 15) +
                        ", " + std::to_string(rng.range(0, 7)) + "\n";
                break;
            }
        }
    };

    const int num_funcs = static_cast<int>(rng.range(1, 3));
    const int num_loops = static_cast<int>(rng.range(1, 3));

    text += "main:   la   r28, scratch\n";
    for (int loop = 0; loop < num_loops; ++loop) {
        const std::string counter = "r" + std::to_string(20 + loop);
        const std::string label = "oloop" + std::to_string(loop);
        text += "        li   " + counter + ", " +
                std::to_string(rng.range(3, 24)) + "\n";
        text += label + ":\n";
        emit_work(static_cast<int>(rng.range(1, 6)));

        // Data-dependent diamond.
        const std::string skip = label + "_skip";
        const std::string join = label + "_join";
        text += "        andi r18, " + reg(8, 15) + ", " +
                std::to_string(1 + rng.below(7)) + "\n";
        text += "        beqz r18, " + skip + "\n";
        emit_work(static_cast<int>(rng.range(1, 4)));
        if (rng.chance(1, 2))
            text += "        jal  fn" +
                    std::to_string(rng.below(
                        static_cast<std::uint64_t>(num_funcs))) +
                    "\n";
        text += "        j    " + join + "\n";
        text += skip + ":\n";
        emit_work(static_cast<int>(rng.range(1, 3)));
        text += join + ":\n";

        text += "        addi " + counter + ", " + counter + ", -1\n";
        text += "        bnez " + counter + ", " + label + "\n";
    }

    // Summarize every register into the exit code.
    text += "        li   r19, 0\n";
    for (int r = 8; r <= 15; ++r)
        text += "        add  r19, r19, r" + std::to_string(r) + "\n";
    text += "        andi a0, r19, 0x7f\n";
    text += "        li   v0, 0\n";
    text += "        syscall\n";

    for (int f = 0; f < num_funcs; ++f) {
        text += "fn" + std::to_string(f) + ":\n";
        emit_work(static_cast<int>(rng.range(1, 4)));
        text += "        ret\n";
    }

    text += "        .data\nscratch: .space 512\n";
    return text;
}

TEST(Fuzz, EngineMatchesVmOnRandomPrograms)
{
    Rng rng(0xc0ffee);
    const std::vector<MachineConfig> configs = {
        {Discipline::Static, issueModel(4), memoryConfig('A'),
         BranchMode::Single},
        {Discipline::Dyn1, issueModel(8), memoryConfig('D'),
         BranchMode::Single},
        {Discipline::Dyn4, issueModel(8), memoryConfig('G'),
         BranchMode::Single},
        {Discipline::Dyn256, issueModel(8), memoryConfig('A'),
         BranchMode::Single},
    };

    for (int trial = 0; trial < 25; ++trial) {
        const std::string source = randomProgram(rng);
        Program prog;
        try {
            prog = assemble(source, "fuzz");
        } catch (const FatalError &err) {
            FAIL() << "generator produced invalid assembly: " << err.what()
                   << "\n"
                   << source;
        }

        SimOS vm_os;
        const RunResult ref = interpret(prog, vm_os);
        ASSERT_TRUE(ref.exited) << source;

        for (const MachineConfig &config : configs) {
            CodeImage image = buildCfg(prog);
            translate(image, config);
            SimOS os;
            EngineOptions opts;
            opts.config = config;
            const EngineResult r = simulate(image, os, opts);
            ASSERT_EQ(r.exitCode, ref.exitCode)
                << "trial " << trial << " config " << config.name() << "\n"
                << source;
            ASSERT_EQ(r.retiredNodes, ref.dynamicNodes)
                << "trial " << trial << " config " << config.name();
        }
    }
}

TEST(Fuzz, EnlargedImagesMatchVmOnRandomPrograms)
{
    Rng rng(0xfacade);
    for (int trial = 0; trial < 15; ++trial) {
        const std::string source = randomProgram(rng);
        const Program prog = assemble(source, "fuzz-en");

        SimOS vm_os;
        const RunResult ref = interpret(prog, vm_os);

        Profile profile;
        {
            SimOS os;
            InterpOptions opts;
            opts.profile = &profile;
            interpret(prog, os, opts);
        }
        EnlargeOptions eopts;
        eopts.minArcCount = 4;
        eopts.minArcRatio = 0.55;
        const CodeImage enlarged =
            enlarge(buildCfg(prog), profile, eopts);

        for (Discipline d :
             {Discipline::Static, Discipline::Dyn4, Discipline::Dyn256}) {
            CodeImage image = enlarged;
            const MachineConfig config{d, issueModel(8), memoryConfig('A'),
                                       BranchMode::Enlarged};
            translate(image, config);
            SimOS os;
            EngineOptions opts;
            opts.config = config;
            const EngineResult r = simulate(image, os, opts);
            ASSERT_EQ(r.exitCode, ref.exitCode)
                << "trial " << trial << " " << config.name() << "\n"
                << source;
        }
    }
}

} // namespace
} // namespace fgp
