/**
 * @file
 * Quickstart: assemble a tiny program, run it functionally, then
 * simulate it on two machine configurations and compare.
 *
 *   $ ./build/examples/quickstart
 */

#include <iostream>

#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "vm/interp.hh"

using namespace fgp;

// A program in the micro-op ISA: sum the integers 1..100 and print the
// result via the write system call.
static const char *const kProgram = R"(
        .data
buf:    .space 16
        .text
main:   li   r8, 0          # sum
        li   r9, 1          # i
loop:   add  r8, r8, r9
        addi r9, r9, 1
        li   r10, 101
        blt  r9, r10, loop

        # format r8 as decimal into buf (backwards)
        la   r11, buf+15
itoa:   addi r11, r11, -1
        li   r12, 10
        rem  r13, r8, r12
        addi r13, r13, '0'
        sb   r13, 0(r11)
        div  r8, r8, r12
        bnez r8, itoa

        li   v0, 4          # write(1, r11, len)
        li   a0, 1
        mov  a1, r11
        la   a2, buf+15
        sub  a2, a2, r11
        syscall
        li   v0, 0          # exit(0)
        li   a0, 0
        syscall
)";

int
main()
{
    // 1. Assemble.
    const Program prog = assemble(kProgram, "quickstart");
    std::cout << "assembled " << prog.instrs.size() << " nodes\n";

    // 2. Golden functional run.
    SimOS vm_os;
    const RunResult ref = interpret(prog, vm_os);
    std::cout << "functional run: " << ref.dynamicNodes
              << " dynamic nodes, output \"" << vm_os.stdoutText()
              << "\"\n\n";

    // 3. Simulate two machines: a narrow static one and a wide
    //    dynamically scheduled one (both with single basic blocks).
    for (const auto &[label, config] : {
             std::pair<const char *, MachineConfig>{
                 "static, 1 mem + 1 alu, 1-cycle memory",
                 {Discipline::Static, issueModel(2), memoryConfig('A'),
                  BranchMode::Single}},
             {"dynamic window 4, 4 mem + 12 alu, 1-cycle memory",
              {Discipline::Dyn4, issueModel(8), memoryConfig('A'),
               BranchMode::Single}},
         }) {
        CodeImage image = buildCfg(prog);
        translate(image, config);

        SimOS os;
        EngineOptions opts;
        opts.config = config;
        const EngineResult r = simulate(image, os, opts);

        std::cout << label << ":\n"
                  << "  cycles             " << r.cycles << "\n"
                  << "  nodes per cycle    " << r.nodesPerCycle() << "\n"
                  << "  branch mispredicts " << r.mispredicts << "\n"
                  << "  output             \"" << os.stdoutText() << "\"\n";
    }
    return 0;
}
