# Empty compiler generated dependencies file for fgp_vm.
# This may be replaced when dependencies are built.
