/**
 * @file
 * The five benchmark programs (§3.1) re-implemented in the micro-op ISA:
 * sort, grep, diff, cpp (macro expansion) and compress (LZW). Each string
 * holds the benchmark's main program; the shared runtime (runtime.cc) is
 * appended at assembly time.
 */

#include "workloads/bench_asm.hh"

namespace fgp {

// ---------------------------------------------------------------------
// sort: read stdin, split lines, shell sort with strcmp, print.
// ---------------------------------------------------------------------
const char *const kSortAsm = R"ASM(
        .text
main:
        call read_all
        li   a0, 16384
        call alloc
        mov  r20, v0            # line pointer array (max 4096 lines)
        la   r8, input_ptr
        lw   r21, 0(r8)         # scan cursor
        la   r8, input_len
        lw   r9, 0(r8)
        add  r22, r21, r9       # end of input
        li   r23, 0             # line count
msa_scan:
        bgeu r21, r22, msa_done
        slli r8, r23, 2
        add  r8, r8, r20
        sw   r21, 0(r8)
        addi r23, r23, 1
msa_find:
        lbu  r9, 0(r21)
        li   r10, 10
        beq  r9, r10, msa_nl
        beqz r9, msa_nl
        addi r21, r21, 1
        j    msa_find
msa_nl:
        sb   zero, 0(r21)
        addi r21, r21, 1
        j    msa_scan
msa_done:
        # shell sort with the Knuth gap sequence
        li   r24, 1
gap_grow:
        li   r8, 3
        mul  r9, r24, r8
        addi r9, r9, 1
        bge  r9, r23, gap_ok
        mov  r24, r9
        j    gap_grow
gap_ok:
sort_outer:
        beqz r24, sort_done
        mov  r25, r24           # i = gap
sort_i:
        bge  r25, r23, sort_next_gap
        slli r8, r25, 2
        add  r8, r8, r20
        lw   r26, 0(r8)         # tmp = lines[i]
        mov  r27, r25           # j
sort_j:
        blt  r27, r24, sort_place
        sub  r9, r27, r24
        slli r9, r9, 2
        add  r9, r9, r20
        lw   a0, 0(r9)          # lines[j-gap]
        mov  a1, r26
        call strcmp
        blez v0, sort_place
        sub  r9, r27, r24
        slli r9, r9, 2
        add  r9, r9, r20
        lw   r10, 0(r9)
        slli r11, r27, 2
        add  r11, r11, r20
        sw   r10, 0(r11)        # lines[j] = lines[j-gap]
        sub  r27, r27, r24
        j    sort_j
sort_place:
        slli r8, r27, 2
        add  r8, r8, r20
        sw   r26, 0(r8)
        addi r25, r25, 1
        j    sort_i
sort_next_gap:
        li   r8, 3
        div  r24, r24, r8
        j    sort_outer
sort_done:
        li   r25, 0
sout_loop:
        bge  r25, r23, sout_done
        slli r8, r25, 2
        add  r8, r8, r20
        lw   a0, 0(r8)
        call out_line
        addi r25, r25, 1
        j    sout_loop
sout_done:
        call out_flush
        li   v0, 0
        li   a0, 0
        syscall
)ASM";

// ---------------------------------------------------------------------
// grep: print stdin lines containing the fixed pattern.
// ---------------------------------------------------------------------
const char *const kGrepAsm = R"ASM(
        .data
pattern: .asciiz "ard"
        .text
main:
        call read_all
        la   r8, input_ptr
        lw   r20, 0(r8)
        la   r8, input_len
        lw   r9, 0(r8)
        add  r21, r20, r9
grep_line:
        bgeu r20, r21, grep_done
        mov  r22, r20           # line start
gl_find:
        lbu  r9, 0(r20)
        li   r10, 10
        beq  r9, r10, gl_nl
        beqz r9, gl_nl
        addi r20, r20, 1
        j    gl_find
gl_nl:
        sb   zero, 0(r20)
        addi r20, r20, 1
        mov  r11, r22           # naive substring search
ss_outer:
        lbu  r12, 0(r11)
        beqz r12, grep_line
        la   r13, pattern
        mov  r14, r11
ss_inner:
        lbu  r15, 0(r13)
        beqz r15, ss_match
        lbu  r16, 0(r14)
        bne  r15, r16, ss_next
        addi r13, r13, 1
        addi r14, r14, 1
        j    ss_inner
ss_next:
        addi r11, r11, 1
        j    ss_outer
ss_match:
        mov  a0, r22
        call out_line
        j    grep_line
grep_done:
        call out_flush
        li   v0, 0
        li   a0, 0
        syscall
)ASM";

// ---------------------------------------------------------------------
// diff: LCS line diff of files a.txt and b.txt ("< " deletions,
// "> " additions), hashed line equality.
// ---------------------------------------------------------------------
const char *const kDiffAsm = R"ASM(
        .data
fname_a: .asciiz "a.txt"
fname_b: .asciiz "b.txt"
diff_i:  .word 0
diff_j:  .word 0
        .text

# split_and_hash(a0=buf, a1=len, a2=line_arr, a3=hash_arr) -> v0 = count
split_and_hash:
        addi sp, sp, -4
        sw   ra, 0(sp)
        mov  r15, a0
        add  r16, a0, a1
        mov  r17, a2
        mov  r18, a3
        li   r19, 0
sah_scan:
        bgeu r15, r16, sah_done
        slli r8, r19, 2
        add  r9, r8, r17
        sw   r15, 0(r9)
sah_find:
        lbu  r10, 0(r15)
        li   r11, 10
        beq  r10, r11, sah_nl
        beqz r10, sah_nl
        addi r15, r15, 1
        j    sah_find
sah_nl:
        sb   zero, 0(r15)
        addi r15, r15, 1
        slli r8, r19, 2
        add  r12, r8, r17
        lw   a0, 0(r12)
        call hash_str
        slli r8, r19, 2
        add  r9, r8, r18
        sw   v0, 0(r9)
        addi r19, r19, 1
        j    sah_scan
sah_done:
        mov  v0, r19
        lw   ra, 0(sp)
        addi sp, sp, 4
        ret

main:
        la   a0, fname_a
        call read_file
        mov  r20, v0
        mov  r26, v1
        la   a0, fname_b
        call read_file
        mov  r23, v0
        mov  r27, v1
        li   a0, 2048
        call alloc
        mov  r21, v0            # arrays base (4 x 128 words)
        mov  a0, r20
        mov  a1, r26
        mov  a2, r21
        addi a3, r21, 512
        call split_and_hash
        mov  r22, v0            # na
        mov  a0, r23
        mov  a1, r27
        addi a2, r21, 1024
        addi a3, r21, 1536
        call split_and_hash
        mov  r25, v0            # nb
        mov  r20, r21           # la array
        addi r21, r20, 512      # ha array
        addi r23, r20, 1024     # lb array
        addi r24, r20, 1536     # hb array
        # dp[(na+1) x (nb+1)]; fresh heap reads as zero
        addi r8, r22, 1
        addi r9, r25, 1
        mul  r8, r8, r9
        slli a0, r8, 2
        call alloc
        mov  r26, v0            # dp
        addi r27, r25, 1        # stride
        addi r10, r22, -1       # i
dp_i:
        bltz r10, dp_done
        addi r11, r25, -1       # j
dp_j:
        bltz r11, dp_i_next
        slli r12, r10, 2
        add  r12, r12, r21
        lw   r13, 0(r12)        # ha[i]
        slli r12, r11, 2
        add  r12, r12, r24
        lw   r14, 0(r12)        # hb[j]
        mul  r15, r10, r27
        add  r15, r15, r11
        slli r15, r15, 2
        add  r15, r15, r26      # &dp[i][j]
        bne  r13, r14, dp_neq
        addi r16, r27, 1
        slli r16, r16, 2
        add  r16, r16, r15
        lw   r17, 0(r16)        # dp[i+1][j+1]
        addi r17, r17, 1
        sw   r17, 0(r15)
        j    dp_j_next
dp_neq:
        slli r16, r27, 2
        add  r16, r16, r15
        lw   r17, 0(r16)        # dp[i+1][j]
        lw   r18, 4(r15)        # dp[i][j+1]
        bge  r17, r18, dp_store
        mov  r17, r18
dp_store:
        sw   r17, 0(r15)
dp_j_next:
        addi r11, r11, -1
        j    dp_j
dp_i_next:
        addi r10, r10, -1
        j    dp_i
dp_done:
bt_loop:
        la   r8, diff_i
        lw   r10, 0(r8)
        la   r9, diff_j
        lw   r11, 0(r9)
        bge  r10, r22, bt_resta
        bge  r11, r25, bt_del
        slli r12, r10, 2
        add  r12, r12, r21
        lw   r13, 0(r12)
        slli r12, r11, 2
        add  r12, r12, r24
        lw   r14, 0(r12)
        bne  r13, r14, bt_neq
        addi r10, r10, 1
        sw   r10, 0(r8)
        addi r11, r11, 1
        la   r9, diff_j
        sw   r11, 0(r9)
        j    bt_loop
bt_neq:
        mul  r15, r10, r27
        add  r15, r15, r11
        slli r15, r15, 2
        add  r15, r15, r26
        slli r16, r27, 2
        add  r16, r16, r15
        lw   r17, 0(r16)        # dp[i+1][j]
        lw   r18, 4(r15)        # dp[i][j+1]
        blt  r17, r18, bt_add
bt_del:
        li   a0, '<'
        call out_char
        li   a0, ' '
        call out_char
        la   r8, diff_i
        lw   r10, 0(r8)
        slli r9, r10, 2
        add  r9, r9, r20
        lw   a0, 0(r9)
        call out_line
        la   r8, diff_i
        lw   r10, 0(r8)
        addi r10, r10, 1
        sw   r10, 0(r8)
        j    bt_loop
bt_add:
        li   a0, '>'
        call out_char
        li   a0, ' '
        call out_char
        la   r8, diff_j
        lw   r11, 0(r8)
        slli r9, r11, 2
        add  r9, r9, r23
        lw   a0, 0(r9)
        call out_line
        la   r8, diff_j
        lw   r11, 0(r8)
        addi r11, r11, 1
        sw   r11, 0(r8)
        j    bt_loop
bt_resta:
        bge  r11, r25, bt_done
        j    bt_add
bt_done:
        call out_flush
        li   v0, 0
        li   a0, 0
        syscall
)ASM";

// ---------------------------------------------------------------------
// cpp: "#define NAME BODY" macro table, identifier substitution.
// ---------------------------------------------------------------------
const char *const kCppAsm = R"ASM(
        .data
tokbuf: .space 64
        .text
main:
        call read_all
        li   a0, 512
        call alloc
        mov  r20, v0            # macro names (64); bodies at +256
        li   r21, 0             # macro count
        la   r8, input_ptr
        lw   r22, 0(r8)
        la   r8, input_len
        lw   r9, 0(r8)
        add  r23, r22, r9
line_loop:
        bgeu r22, r23, cpp_done
        mov  r24, r22           # line start
cl_find:
        lbu  r8, 0(r22)
        li   r9, 10
        beq  r8, r9, cl_nl
        beqz r8, cl_nl
        addi r22, r22, 1
        j    cl_find
cl_nl:
        sb   zero, 0(r22)
        addi r22, r22, 1
        lbu  r8, 0(r24)
        li   r9, '#'
        bne  r8, r9, expand
        # "#define NAME BODY" (generator guarantees the exact shape)
        addi r25, r24, 8        # name start
        mov  r10, r25
nd_scan:
        lbu  r8, 0(r10)
        li   r9, ' '
        beq  r8, r9, nd_end
        beqz r8, nd_end
        addi r10, r10, 1
        j    nd_scan
nd_end:
        sb   zero, 0(r10)
        addi r26, r10, 1        # body start
        slli r8, r21, 2
        add  r9, r8, r20
        sw   r25, 0(r9)
        addi r9, r9, 256
        sw   r26, 0(r9)
        addi r21, r21, 1
        j    line_loop
expand:
        mov  r25, r24
ex_loop:
        lbu  r8, 0(r25)
        beqz r8, ex_eol
        li   r9, '_'
        beq  r8, r9, ex_ident
        li   r9, 'A'
        blt  r8, r9, ex_plain
        li   r9, 'Z'
        ble  r8, r9, ex_ident
        li   r9, 'a'
        blt  r8, r9, ex_plain
        li   r9, 'z'
        ble  r8, r9, ex_ident
ex_plain:
        mov  a0, r8
        call out_char
        addi r25, r25, 1
        j    ex_loop
ex_ident:
        mov  r26, r25
ei_span:
        addi r26, r26, 1
        lbu  r8, 0(r26)
        li   r9, '_'
        beq  r8, r9, ei_span
        li   r9, '0'
        blt  r8, r9, ei_end
        li   r9, '9'
        ble  r8, r9, ei_span
        li   r9, 'A'
        blt  r8, r9, ei_end
        li   r9, 'Z'
        ble  r8, r9, ei_span
        li   r9, 'a'
        blt  r8, r9, ei_end
        li   r9, 'z'
        ble  r8, r9, ei_span
ei_end:
        la   r9, tokbuf
        mov  r10, r25
ei_copy:
        bgeu r10, r26, ei_copied
        lbu  r11, 0(r10)
        sb   r11, 0(r9)
        addi r10, r10, 1
        addi r9, r9, 1
        j    ei_copy
ei_copied:
        sb   zero, 0(r9)
        li   r27, 0
ei_look:
        bge  r27, r21, ei_nomatch
        slli r8, r27, 2
        add  r9, r8, r20
        lw   a0, 0(r9)
        la   a1, tokbuf
        call strcmp
        beqz v0, ei_match
        addi r27, r27, 1
        j    ei_look
ei_match:
        slli r8, r27, 2
        add  r9, r8, r20
        addi r9, r9, 256
        lw   a0, 0(r9)
        call out_cstr
        j    ei_cont
ei_nomatch:
        mov  a0, r25
        sub  a1, r26, r25
        call out_str
ei_cont:
        mov  r25, r26
        j    ex_loop
ex_eol:
        li   a0, 10
        call out_char
        j    line_loop
cpp_done:
        call out_flush
        li   v0, 0
        li   a0, 0
        syscall
)ASM";

// ---------------------------------------------------------------------
// compress: LZW, 12-bit codes, open-addressed dictionary, 2-byte output
// codes (little endian).
// ---------------------------------------------------------------------
const char *const kCompressAsm = R"ASM(
        .text
main:
        call read_all
        la   r8, input_ptr
        lw   r20, 0(r8)
        la   r8, input_len
        lw   r9, 0(r8)
        add  r21, r20, r9
        bgeu r20, r21, cz_empty
        li   a0, 65536
        call alloc
        mov  r22, v0            # ht_key[8192]
        li   r8, 0
        li   r9, 8192
        mov  r10, r22
chi_loop:
        bge  r8, r9, chi_done
        li   r11, -1
        sw   r11, 0(r10)
        addi r10, r10, 4
        addi r8, r8, 1
        j    chi_loop
chi_done:
        addi r23, r22, 32768    # ht_val[8192]
        li   r24, 256           # next_code
        lbu  r25, 0(r20)        # w = first symbol
        addi r20, r20, 1
cz_loop:
        bgeu r20, r21, cz_done
        lbu  r26, 0(r20)        # c
        addi r20, r20, 1
        slli r27, r25, 8
        or   r27, r27, r26      # key = w<<8 | c
        li   r8, 0x9E3779B1
        mul  r9, r27, r8
        srli r9, r9, 19
        li   r8, 8191
        and  r9, r9, r8         # h
cz_probe:
        slli r10, r9, 2
        add  r11, r10, r22
        lw   r12, 0(r11)
        li   r13, -1
        beq  r12, r13, cz_miss
        beq  r12, r27, cz_hit
        addi r9, r9, 1
        li   r8, 8191
        and  r9, r9, r8
        j    cz_probe
cz_hit:
        add  r11, r10, r23
        lw   r25, 0(r11)        # w = dictionary code
        j    cz_loop
cz_miss:
        li   r8, 4096
        bge  r24, r8, cz_emit
        sw   r27, 0(r11)        # ht_key[h] = key
        add  r12, r10, r23
        sw   r24, 0(r12)        # ht_val[h] = next_code
        addi r24, r24, 1
cz_emit:
        andi a0, r25, 255
        call out_char
        srli a0, r25, 8
        call out_char
        mov  r25, r26           # w = c
        j    cz_loop
cz_done:
        andi a0, r25, 255
        call out_char
        srli a0, r25, 8
        call out_char
cz_empty:
        call out_flush
        li   v0, 0
        li   a0, 0
        syscall
)ASM";

} // namespace fgp
