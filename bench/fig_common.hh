/**
 * @file
 * Shared helpers for the figure-reproduction benches: the ten scheduling
 * disciplines of Figures 3/4/6 and uniform table printing.
 */

#ifndef FGP_BENCH_FIG_COMMON_HH
#define FGP_BENCH_FIG_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "harness/experiment.hh"

namespace fgp::bench {

/** One line of Figures 3/4/6: a discipline plus a branch mode. */
struct Series
{
    Discipline discipline;
    BranchMode branch;

    std::string
    name() const
    {
        return disciplineName(discipline) + "/" + branchModeName(branch);
    }
};

/** The ten series of Figures 3, 4 and 6, in the paper's order. */
inline std::vector<Series>
tenSeries()
{
    std::vector<Series> series;
    for (BranchMode bm : {BranchMode::Single, BranchMode::Enlarged})
        for (Discipline d : allDisciplines())
            series.push_back({d, bm});
    for (Discipline d : {Discipline::Dyn4, Discipline::Dyn256})
        series.push_back({d, BranchMode::Perfect});
    return series;
}

/** Input scale from FGP_SCALE (default 1.0 = the paper-sized inputs). */
inline double
envScale()
{
    if (const char *value = std::getenv("FGP_SCALE"))
        return std::max(0.01, std::atof(value));
    return 1.0;
}

/** Standard header printed by every figure bench. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::cout << "\n=== " << figure << " — " << description << " ===\n"
              << "(Melvin & Patt, ISCA 1991; metric: retired nodes per "
                 "cycle, mean over sort/grep/diff/cpp/compress)\n\n";
}

} // namespace fgp::bench

#endif // FGP_BENCH_FIG_COMMON_HH
