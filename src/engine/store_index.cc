#include "engine/store_index.hh"

#include <algorithm>

#include "base/logging.hh"

namespace fgp {

void
StoreIndex::addStore(std::uint64_t seq, std::uint32_t addr,
                     std::uint32_t len)
{
    const bool inserted = extents_.emplace(seq, Extent{addr, len}).second;
    fgp_assert(inserted, "store seq ", seq, " indexed twice");
    for (std::uint32_t b = 0; b < len; ++b) {
        std::vector<ByteVer> &vers = bytes_[addr + b];
        // Stores resolve addresses out of order; keep the list sorted.
        const auto pos = std::lower_bound(
            vers.begin(), vers.end(), seq,
            [](const ByteVer &v, std::uint64_t s) { return v.seq < s; });
        vers.insert(pos, ByteVer{seq, 0, false});
    }
}

void
StoreIndex::setData(std::uint64_t seq, const std::uint8_t *data)
{
    const auto it = extents_.find(seq);
    fgp_assert(it != extents_.end(), "setData on unindexed store ", seq);
    const Extent &extent = it->second;
    for (std::uint32_t b = 0; b < extent.len; ++b) {
        std::vector<ByteVer> &vers = bytes_[extent.addr + b];
        const auto pos = std::lower_bound(
            vers.begin(), vers.end(), seq,
            [](const ByteVer &v, std::uint64_t s) { return v.seq < s; });
        fgp_assert(pos != vers.end() && pos->seq == seq,
                   "store byte version lost");
        pos->value = data[b];
        pos->known = true;
    }
}

void
StoreIndex::removeBytes(std::uint64_t seq, const Extent &extent)
{
    for (std::uint32_t b = 0; b < extent.len; ++b) {
        const std::uint32_t byte_addr = extent.addr + b;
        const auto vit = bytes_.find(byte_addr);
        fgp_assert(vit != bytes_.end(), "store byte list lost");
        std::vector<ByteVer> &vers = vit->second;
        const auto pos = std::lower_bound(
            vers.begin(), vers.end(), seq,
            [](const ByteVer &v, std::uint64_t s) { return v.seq < s; });
        fgp_assert(pos != vers.end() && pos->seq == seq,
                   "store byte version lost");
        vers.erase(pos);
        if (vers.empty())
            bytes_.erase(vit);
    }
}

void
StoreIndex::erase(std::uint64_t seq)
{
    const auto it = extents_.find(seq);
    fgp_assert(it != extents_.end(), "erase of unindexed store ", seq);
    removeBytes(seq, it->second);
    extents_.erase(it);
}

void
StoreIndex::squash(std::uint64_t seq_boundary)
{
    const auto first = extents_.lower_bound(seq_boundary);
    for (auto it = first; it != extents_.end(); ++it)
        removeBytes(it->first, it->second);
    extents_.erase(first, extents_.end());
}

StoreIndex::Lookup
StoreIndex::lookup(std::uint32_t byte_addr, std::uint64_t seq_limit) const
{
    Lookup result;
    const auto vit = bytes_.find(byte_addr);
    if (vit == bytes_.end())
        return result;
    const std::vector<ByteVer> &vers = vit->second;
    // Youngest version older than the probing load.
    const auto pos = std::lower_bound(
        vers.begin(), vers.end(), seq_limit,
        [](const ByteVer &v, std::uint64_t s) { return v.seq < s; });
    if (pos == vers.begin())
        return result;
    const ByteVer &ver = *std::prev(pos);
    if (!ver.known) {
        result.status = Lookup::Status::NeedData;
        result.blocker = ver.seq;
        return result;
    }
    result.status = Lookup::Status::Hit;
    result.value = ver.value;
    return result;
}

} // namespace fgp
