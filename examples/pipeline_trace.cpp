/**
 * @file
 * Pipeline trace: watch the machine issue, execute, squash and retire
 * cycle by cycle on a tiny program with a deliberate misprediction.
 *
 *   $ ./build/examples/pipeline_trace
 */

#include <iostream>

#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "obs/bus.hh"
#include "obs/sinks.hh"
#include "tld/translate.hh"

using namespace fgp;

static const char *const kProgram = R"(
main:   li   r8, 3
        la   r9, data
loop:   lw   r10, 0(r9)      # cache miss on config D the first time
        add  r11, r11, r10
        addi r9, r9, 4
        addi r8, r8, -1
        bnez r8, loop        # mispredicts at loop exit
        mov  a0, r11
        li   v0, 0
        syscall
        .data
data:   .word 5, 6, 7
)";

int
main()
{
    const Program prog = assemble(kProgram, "trace-demo");

    const MachineConfig config{Discipline::Dyn4, issueModel(8),
                               memoryConfig('D'), BranchMode::Single};
    CodeImage image = buildCfg(prog);
    translate(image, config);

    SimOS os;
    obs::TextTraceSink sink(std::cout);
    obs::EventBus bus;
    bus.addSink(&sink);
    EngineOptions opts;
    opts.config = config;
    opts.bus = &bus;

    std::cout << "=== " << config.name() << " pipeline trace ===\n";
    const EngineResult r = simulate(image, os, opts);
    std::cout << "=== done: " << r.cycles << " cycles, exit "
              << r.exitCode << ", " << r.mispredicts
              << " mispredicts ===\n";
    return 0;
}
