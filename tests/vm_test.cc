/** Functional interpreter and SimOS semantics tests. */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include "base/strutil.hh"
#include "masm/assembler.hh"
#include "vm/interp.hh"
#include "vm/memory.hh"

namespace fgp {
namespace {

/** Run a fragment that stores its result to `result` and exits. */
std::uint32_t
runFragment(const std::string &body)
{
    const std::string source = R"(
        .data
result: .word 0
        .text
main:
)" + body + R"(
        la   r1, result
        sw   r28, 0(r1)
        li   v0, 0
        li   a0, 0
        syscall
)";
    const Program prog = assemble(source, "fragment");
    SimOS os;
    SparseMemory mem;
    const RunResult r = interpret(prog, os, mem);
    EXPECT_TRUE(r.exited);
    return mem.read32(kDataBase);
}

struct AluCase
{
    const char *body;
    std::uint32_t expect;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, Computes)
{
    EXPECT_EQ(runFragment(GetParam().body), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluSemantics,
    ::testing::Values(
        AluCase{"li r8, 7\nli r9, 5\nadd r28, r8, r9\n", 12},
        AluCase{"li r8, 7\nli r9, 5\nsub r28, r8, r9\n", 2},
        AluCase{"li r8, 5\nli r9, 7\nsub r28, r8, r9\n", 0xfffffffe},
        AluCase{"li r8, 6\nli r9, 7\nmul r28, r8, r9\n", 42},
        AluCase{"li r8, -6\nli r9, 7\nmul r28, r8, r9\n", 0xffffffd6},
        AluCase{"li r8, 43\nli r9, 7\ndiv r28, r8, r9\n", 6},
        AluCase{"li r8, -43\nli r9, 7\ndiv r28, r8, r9\n", 0xfffffffa},
        AluCase{"li r8, 43\nli r9, 0\ndiv r28, r8, r9\n", 0xffffffff},
        AluCase{"li r8, 43\nli r9, 7\nrem r28, r8, r9\n", 1},
        AluCase{"li r8, -43\nli r9, 7\nrem r28, r8, r9\n",
                static_cast<std::uint32_t>(-1)},
        AluCase{"li r8, 43\nli r9, 0\nrem r28, r8, r9\n", 43},
        AluCase{"li r8, 0x80000000\nli r9, -1\ndiv r28, r8, r9\n",
                0x80000000u},
        AluCase{"li r8, 0x80000000\nli r9, -1\nrem r28, r8, r9\n", 0}));

INSTANTIATE_TEST_SUITE_P(
    Logic, AluSemantics,
    ::testing::Values(
        AluCase{"li r8, 0xf0\nli r9, 0x3c\nand r28, r8, r9\n", 0x30},
        AluCase{"li r8, 0xf0\nli r9, 0x3c\nor r28, r8, r9\n", 0xfc},
        AluCase{"li r8, 0xf0\nli r9, 0x3c\nxor r28, r8, r9\n", 0xcc},
        AluCase{"li r8, 0xff\nandi r28, r8, 0x0f\n", 0x0f},
        AluCase{"li r8, 0xf0\nori r28, r8, 0x0f\n", 0xff},
        AluCase{"li r8, 0xff\nxori r28, r8, 0x0f\n", 0xf0},
        AluCase{"li r8, 1\nnot r28, r8\n", 0xfffffffe}));

INSTANTIATE_TEST_SUITE_P(
    Shifts, AluSemantics,
    ::testing::Values(
        AluCase{"li r8, 1\nli r9, 4\nsll r28, r8, r9\n", 16},
        AluCase{"li r8, 1\nli r9, 36\nsll r28, r8, r9\n", 16}, // mask 31
        AluCase{"li r8, 0x80000000\nli r9, 4\nsrl r28, r8, r9\n",
                0x08000000u},
        AluCase{"li r8, 0x80000000\nli r9, 4\nsra r28, r8, r9\n",
                0xf8000000u},
        AluCase{"li r8, 3\nslli r28, r8, 2\n", 12},
        AluCase{"li r8, -8\nsrai r28, r8, 1\n", 0xfffffffcu},
        AluCase{"li r8, -8\nsrli r28, r8, 1\n", 0x7ffffffcu},
        AluCase{"lui r28, 0x1234\n", 0x12340000u}));

INSTANTIATE_TEST_SUITE_P(
    Compare, AluSemantics,
    ::testing::Values(
        AluCase{"li r8, -1\nli r9, 1\nslt r28, r8, r9\n", 1},
        AluCase{"li r8, -1\nli r9, 1\nsltu r28, r8, r9\n", 0},
        AluCase{"li r8, 1\nli r9, 1\nslt r28, r8, r9\n", 0},
        AluCase{"li r8, -5\nslti r28, r8, -4\n", 1},
        AluCase{"li r8, 3\nsltiu r28, r8, 9\n", 1}));

TEST(Vm, ZeroRegisterIsHardwired)
{
    EXPECT_EQ(runFragment("li r0, 99\nmov r28, r0\n"), 0u);
    EXPECT_EQ(runFragment("li r8, 5\nadd r0, r8, r8\nmov r28, r0\n"), 0u);
}

TEST(Vm, LoadStoreByteAndWord)
{
    EXPECT_EQ(runFragment(R"(
        la   r1, result
        li   r8, 0x11223344
        sw   r8, 0(r1)
        lb   r28, 1(r1)
)"),
              0x33u);
    EXPECT_EQ(runFragment(R"(
        la   r1, result
        li   r8, -1
        sb   r8, 0(r1)
        lb   r28, 0(r1)
)"),
              0xffffffffu);
    EXPECT_EQ(runFragment(R"(
        la   r1, result
        li   r8, -1
        sb   r8, 0(r1)
        lbu  r28, 0(r1)
)"),
              0xffu);
}

TEST(Vm, UnalignedWordAccess)
{
    EXPECT_EQ(runFragment(R"(
        la   r1, result
        li   r8, 0xAABBCCDD
        sw   r8, 1(r1)
        lw   r28, 1(r1)
)"),
              0xAABBCCDDu);
}

TEST(Vm, BranchDirections)
{
    EXPECT_EQ(runFragment(R"(
        li   r8, 1
        li   r28, 0
        beqz r8, skip
        li   r28, 1
skip:   nop
)"),
              1u);
    EXPECT_EQ(runFragment(R"(
        li   r8, -2
        li   r9, 3
        li   r28, 0
        bltu r8, r9, skip   # unsigned: 0xfffffffe is not < 3
        li   r28, 1
skip:   nop
)"),
              1u);
    EXPECT_EQ(runFragment(R"(
        li   r8, -2
        li   r9, 3
        li   r28, 0
        blt  r8, r9, skip   # signed: -2 < 3
        li   r28, 1
skip:   nop
)"),
              0u);
}

TEST(Vm, CallAndReturn)
{
    EXPECT_EQ(runFragment(R"(
        li   r28, 1
        jal  double_it
        jal  double_it
        j    done
double_it:
        add  r28, r28, r28
        jr   ra
done:   nop
)"),
              4u);
}

TEST(Vm, DynamicNodeCountsByClass)
{
    const Program prog = assemble(R"(
main:   li   r8, 2          # alu
loop:   addi r8, r8, -1     # alu x2
        bnez r8, loop       # control x2
        la   r1, buf        # alu
        lw   r9, 0(r1)      # mem load
        sw   r9, 4(r1)      # mem store
        li   v0, 0          # alu
        li   a0, 0          # alu
        syscall             # counts as one (alu-slot) node
        .data
buf:    .space 16
)");
    SimOS os;
    const RunResult r = interpret(prog, os);
    EXPECT_EQ(r.dynamicNodes, 11u);
    EXPECT_EQ(r.controlNodes, 2u);
    EXPECT_EQ(r.memNodes, 2u);
    EXPECT_EQ(r.loadNodes, 1u);
    EXPECT_EQ(r.storeNodes, 1u);
    EXPECT_EQ(r.aluNodes, 7u);
}

TEST(Vm, ProfileRecordsArcs)
{
    const Program prog = assemble(R"(
main:   li   r8, 3
loop:   addi r8, r8, -1
        bnez r8, loop
        j    tail
tail:   li   v0, 0
        li   a0, 0
        syscall
)");
    Profile profile;
    SimOS os;
    InterpOptions opts;
    opts.profile = &profile;
    interpret(prog, os, opts);

    const std::int32_t branch_pc = prog.codeLabels.at("loop") + 1;
    ASSERT_TRUE(profile.arcs.count(branch_pc));
    EXPECT_EQ(profile.arcs.at(branch_pc).taken, 2u);
    EXPECT_EQ(profile.arcs.at(branch_pc).notTaken, 1u);
    EXPECT_TRUE(profile.arcs.at(branch_pc).hotIsTaken());
    EXPECT_EQ(profile.totalBranches, 3u);
    const std::int32_t jump_pc = branch_pc + 1;
    EXPECT_EQ(profile.jumps.at(jump_pc), 1u);
}

TEST(Vm, ExitCodePropagates)
{
    const Program prog = assemble("main: li v0, 0\nli a0, 17\nsyscall\n");
    SimOS os;
    const RunResult r = interpret(prog, os);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 17);
}

TEST(Vm, RunawayGuard)
{
    const Program prog = assemble("main: j main\n");
    SimOS os;
    InterpOptions opts;
    opts.maxNodes = 1000;
    EXPECT_THROW(interpret(prog, os, opts), FatalError);
}

TEST(SimOs, StdoutCapture)
{
    const Program prog = assemble(R"(
main:   li   v0, 4
        li   a0, 1
        la   a1, msg
        li   a2, 5
        syscall
        li   v0, 0
        li   a0, 0
        syscall
        .data
msg:    .asciiz "hello"
)");
    SimOS os;
    interpret(prog, os);
    EXPECT_EQ(os.stdoutText(), "hello");
}

TEST(SimOs, StdinRead)
{
    const Program prog = assemble(R"(
        .data
buf:    .space 8
        .text
main:   li   v0, 3
        li   a0, 0
        la   a1, buf
        li   a2, 8
        syscall
        mov  r8, v0        # bytes read
        li   v0, 4
        li   a0, 1
        la   a1, buf
        mov  a2, r8
        syscall
        li   v0, 0
        li   a0, 0
        syscall
)");
    SimOS os;
    os.setStdin("abc");
    interpret(prog, os);
    EXPECT_EQ(os.stdoutText(), "abc");
}

TEST(SimOs, FileOpenReadClose)
{
    const Program prog = assemble(R"(
        .data
path:   .asciiz "in.txt"
buf:    .space 16
        .text
main:   li   v0, 1
        la   a0, path
        li   a1, 0
        syscall            # open
        mov  r20, v0
        li   v0, 3
        mov  a0, r20
        la   a1, buf
        li   a2, 16
        syscall            # read
        mov  r21, v0
        li   v0, 2
        mov  a0, r20
        syscall            # close
        li   v0, 4
        li   a0, 1
        la   a1, buf
        mov  a2, r21
        syscall            # write what we read
        li   v0, 0
        li   a0, 0
        syscall
)");
    SimOS os;
    os.addFile("in.txt", std::string("filedata"));
    interpret(prog, os);
    EXPECT_EQ(os.stdoutText(), "filedata");
}

TEST(SimOs, OpenMissingFileFails)
{
    SimOS os;
    SparseMemory mem;
    mem.write8(kDataBase, 'x');
    const MemPorts ports{
        [&](std::uint32_t a) { return mem.read8(a); },
        [&](std::uint32_t a, std::uint8_t v) { mem.write8(a, v); }};
    const std::uint32_t fd = os.syscall(
        static_cast<std::uint32_t>(Sys::Open), kDataBase, 0, 0, 0, ports);
    EXPECT_EQ(fd, static_cast<std::uint32_t>(-1));
}

TEST(SimOs, BrkGrowsAndQueries)
{
    SimOS os;
    os.setInitialBrk(kDataBase + 100);
    const MemPorts ports{[](std::uint32_t) { return std::uint8_t{0}; },
                         [](std::uint32_t, std::uint8_t) {}};
    const auto query = os.syscall(static_cast<std::uint32_t>(Sys::Brk), 0, 0,
                                  0, 0, ports);
    EXPECT_EQ(query, kDataBase + 100);
    const auto grown = os.syscall(static_cast<std::uint32_t>(Sys::Brk),
                                  kDataBase + 4096, 0, 0, 0, ports);
    EXPECT_EQ(grown, kDataBase + 4096);
    // Shrinking below the current break is refused.
    const auto refused = os.syscall(static_cast<std::uint32_t>(Sys::Brk),
                                    kDataBase, 0, 0, 0, ports);
    EXPECT_EQ(refused, kDataBase + 4096);
}

TEST(SimOs, WriteToFile)
{
    SimOS os;
    SparseMemory mem;
    const char *path = "out.txt";
    for (std::size_t i = 0; path[i]; ++i)
        mem.write8(kDataBase + static_cast<std::uint32_t>(i),
                   static_cast<std::uint8_t>(path[i]));
    mem.write8(kDataBase + 7, 0);
    mem.write8(kDataBase + 16, 'Q');
    const MemPorts ports{
        [&](std::uint32_t a) { return mem.read8(a); },
        [&](std::uint32_t a, std::uint8_t v) { mem.write8(a, v); }};
    const auto fd = os.syscall(static_cast<std::uint32_t>(Sys::Open),
                               kDataBase, 1, 0, 0, ports);
    ASSERT_NE(fd, static_cast<std::uint32_t>(-1));
    const auto n = os.syscall(static_cast<std::uint32_t>(Sys::Write), fd,
                              kDataBase + 16, 1, 0, ports);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(os.fileText("out.txt"), "Q");
}

TEST(Memory, SparsePagesAndDefaults)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read8(0x12345678), 0u);
    EXPECT_EQ(mem.read32(0xdeadbeef), 0u);
    mem.write32(0x1000, 0x01020304);
    EXPECT_EQ(mem.read8(0x1000), 4u);
    EXPECT_EQ(mem.read8(0x1003), 1u);
    EXPECT_EQ(mem.read32(0x1000), 0x01020304u);
}

TEST(Memory, CrossPageAccess)
{
    SparseMemory mem;
    const std::uint32_t edge = SparseMemory::kPageSize - 2;
    mem.write32(edge, 0xCAFEBABE);
    EXPECT_EQ(mem.read32(edge), 0xCAFEBABEu);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Memory, ReadCString)
{
    SparseMemory mem;
    const char *s = "abc";
    mem.writeBytes(64, reinterpret_cast<const std::uint8_t *>(s), 4);
    EXPECT_EQ(mem.readCString(64), "abc");
    EXPECT_EQ(mem.readCString(64, 2), "ab"); // bounded
}

} // namespace
} // namespace fgp
