file(REMOVE_RECURSE
  "CMakeFiles/fgp_workloads.dir/bench_asm.cc.o"
  "CMakeFiles/fgp_workloads.dir/bench_asm.cc.o.d"
  "CMakeFiles/fgp_workloads.dir/runtime.cc.o"
  "CMakeFiles/fgp_workloads.dir/runtime.cc.o.d"
  "CMakeFiles/fgp_workloads.dir/workloads.cc.o"
  "CMakeFiles/fgp_workloads.dir/workloads.cc.o.d"
  "libfgp_workloads.a"
  "libfgp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
