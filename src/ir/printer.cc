#include "ir/printer.hh"

#include <unordered_set>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace fgp {

std::string
regName(std::uint8_t reg)
{
    if (reg == kRegNone)
        return "-";
    if (reg == kRegSp)
        return "sp";
    if (reg == kRegRa)
        return "ra";
    if (reg >= kNumArchRegs)
        return format("t%d", reg - kNumArchRegs);
    return format("r%d", reg);
}

namespace {

std::string
targetName(const Node &node)
{
    if (node.isFault())
        return format("@%d", node.target);
    return format(".L%d", node.target);
}

} // namespace

std::string
formatNode(const Node &node)
{
    const auto &info = opcodeInfo(node.op);
    const std::string mn(info.mnemonic);
    switch (info.form) {
      case OperandForm::RRR:
        return format("%s %s, %s, %s", mn.c_str(), regName(node.rd).c_str(),
                      regName(node.rs1).c_str(), regName(node.rs2).c_str());
      case OperandForm::RRI:
        return format("%s %s, %s, %d", mn.c_str(), regName(node.rd).c_str(),
                      regName(node.rs1).c_str(), node.imm);
      case OperandForm::RI:
        return format("%s %s, %d", mn.c_str(), regName(node.rd).c_str(),
                      node.imm);
      case OperandForm::Load:
        return format("%s %s, %d(%s)", mn.c_str(), regName(node.rd).c_str(),
                      node.imm, regName(node.rs1).c_str());
      case OperandForm::Store:
        return format("%s %s, %d(%s)", mn.c_str(), regName(node.rs2).c_str(),
                      node.imm, regName(node.rs1).c_str());
      case OperandForm::Branch:
        return format("%s %s, %s, %s", mn.c_str(), regName(node.rs1).c_str(),
                      regName(node.rs2).c_str(), targetName(node).c_str());
      case OperandForm::Jump:
        return format("%s %s", mn.c_str(), targetName(node).c_str());
      case OperandForm::JumpLink:
        return format("%s %s", mn.c_str(), targetName(node).c_str());
      case OperandForm::JumpReg:
        return format("%s %s", mn.c_str(), regName(node.rs1).c_str());
      case OperandForm::System:
        return mn;
      case OperandForm::FaultF:
        return format("%s %s, %s, %s", mn.c_str(), regName(node.rs1).c_str(),
                      regName(node.rs2).c_str(), targetName(node).c_str());
    }
    fgp_panic("unhandled operand form");
}

void
printProgram(const Program &prog, std::ostream &os)
{
    std::unordered_set<std::int32_t> label_pcs;
    for (const Node &node : prog.instrs)
        if (node.isControl() && node.target >= 0)
            label_pcs.insert(node.target);
    label_pcs.insert(prog.entry);

    os << "        .text\n";
    for (std::size_t pc = 0; pc < prog.instrs.size(); ++pc) {
        const auto ipc = static_cast<std::int32_t>(pc);
        if (ipc == prog.entry)
            os << "main:\n";
        if (label_pcs.count(ipc))
            os << ".L" << pc << ":\n";
        os << "        " << formatNode(prog.instrs[pc]) << "\n";
    }
}

void
printImage(const CodeImage &image, std::ostream &os)
{
    for (const ImageBlock &block : image.blocks) {
        os << "block " << block.id << " entry_pc=" << block.entryPc
           << (block.enlarged ? (block.companion ? " companion" : " enlarged")
                              : "")
           << " chain=" << block.chainLen
           << " fallthrough=" << block.fallthroughPc << "\n";
        if (block.words.empty()) {
            for (const Node &node : block.nodes)
                os << "    " << formatNode(node) << "\n";
        } else {
            for (std::size_t w = 0; w < block.words.size(); ++w) {
                os << "    word " << w << ":";
                for (std::uint16_t idx : block.words[w])
                    os << "  [" << formatNode(block.nodes[idx]) << "]";
                os << "\n";
            }
        }
    }
}

} // namespace fgp
