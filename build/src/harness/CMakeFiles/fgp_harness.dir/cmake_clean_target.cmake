file(REMOVE_RECURSE
  "libfgp_harness.a"
)
