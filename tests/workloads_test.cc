/**
 * Benchmark correctness tests: each micro-assembly utility is validated
 * against an independent C++ reference implementation on the same inputs.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "base/strutil.hh"
#include "vm/interp.hh"
#include "workloads/workloads.hh"

namespace fgp {
namespace {

std::string
runWorkload(const std::string &name, InputSet set, double scale = 1.0)
{
    Workload wl = makeWorkload(name);
    wl.setScale(scale);
    SimOS os;
    wl.prepareOs(os, set);
    const RunResult r = interpret(wl.program(), os);
    EXPECT_TRUE(r.exited) << name;
    EXPECT_EQ(r.exitCode, 0) << name;
    return os.stdoutText();
}

std::vector<std::string>
linesOf(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char ch : text) {
        if (ch == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

// ---------------------------------------------------------------- sort

TEST(WorkloadSort, OutputIsSortedPermutation)
{
    const std::string input = genSortInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("sort", InputSet::Measure);

    std::vector<std::string> expect = linesOf(input);
    std::sort(expect.begin(), expect.end());
    const std::vector<std::string> got = linesOf(output);
    EXPECT_EQ(got, expect);
}

TEST(WorkloadSort, ProfileSetSortsToo)
{
    const std::string input = genSortInput(InputSet::Profile, 1.0);
    const std::string output = runWorkload("sort", InputSet::Profile);
    std::vector<std::string> expect = linesOf(input);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(linesOf(output), expect);
}

TEST(WorkloadSort, TinyScale)
{
    const std::string output = runWorkload("sort", InputSet::Measure, 0.05);
    const std::vector<std::string> got = linesOf(output);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_GE(got.size(), 4u);
}

// ---------------------------------------------------------------- grep

TEST(WorkloadGrep, ExactlyTheMatchingLines)
{
    const std::string input = genGrepInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("grep", InputSet::Measure);

    std::vector<std::string> expect;
    for (const std::string &line : linesOf(input))
        if (line.find("ard") != std::string::npos)
            expect.push_back(line);
    EXPECT_EQ(linesOf(output), expect);
    EXPECT_FALSE(expect.empty()) << "input should plant matches";
}

TEST(WorkloadGrep, SomeLinesDoNotMatch)
{
    const std::string input = genGrepInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("grep", InputSet::Measure);
    EXPECT_LT(linesOf(output).size(), linesOf(input).size());
}

// ---------------------------------------------------------------- diff

/** Reference LCS diff over djb2 line hashes (mirrors the benchmark). */
std::string
referenceDiff(const std::string &a_text, const std::string &b_text)
{
    const std::vector<std::string> a = linesOf(a_text);
    const std::vector<std::string> b = linesOf(b_text);
    const std::size_t na = a.size();
    const std::size_t nb = b.size();

    auto hash = [](const std::string &s) {
        std::uint32_t h = 5381;
        for (unsigned char ch : s)
            h = h * 33 + ch;
        return h;
    };
    std::vector<std::uint32_t> ha(na);
    std::vector<std::uint32_t> hb(nb);
    for (std::size_t i = 0; i < na; ++i)
        ha[i] = hash(a[i]);
    for (std::size_t j = 0; j < nb; ++j)
        hb[j] = hash(b[j]);

    std::vector<std::vector<int>> dp(na + 1, std::vector<int>(nb + 1, 0));
    for (std::size_t i = na; i-- > 0;)
        for (std::size_t j = nb; j-- > 0;)
            dp[i][j] = ha[i] == hb[j]
                           ? dp[i + 1][j + 1] + 1
                           : std::max(dp[i + 1][j], dp[i][j + 1]);

    std::string out;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na || j < nb) {
        if (i < na && j < nb && ha[i] == hb[j]) {
            ++i;
            ++j;
        } else if (i < na &&
                   (j >= nb || dp[i + 1][j] >= dp[i][j + 1])) {
            out += "< " + a[i] + "\n";
            ++i;
        } else {
            out += "> " + b[j] + "\n";
            ++j;
        }
    }
    return out;
}

TEST(WorkloadDiff, MatchesReferenceImplementation)
{
    std::string a;
    std::string b;
    genDiffInputs(InputSet::Measure, 1.0, a, b);
    const std::string output = runWorkload("diff", InputSet::Measure);
    EXPECT_EQ(output, referenceDiff(a, b));
}

TEST(WorkloadDiff, ProfileSetMatchesToo)
{
    std::string a;
    std::string b;
    genDiffInputs(InputSet::Profile, 1.0, a, b);
    const std::string output = runWorkload("diff", InputSet::Profile);
    EXPECT_EQ(output, referenceDiff(a, b));
}

TEST(WorkloadDiff, InputsActuallyDiffer)
{
    std::string a;
    std::string b;
    genDiffInputs(InputSet::Measure, 1.0, a, b);
    EXPECT_NE(a, b);
    const std::string output = runWorkload("diff", InputSet::Measure);
    EXPECT_FALSE(output.empty());
}

// ----------------------------------------------------------------- cpp

/** Reference macro expander (mirrors the benchmark's semantics). */
std::string
referenceCpp(const std::string &input)
{
    std::map<std::string, std::string> macros;
    std::string out;
    for (const std::string &line : linesOf(input)) {
        if (startsWith(line, "#")) {
            // "#define NAME BODY"
            const std::string rest = line.substr(8);
            const std::size_t space = rest.find(' ');
            macros[rest.substr(0, space)] = rest.substr(space + 1);
            continue;
        }
        std::size_t i = 0;
        auto is_start = [](char c) {
            return c == '_' || (c >= 'A' && c <= 'Z') ||
                   (c >= 'a' && c <= 'z');
        };
        auto is_part = [&](char c) {
            return is_start(c) || (c >= '0' && c <= '9');
        };
        while (i < line.size()) {
            if (!is_start(line[i])) {
                out.push_back(line[i]);
                ++i;
                continue;
            }
            std::size_t j = i + 1;
            while (j < line.size() && is_part(line[j]))
                ++j;
            const std::string token = line.substr(i, j - i);
            const auto it = macros.find(token);
            out += it == macros.end() ? token : it->second;
            i = j;
        }
        out.push_back('\n');
    }
    return out;
}

TEST(WorkloadCpp, MatchesReferenceImplementation)
{
    const std::string input = genCppInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("cpp", InputSet::Measure);
    EXPECT_EQ(output, referenceCpp(input));
}

TEST(WorkloadCpp, MacrosActuallyExpand)
{
    const std::string input = genCppInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("cpp", InputSet::Measure);
    // No definition lines survive, and the output differs from the raw
    // non-define part of the input (some macro must have been used).
    for (const std::string &line : linesOf(output))
        EXPECT_FALSE(startsWith(line, "#define"));
    std::string raw;
    for (const std::string &line : linesOf(input))
        if (!startsWith(line, "#"))
            raw += line + "\n";
    EXPECT_NE(output, raw);
}

// ------------------------------------------------------------ compress

/** LZW decoder for the benchmark's 2-byte little-endian code stream. */
std::string
lzwDecode(const std::string &encoded)
{
    std::vector<std::uint16_t> codes;
    for (std::size_t i = 0; i + 1 < encoded.size(); i += 2)
        codes.push_back(static_cast<std::uint8_t>(encoded[i]) |
                        (static_cast<std::uint16_t>(
                             static_cast<std::uint8_t>(encoded[i + 1]))
                         << 8));
    if (codes.empty())
        return "";

    std::vector<std::string> dict(256);
    for (int c = 0; c < 256; ++c)
        dict[static_cast<std::size_t>(c)] =
            std::string(1, static_cast<char>(c));

    std::string out;
    std::string w = dict[codes[0]];
    out += w;
    for (std::size_t k = 1; k < codes.size(); ++k) {
        const std::uint16_t code = codes[k];
        std::string entry;
        if (code < dict.size()) {
            entry = dict[code];
        } else if (code == dict.size()) {
            entry = w + w[0]; // the classic KwKwK case
        } else {
            ADD_FAILURE() << "invalid LZW code " << code;
            return out;
        }
        out += entry;
        if (dict.size() < 4096)
            dict.push_back(w + entry[0]);
        w = entry;
    }
    return out;
}

TEST(WorkloadCompress, RoundTripsThroughReferenceDecoder)
{
    const std::string input = genCompressInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("compress", InputSet::Measure);
    EXPECT_EQ(lzwDecode(output), input);
}

TEST(WorkloadCompress, ActuallyCompresses)
{
    const std::string input = genCompressInput(InputSet::Measure, 1.0);
    const std::string output = runWorkload("compress", InputSet::Measure);
    // 2-byte codes: anything below 2x input size means the dictionary
    // found repeats; repetitive text should do much better.
    EXPECT_LT(output.size(), input.size() * 3 / 2);
}

TEST(WorkloadCompress, ProfileSetRoundTrips)
{
    const std::string input = genCompressInput(InputSet::Profile, 1.0);
    const std::string output = runWorkload("compress", InputSet::Profile);
    EXPECT_EQ(lzwDecode(output), input);
}

// ------------------------------------------------------------- general

TEST(Workloads, InputSetsDiffer)
{
    EXPECT_NE(genSortInput(InputSet::Profile, 1.0),
              genSortInput(InputSet::Measure, 1.0));
    EXPECT_NE(genGrepInput(InputSet::Profile, 1.0),
              genGrepInput(InputSet::Measure, 1.0));
    EXPECT_NE(genCppInput(InputSet::Profile, 1.0),
              genCppInput(InputSet::Measure, 1.0));
    EXPECT_NE(genCompressInput(InputSet::Profile, 1.0),
              genCompressInput(InputSet::Measure, 1.0));
}

TEST(Workloads, InputsAreDeterministic)
{
    EXPECT_EQ(genSortInput(InputSet::Measure, 1.0),
              genSortInput(InputSet::Measure, 1.0));
    std::string a1;
    std::string b1;
    std::string a2;
    std::string b2;
    genDiffInputs(InputSet::Measure, 1.0, a1, b1);
    genDiffInputs(InputSet::Measure, 1.0, a2, b2);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
}

TEST(Workloads, AllFiveAssembleAndRun)
{
    for (const std::string &name : workloadNames()) {
        const std::string out = runWorkload(name, InputSet::Measure, 0.2);
        EXPECT_FALSE(out.empty()) << name;
    }
}

TEST(Workloads, StaticAluToMemRatioNearPaper)
{
    // Paper §3.1: the static ALU:MEM ratio of the benchmarks was about
    // 2.5:1. Check the suite-wide static ratio is in a sane band.
    std::uint64_t alu = 0;
    std::uint64_t mem = 0;
    for (const std::string &name : workloadNames()) {
        const Workload wl = makeWorkload(name);
        for (const Node &node : wl.program().instrs) {
            if (node.isMem())
                ++mem;
            else if (node.cls() == NodeClass::IntAlu ||
                     node.cls() == NodeClass::Sys)
                ++alu;
        }
    }
    const double ratio = static_cast<double>(alu) / static_cast<double>(mem);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 4.0);
}

TEST(Workloads, DynamicNodeBudgetsReasonable)
{
    for (const std::string &name : workloadNames()) {
        Workload wl = makeWorkload(name);
        SimOS os;
        wl.prepareOs(os, InputSet::Measure);
        const RunResult r = interpret(wl.program(), os);
        EXPECT_GT(r.dynamicNodes, 20'000u) << name;
        EXPECT_LT(r.dynamicNodes, 400'000u) << name;
    }
}

TEST(Workloads, UnknownNameRejected)
{
    EXPECT_THROW(makeWorkload("awk"), FatalError);
}

} // namespace
} // namespace fgp
