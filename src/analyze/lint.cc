#include "analyze/lint.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analyze/disambig.hh"
#include "analyze/oracle.hh"
#include "tld/depgraph.hh"
#include "verify/verify.hh"
#include "vm/exec.hh"

namespace fgp::analyze {

namespace {

using verify::Code;
using verify::Report;
using verify::Severity;

[[maybe_unused]] const bool g_codes_registered = [] {
    verify::registerCodes({
        {Code::SerializingFalseDep, {"AN001", "serializing-false-dep"}},
        {Code::DeadDefSurvives, {"AN002", "dead-def-survives"}},
        {Code::UnprofitableChain, {"AN003", "unprofitable-chain"}},
        {Code::ForwardingDefeated, {"AN004", "forwarding-defeated"}},
        {Code::UnreachableBlock, {"AN005", "unreachable-block"}},
        {Code::UnusedLabel, {"AN006", "unused-label"}},
        {Code::HighMayAliasDensity, {"AN007", "high-may-alias-density"}},
        {Code::PackedDisjointPair, {"AN008", "packed-disjoint-pair"}},
        {Code::GreedyScheduleGap, {"AN009", "greedy-schedule-gap"}},
        {Code::OracleBudgetExhausted, {"AN010", "oracle-budget-exhausted"}},
    });
    return true;
}();

/** "r4, r7" for the distinct registers of @p wars, ascending. */
std::string
warRegisters(const std::vector<ResidualWar> &wars)
{
    std::array<bool, kNumRegs> seen{};
    for (const ResidualWar &war : wars)
        seen[war.reg] = true;
    std::string out;
    for (std::size_t reg = 0; reg < kNumRegs; ++reg) {
        if (!seen[reg])
            continue;
        if (!out.empty())
            out += ", ";
        out += "r" + std::to_string(reg);
    }
    return out;
}

/**
 * AN001: the block's dependence height grows once the renamer-proof WAR
 * edges are added — a false dependency no renaming scheme can remove is
 * on the critical path.
 */
void
lintSerializingFalseDeps(const ImageBlock &block, Report &report,
                         const LintOptions &opts, std::string_view stage)
{
    const int height = dependenceHeight(block, opts.memHitLatency);
    const int residual = residualHeight(block, opts.memHitLatency);
    if (residual <= height)
        return;
    addDiag(report, Code::SerializingFalseDep, Severity::Warning, stage,
            block.id, -1, block.entryPc, "renamer-proof WAR on ",
            warRegisters(residualWars(block)),
            " raises dependence height ", height, " -> ", residual);
}

/**
 * AN002: a pure ALU definition overwritten before any read. Wasted issue
 * bandwidth; the bbe re-optimizer removes these in fused blocks but a
 * 1:1-translated single block keeps them.
 */
void
lintDeadDefs(const ImageBlock &block, Report &report, std::string_view stage)
{
    std::array<std::int32_t, kNumRegs> pending_def;
    pending_def.fill(-1);

    for (std::size_t i = 0; i < block.nodes.size(); ++i) {
        const Node &node = block.nodes[i];
        std::array<std::uint8_t, 5> srcs;
        const int nsrc = node.srcRegs(srcs);
        for (int s = 0; s < nsrc; ++s)
            if (srcs[s] != kRegNone)
                pending_def[srcs[s]] = -1;

        const std::uint8_t dst = node.dstReg();
        if (dst == kRegNone || dst == kRegZero)
            continue;
        if (pending_def[dst] >= 0) {
            const auto dead = static_cast<std::size_t>(pending_def[dst]);
            addDiag(report, Code::DeadDefSurvives, Severity::Warning, stage,
                    block.id, pending_def[dst], block.nodes[dead].origPc,
                    "definition of r", static_cast<int>(dst),
                    " is overwritten by node ", i, " before any read");
        }
        // Only side-effect-free definitions can be dead: loads may fault
        // and link/system writes carry control or OS effects.
        const bool pure_alu =
            !node.isMem() && !node.isControl() && !node.isSys();
        pending_def[dst] = pure_alu ? static_cast<std::int32_t>(i) : -1;
    }
}

/**
 * AN004: a load behind a may-aliasing store the forwarding path cannot
 * fully satisfy — either the bases differ (run-time disambiguation must
 * serialize the pair) or the store only partially covers the load.
 */
void
lintForwardingDefeated(const ImageBlock &block, Report &report,
                       std::string_view stage)
{
    const std::size_t n = block.nodes.size();
    // Base-register value versions, mirroring buildDepGraph's lattice.
    std::vector<std::int32_t> version_at(n, 0);
    std::array<std::int32_t, kNumRegs> version;
    version.fill(-1);

    std::vector<std::uint16_t> stores;
    for (std::size_t i = 0; i < n; ++i) {
        const Node &node = block.nodes[i];
        if (node.isMem())
            version_at[i] = node.rs1 == kRegZero ? -2 : version[node.rs1];

        if (node.isLoad()) {
            const auto load_bytes =
                static_cast<std::int32_t>(accessBytes(node.op));
            for (std::uint16_t m : stores) {
                const Node &store = block.nodes[m];
                const bool same_base = store.rs1 == node.rs1 &&
                                       version_at[m] == version_at[i];
                if (!mayAlias(node, store, same_base))
                    continue;
                if (!same_base) {
                    addDiag(report, Code::ForwardingDefeated,
                            Severity::Warning, stage, block.id,
                            static_cast<std::int32_t>(i), node.origPc,
                            "load may alias store at node ", m,
                            " through unknown bases; run-time "
                            "disambiguation serializes the pair");
                    break;
                }
                const auto store_bytes =
                    static_cast<std::int32_t>(accessBytes(store.op));
                const bool covers =
                    store.imm <= node.imm &&
                    store.imm + store_bytes >= node.imm + load_bytes;
                if (!covers) {
                    addDiag(report, Code::ForwardingDefeated,
                            Severity::Warning, stage, block.id,
                            static_cast<std::int32_t>(i), node.origPc,
                            "store at node ", m,
                            " partially overlaps this load; forwarding "
                            "cannot satisfy it");
                    break;
                }
            }
        }
        if (node.isStore())
            stores.push_back(static_cast<std::uint16_t>(i));

        const std::uint8_t dst = node.dstReg();
        if (dst != kRegNone && dst != kRegZero)
            version[dst] = static_cast<std::int32_t>(i);
    }
}

/**
 * AN007/AN008: static-disambiguation findings, both computed from one
 * disambigBlock() pass.
 *
 * AN007 fires when a block has enough classified memory pairs and most
 * of them come out may-alias — the symbolic analysis proves almost
 * nothing, so the run-time disambiguator carries the whole block.
 *
 * AN008 fires for each store/load pair proven no-alias yet packed into
 * the same issue word: the hardware still probes the store queue for
 * that load even though the conflict is statically impossible
 * (FGP_STATIC_DISAMBIG drops the probe).
 */
void
lintMemoryDisambig(const ImageBlock &block, Report &report,
                   const LintOptions &opts, std::string_view stage)
{
    if (std::none_of(block.nodes.begin(), block.nodes.end(),
                     [](const Node &n) { return n.isMem(); }))
        return;
    const BlockDisambig bd = disambigBlock(block);

    if (bd.pairs.size() >= opts.minMemPairs &&
        bd.mayDensity() >= opts.mayAliasDensity) {
        addDiag(report, Code::HighMayAliasDensity, Severity::Warning,
                stage, block.id, -1, block.entryPc, bd.mayAlias, " of ",
                bd.pairs.size(),
                " memory pairs defeat static disambiguation; run-time "
                "disambiguation carries this block");
    }

    if (block.words.empty())
        return;
    std::vector<std::int32_t> word_of(block.nodes.size(), -1);
    for (std::size_t w = 0; w < block.words.size(); ++w)
        for (std::uint16_t n : block.words[w])
            word_of[n] = static_cast<std::int32_t>(w);
    for (const AliasPair &pair : bd.pairs) {
        if (pair.cls != AliasClass::NoAlias || pair.storeStore)
            continue;
        if (word_of[pair.first] < 0 ||
            word_of[pair.first] != word_of[pair.second])
            continue;
        const std::size_t load_idx =
            block.nodes[pair.first].isLoad() ? pair.first : pair.second;
        const std::size_t store_idx =
            load_idx == pair.first ? pair.second : pair.first;
        addDiag(report, Code::PackedDisjointPair, Severity::Warning, stage,
                block.id, static_cast<std::int32_t>(load_idx),
                block.nodes[load_idx].origPc,
                "load and provably disjoint store at node ", store_idx,
                " share word ", word_of[pair.first],
                "; the run-time store-queue probe is unnecessary");
    }
}

/** AN003: planned chains whose fusion buys no dependence-height. */
void
lintUnprofitableChains(const CodeImage &image, Report &report,
                       const LintOptions &opts, std::string_view stage)
{
    if (opts.single == nullptr || opts.plan == nullptr)
        return;
    for (const ChainAudit &audit :
         auditChains(*opts.single, image, *opts.plan, opts.memHitLatency)) {
        if (audit.heightReduction() > 0)
            continue;
        addDiag(report, Code::UnprofitableChain, Severity::Warning, stage,
                audit.primaryBlock, -1, audit.entryPc, "chain ",
                audit.chainIndex, " (", audit.members,
                " blocks) gains no dependence height: members sum ",
                audit.memberHeightSum, ", fused ", audit.fusedHeight);
    }
}

/**
 * AN009/AN010: exact-schedule oracle findings, read off a precomputed
 * ImageOracle (opts.oracle; the CLI computes one under --oracle).
 *
 * AN009 fires when a hot block's greedy schedule is provably at least
 * oracleGapCycles longer than optimal — real cycles the list scheduler
 * leaves on the table every iteration. AN010 fires when the search
 * budget ran out, so the gap on that block is only bracketed by the
 * certified interval, never proven.
 */
void
lintOracleGaps(Report &report, const LintOptions &opts,
               std::string_view stage)
{
    if (opts.oracle == nullptr)
        return;
    for (const BlockOracle &b : opts.oracle->blocks) {
        if (!b.exact) {
            addDiag(report, Code::OracleBudgetExhausted, Severity::Warning,
                    stage, b.block, -1, b.entryPc,
                    "oracle budget exhausted after ", b.statesExplored,
                    " states; schedule length certified in [",
                    b.lowerBound, ", ", b.upperBound, "] (greedy ",
                    b.greedyLength, ")");
            continue;
        }
        const bool hot = b.enlarged || b.nodes >= opts.oracleHotNodes;
        if (hot && b.gap() >= opts.oracleGapCycles) {
            addDiag(report, Code::GreedyScheduleGap, Severity::Warning,
                    stage, b.block, -1, b.entryPc,
                    "greedy schedule is ", b.gap(),
                    " cycles over optimal (greedy ", b.greedyLength,
                    ", oracle ", b.upperBound,
                    "); FGP_ORACLE_SCHED adopts the shorter schedule");
        }
    }
}

/** AN005: blocks the CFG cannot reach from the image entry. */
void
lintUnreachableBlocks(const CodeImage &image, Report &report,
                      std::string_view stage)
{
    if (image.blocks.empty() || image.entryBlock < 0)
        return;
    std::vector<bool> reached(image.blocks.size(), false);
    std::vector<std::int32_t> worklist{image.entryBlock};
    reached[static_cast<std::size_t>(image.entryBlock)] = true;
    while (!worklist.empty()) {
        const std::int32_t id = worklist.back();
        worklist.pop_back();
        for (std::int32_t succ : verify::imageSuccessors(image, id)) {
            if (!reached[static_cast<std::size_t>(succ)]) {
                reached[static_cast<std::size_t>(succ)] = true;
                worklist.push_back(succ);
            }
        }
    }
    for (const ImageBlock &block : image.blocks) {
        if (reached[static_cast<std::size_t>(block.id)])
            continue;
        addDiag(report, Code::UnreachableBlock, Severity::Warning, stage,
                block.id, -1, block.entryPc,
                "block is unreachable from the entry");
    }
}

/** AN006: source code labels no control transfer targets. */
void
lintUnusedLabels(const CodeImage &image, Report &report,
                 std::string_view stage)
{
    if (image.prog == nullptr)
        return;
    const Program &prog = *image.prog;

    std::vector<bool> targeted(prog.instrs.size(), false);
    for (const Node &node : prog.instrs) {
        if (!node.isControl() || node.target < 0)
            continue;
        if (node.target < static_cast<std::int32_t>(targeted.size()))
            targeted[static_cast<std::size_t>(node.target)] = true;
    }

    // codeLabels is unordered; sort by (pc, name) for stable reports.
    std::vector<std::pair<std::int32_t, std::string_view>> labels;
    labels.reserve(prog.codeLabels.size());
    for (const auto &[name, pc] : prog.codeLabels)
        labels.emplace_back(pc, name);
    std::sort(labels.begin(), labels.end());

    for (const auto &[pc, name] : labels) {
        if (pc == prog.entry)
            continue;
        if (pc >= 0 && pc < static_cast<std::int32_t>(targeted.size()) &&
            targeted[static_cast<std::size_t>(pc)])
            continue;
        addDiag(report, Code::UnusedLabel, Severity::Warning, stage, -1, -1,
                pc, "label '", name, "' is never targeted");
    }
}

} // namespace

void
lintImage(const CodeImage &image, verify::Report &report,
          const LintOptions &opts, std::string_view stage)
{
    for (const ImageBlock &block : image.blocks) {
        lintSerializingFalseDeps(block, report, opts, stage);
        lintDeadDefs(block, report, stage);
        lintForwardingDefeated(block, report, stage);
        lintMemoryDisambig(block, report, opts, stage);
    }
    lintUnprofitableChains(image, report, opts, stage);
    lintUnreachableBlocks(image, report, stage);
    lintUnusedLabels(image, report, stage);
    lintOracleGaps(report, opts, stage);
}

} // namespace fgp::analyze
