/** Cycle-level engine tests: targeted behaviours and invariants. */

#include <gtest/gtest.h>

#include "bbe/enlarge.hh"
#include "engine/engine.hh"
#include "engine/store_index.hh"
#include "ir/cfg.hh"
#include "masm/assembler.hh"
#include "tld/translate.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"

namespace fgp {
namespace {

struct SimOut
{
    EngineResult result;
    std::string stdoutText;
};

SimOut
simulateSource(const std::string &source, const MachineConfig &config,
               const std::string &stdin_text = "")
{
    const Program prog = assemble(source, "engine-test");
    CodeImage image = buildCfg(prog);
    translate(image, config);
    SimOS os;
    os.setStdin(stdin_text);
    EngineOptions opts;
    opts.config = config;
    SimOut out;
    out.result = simulate(image, os, opts);
    out.stdoutText = os.stdoutText();
    return out;
}

MachineConfig
cfg(Discipline d, int issue, char mem,
    BranchMode branch = BranchMode::Single)
{
    return {d, issueModel(issue), memoryConfig(mem), branch};
}

const char *const kCountdown = R"(
main:   li   r8, 50
loop:   addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
)";

TEST(Engine, RetiredNodesMatchVmOnSingleBlocks)
{
    const Program prog = assemble(kCountdown);
    SimOS vm_os;
    const RunResult ref = interpret(prog, vm_os);

    for (Discipline d : allDisciplines()) {
        const SimOut out = simulateSource(kCountdown, cfg(d, 8, 'A'));
        EXPECT_EQ(out.result.retiredNodes, ref.dynamicNodes)
            << disciplineName(d);
    }
}

TEST(Engine, SequentialModelNeverExceedsOneNodePerCycle)
{
    const SimOut out = simulateSource(kCountdown,
                                      cfg(Discipline::Dyn256, 1, 'A'));
    EXPECT_LE(out.result.nodesPerCycle(), 1.0);
}

TEST(Engine, IpcBoundedByIssueWidth)
{
    for (int im : {1, 2, 5, 8}) {
        const SimOut out =
            simulateSource(kCountdown, cfg(Discipline::Dyn256, im, 'A'));
        EXPECT_LE(out.result.nodesPerCycle(),
                  static_cast<double>(issueModel(im).width()));
    }
}

TEST(Engine, WindowOccupancyRespectsCap)
{
    for (Discipline d : allDisciplines()) {
        const SimOut out = simulateSource(kCountdown, cfg(d, 8, 'A'));
        EXPECT_LE(out.result.windowOccupancy.max(),
                  static_cast<std::uint64_t>(windowBlocks(d)))
            << disciplineName(d);
    }
}

TEST(Engine, StoreLoadForwardingInWindow)
{
    // A store immediately followed by a dependent load: the value must
    // forward; with perfect memory the load costs a hit.
    const char *source = R"(
main:   la   r1, buf
        li   r2, 77
        sw   r2, 0(r1)
        lw   r3, 0(r1)
        la   r4, out
        sw   r3, 0(r4)
        lw   a0, 0(r4)
        li   v0, 0
        syscall
        .data
buf:    .word 0
out:    .word 0
)";
    const SimOut out = simulateSource(source, cfg(Discipline::Dyn4, 8, 'A'));
    EXPECT_EQ(out.result.exitCode, 77);
}

TEST(Engine, DisambiguationComputedAddresses)
{
    // The store address depends on a loaded index; a younger load to a
    // possibly-equal address must wait and still see the right value.
    const char *source = R"(
main:   la   r1, idx
        lw   r2, 0(r1)      # r2 = 4
        la   r3, buf
        add  r4, r3, r2
        li   r5, 99
        sw   r5, 0(r4)      # stores buf[1]
        lw   r6, 4(r3)      # loads buf[1]: must observe 99
        mov  a0, r6
        li   v0, 0
        syscall
        .data
idx:    .word 4
buf:    .word 1, 2, 3
)";
    for (Discipline d : allDisciplines()) {
        const SimOut out = simulateSource(source, cfg(d, 8, 'A'));
        EXPECT_EQ(out.result.exitCode, 99) << disciplineName(d);
    }
}

TEST(Engine, PartialOverlapStoreForwarding)
{
    // Byte store into the middle of a word, then a word load: the merge
    // must be byte-accurate.
    const char *source = R"(
main:   la   r1, buf
        li   r2, 0x11223344
        sw   r2, 0(r1)
        li   r3, 0xAA
        sb   r3, 1(r1)
        lw   r4, 0(r1)      # 0x1122AA44
        srli a0, r4, 8
        andi a0, a0, 0xFF
        li   v0, 0
        syscall
        .data
buf:    .word 0
)";
    for (Discipline d : allDisciplines()) {
        const SimOut out = simulateSource(source, cfg(d, 8, 'A'));
        EXPECT_EQ(out.result.exitCode, 0xAA) << disciplineName(d);
    }
}

TEST(Engine, LoadsBypassSlowStores)
{
    // The store's data hangs on a cache miss; a younger load to a
    // provably different address must not wait for it (early address
    // generation, §2.1). Conservative mode must wait.
    const char *source = R"(
main:   la   r1, buf
        la   r2, tab
        li   r8, 24
loop:   lw   r9, 0(r1)       # cold miss each iteration (64-byte stride)
        sw   r9, 2048(r1)    # store data arrives ~10 cycles late
        lw   r10, 0(r2)      # independent load AFTER the store
        add  r20, r20, r10
        addi r1, r1, 64
        addi r8, r8, -1
        bnez r8, loop
        andi a0, r20, 0xff
        li   v0, 0
        syscall
        .data
tab:    .word 3
buf:    .space 8192
)";
    const Program prog = assemble(source);
    auto run = [&](bool conservative) {
        MachineConfig config = cfg(Discipline::Dyn256, 8, 'D');
        CodeImage image = buildCfg(prog);
        translate(image, config);
        SimOS os;
        EngineOptions opts;
        opts.config = config;
        opts.conservativeLoads = conservative;
        return simulate(image, os, opts);
    };
    const EngineResult dynamic = run(false);
    const EngineResult conservative = run(true);
    EXPECT_EQ(dynamic.exitCode, 72 & 0xff);
    EXPECT_EQ(conservative.exitCode, dynamic.exitCode);
    // The bypass must be worth a large constant factor here.
    EXPECT_LT(dynamic.cycles * 2, conservative.cycles);
}

TEST(Engine, MispredictsAreRepaired)
{
    // Alternating branch defeats the 2-bit counter regularly; results
    // must still be exact.
    const char *source = R"(
main:   li   r8, 0          # i
        li   r9, 40
        li   r10, 0
loop:   andi r11, r8, 1
        beqz r11, even
        addi r10, r10, 2
        j    next
even:   addi r10, r10, 1
next:   addi r8, r8, 1
        blt  r8, r9, loop
        mov  a0, r10        # 20*1 + 20*2 = 60
        li   v0, 0
        syscall
)";
    const SimOut out = simulateSource(source, cfg(Discipline::Dyn256, 8, 'A'));
    EXPECT_EQ(out.result.exitCode, 60);
    EXPECT_GT(out.result.mispredicts, 5u);
    EXPECT_GT(out.result.executedNodes, out.result.retiredNodes);
}

TEST(Engine, WrongPathLoadsAreHarmless)
{
    // On the wrong path a load dereferences a pointer that is null until
    // the branch resolves; the machine must not be disturbed.
    const char *source = R"(
main:   li   r8, 20
        la   r9, ptr
        li   r10, 0
loop:   lw   r11, 0(r9)     # valid pointer
        beqz r11, skip      # never taken (ptr != 0), predictor learns
        lw   r12, 0(r11)
        add  r10, r10, r12
skip:   addi r8, r8, -1
        bnez r8, loop
        andi a0, r10, 0xff
        li   v0, 0
        syscall
        .data
target: .word 3
ptr:    .word target
)";
    const SimOut out = simulateSource(source, cfg(Discipline::Dyn256, 8, 'A'));
    EXPECT_EQ(out.result.exitCode, 60 & 0xff);
}

TEST(Engine, JrReturnPrediction)
{
    const char *source = R"(
main:   li   r20, 30
        li   r21, 0
loop:   jal  bump
        addi r20, r20, -1
        bnez r20, loop
        mov  a0, r21
        li   v0, 0
        syscall
bump:   addi r21, r21, 1
        jr   ra
)";
    const SimOut out = simulateSource(source, cfg(Discipline::Dyn4, 8, 'A'));
    EXPECT_EQ(out.result.exitCode, 30);
}

TEST(Engine, AlternatingCallSitesStressJr)
{
    const char *source = R"(
main:   li   r20, 12
        li   r21, 0
loop:   jal  f
        jal  g
        addi r20, r20, -1
        bnez r20, loop
        mov  a0, r21
        li   v0, 0
        syscall
f:      jal  h
        addi r21, r21, 1
        jr   ra
g:      jal  h
        addi r21, r21, 2
        jr   ra
h:      jr   ra
)";
    // h returns alternately to f and g: the last-target BTB mispredicts,
    // and repair must keep the result exact. f/g need ra saved across
    // the inner call; do it with sp.
    const char *source_fixed = R"(
main:   li   r20, 12
        li   r21, 0
loop:   jal  f
        jal  g
        addi r20, r20, -1
        bnez r20, loop
        mov  a0, r21
        li   v0, 0
        syscall
f:      addi sp, sp, -4
        sw   ra, 0(sp)
        jal  h
        addi r21, r21, 1
        lw   ra, 0(sp)
        addi sp, sp, 4
        jr   ra
g:      addi sp, sp, -4
        sw   ra, 0(sp)
        jal  h
        addi r21, r21, 2
        lw   ra, 0(sp)
        addi sp, sp, 4
        jr   ra
h:      jr   ra
)";
    (void)source;
    const SimOut out =
        simulateSource(source_fixed, cfg(Discipline::Dyn256, 8, 'A'));
    EXPECT_EQ(out.result.exitCode, 36);
}

TEST(Engine, SyscallBarrierOrdersMemory)
{
    // read() writes the buffer via the OS; a later load must see it even
    // on a wide dynamic machine that would love to hoist the load.
    const char *source = R"(
        .data
buf:    .space 4
        .text
main:   li   v0, 3
        li   a0, 0
        la   a1, buf
        li   a2, 1
        syscall
        la   r8, buf
        lbu  a0, 0(r8)
        li   v0, 0
        syscall
)";
    const SimOut out = simulateSource(
        source, cfg(Discipline::Dyn256, 8, 'A'), "Z");
    EXPECT_EQ(out.result.exitCode, 'Z');
}

TEST(Engine, StaticStallsOnCacheMiss)
{
    // One dependent load chain: with a cold 1K cache the static machine
    // pays the miss; with perfect memory it does not.
    const char *source = R"(
main:   la   r1, buf
        li   r10, 0
        li   r8, 64
loop:   lw   r9, 0(r1)
        add  r10, r10, r9
        addi r1, r1, 64
        addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .space 4160
)";
    const SimOut fast = simulateSource(source, cfg(Discipline::Static, 8, 'A'));
    const SimOut slow = simulateSource(source, cfg(Discipline::Static, 8, 'D'));
    // Every load is a compulsory miss (64-byte stride); 9 extra cycles
    // per iteration is the expected order of magnitude.
    EXPECT_GT(slow.result.cycles, fast.result.cycles + 64 * 6);
}

TEST(Engine, DynamicHidesMissesBetterThanStatic)
{
    // Independent loads: dynamic scheduling should overlap misses.
    const char *source = R"(
main:   la   r1, buf
        li   r8, 32
        li   r10, 0
        li   r11, 0
        li   r12, 0
        li   r13, 0
loop:   lw   r2, 0(r1)
        lw   r3, 64(r1)
        lw   r4, 128(r1)
        lw   r5, 192(r1)
        add  r10, r10, r2
        add  r11, r11, r3
        add  r12, r12, r4
        add  r13, r13, r5
        addi r1, r1, 256
        addi r8, r8, -1
        bnez r8, loop
        li   v0, 0
        li   a0, 0
        syscall
        .data
buf:    .space 8500
)";
    const SimOut stat = simulateSource(source, cfg(Discipline::Static, 8, 'D'));
    const SimOut dyn =
        simulateSource(source, cfg(Discipline::Dyn256, 8, 'D'));
    EXPECT_LT(dyn.result.cycles, stat.result.cycles);
}

TEST(Engine, Window1RetiresBeforeNextBlock)
{
    const SimOut out = simulateSource(kCountdown, cfg(Discipline::Dyn1, 8, 'A'));
    EXPECT_LE(out.result.windowOccupancy.max(), 1u);
    // With one block at a time no speculative work is ever discarded,
    // even though the final loop exit may still mispredict.
    EXPECT_EQ(out.result.executedNodes, out.result.retiredNodes);
    EXPECT_LE(out.result.mispredicts, 2u);
}

TEST(Engine, FaultRepairsToCompanion)
{
    // Build an enlarged image by hand: A fused with its hot successor B;
    // the cold path C increments differently.
    const char *source = R"(
main:   li   r8, 10
        li   r9, 0
loop:   li   r10, 5
        bge  r8, r10, big    # taken for r8 >= 5
        addi r9, r9, 100
        j    next
big:    addi r9, r9, 1
next:   addi r8, r8, -1
        bnez r8, loop
        mov  a0, r9
        li   v0, 0
        syscall
)";
    const Program prog = assemble(source);
    Profile profile;
    {
        SimOS os;
        InterpOptions opts;
        opts.profile = &profile;
        interpret(prog, os, opts);
    }
    const CodeImage single = buildCfg(prog);
    EnlargeStats stats;
    EnlargeOptions eopts;
    eopts.minArcCount = 4;   // the loop only runs ten times
    eopts.minArcRatio = 0.55;
    CodeImage enlarged = enlarge(single, profile, eopts, &stats);
    ASSERT_GT(stats.faultNodes, 0u);

    MachineConfig config = cfg(Discipline::Dyn4, 8, 'A',
                               BranchMode::Enlarged);
    translate(enlarged, config);
    SimOS os;
    EngineOptions opts;
    opts.config = config;
    const EngineResult result = simulate(enlarged, os, opts);
    // r8 runs 10..1: +1 while r8 >= 5 (6 times), +100 below (4 times).
    EXPECT_EQ(result.exitCode, 406);
}

TEST(Engine, EnlargedRunFiresAndRepairsFaults)
{
    const char *source = R"(
main:   li   r8, 64
        li   r9, 0
loop:   li   r13, 7
        rem  r14, r8, r13
        bnez r14, skip       # biased taken
        addi r9, r9, 10
skip:   addi r8, r8, -1
        bnez r8, loop
        andi a0, r9, 0xff
        li   v0, 0
        syscall
)";
    const Program prog = assemble(source);
    Profile profile;
    {
        SimOS os;
        InterpOptions opts;
        opts.profile = &profile;
        interpret(prog, os, opts);
    }
    SimOS ref_os;
    const RunResult ref = interpret(prog, ref_os);

    const CodeImage single = buildCfg(prog);
    EnlargeStats stats;
    CodeImage enlarged = enlarge(single, profile, {}, &stats);
    ASSERT_GT(stats.faultNodes, 0u);

    MachineConfig config = cfg(Discipline::Dyn4, 8, 'A',
                               BranchMode::Enlarged);
    translate(enlarged, config);
    SimOS os;
    EngineOptions opts;
    opts.config = config;
    const EngineResult result = simulate(enlarged, os, opts);
    EXPECT_EQ(result.exitCode, ref.exitCode);
    EXPECT_GT(result.faultsFired, 0u);
    EXPECT_GT(result.executedNodes, result.retiredNodes);
}

TEST(Engine, PerfectPredictionNeedsTrace)
{
    const Program prog = assemble(kCountdown);
    CodeImage image = buildCfg(prog);
    MachineConfig config = cfg(Discipline::Dyn4, 8, 'A',
                               BranchMode::Perfect);
    translate(image, config);
    SimOS os;
    EngineOptions opts;
    opts.config = config;
    EXPECT_DEATH(simulate(image, os, opts), "trace");
}

TEST(Engine, PerfectPredictionUpperBound)
{
    const Program prog = assemble(kCountdown);

    CodeImage image = buildCfg(prog);
    MachineConfig config = cfg(Discipline::Dyn256, 8, 'A',
                               BranchMode::Perfect);
    translate(image, config);

    SimOS trace_os;
    AtomicRunOptions topts;
    topts.recordTrace = true;
    CodeImage raw = buildCfg(prog);
    AtomicRunResult trace = runAtomic(raw, trace_os, topts);

    SimOS os;
    EngineOptions opts;
    opts.config = config;
    opts.perfectTrace = &trace.blockTrace;
    const EngineResult perfect = simulate(image, os, opts);

    const SimOut predicted =
        simulateSource(kCountdown, cfg(Discipline::Dyn256, 8, 'A'));
    EXPECT_LE(predicted.result.nodesPerCycle(),
              perfect.nodesPerCycle() + 1e-9);
    EXPECT_EQ(perfect.mispredicts, 0u);
    EXPECT_EQ(perfect.faultsFired, 0u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const SimOut a = simulateSource(kCountdown, cfg(Discipline::Dyn4, 8, 'G'));
    const SimOut b = simulateSource(kCountdown, cfg(Discipline::Dyn4, 8, 'G'));
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.executedNodes, b.result.executedNodes);
    EXPECT_EQ(a.result.mispredicts, b.result.mispredicts);
}

TEST(Engine, UntranslatedImageRejected)
{
    const Program prog = assemble(kCountdown);
    CodeImage image = buildCfg(prog); // no words
    SimOS os;
    EngineOptions opts;
    opts.config = cfg(Discipline::Dyn4, 8, 'A');
    EXPECT_DEATH(simulate(image, os, opts), "words");
}

// ---- StoreIndex: the address-indexed view behind specRead ------------

TEST(StoreIndex, PartialOverlapForwardsYoungestBytePerAddress)
{
    StoreIndex index;
    // Word store at 100, then a younger byte store punching one byte.
    const std::uint8_t word[4] = {0x11, 0x22, 0x33, 0x44};
    const std::uint8_t byte[1] = {0xAA};
    index.addStore(10, 100, 4);
    index.setData(10, word);
    index.addStore(20, 102, 1);
    index.setData(20, byte);

    // A load younger than both sees the byte store only where it hits.
    const auto at = [&](std::uint32_t a) { return index.lookup(a, 30); };
    EXPECT_EQ(at(100).status, StoreIndex::Lookup::Status::Hit);
    EXPECT_EQ(at(100).value, 0x11);
    EXPECT_EQ(at(101).value, 0x22);
    EXPECT_EQ(at(102).value, 0xAA);
    EXPECT_EQ(at(103).value, 0x44);
    EXPECT_EQ(at(104).status, StoreIndex::Lookup::Status::Miss);

    // A load between the two stores sees only the older word store.
    EXPECT_EQ(index.lookup(102, 15).value, 0x33);
    // A load older than both sees memory.
    EXPECT_EQ(index.lookup(100, 5).status,
              StoreIndex::Lookup::Status::Miss);
}

TEST(StoreIndex, UnknownDataGatesWithBlockerSeq)
{
    StoreIndex index;
    index.addStore(10, 200, 4); // address known, data not yet
    const StoreIndex::Lookup probe = index.lookup(201, 30);
    EXPECT_EQ(probe.status, StoreIndex::Lookup::Status::NeedData);
    EXPECT_EQ(probe.blocker, 10u);

    const std::uint8_t data[4] = {1, 2, 3, 4};
    index.setData(10, data);
    EXPECT_EQ(index.lookup(201, 30).status,
              StoreIndex::Lookup::Status::Hit);
    EXPECT_EQ(index.lookup(201, 30).value, 2);
}

TEST(StoreIndex, SquashAndRetireCleanUpAllBytes)
{
    StoreIndex index;
    const std::uint8_t a[2] = {0x01, 0x02};
    const std::uint8_t b[2] = {0x03, 0x04};
    index.addStore(10, 300, 2);
    index.setData(10, a);
    index.addStore(20, 301, 2); // overlaps byte 301
    index.setData(20, b);
    index.addStore(30, 400, 1); // data never resolves
    EXPECT_EQ(index.size(), 3u);

    // Squash everything at or above seq 20 (wrong-path repair).
    index.squash(20);
    EXPECT_EQ(index.size(), 1u);
    EXPECT_EQ(index.lookup(301, 99).value, 0x02); // older store re-exposed
    EXPECT_EQ(index.lookup(302, 99).status,
              StoreIndex::Lookup::Status::Miss);
    EXPECT_EQ(index.lookup(400, 99).status,
              StoreIndex::Lookup::Status::Miss);

    // Retire the survivor: the index must end empty.
    index.erase(10);
    EXPECT_TRUE(index.empty());
    EXPECT_EQ(index.lookup(300, 99).status,
              StoreIndex::Lookup::Status::Miss);
}

} // namespace
} // namespace fgp
