file(REMOVE_RECURSE
  "CMakeFiles/fgp_engine.dir/engine.cc.o"
  "CMakeFiles/fgp_engine.dir/engine.cc.o.d"
  "libfgp_engine.a"
  "libfgp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
