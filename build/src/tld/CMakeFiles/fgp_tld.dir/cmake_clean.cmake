file(REMOVE_RECURSE
  "CMakeFiles/fgp_tld.dir/depgraph.cc.o"
  "CMakeFiles/fgp_tld.dir/depgraph.cc.o.d"
  "CMakeFiles/fgp_tld.dir/optimizer.cc.o"
  "CMakeFiles/fgp_tld.dir/optimizer.cc.o.d"
  "CMakeFiles/fgp_tld.dir/schedule.cc.o"
  "CMakeFiles/fgp_tld.dir/schedule.cc.o.d"
  "CMakeFiles/fgp_tld.dir/translate.cc.o"
  "CMakeFiles/fgp_tld.dir/translate.cc.o.d"
  "libfgp_tld.a"
  "libfgp_tld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgp_tld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
