#!/bin/sh
# Validate and compare fgpsim machine-readable records.
#
#   tools/check_bench.sh <previous.json> <current.json> [max_regress_pct]
#       Schema-validate two BENCH_engine.json records emitted by
#       bench/perf_selfcheck and fail when the new wall time regresses
#       by more than the threshold (default 20 percent). A missing
#       previous record is not an error — the current record simply
#       becomes the new baseline.
#
#   tools/check_bench.sh --validate-bench <record.json>
#       Schema-validate one BENCH_engine.json record and exit.
#
#   tools/check_bench.sh --validate-sim <dump.json>
#       Schema-validate an `fgpsim sim --json` / `fgpsim report --json`
#       dump ("fgpsim-sim-v1"): required numeric keys, the stall
#       breakdown, and the issue-slot accounting identity
#       total == issued_nodes + sum(per-cause slots).
#
#   tools/check_bench.sh --validate-check <dump.json>
#       Schema-validate an `fgpsim check --json` dump
#       ("fgpsim-check-v1"): required numeric keys plus the diagnostic
#       accounting identity — the diagnostics array must carry exactly
#       errors + warnings entries.
#
#   tools/check_bench.sh --validate-analyze <dump.json>
#       Schema-validate an `fgpsim analyze --json` dump
#       ("fgpsim-analyze-v1"): required numeric keys, the memory
#       disambiguation section (pair counts must close:
#       pairs == no_alias + must_alias + may_alias), plus the same
#       diagnostic accounting identity as --validate-check.
#
#   tools/check_bench.sh --validate-oracle <dump.json>
#       Validate the exact-schedule oracle extension of an
#       `fgpsim analyze --oracle --json` dump: every oracle_blocks
#       entry must satisfy the certification sandwich
#       height <= lower_bound <= upper_bound <= greedy_length, the gap
#       arithmetic gap == greedy_length - upper_bound, exact blocks a
#       tight interval (lower == upper), exhausted blocks the greedy
#       fallback (upper == greedy) — and the per-block sums must
#       reproduce the aggregate "oracle" object exactly.
#
#   tools/check_bench.sh --validate-run <manifest.jsonl>
#       Schema-validate an fgpsim-run-v1 manifest or BENCH_history.jsonl:
#       the first record must be a "run" line carrying the schema tag,
#       every run line needs its numeric provenance fields plus a git
#       string, every point line needs (workload, config) and its core
#       numerics. '#' comment lines, blank lines and "progress"
#       heartbeats are skipped; "window" records (interval-profile
#       streams) are checked for their core numerics.
#
#   tools/check_bench.sh --validate-profile <dump.jsonl>
#       Schema-validate an `fgpsim profile --json` stream
#       ("fgpsim-profile-v1"): the header line, every window record's
#       per-window slot-closure identity
#       issued + sum(stall slots) == cycles * issue_width, the
#       window-sum identities (retired/cycles vs the header), and the
#       critical-path bounds crit_path_cycles <= cycles and
#       implied IPC <= static_ipc_bound. "critedge" (joint block x
#       cause) records must sum exactly to crit_path_cycles; "retired"
#       records (--retired streams) are schema-checked and counted
#       against the header's retired_nodes.
#
#   tools/check_bench.sh --validate-diff <dump.jsonl>
#       Schema-validate an `fgpsim diff --json` stream
#       ("fgpsim-diff-v1"): the header line, and for every "wdelta"
#       record the differential slot-closure identity — the recomputed
#       residual (slots_b - slots_a) - (issued_b - issued_a)
#       - sum(d_stall_<slot causes>) must be zero and must equal the
#       record's own residual field. "dcause"/"dblock" deltas must
#       equal b - a; "divergence" records must carry a level and, at
#       node level, the pinpointed seq/log_index/field.
#
# Pure POSIX sh + awk so it runs anywhere the build runs.
set -eu

field() {
    # Extract a numeric field from one-key-per-line JSON.
    awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ \t]/, "", $2); print $2; exit }' "$1"
}

require_numeric() {
    # require_numeric FILE KEY...: every KEY must be present with a
    # numeric value.
    file="$1"; shift
    for key in "$@"; do
        value=$(field "$file" "$key")
        case "$value" in
            ''|*[!0-9.eE+-]*)
                echo "check_bench: $file: key \"$key\" missing or not numeric (got '$value')" >&2
                exit 1
                ;;
        esac
    done
}

validate_bench() {
    record="$1"
    if [ ! -f "$record" ]; then
        echo "check_bench: record $record missing" >&2
        exit 1
    fi
    require_numeric "$record" jobs scale sims wall_seconds sims_per_sec \
        sim_cycles host_ns_per_sim_cycle
    echo "check_bench: $record: bench schema OK"
}

validate_sim() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: sim dump $dump missing" >&2
        exit 1
    fi
    if ! grep -q '"schema": "fgpsim-sim-v1"' "$dump"; then
        echo "check_bench: $dump: missing schema tag fgpsim-sim-v1" >&2
        exit 1
    fi
    require_numeric "$dump" cycles issue_width retired_nodes \
        executed_nodes issued_nodes committed_blocks squashed_blocks \
        nodes_per_cycle total fetch_redirect fetch_idle window_full \
        short_word drain operand_wait memory_wait serialize_wait fu_busy
    # The accounting identity: every slot of every cycle is either an
    # issued node or attributed to exactly one stall cause.
    awk -F'[:,]' '
        function num(s) { gsub(/[ \t]/, "", s); return s + 0 }
        $1 ~ /"total"/          { total = num($2) }
        $1 ~ /"issued_nodes"/   { issued = num($2) }
        $1 ~ /"fetch_redirect"/ { causes += num($2) }
        $1 ~ /"fetch_idle"/     { causes += num($2) }
        $1 ~ /"window_full"/    { causes += num($2) }
        $1 ~ /"short_word"/     { causes += num($2) }
        $1 ~ /"drain"/          { causes += num($2) }
        END {
            if (total != issued + causes) {
                printf "check_bench: slot accounting broken: total %d != issued %d + causes %d\n",
                       total, issued, causes > "/dev/stderr"
                exit 1
            }
        }' "$dump"
    echo "check_bench: $dump: sim schema OK (slot accounting closes)"
}

validate_check() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: check dump $dump missing" >&2
        exit 1
    fi
    if ! grep -q '"schema": "fgpsim-check-v1"' "$dump"; then
        echo "check_bench: $dump: missing schema tag fgpsim-check-v1" >&2
        exit 1
    fi
    require_numeric "$dump" blocks_checked nodes_checked errors warnings
    # Every reported finding appears exactly once in the diagnostics
    # array (each entry carries one "code" key).
    awk -F'[:,]' '
        function num(s) { gsub(/[ \t]/, "", s); return s + 0 }
        $1 ~ /"errors"/   { errors = num($2) }
        $1 ~ /"warnings"/ { warnings = num($2) }
        $1 ~ /"code"/     { codes += 1 }
        END {
            if (codes != errors + warnings) {
                printf "check_bench: diagnostic accounting broken: %d entries != %d errors + %d warnings\n",
                       codes, errors, warnings > "/dev/stderr"
                exit 1
            }
        }' "$dump"
    echo "check_bench: $dump: check schema OK (diagnostics close)"
}

validate_analyze() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: analyze dump $dump missing" >&2
        exit 1
    fi
    if ! grep -q '"schema": "fgpsim-analyze-v1"' "$dump"; then
        echo "check_bench: $dump: missing schema tag fgpsim-analyze-v1" >&2
        exit 1
    fi
    require_numeric "$dump" mem_hit_latency blocks_analyzed nodes_analyzed \
        crit_path_max mean_height dataflow_bound static_ipc_bound \
        errors warnings
    # The static memory-disambiguation section: aggregate counts plus
    # the lattice-closure identity (every classified pair lands on
    # exactly one of the three lattice points).
    if ! grep -q '"memory":' "$dump"; then
        echo "check_bench: $dump: missing \"memory\" disambiguation section" >&2
        exit 1
    fi
    require_numeric "$dump" pairs no_alias must_alias may_alias \
        independent_loads enlarged_no_alias
    awk -F'[:,]' '
        function num(s) { gsub(/[ \t]/, "", s); return s + 0 }
        # First occurrence wins: the aggregate "memory" object precedes
        # the per-block "mem_blocks" ranking in the dump.
        $1 ~ /"pairs"/      && !saw_p { pairs = num($2); saw_p = 1 }
        $1 ~ /"no_alias"/   && !saw_n { no = num($2); saw_n = 1 }
        $1 ~ /"must_alias"/ && !saw_m { must = num($2); saw_m = 1 }
        $1 ~ /"may_alias"/  && !saw_y { may = num($2); saw_y = 1 }
        END {
            if (pairs != no + must + may) {
                printf "check_bench: alias lattice broken: %d pairs != %d no + %d must + %d may\n",
                       pairs, no, must, may > "/dev/stderr"
                exit 1
            }
        }' "$dump"
    # Every lint finding appears exactly once in the diagnostics array
    # (each entry carries one "code" key).
    awk -F'[:,]' '
        function num(s) { gsub(/[ \t]/, "", s); return s + 0 }
        $1 ~ /"errors"/   { errors = num($2) }
        $1 ~ /"warnings"/ { warnings = num($2) }
        $1 ~ /"code"/     { codes += 1 }
        END {
            if (codes != errors + warnings) {
                printf "check_bench: lint accounting broken: %d entries != %d errors + %d warnings\n",
                       codes, errors, warnings > "/dev/stderr"
                exit 1
            }
        }' "$dump"
    echo "check_bench: $dump: analyze schema OK (lattice and diagnostics close)"
}

validate_oracle() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: oracle dump $dump missing" >&2
        exit 1
    fi
    if ! grep -q '"schema": "fgpsim-analyze-v1"' "$dump"; then
        echo "check_bench: $dump: missing schema tag fgpsim-analyze-v1" >&2
        exit 1
    fi
    if ! grep -q '"oracle_blocks"' "$dump"; then
        echo "check_bench: $dump: missing oracle_blocks (run analyze --oracle --json)" >&2
        exit 1
    fi
    require_numeric "$dump" blocks_exact blocks_exhausted greedy_cycles \
        oracle_cycles max_gap bound_violations
    # Recompute the certification invariants over every oracle_blocks
    # entry: the sandwich height <= lower <= upper <= greedy, the gap
    # arithmetic gap == greedy - upper, exact blocks carry a tight
    # interval, exhausted blocks fall back to the greedy upper bound —
    # and the per-block sums must reproduce the aggregate totals.
    awk -F'[:,]' '
        function die(msg) {
            printf "check_bench: oracle block %d: %s\n", blk, msg \
                > "/dev/stderr"
            failed = 1
            exit 1
        }
        function num(s) { gsub(/[ \t]/, "", s); return s + 0 }
        $1 ~ /"blocks_exact"/     && !saw_e { agg_exact = num($2); saw_e = 1 }
        $1 ~ /"blocks_exhausted"/ && !saw_x { agg_exh = num($2); saw_x = 1 }
        $1 ~ /"greedy_cycles"/    && !saw_g { agg_greedy = num($2); saw_g = 1 }
        $1 ~ /"oracle_cycles"/    && !saw_o { agg_oracle = num($2); saw_o = 1 }
        $1 ~ /"max_gap"/          && !saw_m { agg_gap = num($2); saw_m = 1 }
        $1 ~ /"oracle_blocks"/ { in_blocks = 1 }
        $1 ~ /"diagnostics"/   { in_blocks = 0 }
        in_blocks && $1 ~ /"block"/ && $1 !~ /nodes/ { blk = num($2) }
        in_blocks && $1 ~ /"block_nodes"/   { nodes = num($2) }
        in_blocks && $1 ~ /"height"/        { height = num($2) }
        in_blocks && $1 ~ /"greedy_length"/ { greedy = num($2) }
        in_blocks && $1 ~ /"lower_bound"/   { lo = num($2) }
        in_blocks && $1 ~ /"upper_bound"/   { up = num($2) }
        in_blocks && $1 ~ /"exact"/         { exact = num($2) }
        in_blocks && $1 ~ /"gap"/ {
            gap = num($2)
            blocks += 1
            sum_greedy += greedy
            sum_oracle += up
            if (exact) n_exact += 1; else n_exh += 1
            if (gap > widest) widest = gap
            if (nodes > 0 && height > up)
                die(sprintf("height %d above upper bound %d", height, up))
            if (lo > up)
                die(sprintf("lower bound %d above upper bound %d", lo, up))
            if (up > greedy)
                die(sprintf("upper bound %d above greedy %d", up, greedy))
            if (gap != greedy - up)
                die(sprintf("gap %d != greedy %d - upper %d", gap, greedy, up))
            if (exact && lo != up)
                die(sprintf("exact block with loose interval %d-%d", lo, up))
            if (!exact && up != greedy)
                die(sprintf("exhausted block upper %d != greedy %d", up, greedy))
        }
        END {
            if (failed)
                exit 1
            if (blocks == 0) {
                print "check_bench: no oracle_blocks entries" > "/dev/stderr"
                exit 1
            }
            if (n_exact != agg_exact || n_exh != agg_exh) {
                printf "check_bench: oracle exact accounting broken: %d/%d blocks vs %d/%d aggregate\n",
                       n_exact, n_exh, agg_exact, agg_exh > "/dev/stderr"
                exit 1
            }
            if (sum_greedy != agg_greedy || sum_oracle != agg_oracle) {
                printf "check_bench: oracle cycle sums broken: %d/%d vs %d/%d aggregate\n",
                       sum_greedy, sum_oracle, agg_greedy, agg_oracle > "/dev/stderr"
                exit 1
            }
            if (widest != agg_gap) {
                printf "check_bench: max_gap %d != widest per-block gap %d\n",
                       agg_gap, widest > "/dev/stderr"
                exit 1
            }
        }' "$dump"
    echo "check_bench: $dump: oracle schema OK (sandwich certified on every block)"
}

validate_run() {
    manifest="$1"
    if [ ! -f "$manifest" ]; then
        echo "check_bench: run manifest $manifest missing" >&2
        exit 1
    fi
    # Compact JSONL (whole record on one line), so the line-oriented
    # field() helper does not apply; match() extracts keys in place.
    awk '
        function die(msg) {
            printf "check_bench: %s: line %d: %s\n", FILENAME, FNR, msg \
                > "/dev/stderr"
            failed = 1
            exit 1
        }
        function need_num(key) {
            if (!match($0, "\"" key "\":[ ]*[-+0-9.eE]"))
                die("missing numeric field \"" key "\"")
        }
        function need_str(key) {
            if (!match($0, "\"" key "\":[ ]*\""))
                die("missing string field \"" key "\"")
        }
        /^[ \t]*$/ { next }
        /^#/ { next }
        {
            records += 1
            if (index($0, "\"kind\":\"run\"")) {
                runs += 1
                if (!index($0, "\"schema\":\"fgpsim-run-v1\""))
                    die("run record without the fgpsim-run-v1 schema tag")
                need_str("bench"); need_str("git")
                need_num("timestamp"); need_num("jobs"); need_num("scale")
                need_num("sims"); need_num("wall_seconds")
                need_num("sim_cycles"); need_num("host_ns_per_sim_cycle")
                # Allocation observability (engine/engine.hh setAllocHook):
                # when a run samples allocations, all three engine.alloc.*
                # registry fields must land in the snapshot together.
                if (index($0, "\"engine.alloc.")) {
                    need_num("engine.alloc.sampled_sims")
                    need_num("engine.alloc.cycle_loop")
                    need_num("engine.alloc.syscall")
                }
                # Static disambiguation observability: when any
                # engine.disambig.* counter folds into the snapshot, the
                # whole family must land together.
                if (index($0, "\"engine.disambig.")) {
                    need_num("engine.disambig.fast_loads")
                    need_num("engine.disambig.probes_eliminated")
                    need_num("engine.disambig.checked_pairs")
                    need_num("engine.disambig.violations")
                }
            } else if (index($0, "\"kind\":\"point\"")) {
                if (records == 1)
                    die("first record must be the \"run\" header")
                points += 1
                need_str("workload"); need_str("config")
                need_num("nodes_per_cycle"); need_num("cycles")
                need_num("host_ns")
                # Point records written since the disambiguation pass
                # carry its books unconditionally (zeros when off); the
                # presence of any implies all three.
                if (index($0, "\"disambig_")) {
                    need_num("disambig_fast_loads")
                    need_num("disambig_probes_eliminated")
                    need_num("disambig_checked_pairs")
                }
            } else if (index($0, "\"kind\":\"window\"")) {
                if (records == 1)
                    die("first record must be the \"run\" header")
                windows += 1
                need_str("workload"); need_str("config")
                need_num("index"); need_num("start_cycle")
                need_num("cycles"); need_num("retired_nodes")
            } else if (index($0, "\"kind\":\"progress\"")) {
                next # heartbeats may be interleaved in captured logs
            } else {
                die("unknown record kind")
            }
        }
        END {
            if (failed)
                exit 1
            if (!runs) {
                printf "check_bench: %s: no run records\n", FILENAME \
                    > "/dev/stderr"
                exit 1
            }
            printf "check_bench: %s: run schema OK (%d runs, %d points, %d windows)\n",
                   FILENAME, runs, points, windows
        }' "$manifest"
}

validate_profile() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: profile dump $dump missing" >&2
        exit 1
    fi
    awk '
        function die(msg) {
            printf "check_bench: %s: line %d: %s\n", FILENAME, FNR, msg \
                > "/dev/stderr"
            failed = 1
            exit 1
        }
        function num(key,    s) {
            if (!match($0, "\"" key "\":[ ]*[-+0-9.eE]+"))
                die("missing numeric field \"" key "\"")
            s = substr($0, RSTART, RLENGTH)
            sub("\"" key "\":[ ]*", "", s)
            return s + 0
        }
        /^[ \t]*$/ { next }
        /^#/ { next }
        {
            records += 1
            if (index($0, "\"kind\":\"profile\"")) {
                if (records != 1)
                    die("\"profile\" header must be the first record")
                if (!index($0, "\"schema\":\"fgpsim-profile-v1\""))
                    die("header without the fgpsim-profile-v1 schema tag")
                width = num("issue_width")
                cycles = num("cycles")
                retired = num("retired_nodes")
                bound = num("static_ipc_bound")
                path = num("crit_path_cycles")
                implied = num("crit_path_implied_ipc")
                expect_windows = num("windows")
                if (width <= 0)
                    die("issue_width must be positive")
                if (path > cycles)
                    die(sprintf("crit_path_cycles %d > cycles %d", path, cycles))
                if (implied > bound + 1e-9)
                    die(sprintf("implied IPC %g beats the static bound %g", implied, bound))
            } else if (index($0, "\"kind\":\"window\"")) {
                if (!records || !width)
                    die("window record before the profile header")
                windows += 1
                wcycles = num("cycles")
                issued = num("issued_nodes")
                stalls = num("stall_fetch_redirect") + num("stall_fetch_idle") \
                       + num("stall_window_full") + num("stall_short_word") \
                       + num("stall_drain")
                # The slot-closure invariant, per window: every slot of
                # every cycle is an issued node or exactly one cause.
                if (issued + stalls != wcycles * width)
                    die(sprintf("window slot closure broken: %d issued + %d stalls != %d cycles * width %d",
                                issued, stalls, wcycles, width))
                sum_cycles += wcycles
                sum_retired += num("retired_nodes")
            } else if (index($0, "\"kind\":\"residency\"")) {
                num("window"); num("block"); num("retired_nodes")
            } else if (index($0, "\"kind\":\"critpath\"")) {
                if (!match($0, "\"cause\":[ ]*\""))
                    die("critpath record without a cause")
                cause_cycles += num("cycles")
            } else if (index($0, "\"kind\":\"critblock\"")) {
                num("block"); num("retired_nodes"); num("ipc_bound")
                block_cycles += num("path_cycles")
            } else if (index($0, "\"kind\":\"critedge\"")) {
                # Joint block x cause cells: unlike the top-N critblock
                # ranking these are exhaustive, so they must telescope
                # exactly to the whole path (checked in END).
                num("block")
                if (!match($0, "\"cause\":[ ]*\""))
                    die("critedge record without a cause")
                edge_records += 1
                edge_cycles += num("cycles")
            } else if (index($0, "\"kind\":\"retired\"")) {
                num("seq"); num("parent_seq"); num("issue_cycle")
                num("ready_cycle"); num("sched_cycle")
                num("complete_cycle"); num("block"); num("window")
                if (!match($0, "\"edge\":[ ]*\""))
                    die("retired record without an edge kind")
                retired_records += 1
            } else {
                die("unknown record kind")
            }
        }
        END {
            if (failed)
                exit 1
            if (!records) {
                printf "check_bench: %s: empty profile dump\n", FILENAME \
                    > "/dev/stderr"
                exit 1
            }
            if (windows != expect_windows) {
                printf "check_bench: %s: %d window records, header said %d\n",
                       FILENAME, windows, expect_windows > "/dev/stderr"
                exit 1
            }
            # Window streams must telescope exactly to the aggregates.
            if (sum_cycles != cycles) {
                printf "check_bench: %s: window cycles sum %d != run cycles %d\n",
                       FILENAME, sum_cycles, cycles > "/dev/stderr"
                exit 1
            }
            if (sum_retired != retired) {
                printf "check_bench: %s: window retired sum %d != run retired %d\n",
                       FILENAME, sum_retired, retired > "/dev/stderr"
                exit 1
            }
            # Every critical-path cycle is attributed to exactly one
            # cause; block residency never exceeds the path.
            if (cause_cycles != path) {
                printf "check_bench: %s: critpath cause sum %d != crit_path_cycles %d\n",
                       FILENAME, cause_cycles, path > "/dev/stderr"
                exit 1
            }
            if (block_cycles > path) {
                printf "check_bench: %s: critblock cycles %d exceed the path %d\n",
                       FILENAME, block_cycles, path > "/dev/stderr"
                exit 1
            }
            # The joint block x cause table partitions the path exactly:
            # every critical-path cycle lands on one (block, cause) cell.
            if (edge_records && edge_cycles != path) {
                printf "check_bench: %s: critedge cycles sum %d != crit_path_cycles %d\n",
                       FILENAME, edge_cycles, path > "/dev/stderr"
                exit 1
            }
            if (retired_records && retired_records != retired) {
                printf "check_bench: %s: %d retired records, header said %d retired nodes\n",
                       FILENAME, retired_records, retired > "/dev/stderr"
                exit 1
            }
            printf "check_bench: %s: profile schema OK (%d windows close, path %d cycles)\n",
                   FILENAME, windows, path
        }' "$dump"
}

validate_diff() {
    dump="$1"
    if [ ! -f "$dump" ]; then
        echo "check_bench: diff dump $dump missing" >&2
        exit 1
    fi
    awk '
        function die(msg) {
            printf "check_bench: %s: line %d: %s\n", FILENAME, FNR, msg \
                > "/dev/stderr"
            failed = 1
            exit 1
        }
        function num(key,    s) {
            if (!match($0, "\"" key "\":[ ]*[-+0-9.eE]+"))
                die("missing numeric field \"" key "\"")
            s = substr($0, RSTART, RLENGTH)
            sub("\"" key "\":[ ]*", "", s)
            return s + 0
        }
        /^[ \t]*$/ { next }
        /^#/ { next }
        {
            records += 1
            if (index($0, "\"kind\":\"diff\"")) {
                if (records != 1)
                    die("\"diff\" header must be the first record")
                if (!index($0, "\"schema\":\"fgpsim-diff-v1\""))
                    die("header without the fgpsim-diff-v1 schema tag")
                expect_cells = num("cells")
            } else if (index($0, "\"kind\":\"cell\"")) {
                if (!records)
                    die("cell record before the diff header")
                cells += 1
                num("cycles_a"); num("cycles_b")
                num("retired_a"); num("retired_b")
                num("ipc_a"); num("ipc_b")
            } else if (index($0, "\"kind\":\"wdelta\"")) {
                wdeltas += 1
                # The differential slot-closure identity: recompute the
                # residual from the record itself and require both the
                # recomputation and the emitted field to be zero. This
                # is the zero-residual attribution gate — any engine
                # accounting drift between runs A and B surfaces here.
                resid = (num("slots_b") - num("slots_a")) \
                      - (num("issued_b") - num("issued_a")) \
                      - num("d_stall_fetch_redirect") \
                      - num("d_stall_fetch_idle") \
                      - num("d_stall_window_full") \
                      - num("d_stall_short_word") \
                      - num("d_stall_drain")
                if (resid != 0)
                    die(sprintf("wdelta residual recomputes to %d, not 0", resid))
                if (num("residual") != 0)
                    die("wdelta carries a nonzero residual field")
            } else if (index($0, "\"kind\":\"dcause\"")) {
                if (!match($0, "\"cause\":[ ]*\""))
                    die("dcause record without a cause")
                if (num("delta") != num("cycles_b") - num("cycles_a"))
                    die("dcause delta != cycles_b - cycles_a")
            } else if (index($0, "\"kind\":\"dblock\"")) {
                num("block")
                if (num("delta") != num("path_cycles_b") - num("path_cycles_a"))
                    die("dblock delta != path_cycles_b - path_cycles_a")
            } else if (index($0, "\"kind\":\"divergence\"")) {
                if (!match($0, "\"level\":[ ]*\""))
                    die("divergence record without a level")
                divergences += 1
                if (index($0, "\"level\":\"node\"")) {
                    num("first_window"); num("seq"); num("log_index")
                    num("value_a"); num("value_b")
                    if (!match($0, "\"field\":[ ]*\""))
                        die("node-level divergence without a field name")
                } else if (index($0, "\"level\":\"window\"")) {
                    num("first_window")
                }
            } else {
                die("unknown record kind")
            }
        }
        END {
            if (failed)
                exit 1
            if (!records) {
                printf "check_bench: %s: empty diff dump\n", FILENAME \
                    > "/dev/stderr"
                exit 1
            }
            if (cells != expect_cells) {
                printf "check_bench: %s: %d cell records, header said %d\n",
                       FILENAME, cells, expect_cells > "/dev/stderr"
                exit 1
            }
            printf "check_bench: %s: diff schema OK (%d cells, %d wdeltas close, %d divergence records)\n",
                   FILENAME, cells, wdeltas, divergences
        }' "$dump"
}

case "${1:-}" in
    --validate-bench)
        validate_bench "${2:?usage: check_bench.sh --validate-bench <record.json>}"
        exit 0
        ;;
    --validate-sim)
        validate_sim "${2:?usage: check_bench.sh --validate-sim <dump.json>}"
        exit 0
        ;;
    --validate-check)
        validate_check "${2:?usage: check_bench.sh --validate-check <dump.json>}"
        exit 0
        ;;
    --validate-analyze)
        validate_analyze "${2:?usage: check_bench.sh --validate-analyze <dump.json>}"
        exit 0
        ;;
    --validate-oracle)
        validate_oracle "${2:?usage: check_bench.sh --validate-oracle <dump.json>}"
        exit 0
        ;;
    --validate-run)
        validate_run "${2:?usage: check_bench.sh --validate-run <manifest.jsonl>}"
        exit 0
        ;;
    --validate-profile)
        validate_profile "${2:?usage: check_bench.sh --validate-profile <dump.jsonl>}"
        exit 0
        ;;
    --validate-diff)
        validate_diff "${2:?usage: check_bench.sh --validate-diff <dump.jsonl>}"
        exit 0
        ;;
esac

prev="${1:?usage: check_bench.sh <previous.json> <current.json> [pct]}"
cur="${2:?usage: check_bench.sh <previous.json> <current.json> [pct]}"
pct="${3:-20}"

if [ ! -f "$cur" ]; then
    echo "check_bench: current record $cur missing" >&2
    exit 1
fi
validate_bench "$cur"
if [ ! -f "$prev" ]; then
    echo "check_bench: no previous record ($prev); accepting $cur as baseline"
    exit 0
fi
validate_bench "$prev"

prev_wall=$(field "$prev" wall_seconds)
cur_wall=$(field "$cur" wall_seconds)
prev_rate=$(field "$prev" sims_per_sec)
cur_rate=$(field "$cur" sims_per_sec)

echo "check_bench: wall ${prev_wall}s -> ${cur_wall}s, sims/sec ${prev_rate:-?} -> ${cur_rate:-?}"

awk -v prev="$prev_wall" -v cur="$cur_wall" -v pct="$pct" 'BEGIN {
    if (prev <= 0) exit 0;
    regress = (cur - prev) / prev * 100.0;
    if (regress > pct) {
        printf "check_bench: FAIL — wall time regressed %.1f%% (> %s%% allowed)\n",
               regress, pct;
        exit 1;
    }
    printf "check_bench: OK — wall time change %+.1f%% (<= %s%% allowed)\n",
           regress, pct;
}'
