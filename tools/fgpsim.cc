/**
 * @file
 * fgpsim — command-line driver mirroring the paper's toolchain (§3.1):
 * the translating loader, the enlargement-file creator and the run-time
 * simulator as one multi-command binary.
 *
 *   fgpsim asm     <src>                       assemble + list blocks
 *   fgpsim run     <src> [--stdin FILE]        functional (VM) execution
 *   fgpsim profile <src> [--out FILE]          write a statistics file
 *   fgpsim profile <src> --config CFG [--interval N] [--json]
 *                  [--chrome FILE] [--top N]    interval profiler: per-window
 *                                              IPC/stall streams plus the
 *                                              executed schedule's dynamic
 *                                              critical path (any of these
 *                                              flags selects this mode;
 *                                              without them the legacy
 *                                              branch-arc statistics file
 *                                              above is produced)
 *   fgpsim bbe     <src> --profile FILE [--out FILE]
 *                  [--max-chain N] [--ratio R] [--min-count N]
 *                                              create an enlargement file
 *   fgpsim sim     <src> --config dyn4/8A/enlarged
 *                  [--plan FILE] [--ras N] [--window N] [--stdin FILE]
 *                  [--json] [--events FILE] [--chrome FILE]
 *                                              cycle-level simulation
 *   fgpsim trace   <src> [--config ...] [--stdin FILE] [--out FILE]
 *                                              per-cycle pipeline trace
 *   fgpsim report  <src> [--config ...] [--top N] [--json]
 *                                              stall/per-block report
 *   fgpsim check   <src> [--config ...] [--plan FILE] [--json] [--strict]
 *                                              static verification of the
 *                                              single/enlarged/translated
 *                                              images (docs/VERIFIER.md)
 *   fgpsim analyze <src> [--config ...] [--plan FILE] [--top N]
 *                  [--json] [--strict]
 *                                              static ILP bounds + workload
 *                                              lint, no simulation
 *                                              (docs/ANALYZER.md)
 *   fgpsim compare <A.jsonl> <B.jsonl> [--tolerance P%]
 *                  [--wall-tolerance P%] [--json]
 *                                              diff two fgpsim-run-v1
 *                                              manifests; nonzero exit on
 *                                              an IPC or wall-time
 *                                              regression (CI perf gate)
 *   fgpsim history <history.jsonl>             perf trajectory of an
 *                                              appended run-header history
 *                                              (BENCH_history.jsonl): git,
 *                                              host ns/sim-cycle, delta vs
 *                                              the previous run
 *
 * <src> is either the name of a built-in benchmark (sort, grep, diff,
 * cpp, compress — inputs are generated automatically) or a path to a
 * micro-assembly file. Built-in benchmarks profile on input set 1 and
 * run/simulate on input set 2, exactly like the paper's protocol.
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "base/table.hh"
#include "bbe/enlarge.hh"
#include "diff/diff.hh"
#include "diff/flame.hh"
#include "diff/stream.hh"
#include "engine/engine.hh"
#include "ir/cfg.hh"
#include "ir/printer.hh"
#include "metrics/manifest.hh"
#include "obs/bus.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/sinks.hh"
#include "analyze/analyze.hh"
#include "analyze/disambig.hh"
#include "analyze/lint.hh"
#include "analyze/oracle.hh"
#include "masm/assembler.hh"
#include "profile/profile.hh"
#include "tld/translate.hh"
#include "verify/equiv.hh"
#include "verify/postpass.hh"
#include "verify/verify.hh"
#include "vm/atomic_runner.hh"
#include "vm/interp.hh"
#include "vm/profile_io.hh"
#include "workloads/workloads.hh"

namespace fgp {
namespace {

struct Options
{
    std::string command;
    std::string source;
    std::vector<std::string> extra; ///< positionals after <src>
    std::map<std::string, std::string> flags;

    bool has(const std::string &name) const { return flags.count(name); }

    std::string
    get(const std::string &name, const std::string &fallback = "") const
    {
        const auto it = flags.find(name);
        return it == flags.end() ? fallback : it->second;
    }
};

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: fgpsim <command> <src> [flags]\n"
        "  commands: asm | run | profile | bbe | sim | trace | report |\n"
        "            check | analyze | compare | diff | history\n"
        "  <src>: benchmark name (sort grep diff cpp compress) or .s file\n"
        "  common flags: --stdin FILE, --out FILE\n"
        "  bbe flags:    --profile FILE [--max-chain N] [--ratio R]\n"
        "                [--min-count N]\n"
        "  sim flags:    --config dyn4/8A/enlarged [--plan FILE]\n"
        "                [--ras N] [--window N] [--conservative]\n"
        "                [--json] [--events FILE] [--chrome FILE]\n"
        "  trace flags:  sim flags plus --out FILE (trace destination)\n"
        "  report flags: sim flags plus --top N (blocks in the table)\n"
        "  check flags:  [--config CFG] [--plan FILE] [--json] [--strict]\n"
        "  analyze flags:[--config CFG] [--plan FILE] [--top N] [--json]\n"
        "                [--strict] (exit 1 when lint finds anything)\n"
        "                [--mem] (memory-disambiguation table: per-block\n"
        "                alias classes ranked by may-alias density)\n"
        "                [--oracle] [--oracle-budget STATES]\n"
        "                (exact-schedule oracle: certified optimal block\n"
        "                lengths and the greedy gap; exit 4 when the\n"
        "                height <= oracle <= greedy sandwich breaks —\n"
        "                distinct from exit 1 for lint findings)\n"
        "  compare:      fgpsim compare A.jsonl B.jsonl\n"
        "                [--tolerance P%] [--wall-tolerance P%] [--json]\n"
        "                (fgpsim-run-v1 manifests; exit 1 on regression,\n"
        "                3 on mismatched cell sets)\n"
        "  diff:         fgpsim diff A.jsonl B.jsonl [--top N] [--json]\n"
        "                [--folded FILE] [--chrome FILE]\n"
        "                (fgpsim-profile-v1 or fgpsim-run-v1 streams;\n"
        "                per-window stall-slot attribution of the IPC\n"
        "                delta, critical-path cause/block deltas, and\n"
        "                schedule-divergence pinpointing; --json emits\n"
        "                fgpsim-diff-v1, --folded writes a two-column\n"
        "                folded-stack file for flamegraph diffing,\n"
        "                --chrome writes an A/B overlay trace)\n"
        "  profile (interval mode, any of these flags selects it):\n"
        "                --config CFG [--interval CYCLES] [--json]\n"
        "                [--chrome FILE] [--top N] [--retired] plus the\n"
        "                sim flags; --json emits fgpsim-profile-v1 JSONL;\n"
        "                --retired appends the retired-node log (exact\n"
        "                divergence pinpointing in fgpsim diff)\n"
        "  history:      fgpsim history BENCH_history.jsonl\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fgp_fatal("cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fgp_fatal("cannot write '", path, "'");
    out << text;
}

bool
isBenchmark(const std::string &name)
{
    const auto &names = workloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Resolve <src> into a program plus an OS preparer. */
struct Source
{
    Program program;
    std::optional<Workload> workload;

    void
    prepare(SimOS &os, InputSet set, const Options &opts) const
    {
        if (workload) {
            workload->prepareOs(os, set);
        } else if (opts.has("stdin")) {
            os.setStdin(readFile(opts.get("stdin")));
        }
    }
};

Source
resolveSource(const Options &opts)
{
    Source src;
    if (isBenchmark(opts.source)) {
        src.workload = makeWorkload(opts.source);
        src.program = src.workload->program();
    } else {
        src.program = assemble(readFile(opts.source), opts.source);
    }
    return src;
}

int
cmdAsm(const Options &opts)
{
    const Source src = resolveSource(opts);
    const CodeImage image = buildCfg(src.program);

    std::size_t mem_nodes = 0;
    std::size_t alu_nodes = 0;
    for (const Node &node : src.program.instrs) {
        if (node.isMem())
            ++mem_nodes;
        else if (!node.isControl())
            ++alu_nodes;
    }
    std::cout << "; " << src.program.instrs.size() << " nodes, "
              << image.blocks.size() << " basic blocks, "
              << src.program.data.size() << " data bytes\n"
              << "; static ALU:MEM ratio "
              << format("%.2f", mem_nodes ? static_cast<double>(alu_nodes) /
                                                static_cast<double>(mem_nodes)
                                          : 0.0)
              << "\n\n";
    printImage(image, std::cout);
    return 0;
}

int
cmdRun(const Options &opts)
{
    const Source src = resolveSource(opts);
    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const RunResult r = interpret(src.program, os);
    std::cout << os.stdoutText();
    std::cerr << "exit " << r.exitCode << ", " << r.dynamicNodes
              << " nodes (" << r.memNodes << " mem, " << r.controlNodes
              << " control), " << r.dynamicBlocks << " dynamic blocks\n";
    return r.exitCode;
}

/**
 * Interval-profiling simulation: run <src> under the given machine
 * configuration with the engine's interval profiler attached and report
 * per-window IPC / stall-cause streams plus the executed schedule's
 * dynamic critical path. Selected from `fgpsim profile` by any of
 * --config/--interval/--json/--chrome/--top; the flagless form keeps
 * producing the legacy branch-arc statistics file.
 */
int
cmdProfileInterval(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/single"));
    const int top = static_cast<int>(*parseInt(opts.get("top", "10")));

    CodeImage image = buildCfg(src.program);
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(image, profile, {});
        }
        image = applyEnlargement(buildCfg(src.program), plan, nullptr);
    }

    EngineOptions eopts;
    eopts.config = config;
    if (opts.has("ras"))
        eopts.predictor.rasDepth =
            static_cast<int>(*parseInt(opts.get("ras")));
    if (opts.has("window"))
        eopts.windowOverride =
            static_cast<int>(*parseInt(opts.get("window")));
    if (opts.has("conservative"))
        eopts.conservativeLoads = true;

    std::vector<std::int32_t> trace;
    if (config.branch == BranchMode::Perfect) {
        SimOS os;
        src.prepare(os, InputSet::Measure, opts);
        AtomicRunOptions aopts;
        aopts.recordTrace = true;
        trace = runAtomic(image, os, aopts).blockTrace;
        eopts.perfectTrace = &trace;
    }

    CodeImage translated = image;
    {
        // Replicate the harness: FGP_STATIC_DISAMBIG feeds proven
        // no-alias facts to the static scheduler and FGP_ORACLE_SCHED
        // adopts proven-shorter oracle schedules, so profiled runs see
        // the same schedules the sweeps measure.
        TranslateOptions txopts;
        if (analyze::staticDisambigEnabled())
            txopts.disambigHook = analyze::disambigSchedulingHook();
        if (analyze::oracleSchedEnabled())
            txopts.oracleHook = analyze::oracleAdoptionHook();
        translate(translated, config, txopts);
    }

    // Static ceilings for the measured-vs-bound comparison.
    const analyze::ImageAnalysis analysis =
        analyze::analyzeImage(translated, config.memory.hitLatency);
    std::vector<double> bounds(translated.blocks.size(), 0.0);
    for (const analyze::BlockBounds &b : analysis.blocks)
        if (b.block >= 0 &&
            static_cast<std::size_t>(b.block) < bounds.size())
            bounds[static_cast<std::size_t>(b.block)] = b.packedBound;

    analyze::DisambigImage disambig_facts;
    const bool disambig_fast = analyze::staticDisambigEnabled();
    const bool disambig_xcheck = analyze::disambigXcheckEnabled();
    if (disambig_fast || disambig_xcheck) {
        disambig_facts = analyze::disambigImage(translated);
        eopts.disambig = &disambig_facts;
        eopts.disambigFastPath = disambig_fast;
        eopts.disambigXcheck = disambig_xcheck;
    }

    profile::IntervalProfiler profiler;
    if (opts.has("interval"))
        profiler.setWindowCycles(
            static_cast<std::uint64_t>(*parseInt(opts.get("interval"))));
    eopts.profile = &profiler;

    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const EngineResult r = simulate(translated, os, eopts);

    const profile::CritPath cp = profile::extractCriticalPath(
        profiler.retiredLog(), r.cycles, translated.blocks.size());

    const auto &windows = profiler.windows();
    const std::uint64_t width =
        static_cast<std::uint64_t>(profiler.issueWidth());

    // Blocks ranked by critical-path residency.
    std::vector<std::size_t> ranked;
    for (std::size_t i = 0; i < cp.blockCycles.size(); ++i)
        if (cp.blockCycles[i])
            ranked.push_back(i);
    std::sort(ranked.begin(), ranked.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cp.blockCycles[a] != cp.blockCycles[b])
                      return cp.blockCycles[a] > cp.blockCycles[b];
                  return a < b;
              });
    const std::size_t rankedTotal = ranked.size();
    if (ranked.size() > static_cast<std::size_t>(std::max(top, 0)))
        ranked.resize(static_cast<std::size_t>(std::max(top, 0)));

    struct Cause
    {
        const char *name;
        std::uint64_t cycles;
    };
    std::vector<Cause> causes;
    for (std::size_t c = 0; c < profile::kCritCauseCount; ++c)
        causes.push_back(
            {profile::critCauseName(static_cast<profile::CritCause>(c)),
             cp.causeCycles[c]});

    if (opts.has("chrome")) {
        std::ofstream chrome(opts.get("chrome"), std::ios::binary);
        if (!chrome)
            fgp_fatal("cannot write '", opts.get("chrome"), "'");
        obs::ChromeTraceSink sink(chrome);
        for (const profile::WindowSample &win : windows) {
            const double slots =
                static_cast<double>(win.cycles * width);
            sink.emitCounter(win.startCycle, "ipc", win.ipc());
            sink.emitCounter(win.startCycle, "ready_mean",
                             win.cycles
                                 ? static_cast<double>(win.readySum) /
                                       static_cast<double>(win.cycles)
                                 : 0.0);
            sink.emitCounter(win.startCycle, "live_max",
                             static_cast<double>(win.liveMax));
            const Cause slotCauses[] = {
                {"stall.fetch_redirect", win.stalls.fetchRedirectSlots},
                {"stall.fetch_idle", win.stalls.fetchIdleSlots},
                {"stall.window_full", win.stalls.windowFullSlots},
                {"stall.short_word", win.stalls.shortWordSlots},
                {"stall.operand_wait",
                 win.stalls.operandWaitNodeCycles},
                {"stall.memory_wait", win.stalls.memoryWaitNodeCycles},
                {"stall.fu_busy", win.stalls.fuBusyNodeCycles}};
            for (const Cause &c : slotCauses)
                sink.emitCounter(win.startCycle, c.name,
                                 slots > 0.0
                                     ? static_cast<double>(c.cycles) /
                                           slots
                                     : 0.0);
        }
        sink.onRunEnd();
    }

    if (opts.has("json")) {
        const auto line = [](metrics::JsonLineWriter &w) {
            std::cout << w.str() << "\n";
        };
        {
            metrics::JsonLineWriter w;
            w.field("schema", "fgpsim-profile-v1");
            w.field("kind", "profile");
            w.field("workload", opts.source);
            w.field("config", config.name());
            w.field("window_cycles", profiler.windowCycles());
            w.field("issue_width", width);
            w.field("cycles", r.cycles);
            w.field("issued_nodes", r.issuedNodes);
            w.field("retired_nodes", r.retiredNodes);
            w.field("nodes_per_cycle", r.nodesPerCycle());
            w.field("static_ipc_bound", analysis.staticIpcBound);
            w.field("crit_path_cycles", cp.pathCycles);
            w.field("crit_path_nodes", cp.pathNodes);
            w.field("crit_path_implied_ipc", cp.impliedIpc());
            w.field("windows",
                    static_cast<std::uint64_t>(windows.size()));
            w.field("sched_hash",
                    format("0x%016llx", static_cast<unsigned long long>(
                                            profiler.schedHash())));
            line(w);
        }
        for (const profile::WindowSample &win : windows) {
            metrics::JsonLineWriter w;
            w.field("kind", "window");
            w.field("index", win.index);
            w.field("start_cycle", win.startCycle);
            w.field("cycles", win.cycles);
            w.field("ipc", win.ipc());
            w.field("issued_nodes", win.issuedNodes);
            w.field("retired_nodes", win.retiredNodes);
            w.field("executed_nodes", win.executedNodes);
            w.field("committed_blocks", win.committedBlocks);
            w.field("squashed_blocks", win.squashedBlocks);
            w.field("mispredicts", win.mispredicts);
            w.field("faults_fired", win.faultsFired);
            w.field("stall_fetch_redirect",
                    win.stalls.fetchRedirectSlots);
            w.field("stall_fetch_idle", win.stalls.fetchIdleSlots);
            w.field("stall_window_full", win.stalls.windowFullSlots);
            w.field("stall_short_word", win.stalls.shortWordSlots);
            w.field("stall_drain", win.stalls.drainSlots);
            w.field("stall_operand_wait",
                    win.stalls.operandWaitNodeCycles);
            w.field("stall_memory_wait",
                    win.stalls.memoryWaitNodeCycles);
            w.field("stall_serialize_wait",
                    win.stalls.serializeWaitNodeCycles);
            w.field("stall_fu_busy", win.stalls.fuBusyNodeCycles);
            w.field("ready_mean",
                    win.cycles ? static_cast<double>(win.readySum) /
                                     static_cast<double>(win.cycles)
                               : 0.0);
            w.field("ready_max", win.readyMax);
            w.field("live_max", win.liveMax);
            w.field("store_queue_max", win.storeQueueMax);
            w.field("write_buf_max", win.writeBufMax);
            w.field("sched_hash",
                    format("0x%016llx", static_cast<unsigned long long>(
                                            win.schedHash)));
            line(w);
        }
        for (const profile::WindowSample &win : windows) {
            const auto &residency = profiler.residency();
            for (std::uint32_t i = 0; i < win.residencyCount; ++i) {
                const profile::ResidencyEntry &entry =
                    residency[win.residencyOffset + i];
                metrics::JsonLineWriter w;
                w.field("kind", "residency");
                w.field("window", win.index);
                w.field("block",
                        static_cast<std::uint64_t>(entry.block));
                w.field("retired_nodes", entry.retiredNodes);
                line(w);
            }
        }
        for (const Cause &c : causes) {
            metrics::JsonLineWriter w;
            w.field("kind", "critpath");
            w.field("cause", c.name);
            w.field("cycles", c.cycles);
            w.field("share", cp.pathCycles
                                 ? static_cast<double>(c.cycles) /
                                       static_cast<double>(cp.pathCycles)
                                 : 0.0);
            line(w);
        }
        for (std::size_t i : ranked) {
            metrics::JsonLineWriter w;
            w.field("kind", "critblock");
            w.field("block", static_cast<std::uint64_t>(i));
            w.field("entry_pc",
                    static_cast<int>(r.blockStats[i].entryPc));
            w.field("path_cycles", cp.blockCycles[i]);
            w.field("path_share",
                    cp.pathCycles
                        ? static_cast<double>(cp.blockCycles[i]) /
                              static_cast<double>(cp.pathCycles)
                        : 0.0);
            w.field("retired_nodes", r.blockStats[i].retiredNodes);
            w.field("ipc_bound", bounds[i]);
            line(w);
        }
        // Full joint block x cause attribution — every nonzero cell,
        // not top-N, so the critedge records sum exactly to the path
        // length (the differential folded-stack export's raw material).
        for (std::size_t i = 0; i < cp.blockCauses.size(); ++i) {
            for (std::size_t c = 0; c < profile::kCritCauseCount; ++c) {
                if (!cp.blockCauses[i][c])
                    continue;
                metrics::JsonLineWriter w;
                w.field("kind", "critedge");
                w.field("block", static_cast<std::uint64_t>(i));
                w.field("entry_pc",
                        static_cast<int>(r.blockStats[i].entryPc));
                w.field("cause",
                        profile::critCauseName(
                            static_cast<profile::CritCause>(c)));
                w.field("cycles", cp.blockCauses[i][c]);
                line(w);
            }
        }
        if (opts.has("retired")) {
            // Stream the retired-node log itself so `fgpsim diff` can
            // pinpoint the exact first divergent node, not just the
            // window. Each node carries its window index (windows are
            // closed in retirement order, so a cumulative count walk
            // assigns them exactly).
            const auto &log = profiler.retiredLog();
            std::size_t win_idx = 0;
            std::uint64_t win_end =
                windows.empty() ? log.size() : windows[0].retiredNodes;
            for (std::size_t i = 0; i < log.size(); ++i) {
                while (win_idx + 1 < windows.size() &&
                       static_cast<std::uint64_t>(i) >= win_end) {
                    ++win_idx;
                    win_end += windows[win_idx].retiredNodes;
                }
                const profile::RetiredNode &n = log[i];
                metrics::JsonLineWriter w;
                w.field("kind", "retired");
                w.field("seq", n.seq);
                w.field("parent_seq", n.parentSeq);
                w.field("issue_cycle",
                        static_cast<std::uint64_t>(n.issueCycle));
                w.field("ready_cycle",
                        static_cast<std::uint64_t>(n.readyCycle));
                w.field("sched_cycle",
                        static_cast<std::uint64_t>(n.schedCycle));
                w.field("complete_cycle",
                        static_cast<std::uint64_t>(n.completeCycle));
                w.field("block", static_cast<std::uint64_t>(n.block));
                w.field("edge", profile::edgeKindName(n.edge));
                w.field("window",
                        static_cast<std::uint64_t>(win_idx));
                line(w);
            }
        }
        return r.exitCode;
    }

    // Human-readable report.
    std::cout << "== fgpsim profile: " << opts.source << " on "
              << config.name() << " ==\n\n"
              << "cycles             " << r.cycles << "\n"
              << "retired nodes      " << r.retiredNodes << "\n"
              << "nodes/cycle        " << format("%.3f", r.nodesPerCycle())
              << " (static bound " << format("%.3f", analysis.staticIpcBound)
              << ")\n"
              << "window cycles      " << profiler.windowCycles() << " ("
              << windows.size() << " windows)\n"
              << "critical path      " << cp.pathCycles << " cycles, "
              << cp.pathNodes << " nodes (implied IPC "
              << format("%.3f", cp.impliedIpc()) << ")\n";

    std::cout << "\nWindows:\n";
    Table wt({"idx", "start", "ipc", "retired", "squash", "mispred",
              "top stall", "ready~", "live^"});
    for (const profile::WindowSample &win : windows) {
        const Cause winCauses[] = {
            {"fetch_redirect", win.stalls.fetchRedirectSlots},
            {"fetch_idle", win.stalls.fetchIdleSlots},
            {"window_full", win.stalls.windowFullSlots},
            {"short_word", win.stalls.shortWordSlots},
            {"drain", win.stalls.drainSlots}};
        const Cause *topCause = &winCauses[0];
        for (const Cause &c : winCauses)
            if (c.cycles > topCause->cycles)
                topCause = &c;
        wt.addRow({std::to_string(win.index),
                   std::to_string(win.startCycle),
                   format("%.3f", win.ipc()),
                   std::to_string(win.retiredNodes),
                   std::to_string(win.squashedBlocks),
                   std::to_string(win.mispredicts),
                   topCause->cycles ? topCause->name : "-",
                   format("%.1f",
                          win.cycles
                              ? static_cast<double>(win.readySum) /
                                    static_cast<double>(win.cycles)
                              : 0.0),
                   std::to_string(win.liveMax)});
    }
    wt.print(std::cout);

    std::cout << "\nCritical path (" << cp.pathCycles << " of " << r.cycles
              << " cycles):\n";
    Table ct({"cause", "cycles", "share"});
    for (const Cause &c : causes)
        ct.addRow({c.name, std::to_string(c.cycles),
                   cp.pathCycles
                       ? format("%.1f%%",
                                100.0 * static_cast<double>(c.cycles) /
                                    static_cast<double>(cp.pathCycles))
                       : "-"});
    ct.print(std::cout);

    std::cout << "\nTop " << ranked.size()
              << " static blocks on the critical path (" << rankedTotal
              << " contributing):\n";
    Table bt({"block", "entry_pc", "path_cycles", "share", "ret_nodes",
              "ipc_bound"});
    for (std::size_t i : ranked) {
        bt.addRow({std::to_string(i),
                   std::to_string(r.blockStats[i].entryPc),
                   std::to_string(cp.blockCycles[i]),
                   format("%.1f%%",
                          100.0 * static_cast<double>(cp.blockCycles[i]) /
                              static_cast<double>(cp.pathCycles)),
                   std::to_string(r.blockStats[i].retiredNodes),
                   format("%.3f", bounds[i])});
    }
    bt.print(std::cout);
    return r.exitCode;
}

int
cmdProfile(const Options &opts)
{
    // Any interval-profiler flag switches to the simulating profiler;
    // the flagless form stays the legacy branch-arc statistics file
    // consumed by `fgpsim bbe`.
    if (opts.has("config") || opts.has("interval") || opts.has("json") ||
        opts.has("chrome") || opts.has("top")) {
        return cmdProfileInterval(opts);
    }

    const Source src = resolveSource(opts);
    SimOS os;
    src.prepare(os, InputSet::Profile, opts);
    Profile profile;
    InterpOptions iopts;
    iopts.profile = &profile;
    const RunResult r = interpret(src.program, os, iopts);

    const std::string text = serializeProfile(profile);
    if (opts.has("out")) {
        writeFile(opts.get("out"), text);
        std::cerr << "profiled " << r.dynamicNodes << " nodes, "
                  << profile.arcs.size() << " branches -> "
                  << opts.get("out") << "\n";
    } else {
        std::cout << text;
    }
    return 0;
}

int
cmdBbe(const Options &opts)
{
    if (!opts.has("profile"))
        fgp_fatal("bbe needs --profile FILE (from 'fgpsim profile')");
    const Source src = resolveSource(opts);
    const Profile profile = parseProfile(readFile(opts.get("profile")));

    EnlargeOptions eopts;
    if (opts.has("max-chain"))
        eopts.maxChainLen =
            static_cast<int>(*parseInt(opts.get("max-chain")));
    if (opts.has("ratio"))
        eopts.minArcRatio = std::atof(opts.get("ratio").c_str());
    if (opts.has("min-count"))
        eopts.minArcCount =
            static_cast<std::uint64_t>(*parseInt(opts.get("min-count")));

    const CodeImage single = buildCfg(src.program);
    const EnlargePlan plan = planEnlargement(single, profile, eopts);

    const std::string text = serializePlan(plan);
    if (opts.has("out")) {
        writeFile(opts.get("out"), text);
        std::cerr << "planned " << plan.chains.size() << " chains -> "
                  << opts.get("out") << "\n";
    } else {
        std::cout << text;
    }
    return 0;
}

enum class SimMode { Stats, Trace, Report };

int
cmdSim(const Options &opts, SimMode mode = SimMode::Stats)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/single"));

    CodeImage image = buildCfg(src.program);
    EnlargeStats estats;
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(image, profile, {});
        }
        image = applyEnlargement(buildCfg(src.program), plan, &estats);
    }

    EngineOptions eopts;
    eopts.config = config;
    if (opts.has("ras"))
        eopts.predictor.rasDepth =
            static_cast<int>(*parseInt(opts.get("ras")));
    if (opts.has("window"))
        eopts.windowOverride =
            static_cast<int>(*parseInt(opts.get("window")));
    if (opts.has("conservative"))
        eopts.conservativeLoads = true;

    std::vector<std::int32_t> trace;
    if (config.branch == BranchMode::Perfect) {
        SimOS os;
        src.prepare(os, InputSet::Measure, opts);
        AtomicRunOptions aopts;
        aopts.recordTrace = true;
        trace = runAtomic(image, os, aopts).blockTrace;
        eopts.perfectTrace = &trace;
    }

    // The image must be translated for this machine configuration.
    CodeImage translated = image;
    translate(translated, config);

    // Observability sinks. Streams must outlive simulate(); the bus does
    // not own the sinks.
    obs::EventBus bus;
    std::ofstream traceFile, eventsFile, chromeFile;
    std::optional<obs::TextTraceSink> textSink;
    std::optional<obs::JsonlSink> jsonlSink;
    std::optional<obs::ChromeTraceSink> chromeSink;
    const bool traceToFile = mode == SimMode::Trace && opts.has("out");
    if (mode == SimMode::Trace) {
        std::ostream *dst = &std::cout;
        if (traceToFile) {
            traceFile.open(opts.get("out"), std::ios::binary);
            if (!traceFile)
                fgp_fatal("cannot write '", opts.get("out"), "'");
            dst = &traceFile;
        }
        textSink.emplace(*dst);
        bus.addSink(&*textSink);
    }
    if (opts.has("events")) {
        eventsFile.open(opts.get("events"), std::ios::binary);
        if (!eventsFile)
            fgp_fatal("cannot write '", opts.get("events"), "'");
        jsonlSink.emplace(eventsFile);
        bus.addSink(&*jsonlSink);
    }
    if (opts.has("chrome")) {
        chromeFile.open(opts.get("chrome"), std::ios::binary);
        if (!chromeFile)
            fgp_fatal("cannot write '", opts.get("chrome"), "'");
        chromeSink.emplace(chromeFile);
        bus.addSink(&*chromeSink);
    }
    if (bus.enabled())
        eopts.bus = &bus;

    SimOS os;
    src.prepare(os, InputSet::Measure, opts);
    const EngineResult r = simulate(translated, os, eopts);

    const obs::ReportMeta meta{opts.source, config.name()};
    const bool json = opts.has("json");
    if (mode == SimMode::Report) {
        if (json) {
            obs::writeResultJson(std::cout, r, meta);
        } else {
            // Put each block's static ceiling (analyzer packed bound)
            // next to its measured stats in the block table.
            const analyze::ImageAnalysis analysis =
                analyze::analyzeImage(translated, config.memory.hitLatency);
            std::vector<double> bounds(translated.blocks.size(), 0.0);
            for (const analyze::BlockBounds &b : analysis.blocks)
                if (b.block >= 0 &&
                    static_cast<std::size_t>(b.block) < bounds.size())
                    bounds[static_cast<std::size_t>(b.block)] =
                        b.packedBound;
            obs::printReport(std::cout, r, meta,
                             static_cast<int>(*parseInt(
                                 opts.get("top", "10"))),
                             &bounds);
        }
        return r.exitCode;
    }
    if (mode == SimMode::Stats && json)
        obs::writeResultJson(std::cout, r, meta);
    else if (mode == SimMode::Stats || traceToFile)
        std::cout << os.stdoutText();
    std::cerr << "config               " << config.name() << "\n"
              << "exit                 " << r.exitCode << "\n"
              << "cycles               " << r.cycles << "\n"
              << "retired nodes        " << r.retiredNodes << "\n"
              << "nodes per cycle      "
              << format("%.3f", r.nodesPerCycle()) << "\n"
              << "executed nodes       " << r.executedNodes << "\n"
              << "redundancy           "
              << format("%.3f", r.redundancy()) << "\n"
              << "mispredicts          " << r.mispredicts << "\n"
              << "faults fired         " << r.faultsFired << "\n";
    if (config.branch != BranchMode::Single)
        std::cerr << "enlargement          " << estats.chains
                  << " chains, mean length "
                  << format("%.2f", estats.meanChainLen) << "\n";
    return r.exitCode;
}

/**
 * Static verification pipeline: build the single image, replay the
 * enlargement (when the config uses enlarged code) and translate, running
 * the structural verifier and the transform-soundness checker at every
 * stage. Exit 0 iff no error-severity diagnostics.
 */
int
cmdCheck(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/enlarged"));

    // The passes' own post-pass assertions would throw on the first bad
    // image; suspend them so every stage reports through one Report.
    verify::ScopedPostPassChecks suspend(false);

    verify::VerifyOptions vopts;
    vopts.strictUninit = opts.has("strict");

    verify::Report report;
    std::size_t blocks_checked = 0;
    std::size_t nodes_checked = 0;
    auto tally = [&](const CodeImage &image) {
        blocks_checked += image.blocks.size();
        nodes_checked += image.totalNodes();
    };

    const CodeImage single = buildCfg(src.program);
    verify::verifyImageInto(single, report, vopts, "single");
    tally(single);

    CodeImage image = single;
    EnlargeStats estats;
    if (config.branch != BranchMode::Single) {
        EnlargePlan plan;
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(single, profile, {});
        }
        image = applyEnlargement(single, plan, &estats);
        verify::verifyImageInto(image, report, vopts, "enlarged");
        verify::checkEnlargementSoundness(single, image, plan, report,
                                          EnlargeOptions{}.maxInstances,
                                          "enlarged");
        tally(image);
    }

    CodeImage translated = image;
    {
        // Replicate the harness: schedule with the no-alias facts (so
        // hoisted loads are not flagged as IMG011) and adopt oracle
        // schedules under FGP_ORACLE_SCHED, so check proves exactly the
        // image the sweeps measure.
        TranslateOptions txopts;
        if (analyze::staticDisambigEnabled())
            txopts.disambigHook = analyze::disambigSchedulingHook();
        if (analyze::oracleSchedEnabled())
            txopts.oracleHook = analyze::oracleAdoptionHook();
        translate(translated, config, txopts);
    }
    verify::VerifyOptions topts = vopts;
    topts.issue = &config.issue;
    if (analyze::staticDisambigEnabled())
        topts.memFacts = analyze::disambigSchedulingHook();
    verify::verifyImageInto(translated, report, topts, "translated");
    verify::checkTranslationSoundness(image, translated, report,
                                      "translated");
    tally(translated);

    const std::size_t errors = report.errorCount();
    const std::size_t warnings = report.warningCount();

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-check-v1");
        json.field("workload", opts.source);
        json.field("config", config.name());
        json.field("strict", vopts.strictUninit);
        json.field("blocks_checked",
                   static_cast<std::uint64_t>(blocks_checked));
        json.field("nodes_checked",
                   static_cast<std::uint64_t>(nodes_checked));
        json.field("errors", static_cast<std::uint64_t>(errors));
        json.field("warnings", static_cast<std::uint64_t>(warnings));
        json.beginArray("diagnostics");
        for (const verify::Diagnostic &diag : report.diagnostics()) {
            json.beginObject();
            json.field("code", verify::codeId(diag.code));
            json.field("name", verify::codeName(diag.code));
            json.field("severity", verify::severityName(diag.severity));
            json.field("stage", diag.stage);
            json.field("block", diag.block);
            json.field("node", diag.node);
            json.field("orig_pc", diag.origPc);
            json.field("message", diag.message);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::cout << "\n";
    } else {
        std::cout << "check " << opts.source << " (" << config.name()
                  << ")\n"
                  << "  blocks checked     " << blocks_checked << "\n"
                  << "  nodes checked      " << nodes_checked << "\n";
        if (config.branch != BranchMode::Single)
            std::cout << "  enlargement        " << estats.chains
                      << " chains, " << estats.companions
                      << " companions, " << estats.faultNodes
                      << " fault nodes\n";
        if (!report.diagnostics().empty())
            std::cout << report.renderText();
        if (errors)
            std::cout << "check FAILED: " << errors << " errors, "
                      << warnings << " warnings\n";
        else
            std::cout << "check passed: 0 errors, " << warnings
                      << " warnings\n";
    }
    return errors ? 1 : 0;
}

/**
 * Static ILP analysis pipeline: build the single image, replay the
 * enlargement (when the config uses enlarged code), translate, and report
 * the analyzer's per-block dependence heights and ILP bounds plus the
 * workload lint's AN findings (docs/ANALYZER.md) — all without running a
 * single simulated cycle. --oracle adds the exact-schedule oracle's
 * certified per-block optimal lengths and the greedy gap.
 *
 * Exit codes: 0 clean; 1 lint errors, or — under --strict — any lint
 * finding at all; 4 oracle bound violation (the soundness sandwich
 * height <= oracle <= greedy broke on some block — an analyzer bug,
 * reported regardless of --strict).
 */
int
cmdAnalyze(const Options &opts)
{
    const Source src = resolveSource(opts);
    const MachineConfig config =
        parseMachineConfig(opts.get("config", "dyn4/8A/enlarged"));
    const int top = static_cast<int>(*parseInt(opts.get("top", "10")));

    const CodeImage single = buildCfg(src.program);
    CodeImage image = single;
    EnlargePlan plan;
    EnlargeStats estats;
    const bool enlarged_mode = config.branch != BranchMode::Single;
    if (enlarged_mode) {
        if (opts.has("plan")) {
            plan = parsePlan(readFile(opts.get("plan")));
        } else {
            // No enlargement file given: profile in-process (set 1).
            SimOS os;
            src.prepare(os, InputSet::Profile, opts);
            Profile profile;
            InterpOptions iopts;
            iopts.profile = &profile;
            interpret(src.program, os, iopts);
            plan = planEnlargement(single, profile, {});
        }
        image = applyEnlargement(single, plan, &estats);
    }

    CodeImage translated = image;
    translate(translated, config);

    // Bounds come from the translated image (words are the packed bound);
    // the lint reads the pre-translation image, where source-level
    // anti-patterns live.
    const int hit_latency = config.memory.hitLatency;
    const analyze::ImageAnalysis analysis =
        analyze::analyzeImage(translated, hit_latency);

    // Exact-schedule oracle (--oracle): certified optimal-length
    // intervals per block plus the greedy gap, with the soundness
    // sandwich height <= oracle <= greedy cross-checked on every block
    // (a violation is an analyzer bug and exits 4).
    const bool oracle_mode = opts.has("oracle");
    analyze::ImageOracle oracle;
    std::size_t bound_violations = 0;
    if (oracle_mode) {
        analyze::OracleOptions oopts;
        if (opts.has("oracle-budget"))
            oopts.maxStates = static_cast<std::size_t>(
                *parseInt(opts.get("oracle-budget")));
        oracle = analyze::oracleImage(translated, config, oopts);
        for (const analyze::BlockOracle &b : oracle.blocks) {
            if (b.nodes == 0)
                continue;
            if (b.height > b.upperBound ||
                b.upperBound > b.greedyLength ||
                b.lowerBound > b.upperBound)
                ++bound_violations;
        }
        // Test-only injection so the exit-4 path stays covered without
        // requiring a genuine soundness bug (tests/cli_test.sh).
        if (const char *env = std::getenv("FGP_ORACLE_XFAIL"))
            bound_violations += env[0] == '1';
    }

    verify::Report report;
    analyze::LintOptions lopts;
    lopts.memHitLatency = hit_latency;
    if (oracle_mode)
        lopts.oracle = &oracle;
    if (enlarged_mode) {
        lopts.single = &single;
        lopts.plan = &plan;
        analyze::lintImage(image, report, lopts, "enlarged");
    } else {
        analyze::lintImage(single, report, lopts, "single");
    }

    std::vector<analyze::ChainAudit> audits;
    if (enlarged_mode)
        audits = analyze::auditChains(single, image, plan, hit_latency);

    // Static memory disambiguation over the translated image: the JSON
    // always carries the aggregate "memory" section plus the per-block
    // ranking; the human table is opt-in via --mem.
    const analyze::DisambigImage disambig =
        analyze::disambigImage(translated);
    std::vector<const analyze::BlockDisambig *> mem_ranked;
    for (const analyze::BlockDisambig &b : disambig.blocks)
        if (!b.pairs.empty())
            mem_ranked.push_back(&b);
    std::sort(mem_ranked.begin(), mem_ranked.end(),
              [](const analyze::BlockDisambig *a,
                 const analyze::BlockDisambig *b) {
                  if (a->mayDensity() != b->mayDensity())
                      return a->mayDensity() > b->mayDensity();
                  if (a->mayAlias != b->mayAlias)
                      return a->mayAlias > b->mayAlias;
                  return a->block < b->block;
              });
    if (static_cast<int>(mem_ranked.size()) > top)
        mem_ranked.resize(static_cast<std::size_t>(top));

    const std::size_t errors = report.errorCount();
    const std::size_t warnings = report.warningCount();

    // Blocks ranked by dependence height for the table / JSON array.
    std::vector<const analyze::BlockBounds *> ranked;
    ranked.reserve(analysis.blocks.size());
    for (const analyze::BlockBounds &b : analysis.blocks)
        ranked.push_back(&b);
    std::sort(ranked.begin(), ranked.end(),
              [](const analyze::BlockBounds *a,
                 const analyze::BlockBounds *b) {
                  if (a->critPath != b->critPath)
                      return a->critPath > b->critPath;
                  return a->block < b->block;
              });
    if (static_cast<int>(ranked.size()) > top)
        ranked.resize(static_cast<std::size_t>(top));

    // Human oracle table: widest proven gaps first, budget-exhausted
    // blocks next (their gap is unproven), ties by block id.
    std::vector<const analyze::BlockOracle *> oracle_ranked;
    for (const analyze::BlockOracle &b : oracle.blocks)
        if (b.nodes > 0 && (b.gap() > 0 || !b.exact))
            oracle_ranked.push_back(&b);
    std::sort(oracle_ranked.begin(), oracle_ranked.end(),
              [](const analyze::BlockOracle *a,
                 const analyze::BlockOracle *b) {
                  if (a->gap() != b->gap())
                      return a->gap() > b->gap();
                  if (a->exact != b->exact)
                      return !a->exact; // unproven (exhausted) first
                  return a->block < b->block;
              });
    if (static_cast<int>(oracle_ranked.size()) > top)
        oracle_ranked.resize(static_cast<std::size_t>(top));

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-analyze-v1");
        json.field("workload", opts.source);
        json.field("config", config.name());
        json.field("mem_hit_latency", hit_latency);
        json.field("blocks_analyzed",
                   static_cast<std::uint64_t>(analysis.blocks.size()));
        json.field("nodes_analyzed",
                   static_cast<std::uint64_t>(analysis.totalNodes));
        json.field("enlarged_blocks",
                   static_cast<std::uint64_t>(analysis.enlargedBlocks));
        json.field("companion_blocks",
                   static_cast<std::uint64_t>(analysis.companionBlocks));
        json.field("crit_path_max", analysis.critPathMax);
        json.field("mean_height", analysis.meanHeight);
        json.field("dataflow_bound", analysis.dataflowBound);
        json.field("static_ipc_bound", analysis.staticIpcBound);
        json.field("errors", static_cast<std::uint64_t>(errors));
        json.field("warnings", static_cast<std::uint64_t>(warnings));
        json.beginArray("resource_bounds");
        for (const analyze::ResourceBound &rb : analysis.resourceBounds) {
            json.beginObject();
            json.field("model", rb.issueIndex);
            json.field("width", rb.width);
            json.field("nodes_per_cycle", rb.bound);
            json.endObject();
        }
        json.endArray();
        json.beginArray("blocks");
        for (const analyze::BlockBounds *b : ranked) {
            json.beginObject();
            json.field("block", b->block);
            json.field("entry_pc", b->entryPc);
            json.field("block_nodes", static_cast<std::uint64_t>(b->nodes));
            json.field("block_words", static_cast<std::uint64_t>(b->words));
            json.field("height", b->critPath);
            json.field("residual_height", b->critPathResidual);
            json.field("ipc_dataflow", b->dataflowBound);
            json.field("ipc_packed", b->packedBound);
            json.endObject();
        }
        json.endArray();
        json.beginArray("chains");
        for (const analyze::ChainAudit &audit : audits) {
            json.beginObject();
            json.field("chain", static_cast<std::uint64_t>(audit.chainIndex));
            json.field("chain_entry_pc", audit.entryPc);
            json.field("members", static_cast<std::uint64_t>(audit.members));
            json.field("chain_nodes", static_cast<std::uint64_t>(audit.nodes));
            json.field("member_height_sum", audit.memberHeightSum);
            json.field("fused_height", audit.fusedHeight);
            json.field("height_reduction", audit.heightReduction());
            json.endObject();
        }
        json.endArray();
        json.beginObject("memory");
        json.field("pairs",
                   static_cast<std::uint64_t>(disambig.pairsTotal));
        json.field("no_alias",
                   static_cast<std::uint64_t>(disambig.noAliasTotal));
        json.field("must_alias",
                   static_cast<std::uint64_t>(disambig.mustAliasTotal));
        json.field("may_alias",
                   static_cast<std::uint64_t>(disambig.mayAliasTotal));
        json.field("independent_loads",
                   static_cast<std::uint64_t>(
                       disambig.independentLoadsTotal));
        json.field("enlarged_no_alias",
                   static_cast<std::uint64_t>(disambig.enlargedNoAlias));
        json.endObject();
        json.beginArray("mem_blocks");
        for (const analyze::BlockDisambig *b : mem_ranked) {
            json.beginObject();
            json.field("block", b->block);
            json.field("entry_pc", b->entryPc);
            json.field("loads", static_cast<std::uint64_t>(b->loads));
            json.field("stores", static_cast<std::uint64_t>(b->stores));
            json.field("pairs",
                       static_cast<std::uint64_t>(b->pairs.size()));
            json.field("no_alias", static_cast<std::uint64_t>(b->noAlias));
            json.field("must_alias",
                       static_cast<std::uint64_t>(b->mustAlias));
            json.field("may_alias",
                       static_cast<std::uint64_t>(b->mayAlias));
            json.field("independent_loads",
                       static_cast<std::uint64_t>(b->independentLoads));
            json.field("may_density", b->mayDensity());
            json.endObject();
        }
        json.endArray();
        if (oracle_mode) {
            json.beginObject("oracle");
            json.field("blocks_exact",
                       static_cast<std::uint64_t>(oracle.exactBlocks));
            json.field("blocks_exhausted",
                       static_cast<std::uint64_t>(
                           oracle.exhaustedBlocks));
            json.field("greedy_cycles",
                       static_cast<std::int64_t>(oracle.greedyCycles));
            json.field("oracle_cycles",
                       static_cast<std::int64_t>(oracle.oracleCycles));
            json.field("max_gap", oracle.maxGap);
            json.field("bound_violations",
                       static_cast<std::uint64_t>(bound_violations));
            json.endObject();
            // All blocks, not top-N: check_bench.sh --validate-oracle
            // recomputes the sandwich invariant over every entry.
            json.beginArray("oracle_blocks");
            for (const analyze::BlockOracle &b : oracle.blocks) {
                json.beginObject();
                json.field("block", b.block);
                json.field("entry_pc", b.entryPc);
                json.field("block_nodes",
                           static_cast<std::uint64_t>(b.nodes));
                json.field("height", b.height);
                json.field("greedy_length", b.greedyLength);
                json.field("lower_bound", b.lowerBound);
                json.field("upper_bound", b.upperBound);
                json.field("exact", static_cast<std::uint64_t>(b.exact));
                json.field("states",
                           static_cast<std::uint64_t>(b.statesExplored));
                json.field("gap", b.gap());
                json.endObject();
            }
            json.endArray();
        }
        json.beginArray("diagnostics");
        for (const verify::Diagnostic &diag : report.diagnostics()) {
            json.beginObject();
            json.field("code", verify::codeId(diag.code));
            json.field("name", verify::codeName(diag.code));
            json.field("severity", verify::severityName(diag.severity));
            json.field("stage", diag.stage);
            json.field("block", diag.block);
            json.field("node", diag.node);
            json.field("orig_pc", diag.origPc);
            json.field("message", diag.message);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        std::cout << "\n";
    } else {
        std::cout << "analyze " << opts.source << " (" << config.name()
                  << ")\n"
                  << "  blocks analyzed    " << analysis.blocks.size()
                  << " (" << analysis.enlargedBlocks << " enlarged, "
                  << analysis.companionBlocks << " companions)\n"
                  << "  nodes analyzed     " << analysis.totalNodes << "\n"
                  << "  dependence height  max " << analysis.critPathMax
                  << ", mean " << format("%.2f", analysis.meanHeight)
                  << "\n"
                  << "  dataflow bound     "
                  << format("%.3f", analysis.dataflowBound)
                  << " nodes/cycle\n"
                  << "  static IPC bound   "
                  << format("%.3f", analysis.staticIpcBound)
                  << " nodes/cycle (sound for any run)\n"
                  << "  resource bounds\n";
        for (const analyze::ResourceBound &rb : analysis.resourceBounds)
            std::cout << format("    model %d (width %2d)  %.3f\n",
                                rb.issueIndex, rb.width, rb.bound);
        if (!ranked.empty()) {
            std::cout << "  tallest blocks       nodes words height resid"
                         "  ipc\n";
            for (const analyze::BlockBounds *b : ranked)
                std::cout << format("    block %-4d pc %-5d %5zu %5zu "
                                    "%6d %5d %5.2f\n",
                                    b->block, b->entryPc, b->nodes,
                                    b->words, b->critPath,
                                    b->critPathResidual, b->packedBound);
        }
        if (!audits.empty()) {
            std::cout << "  chain audit (by predicted height reduction)\n";
            for (const analyze::ChainAudit &audit : audits)
                std::cout << format("    chain %-3zu pc %-5d %zu blocks: "
                                    "height %d -> %d (%+d)\n",
                                    audit.chainIndex, audit.entryPc,
                                    audit.members, audit.memberHeightSum,
                                    audit.fusedHeight,
                                    -audit.heightReduction());
        }
        if (oracle_mode) {
            std::cout << "  exact-schedule oracle  "
                      << oracle.exactBlocks << " blocks exact, "
                      << oracle.exhaustedBlocks
                      << " budget-exhausted; greedy "
                      << oracle.greedyCycles << " cycles vs oracle "
                      << oracle.oracleCycles << " (max gap "
                      << oracle.maxGap << ")\n";
            if (!oracle_ranked.empty()) {
                std::cout << "  widest schedule gaps   nodes height "
                             "greedy bound   gap\n";
                for (const analyze::BlockOracle *b : oracle_ranked)
                    std::cout << format(
                        "    block %-4d pc %-5d %5zu %6d %6d %s %5d%s\n",
                        b->block, b->entryPc, b->nodes, b->height,
                        b->greedyLength,
                        b->exact
                            ? format("%5d", b->upperBound).c_str()
                            : format("%2d-%-2d", b->lowerBound,
                                     b->upperBound)
                                  .c_str(),
                        b->gap(), b->exact ? "" : " (budget out)");
            }
            if (bound_violations)
                std::cout << "  ORACLE BOUND VIOLATION: "
                          << bound_violations
                          << " blocks break height <= oracle <= greedy\n";
        }
        if (opts.has("mem")) {
            std::cout << "  memory disambiguation  "
                      << disambig.pairsTotal << " pairs: "
                      << disambig.noAliasTotal << " no-alias, "
                      << disambig.mustAliasTotal << " must-alias, "
                      << disambig.mayAliasTotal << " may-alias; "
                      << disambig.independentLoadsTotal
                      << " independent loads\n";
            if (!mem_ranked.empty()) {
                std::cout << "  densest may-alias blocks  ld  st pairs  "
                             "no must  may density\n";
                for (const analyze::BlockDisambig *b : mem_ranked)
                    std::cout << format(
                        "    block %-4d pc %-5d %3zu %3zu %5zu %3zu "
                        "%4zu %4zu %7.2f\n",
                        b->block, b->entryPc, b->loads, b->stores,
                        b->pairs.size(), b->noAlias, b->mustAlias,
                        b->mayAlias, b->mayDensity());
            }
        }
        if (!report.diagnostics().empty())
            std::cout << report.renderText();
        std::cout << "analyze: " << errors << " errors, " << warnings
                  << " warnings\n";
    }
    // Distinct exit codes (mirroring compare's exit-3 convention for a
    // separate failure class): 4 = oracle bound violation (soundness
    // bug, reported regardless of --strict); 1 = lint errors or, under
    // --strict, any lint finding at all.
    if (bound_violations)
        return 4;
    if (errors)
        return 1;
    return opts.has("strict") && !report.diagnostics().empty() ? 1 : 0;
}

/** "10%" or "10" -> 10.0 (percent). */
double
parsePercent(const std::string &text, const char *flag)
{
    std::string digits = text;
    if (!digits.empty() && digits.back() == '%')
        digits.pop_back();
    char *end = nullptr;
    const double value = std::strtod(digits.c_str(), &end);
    if (digits.empty() || !end || *end != '\0' || value < 0.0)
        fgp_fatal("--", flag, " needs a non-negative percentage, got '",
                  text, "'");
    return value;
}

/** Render one signed delta with its percent-of-A movement. */
std::string
deltaText(std::int64_t delta, std::uint64_t base)
{
    if (!base)
        return format("%+lld", static_cast<long long>(delta));
    return format("%+lld (%+.2f%%)", static_cast<long long>(delta),
                  100.0 * static_cast<double>(delta) /
                      static_cast<double>(base));
}

void
printCellDiff(const diff::CellDiff &cell, int top)
{
    std::cout << "\n== " << cell.workload << " " << cell.config
              << " ==\n"
              << format("  cycles       %llu -> %llu  %s\n",
                        static_cast<unsigned long long>(cell.cyclesA),
                        static_cast<unsigned long long>(cell.cyclesB),
                        deltaText(static_cast<std::int64_t>(cell.cyclesB) -
                                      static_cast<std::int64_t>(
                                          cell.cyclesA),
                                  cell.cyclesA)
                            .c_str())
              << format("  IPC          %.4f -> %.4f  (%+.2f%%)\n",
                        cell.ipcA, cell.ipcB,
                        cell.ipcA > 0.0
                            ? (cell.ipcB - cell.ipcA) / cell.ipcA * 100.0
                            : 0.0)
              << format("  crit path    %llu -> %llu cycles\n",
                        static_cast<unsigned long long>(cell.critPathA),
                        static_cast<unsigned long long>(cell.critPathB));

    const diff::Divergence &div = cell.divergence;
    switch (div.level) {
      case diff::Divergence::Level::None:
        std::cout << "  schedule     no fingerprints in the streams\n";
        break;
      case diff::Divergence::Level::Identical:
        std::cout << "  schedule     identical (fingerprints match)\n";
        break;
      case diff::Divergence::Level::Run:
        std::cout << format("  schedule     DIVERGED (run hashes %s vs "
                            "%s; no per-window data)\n",
                            diff::hashText(div.hashA).c_str(),
                            diff::hashText(div.hashB).c_str());
        break;
      case diff::Divergence::Level::Window:
        std::cout << format(
            "  schedule     DIVERGED at window %llu%s\n",
            static_cast<unsigned long long>(div.firstWindow),
            div.truncated ? " (one stream ends there)" : "");
        break;
      case diff::Divergence::Level::Node:
        if (div.field == "log_length") {
            std::cout << format(
                "  schedule     DIVERGED at window %llu: retired logs "
                "share a prefix, lengths %llu vs %llu (first extra "
                "seq=%llu)\n",
                static_cast<unsigned long long>(div.firstWindow),
                static_cast<unsigned long long>(div.valueA),
                static_cast<unsigned long long>(div.valueB),
                static_cast<unsigned long long>(div.seq));
        } else {
            std::cout << format(
                "  schedule     DIVERGED at window %llu, node seq=%llu "
                "(log index %llu): %s %llu -> %llu\n",
                static_cast<unsigned long long>(div.firstWindow),
                static_cast<unsigned long long>(div.seq),
                static_cast<unsigned long long>(div.logIndex),
                div.field.c_str(),
                static_cast<unsigned long long>(div.valueA),
                static_cast<unsigned long long>(div.valueB));
        }
        break;
    }

    if (!cell.causes.empty()) {
        std::cout << "\n  Critical-path causes:\n";
        Table ct({"cause", "A", "B", "delta"});
        for (const diff::CauseDelta &c : cell.causes) {
            if (!c.a && !c.b)
                continue;
            ct.addRow({c.cause, std::to_string(c.a), std::to_string(c.b),
                       deltaText(c.delta(), c.a)});
        }
        ct.print(std::cout);
    }

    if (!cell.blocks.empty()) {
        const std::size_t limit = std::min(
            cell.blocks.size(),
            static_cast<std::size_t>(std::max(top, 0)));
        std::cout << "\n  Blocks that paid (top " << limit << " of "
                  << cell.blocks.size() << " by |path delta|):\n";
        Table bt({"block", "entry_pc", "A", "B", "delta"});
        for (std::size_t i = 0; i < limit; ++i) {
            const diff::BlockDelta &b = cell.blocks[i];
            bt.addRow({std::to_string(b.block),
                       b.entryPc >= 0 ? std::to_string(b.entryPc) : "-",
                       std::to_string(b.a), std::to_string(b.b),
                       deltaText(b.delta(), b.a)});
        }
        bt.print(std::cout);
    }

    if (!cell.windows.empty()) {
        // Windows that moved most: ranked by |slot delta - issue delta|
        // (the stall movement), which is exactly the sum of the
        // per-cause slot deltas — zero residual by the slot identity.
        std::vector<const diff::WindowDelta *> ranked;
        for (const diff::WindowDelta &w : cell.windows)
            ranked.push_back(&w);
        std::sort(ranked.begin(), ranked.end(),
                  [](const diff::WindowDelta *x,
                     const diff::WindowDelta *y) {
                      const double dx = std::abs(x->ipcB - x->ipcA);
                      const double dy = std::abs(y->ipcB - y->ipcA);
                      if (dx != dy)
                          return dx > dy;
                      return x->index < y->index;
                  });
        const std::size_t limit = std::min(
            ranked.size(), static_cast<std::size_t>(std::max(top, 0)));
        std::cout << "\n  Windows that moved most (top " << limit
                  << " of " << cell.windows.size() << " by |IPC delta|"
                  << (cell.windowsTruncated
                          ? ", window counts differ — common prefix only"
                          : "")
                  << "):\n";
        Table wt({"idx", "ipc A", "ipc B", "d_redirect", "d_idle",
                  "d_winfull", "d_shortword", "d_drain", "d_issued",
                  "resid"});
        for (std::size_t i = 0; i < limit; ++i) {
            const diff::WindowDelta &w = *ranked[i];
            wt.addRow({std::to_string(w.index), format("%.3f", w.ipcA),
                       format("%.3f", w.ipcB),
                       format("%+lld",
                              static_cast<long long>(w.dSlots[0])),
                       format("%+lld",
                              static_cast<long long>(w.dSlots[1])),
                       format("%+lld",
                              static_cast<long long>(w.dSlots[2])),
                       format("%+lld",
                              static_cast<long long>(w.dSlots[3])),
                       format("%+lld",
                              static_cast<long long>(w.dSlots[4])),
                       format("%+lld",
                              static_cast<long long>(
                                  static_cast<std::int64_t>(w.issuedB) -
                                  static_cast<std::int64_t>(w.issuedA))),
                       std::to_string(w.residual())});
        }
        wt.print(std::cout);
    }
}

void
emitDiffJson(const std::string &path_a, const std::string &path_b,
             const diff::DiffResult &result)
{
    const auto line = [](metrics::JsonLineWriter &w) {
        std::cout << w.str() << "\n";
    };
    {
        metrics::JsonLineWriter w;
        w.field("schema", "fgpsim-diff-v1");
        w.field("kind", "diff");
        w.field("a", path_a);
        w.field("b", path_b);
        w.field("cells", static_cast<std::uint64_t>(result.cells.size()));
        w.strings("cells_only_a", result.onlyA);
        w.strings("cells_only_b", result.onlyB);
        line(w);
    }
    for (const diff::CellDiff &cell : result.cells) {
        {
            metrics::JsonLineWriter w;
            w.field("kind", "cell");
            w.field("workload", cell.workload);
            w.field("config", cell.config);
            w.field("cycles_a", cell.cyclesA);
            w.field("cycles_b", cell.cyclesB);
            w.field("retired_a", cell.retiredA);
            w.field("retired_b", cell.retiredB);
            w.field("ipc_a", cell.ipcA);
            w.field("ipc_b", cell.ipcB);
            w.field("crit_path_a", cell.critPathA);
            w.field("crit_path_b", cell.critPathB);
            w.field("windows",
                    static_cast<std::uint64_t>(cell.windows.size()));
            w.field("windows_truncated",
                    static_cast<std::uint64_t>(cell.windowsTruncated));
            line(w);
        }
        for (const diff::WindowDelta &win : cell.windows) {
            metrics::JsonLineWriter w;
            w.field("kind", "wdelta");
            w.field("workload", cell.workload);
            w.field("config", cell.config);
            w.field("index", win.index);
            w.field("cycles_a", win.cyclesA);
            w.field("cycles_b", win.cyclesB);
            w.field("issued_a", win.issuedA);
            w.field("issued_b", win.issuedB);
            w.field("retired_a", win.retiredA);
            w.field("retired_b", win.retiredB);
            w.field("slots_a", win.slotsA);
            w.field("slots_b", win.slotsB);
            for (std::size_t c = 0; c < diff::kSlotCauseCount; ++c)
                w.field(std::string("d_") + diff::kSlotCauseKeys[c],
                        win.dSlots[c]);
            for (std::size_t c = 0; c < diff::kWaitCount; ++c)
                w.field(std::string("d_") + diff::kWaitKeys[c],
                        win.dWaits[c]);
            w.field("d_retired", win.dRetired());
            w.field("ipc_a", win.ipcA);
            w.field("ipc_b", win.ipcB);
            w.field("residual", win.residual());
            line(w);
        }
        for (const diff::CauseDelta &cause : cell.causes) {
            if (!cause.a && !cause.b)
                continue;
            metrics::JsonLineWriter w;
            w.field("kind", "dcause");
            w.field("workload", cell.workload);
            w.field("config", cell.config);
            w.field("cause", cause.cause);
            w.field("cycles_a", cause.a);
            w.field("cycles_b", cause.b);
            w.field("delta", cause.delta());
            line(w);
        }
        for (const diff::BlockDelta &block : cell.blocks) {
            metrics::JsonLineWriter w;
            w.field("kind", "dblock");
            w.field("workload", cell.workload);
            w.field("config", cell.config);
            w.field("block", static_cast<std::uint64_t>(block.block));
            w.field("entry_pc", block.entryPc);
            w.field("path_cycles_a", block.a);
            w.field("path_cycles_b", block.b);
            w.field("delta", block.delta());
            line(w);
        }
        {
            const diff::Divergence &div = cell.divergence;
            metrics::JsonLineWriter w;
            w.field("kind", "divergence");
            w.field("workload", cell.workload);
            w.field("config", cell.config);
            w.field("level", diff::divergenceLevelName(div.level));
            w.field("first_window", div.firstWindow);
            w.field("truncated",
                    static_cast<std::uint64_t>(div.truncated));
            if (div.level == diff::Divergence::Level::Node) {
                w.field("seq", div.seq);
                w.field("log_index", div.logIndex);
                w.field("field", div.field);
                w.field("value_a", div.valueA);
                w.field("value_b", div.valueB);
            }
            if (div.hashA || div.hashB) {
                w.field("hash_a", diff::hashText(div.hashA));
                w.field("hash_b", diff::hashText(div.hashB));
            }
            line(w);
        }
    }
}

void
writeDiffChrome(const std::string &path, const std::string &path_a,
                const std::string &path_b,
                const diff::DiffResult &result)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fgp_fatal("cannot write '", path, "'");
    // A/B overlay: run A is pid 1, run B pid 2, so the trace viewer
    // shows both runs' per-window counter tracks on one timeline.
    obs::ChromeTraceSink sink(out, "A: " + path_a, 1);
    sink.emitProcessName(2, "B: " + path_b);
    const bool multi = result.cells.size() > 1;
    for (const diff::CellDiff &cell : result.cells) {
        const std::string prefix =
            multi ? cell.workload + " " + cell.config + " " : "";
        std::uint64_t start_a = 0, start_b = 0;
        for (const diff::WindowDelta &win : cell.windows) {
            sink.emitCounter(1, start_a, prefix + "ipc", win.ipcA);
            sink.emitCounter(2, start_b, prefix + "ipc", win.ipcB);
            sink.emitCounter(1, start_a, prefix + "retired",
                             static_cast<double>(win.retiredA));
            sink.emitCounter(2, start_b, prefix + "retired",
                             static_cast<double>(win.retiredB));
            start_a += win.cyclesA;
            start_b += win.cyclesB;
        }
    }
    sink.onRunEnd();
}

/**
 * Differential observability: align two fgpsim-profile-v1 streams (or
 * fgpsim-run-v1 manifests) cell by cell and window by window, decompose
 * every IPC delta into the exact stall-slot breakdown, rank the blocks
 * that paid, and pinpoint where the schedules first diverge.
 */
int
cmdDiff(const Options &opts)
{
    if (opts.extra.size() != 1)
        fgp_fatal("diff needs exactly two stream files");
    const std::string path_a = opts.source;
    const std::string path_b = opts.extra[0];
    const int top = static_cast<int>(*parseInt(opts.get("top", "10")));

    const diff::Stream a = diff::loadStreamFile(path_a);
    const diff::Stream b = diff::loadStreamFile(path_b);
    const diff::DiffResult result = diff::diffStreams(a, b);

    if (opts.has("folded")) {
        std::ofstream out(opts.get("folded"), std::ios::binary);
        if (!out)
            fgp_fatal("cannot write '", opts.get("folded"), "'");
        diff::writeFoldedDiff(out, result);
    }
    if (opts.has("chrome"))
        writeDiffChrome(opts.get("chrome"), path_a, path_b, result);

    if (opts.has("json")) {
        emitDiffJson(path_a, path_b, result);
        return 0;
    }

    std::cout << "== fgpsim diff ==\n"
              << "A: " << path_a << " (" << a.schema << ")\n"
              << "B: " << path_b << " (" << b.schema << ")\n"
              << format("cells: %zu compared", result.cells.size());
    if (!result.onlyA.empty() || !result.onlyB.empty())
        std::cout << format(" (%zu only in A, %zu only in B)",
                            result.onlyA.size(), result.onlyB.size());
    std::cout << "\n";
    for (const std::string &key : result.onlyA)
        std::cout << "  only in A: " << key << "\n";
    for (const std::string &key : result.onlyB)
        std::cout << "  only in B: " << key << "\n";
    for (const diff::CellDiff &cell : result.cells)
        printCellDiff(cell, top);
    return 0;
}

/**
 * Diff two fgpsim-run-v1 manifests: join the per-point records on
 * (workload, configuration), gate per-point nodes/cycle against
 * --tolerance and the runs' wall time against --wall-tolerance, and
 * summarize the IPC / redundancy / stall / host-speed movement. Exit 1
 * when B regresses past a gate relative to A — the CI perf gate.
 * Mismatched cell sets exit 3 after naming the unmatched keys; a
 * failing gate prints `fgpsim diff` attribution for the regressed
 * cells before exiting.
 */
int
cmdCompare(const Options &opts)
{
    using metrics::RunFile;
    using metrics::RunPoint;

    if (opts.extra.size() != 1)
        fgp_fatal("compare needs exactly two manifest files");
    const std::string path_a = opts.source;
    const std::string path_b = opts.extra[0];

    const double tol = parsePercent(opts.get("tolerance", "10%"),
                                    "tolerance");
    const double wall_tol =
        parsePercent(opts.get("wall-tolerance",
                              opts.get("tolerance", "10%")),
                     "wall-tolerance");

    auto load = [](const std::string &path) {
        std::ifstream in(path);
        if (!in)
            fgp_fatal("cannot open '", path, "'");
        return metrics::parseRunFile(in, path);
    };
    const RunFile a = load(path_a);
    const RunFile b = load(path_b);
    // History files carry several runs; compare the most recent.
    const metrics::RunRecord &run_a = a.runs.back();
    const metrics::RunRecord &run_b = b.runs.back();

    std::map<std::pair<std::string, std::string>, const RunPoint *>
        b_points;
    for (const RunPoint &p : b.points)
        b_points[{p.workload, p.config}] = &p;

    struct PointDelta
    {
        const RunPoint *a = nullptr;
        const RunPoint *b = nullptr;
        double ipcPct = 0.0; ///< (b-a)/a in percent; negative = slower
    };
    std::vector<PointDelta> joined;
    std::vector<std::string> only_a, only_b;
    for (const RunPoint &p : a.points) {
        const auto it = b_points.find({p.workload, p.config});
        if (it == b_points.end()) {
            only_a.push_back(p.workload + " " + p.config);
            continue;
        }
        PointDelta d;
        d.a = &p;
        d.b = it->second;
        const double ipc_a = p.num("nodes_per_cycle");
        const double ipc_b = it->second->num("nodes_per_cycle");
        d.ipcPct = ipc_a > 0.0 ? (ipc_b - ipc_a) / ipc_a * 100.0 : 0.0;
        joined.push_back(d);
    }
    {
        std::set<std::pair<std::string, std::string>> a_keys;
        for (const RunPoint &p : a.points)
            a_keys.insert({p.workload, p.config});
        for (const RunPoint &p : b.points)
            if (!a_keys.count({p.workload, p.config}))
                only_b.push_back(p.workload + " " + p.config);
    }
    const std::size_t unmatched = only_a.size() + only_b.size();

    if (unmatched) {
        // Mismatched cell sets are not comparable — the aggregate gates
        // would silently mix different workload populations. Name the
        // offending cells and take a distinct exit path (3) so CI can
        // tell "incomparable manifests" from "regression" (1).
        if (opts.has("json")) {
            obs::JsonWriter json(std::cout);
            json.beginObject();
            json.field("schema", "fgpsim-compare-v1");
            json.field("a", path_a);
            json.field("b", path_b);
            json.field("points_compared",
                       static_cast<std::uint64_t>(joined.size()));
            json.field("points_unmatched",
                       static_cast<std::uint64_t>(unmatched));
            json.beginArray("cells_only_a");
            for (const std::string &key : only_a)
                json.element(key);
            json.endArray();
            json.beginArray("cells_only_b");
            for (const std::string &key : only_b)
                json.element(key);
            json.endArray();
            json.field("mismatched", true);
            json.endObject();
            std::cout << "\n";
            return 3;
        }
        constexpr std::size_t kShow = 5;
        const auto show = [&](const char *side,
                              const std::vector<std::string> &keys) {
            if (keys.empty())
                return;
            std::cerr << "compare: " << keys.size() << " cell(s) only in "
                      << side << ":";
            for (std::size_t i = 0; i < std::min(keys.size(), kShow); ++i)
                std::cerr << (i ? ", " : " ") << keys[i];
            if (keys.size() > kShow)
                std::cerr << ", ...";
            std::cerr << "\n";
        };
        show("A", only_a);
        show("B", only_b);
        std::cerr << "compare: MISMATCHED cell sets (" << joined.size()
                  << " joined, " << unmatched << " unmatched)\n";
        return 3;
    }

    // Gates.
    std::vector<const PointDelta *> ipc_regressions;
    const PointDelta *worst = nullptr;
    double ipc_pct_sum = 0.0;
    for (const PointDelta &d : joined) {
        ipc_pct_sum += d.ipcPct;
        if (!worst || d.ipcPct < worst->ipcPct)
            worst = &d;
        if (d.ipcPct < -tol)
            ipc_regressions.push_back(&d);
    }
    const double wall_a = run_a.num("wall_seconds");
    const double wall_b = run_b.num("wall_seconds");
    const double wall_pct =
        wall_a > 0.0 ? (wall_b - wall_a) / wall_a * 100.0 : 0.0;
    const bool wall_regressed = wall_pct > wall_tol;
    const bool regressed = wall_regressed || !ipc_regressions.empty();

    // Aggregate movement: redundancy, stall slots, host speed.
    auto point_sum = [](const std::vector<RunPoint> &points,
                        const std::string &key) {
        double sum = 0.0;
        for (const RunPoint &p : points)
            sum += p.num(key);
        return sum;
    };
    const double mean_ipc_pct =
        joined.empty() ? 0.0
                       : ipc_pct_sum / static_cast<double>(joined.size());
    const double red_a = point_sum(a.points, "redundancy");
    const double red_b = point_sum(b.points, "redundancy");
    const double ns_a = run_a.num("host_ns_per_sim_cycle");
    const double ns_b = run_b.num("host_ns_per_sim_cycle");

    static const char *const kStallKeys[] = {
        "stall_fetch_redirect", "stall_fetch_idle", "stall_window_full",
        "stall_short_word", "stall_drain", "stall_operand_wait",
        "stall_memory_wait", "stall_serialize_wait", "stall_fu_busy"};

    if (opts.has("json")) {
        obs::JsonWriter json(std::cout);
        json.beginObject();
        json.field("schema", "fgpsim-compare-v1");
        json.field("a", path_a);
        json.field("b", path_b);
        json.field("tolerance_pct", tol);
        json.field("wall_tolerance_pct", wall_tol);
        json.field("points_compared",
                   static_cast<std::uint64_t>(joined.size()));
        json.field("points_unmatched",
                   static_cast<std::uint64_t>(unmatched));
        json.field("mean_ipc_pct", mean_ipc_pct);
        if (worst) {
            json.field("worst_ipc_pct", worst->ipcPct);
            json.field("worst_point", worst->a->workload + " " +
                                          worst->a->config);
        }
        json.field("wall_seconds_a", wall_a);
        json.field("wall_seconds_b", wall_b);
        json.field("wall_pct", wall_pct);
        json.field("host_ns_per_sim_cycle_a", ns_a);
        json.field("host_ns_per_sim_cycle_b", ns_b);
        json.beginObject("stall_deltas");
        for (const char *key : kStallKeys)
            json.field(key, point_sum(b.points, key) -
                                point_sum(a.points, key));
        json.endObject();
        json.field("ipc_regressions",
                   static_cast<std::uint64_t>(ipc_regressions.size()));
        json.field("wall_regressed", wall_regressed);
        json.field("regressed", regressed);
        json.endObject();
        std::cout << "\n";
        return regressed ? 1 : 0;
    }

    std::cout << "compare " << path_a << " (A: "
              << run_a.str("bench", "?") << " @ "
              << run_a.str("git", "?") << ")\n"
              << "     vs " << path_b << " (B: "
              << run_b.str("bench", "?") << " @ "
              << run_b.str("git", "?") << ")\n"
              << format("  points compared    : %zu (%zu unmatched)\n",
                        joined.size(), unmatched)
              << format("  mean IPC delta     : %+.2f%%\n", mean_ipc_pct);
    if (worst)
        std::cout << format("  worst IPC delta    : %+.2f%% (%s %s)\n",
                            worst->ipcPct, worst->a->workload.c_str(),
                            worst->a->config.c_str());
    std::cout << format("  redundancy sum     : %.4f -> %.4f\n", red_a,
                        red_b)
              << format("  wall seconds       : %.3f -> %.3f (%+.1f%%)\n",
                        wall_a, wall_b, wall_pct)
              << format("  host ns/sim cycle  : %.1f -> %.1f\n", ns_a,
                        ns_b);
    for (const char *key : kStallKeys) {
        const double sa = point_sum(a.points, key);
        const double sb = point_sum(b.points, key);
        if (sa != sb)
            std::cout << format("  %-19s: %.0f -> %.0f\n", key, sa, sb);
    }
    for (const PointDelta *d : ipc_regressions)
        std::cout << format("  REGRESSION %s %s: IPC %+.2f%% "
                            "(tolerance %.1f%%)\n",
                            d->a->workload.c_str(), d->a->config.c_str(),
                            d->ipcPct, tol);
    if (wall_regressed)
        std::cout << format("  REGRESSION wall time %+.1f%% "
                            "(tolerance %.1f%%)\n",
                            wall_pct, wall_tol);
    std::cout << (regressed ? "compare: REGRESSED\n" : "compare: ok\n");
    if (!ipc_regressions.empty()) {
        // Gate failed: auto-invoke the differential attribution for the
        // regressed cells, so the CI log answers "which windows, which
        // stall causes, which blocks" without a second command.
        std::cout << "\nDifferential attribution (fgpsim diff " << path_a
                  << " " << path_b << "):\n";
        const diff::Stream da = diff::loadStreamFile(path_a);
        const diff::Stream db = diff::loadStreamFile(path_b);
        const diff::DiffResult dr = diff::diffStreams(da, db);
        std::set<std::string> bad;
        for (const PointDelta *d : ipc_regressions)
            bad.insert(d->a->workload + " " + d->a->config);
        for (const diff::CellDiff &cell : dr.cells)
            if (bad.count(cell.workload + " " + cell.config))
                printCellDiff(cell, 5);
    }
    return regressed ? 1 : 0;
}

/**
 * Print the perf trajectory of an appended run-header history file
 * (RunRecorder::appendHistory, e.g. BENCH_history.jsonl): one row per
 * run with git describe, host ns per simulated cycle and the delta
 * against the previous run — `fgpsim compare` for the time axis.
 */
int
cmdHistory(const Options &opts)
{
    std::ifstream in(opts.source);
    if (!in) {
        // A missing history file is the normal state of a fresh checkout,
        // not an error: say how to start one and exit cleanly.
        std::cout << "history: no history file at '" << opts.source
                  << "'\nAppend runs with: build/bench/perf_selfcheck "
                     "--append " << opts.source << "\n";
        return 0;
    }
    // parseRunFile treats a record-less file as fatal (a manifest with no
    // run header is corrupt for `compare`), but an empty history is just a
    // history nobody has appended to yet — check before parsing.
    if (in.peek() == std::ifstream::traits_type::eof()) {
        std::cout << "history: '" << opts.source
                  << "' contains no run records yet\nAppend runs with: "
                     "build/bench/perf_selfcheck --append " << opts.source
                  << "\n";
        return 0;
    }
    const metrics::RunFile file = metrics::parseRunFile(in, opts.source);
    if (file.runs.empty()) {
        std::cout << "history: '" << opts.source
                  << "' contains no run records yet\nAppend runs with: "
                     "build/bench/perf_selfcheck --append " << opts.source
                  << "\n";
        return 0;
    }

    Table t({"git", "time", "bench", "sims", "wall_s", "ns/cycle",
             "delta", "ipc", "d_ipc"});
    double prev = 0.0;
    double prev_ipc = 0.0;
    for (const metrics::RunRecord &run : file.runs) {
        const double ns = run.num("host_ns_per_sim_cycle");
        std::string delta = "-";
        if (prev > 0.0 && ns > 0.0)
            delta = format("%+.1f%%", (ns - prev) / prev * 100.0);
        if (ns > 0.0)
            prev = ns;
        // Simulated IPC of the benchmark run, when the record carries
        // the engine metrics (older history lines may not).
        const double cyc = run.num("sim_cycles");
        const double ret = run.num("engine.retired_nodes");
        const double ipc = cyc > 0.0 ? ret / cyc : 0.0;
        std::string ipc_txt = "-";
        std::string d_ipc = "-";
        if (ipc > 0.0) {
            ipc_txt = format("%.3f", ipc);
            if (prev_ipc > 0.0)
                d_ipc = format("%+.1f%%",
                               (ipc - prev_ipc) / prev_ipc * 100.0);
            prev_ipc = ipc;
        }
        t.addRow({run.str("git", "?"), run.str("iso_time", "?"),
                  run.str("bench", "?"),
                  format("%.0f", run.num("sims")),
                  format("%.2f", run.num("wall_seconds")),
                  format("%.1f", ns), delta, ipc_txt, d_ipc});
    }
    t.print(std::cout);
    std::cout << file.runs.size() << " runs\n";
    return 0;
}

int
runCli(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Options opts;
    opts.command = argv[1];
    opts.source = argv[2];
    for (int i = 3; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            // compare and diff take an extra positional (their B file).
            if (opts.command != "compare" && opts.command != "diff")
                fgp_fatal("unexpected argument '", arg, "'");
            opts.extra.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        if (arg == "conservative" || arg == "json" || arg == "strict" ||
            arg == "mem" || arg == "retired" || arg == "oracle") {
            opts.flags[arg] = "1";
        } else {
            if (i + 1 >= argc)
                fgp_fatal("flag --", arg, " needs a value");
            opts.flags[arg] = argv[++i];
        }
    }

    if (opts.command == "asm")
        return cmdAsm(opts);
    if (opts.command == "run")
        return cmdRun(opts);
    if (opts.command == "profile")
        return cmdProfile(opts);
    if (opts.command == "bbe")
        return cmdBbe(opts);
    if (opts.command == "sim")
        return cmdSim(opts);
    if (opts.command == "trace")
        return cmdSim(opts, SimMode::Trace);
    if (opts.command == "report")
        return cmdSim(opts, SimMode::Report);
    if (opts.command == "check")
        return cmdCheck(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts);
    if (opts.command == "compare")
        return cmdCompare(opts);
    if (opts.command == "diff")
        return cmdDiff(opts);
    if (opts.command == "history")
        return cmdHistory(opts);
    usage();
}

} // namespace
} // namespace fgp

int
main(int argc, char **argv)
{
    try {
        return fgp::runCli(argc, argv);
    } catch (const fgp::FatalError &err) {
        std::cerr << "fgpsim: " << err.what() << "\n";
        return 1;
    }
}
