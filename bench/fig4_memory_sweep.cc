/**
 * @file
 * Figure 4: performance as a function of the memory configuration for
 * issue model 8 (4 memory + 12 ALU nodes per word). The paper orders the
 * x-axis A,D,E (1-cycle variants), B,F,G (2-cycle variants), then C.
 */

#include "bench/fig_common.hh"

using namespace fgp;
using namespace fgp::bench;

int
main()
{
    detail::setQuiet(true);
    banner("Figure 4", "nodes/cycle vs. memory configuration, issue model 8");

    ExperimentRunner runner(envScale());
    RunRecorder recorder("fig4", &runner);
    const IssueModel issue = issueModel(8);
    const std::string order = "ADEBFGC";

    std::vector<std::string> header = {"series"};
    for (char mc : order)
        header.push_back(std::string(1, mc));
    Table table(std::move(header));

    std::vector<MachineConfig> configs;
    for (const Series &series : tenSeries())
        for (char mc : order)
            configs.push_back(
                {series.discipline, issue, memoryConfig(mc), series.branch});
    const std::vector<double> means = sweepMeans(
        runner, configs,
        [](const ExperimentResult &r) { return r.nodesPerCycle; },
        &recorder);

    std::size_t at = 0;
    for (const Series &series : tenSeries()) {
        const std::vector<double> row(
            means.begin() + static_cast<std::ptrdiff_t>(at),
            means.begin() + static_cast<std::ptrdiff_t>(at + order.size()));
        at += order.size();
        table.addNumericRow(series.name(), row);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper): nearly parallel lines — "
                 "high-performing configurations lose a smaller fraction "
                 "as memory slows;\n  visible B->D dip for low-locality "
                 "benchmarks (write buffer + 1K cache vs. flat 2-cycle)."
                 "\n";
    finishRun(recorder);
    return 0;
}
