/**
 * @file
 * Packing of block nodes into multi-node issue words.
 *
 * Static machines get a latency-aware list schedule over the dependence
 * DAG (the compiler fills the node slots, §2.1, assuming cache-hit
 * latency); dynamic machines get order-preserving greedy packing — the
 * hardware decouples the nodes after issue, so only issue bandwidth
 * matters. The sequential issue model packs one node per word.
 */

#ifndef FGP_TLD_SCHEDULE_HH
#define FGP_TLD_SCHEDULE_HH

#include "arch/config.hh"
#include "ir/image.hh"
#include "tld/depgraph.hh"

namespace fgp {

/**
 * Fill @p block.words for a statically scheduled machine. With @p facts,
 * proven no-alias memory pairs place no ordering edge, so the scheduler
 * may hoist a load above an independent store; null keeps the
 * conservative §2.1 disambiguation rule bit-identical.
 */
void scheduleStatic(ImageBlock &block, const IssueModel &issue,
                    int mem_hit_latency, const MemDepFacts *facts = nullptr);

/** Fill @p block.words for a dynamically scheduled machine. */
void packDynamic(ImageBlock &block, const IssueModel &issue);

/**
 * True when @p block.words is a valid packing: every node in exactly one
 * word, slot shapes respected, and (for static schedules) all dependence
 * edges point to the same or a later word. A schedule produced with
 * no-alias @p facts must be held against the same facts. Used by tests
 * and the structural verifier.
 */
bool wordsRespectModel(const ImageBlock &block, const IssueModel &issue,
                       const MemDepFacts *facts = nullptr);

} // namespace fgp

#endif // FGP_TLD_SCHEDULE_HH
